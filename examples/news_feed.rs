//! News feed: a Twitter-like workload on Vitis.
//!
//! Every user is both a publisher (its timeline is a topic) and a
//! subscriber (it follows other users). The follow graph is a synthetic
//! power-law graph with the same statistical profile the paper reports for
//! its Twitter trace (α ≈ 1.65), BFS-sampled exactly as Section IV-E
//! describes.
//!
//! ```text
//! cargo run --release --example news_feed
//! ```

use vitis::prelude::*;
use vitis_workloads::{FollowGraph, TwitterModel};

fn main() {
    // Generate a 6000-user synthetic follow graph and BFS-sample 1200.
    let model = TwitterModel {
        num_users: 6000,
        alpha: 1.65,
        max_out_degree: 1000,
    };
    let full = FollowGraph::generate(&model, 7);
    let sample = full.bfs_sample(1200, 8);
    let stats = sample.stats();
    println!(
        "follow graph: {} users, {} follows, mean {:.1} followees/user, max audience {}",
        stats.num_users, stats.num_edges, stats.mean_out_degree, stats.max_in_degree
    );

    // Topics are user ids: following user u = subscribing to topic u.
    // Every author also sees its own timeline, which keeps the publisher
    // inside its topic's cluster.
    let n = sample.len();
    let subs: Vec<TopicSet> = sample
        .follows
        .iter()
        .enumerate()
        .map(|(u, f)| TopicSet::from_iter(f.iter().copied().chain([u as u32])))
        .collect();
    let mut params = SystemParams::new(subs, n);
    params.seed = 99;
    let mut sys = VitisSystem::new(params);

    println!("converging the overlay…");
    sys.run_rounds(50);

    // A tweet wave: the 300 most-followed users each post once.
    let mut by_audience: Vec<(usize, u64)> = sample
        .in_degrees()
        .into_iter()
        .enumerate()
        .collect();
    by_audience.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
    sys.reset_metrics();
    let mut posted = 0;
    for &(user, audience) in &by_audience {
        if audience == 0 {
            break;
        }
        // The author itself publishes on its own timeline topic.
        if sys.publish_from(user as u32, TopicId(user as u32)).is_some() {
            posted += 1;
        }
        if posted == 300 {
            break;
        }
    }
    sys.run_rounds(8);

    let s = sys.stats();
    println!("tweets posted   : {posted}");
    println!("deliveries      : {}/{} ({:.2}%)", s.delivered, s.expected, 100.0 * s.hit_ratio);
    println!("traffic overhead: {:.1}%", s.overhead_pct);
    println!("propagation     : {:.2} hops mean", s.mean_hops);
    assert!(s.hit_ratio > 0.95, "hit ratio {}", s.hit_ratio);
    println!("ok: feeds delivered with a bounded degree of 15 links/user.");
}
