//! Side-by-side comparison of the three systems on the same workload —
//! the paper's Table-style summary in one run.
//!
//! ```text
//! cargo run --release --example compare_systems
//! ```

use vitis::prelude::*;
use vitis_baselines::{OptSystem, RvrSystem};
use vitis_workloads::{Correlation, SubscriptionModel};

fn main() {
    let model = SubscriptionModel {
        num_nodes: 800,
        num_topics: 400,
        num_buckets: 8,
        subs_per_node: 40,
        correlation: Correlation::High,
    };
    let subs: Vec<TopicSet> = model
        .generate(21)
        .into_iter()
        .map(TopicSet::from_iter)
        .collect();
    let mut params = SystemParams::new(subs, model.num_topics);
    params.seed = 21;

    println!(
        "{} nodes, {} topics, {} subs/node, high interest correlation, degree bound 15\n",
        model.num_nodes, model.num_topics, model.subs_per_node
    );
    println!(
        "{:<8} {:>8} {:>11} {:>8} {:>12} {:>14}",
        "system", "hit %", "overhead %", "hops", "mean degree", "ctl B/round"
    );

    let mut vitis = VitisSystem::new(params.clone());
    run("Vitis", &mut vitis, model.num_topics);
    let mut rvr = RvrSystem::new(params.clone());
    run("RVR", &mut rvr, model.num_topics);
    let mut opt = OptSystem::new(params);
    run("OPT", &mut opt, model.num_topics);

    println!(
        "\nVitis: bounded degree AND low overhead — the gap the paper fills.\n\
         RVR delivers everything but burns relay bandwidth; OPT never relays\n\
         but its bounded degree cannot keep every topic subgraph connected."
    );
}

fn run(name: &str, sys: &mut dyn PubSub, topics: usize) {
    sys.run_rounds(50);
    sys.reset_metrics();
    for t in 0..topics as u32 {
        sys.publish(TopicId(t));
        if t % 40 == 39 {
            sys.run_rounds(1);
        }
    }
    sys.run_rounds(8);
    let s = sys.stats();
    println!(
        "{:<8} {:>8.2} {:>11.1} {:>8.2} {:>12.1} {:>14.0}",
        name,
        100.0 * s.hit_ratio,
        s.overhead_pct,
        s.mean_hops,
        sys.mean_degree(),
        s.control_bytes_per_round
    );
}
