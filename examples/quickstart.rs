//! Quickstart: build a Vitis network, subscribe, publish, measure.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vitis::prelude::*;
use vitis_sim::time::Duration;

fn main() {
    // 500 nodes, 250 topics, ~20 subscriptions each, grouped interests:
    // nodes 2k..2k+1 share a taste bucket, a common social pattern.
    let num_nodes = 500usize;
    let num_topics = 250usize;
    let subscriptions: Vec<TopicSet> = (0..num_nodes)
        .map(|i| {
            let bucket = (i / 50) as u32 * 25 % num_topics as u32;
            TopicSet::from_iter((0..20).map(|k| (bucket + k) % num_topics as u32))
        })
        .collect();

    let mut params = SystemParams::new(subscriptions, num_topics);
    params.seed = 2026;
    params.round_period = Duration(64);
    let mut sys = VitisSystem::new(params);

    println!("gossiping until the overlay converges…");
    sys.run_rounds(40);
    println!(
        "ring accuracy {:.1}%  mean degree {:.1}",
        100.0 * sys.ring_accuracy(),
        sys.mean_degree()
    );

    // Publish one event per topic, let dissemination finish.
    sys.reset_metrics();
    for t in 0..num_topics as u32 {
        sys.publish(TopicId(t));
    }
    sys.run_rounds(6);

    let s = sys.stats();
    println!("published      : {}", s.published);
    println!("hit ratio      : {:.2}%", 100.0 * s.hit_ratio);
    println!("traffic overhead: {:.1}% (relay share of data messages)", s.overhead_pct);
    println!("propagation    : {:.2} hops mean, {} max", s.mean_hops, s.max_hops);

    // Cluster view of one topic: how many disjoint subscriber clusters the
    // gateway/relay machinery has to stitch together.
    let clusters = sys.topic_clusters(TopicId(0));
    println!(
        "topic 0: {} subscribers in {} cluster(s), sizes {:?}",
        clusters.iter().map(|c| c.len()).sum::<usize>(),
        clusters.len(),
        clusters.iter().map(|c| c.len()).collect::<Vec<_>>()
    );

    assert!(s.hit_ratio > 0.99, "expected full delivery, got {}", s.hit_ratio);
    println!("ok: every subscriber got every event.");
}
