//! IPTV under churn: a hot streaming channel on a churning network.
//!
//! The motivating scenario from the paper's introduction: a user of IPTV
//! will abandon the overlay if it constantly relays a stream it does not
//! watch. This example runs a Skype-like availability trace (heavy-tailed
//! sessions, flash crowd) with one hot "channel" topic carrying most of
//! the events, and reports how much relay traffic uninterested nodes see.
//!
//! ```text
//! cargo run --release --example iptv_churn
//! ```

use vitis::prelude::*;
use vitis_sim::churn::ChurnKind;
use vitis_sim::time::Duration;
use vitis_workloads::SkypeModel;

fn main() {
    let num_nodes = 600usize;
    let num_topics = 60usize;
    let channel = TopicId(0);

    // 40% of the nodes watch the channel; everyone also has a few other
    // interests.
    let subs: Vec<TopicSet> = (0..num_nodes)
        .map(|i| {
            let mut topics: Vec<u32> = vec![
                1 + (i as u32 % 59),
                1 + ((i as u32 * 7) % 59),
            ];
            if i % 5 < 2 {
                topics.push(channel.0);
            }
            TopicSet::from_iter(topics)
        })
        .collect();

    // The channel carries 50x the event rate of every other topic.
    let mut rates = vec![1.0; num_topics];
    rates[0] = 50.0;

    let mut params = SystemParams::new(subs, num_topics);
    params.seed = 4;
    params.rates = RateTable::from_rates(rates);
    params.grace = Duration(2 * params.round_period.ticks());
    let mut sys = VitisSystem::new(params);

    // Availability: Skype-like sessions with a flash crowd at hour 60.
    let model = SkypeModel {
        num_nodes,
        horizon_hours: 100.0,
        flash_crowd_hour: 60.0,
        ticks_per_hour: 64, // one gossip round per trace hour
        ..SkypeModel::default()
    };
    let trace = model.generate(11);
    for logical in 0..num_nodes as u32 {
        sys.set_online(logical, false);
    }

    println!("hour  online  hit%   overhead%  hops");
    let window_hours = 10u64;
    let mut cursor = 0usize;
    let events = trace.events();
    for w in 1..=10u64 {
        let wend = w * window_hours * model.ticks_per_hour;
        sys.reset_metrics();
        // ~30 events per window, mostly on the hot channel.
        for _ in 0..30 {
            sys.publish_weighted();
        }
        while cursor < events.len() && events[cursor].time.ticks() < wend {
            let e = events[cursor];
            let now = sys.now().ticks();
            if e.time.ticks() > now {
                sys.run_ticks(e.time.ticks() - now);
            }
            sys.set_online(e.node, e.kind == ChurnKind::Join);
            cursor += 1;
        }
        let now = sys.now().ticks();
        if wend > now {
            sys.run_ticks(wend - now);
        }
        let s = sys.stats();
        println!(
            "{:>4}  {:>6}  {:>5.1}  {:>8.1}  {:>5.2}",
            w * window_hours,
            sys.alive_count(),
            100.0 * s.hit_ratio,
            s.overhead_pct,
            s.mean_hops
        );
    }
    println!(
        "flash crowd hit at hour {}; the overlay re-clusters and keeps serving the channel.",
        model.flash_crowd_hour
    );
}
