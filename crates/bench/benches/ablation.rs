//! Ablation benches for the design choices DESIGN.md calls out: gateway
//! election (A1), Equation 1 friend ranking (A2), and the sw-link count
//! (A3). Each bench runs the toggled configuration end to end so that both
//! the quality deltas (reported by the experiment harness) and the runtime
//! cost of each mechanism are tracked.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vitis::system::{PubSub, SystemParams, VitisSystem};
use vitis::topic::{TopicId, TopicSet};
use vitis_workloads::{Correlation, SubscriptionModel};

fn params(gateway_election: bool, utility_selection: bool, k_sw: usize) -> SystemParams {
    let model = SubscriptionModel {
        num_nodes: 200,
        num_topics: 100,
        num_buckets: 4,
        subs_per_node: 20,
        correlation: Correlation::High,
    };
    let subs: Vec<TopicSet> = model
        .generate(5)
        .into_iter()
        .map(TopicSet::from_iter)
        .collect();
    let mut p = SystemParams::new(subs, model.num_topics);
    p.seed = 5;
    p.cfg.gateway_election = gateway_election;
    p.cfg.utility_selection = utility_selection;
    p.cfg.k_sw = k_sw;
    p
}

fn run_once(p: SystemParams) -> f64 {
    let topics = p.num_topics;
    let mut sys = VitisSystem::new(p);
    sys.run_rounds(25);
    sys.reset_metrics();
    for t in 0..topics as u32 {
        sys.publish(TopicId(t));
    }
    sys.run_rounds(5);
    sys.stats().overhead_pct
}

fn bench_gateway_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_gateway_election");
    g.sample_size(10);
    for &on in &[true, false] {
        g.bench_with_input(BenchmarkId::from_parameter(on), &on, |b, &on| {
            b.iter(|| run_once(params(on, true, 1)))
        });
    }
    g.finish();
}

fn bench_utility_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("a2_utility_ranking");
    g.sample_size(10);
    for &on in &[true, false] {
        g.bench_with_input(BenchmarkId::from_parameter(on), &on, |b, &on| {
            b.iter(|| run_once(params(true, on, 1)))
        });
    }
    g.finish();
}

fn bench_swlink_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("a3_sw_links");
    g.sample_size(10);
    for &k in &[1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| run_once(params(true, true, k)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_gateway_ablation,
    bench_utility_ablation,
    bench_swlink_ablation
);
criterion_main!(benches);
