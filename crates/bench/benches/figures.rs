//! One bench per paper figure: each regenerates the figure's computation
//! at a reduced scale, so `cargo bench` exercises every harness path and
//! tracks its cost. The full-size tables come from the
//! `vitis-experiments` binary (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use vitis_experiments::{ablations, fig10, fig11, fig4, fig5, fig6, fig7, fig8_9, Scale};
use vitis_workloads::Correlation;

fn bench_scale() -> Scale {
    // Small enough that a full figure-point runs in ~1 s: criterion takes
    // 10 samples per bench and the suite covers every figure.
    let mut sc = Scale::proportional(150, 42);
    sc.warmup_rounds = 25;
    sc.events = 50;
    sc.drain_rounds = 5;
    sc
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_friends_sweep");
    g.sample_size(10);
    let sc = bench_scale();
    g.bench_function("vitis_point_high_corr_f12", |b| {
        b.iter(|| fig4::vitis_point(&sc, Correlation::High, 12))
    });
    g.bench_function("rvr_reference_point", |b| b.iter(|| fig4::rvr_point(&sc)));
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_overhead_distribution");
    g.sample_size(10);
    let sc = bench_scale();
    g.bench_function("vitis_per_node", |b| {
        b.iter(|| fig5::per_node_overhead(&sc, true, Correlation::High))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_rt_size_sweep");
    g.sample_size(10);
    let sc = bench_scale();
    g.bench_function("vitis_rt25", |b| {
        b.iter(|| fig6::vitis_point(&sc, Correlation::Low, 25))
    });
    g.bench_function("rvr_rt25", |b| b.iter(|| fig6::rvr_point(&sc, 25)));
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_rate_skew");
    g.sample_size(10);
    let sc = bench_scale();
    g.bench_function("vitis_alpha2", |b| {
        b.iter(|| fig7::vitis_point(&sc, Correlation::Random, 2.0))
    });
    g.finish();
}

fn bench_fig8_9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_9_twitter_trace");
    g.sample_size(10);
    let sc = bench_scale();
    g.bench_function("generate_and_fit", |b| b.iter(|| fig8_9::run_fig8(&sc)));
    g.bench_function("bfs_sample", |b| b.iter(|| fig8_9::sampled_trace(&sc)));
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_twitter_pubsub");
    g.sample_size(10);
    let sc = bench_scale();
    g.bench_function("vitis_rt15", |b| {
        b.iter(|| fig10::point(&sc, fig10::SystemKind::Vitis, 15))
    });
    g.bench_function("opt_rt15", |b| {
        b.iter(|| fig10::point(&sc, fig10::SystemKind::Opt, 15))
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_opt_unbounded");
    g.sample_size(10);
    let sc = bench_scale();
    g.bench_function("degree_stats", |b| b.iter(|| fig11::degree_stats(&sc)));
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    use vitis::system::VitisSystem;
    use vitis_experiments::fig12::{run_system, ChurnPlan};
    use vitis_experiments::runner::synthetic_params;
    use vitis_workloads::SkypeModel;

    let mut g = c.benchmark_group("fig12_churn");
    g.sample_size(10);
    let sc = bench_scale();
    // A short trace (2 days instead of the figure's 10) keeps one
    // iteration around a second while exercising the same machinery.
    let plan = ChurnPlan {
        model: SkypeModel {
            num_nodes: sc.nodes,
            horizon_hours: 48.0,
            flash_crowd_hour: 30.0,
            ..SkypeModel::default()
        },
        window_hours: 12.0,
        events_per_window: 20,
    };
    let trace = plan.model.generate(sc.seed);
    g.bench_function("vitis_short_trace", |b| {
        b.iter(|| {
            let mut sys = VitisSystem::new(synthetic_params(&sc, Correlation::Low));
            let ctx = vitis_experiments::obs::Obs::global().start("bench", "fig12");
            run_system(&mut sys, &plan, &trace, &sc, ctx)
        })
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let sc = bench_scale();
    g.bench_function("gateway_election", |b| {
        b.iter(|| ablations::gateway_election(&sc))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8_9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_ablations
);
criterion_main!(benches);
