//! Microbenchmarks of the hot per-round primitives: the utility function
//! (Equation 1), subscription-set merges, greedy next-hop choice, Algorithm
//! 4 neighbor selection, and the workload samplers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vitis::topic::{RateTable, TopicSet};
use vitis::utility;
use vitis_overlay::entry::Entry;
use vitis_overlay::id::Id;
use vitis_overlay::routing::next_hop;
use vitis_overlay::rt::{select_neighbors, RtParams};
use vitis_sim::event::NodeIdx;
use vitis_sim::stats::Zipf;

fn random_set(rng: &mut SmallRng, topics: u32, n: usize) -> TopicSet {
    TopicSet::from_iter((0..n).map(|_| rng.gen_range(0..topics)))
}

fn bench_utility(c: &mut Criterion) {
    let mut g = c.benchmark_group("utility_eq1");
    let mut rng = SmallRng::seed_from_u64(1);
    for &subs in &[10usize, 50, 200] {
        let a = random_set(&mut rng, 5000, subs);
        let b = random_set(&mut rng, 5000, subs);
        let rates = RateTable::uniform(5000);
        g.bench_with_input(BenchmarkId::from_parameter(subs), &subs, |bench, _| {
            bench.iter(|| utility(black_box(&a), black_box(&b), black_box(&rates)))
        });
    }
    g.finish();
}

fn bench_topicset_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("topicset");
    let mut rng = SmallRng::seed_from_u64(2);
    let a = random_set(&mut rng, 5000, 50);
    let b = random_set(&mut rng, 5000, 50);
    g.bench_function("intersection_len_50x50", |bench| {
        bench.iter(|| black_box(&a).intersection_len(black_box(&b)))
    });
    g.bench_function("contains", |bench| {
        bench.iter(|| black_box(&a).contains(vitis::topic::TopicId(black_box(2500))))
    });
    g.finish();
}

fn bench_next_hop(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let neighbors: Vec<(Id, NodeIdx)> = (0..15)
        .map(|i| (Id(rng.gen()), NodeIdx(i)))
        .collect();
    c.bench_function("greedy_next_hop_15", |bench| {
        bench.iter(|| {
            next_hop(
                black_box(Id(42)),
                black_box(Id(u64::MAX / 3)),
                neighbors.iter().copied(),
            )
        })
    });
}

fn bench_select_neighbors(c: &mut Criterion) {
    let mut g = c.benchmark_group("select_neighbors");
    for &ncand in &[30usize, 60, 120] {
        let mut rng = SmallRng::seed_from_u64(4);
        let subs_rng = &mut SmallRng::seed_from_u64(5);
        let my_subs = random_set(subs_rng, 5000, 50);
        let rates = RateTable::uniform(5000);
        let cands: Vec<Entry<TopicSet>> = (0..ncand)
            .map(|i| Entry {
                addr: NodeIdx(i as u32),
                id: Id(rng.gen()),
                age: 0,
                payload: random_set(subs_rng, 5000, 50),
            })
            .collect();
        let params = RtParams {
            rt_size: 15,
            k_sw: 1,
            est_n: 10_000,
        };
        g.bench_with_input(BenchmarkId::from_parameter(ncand), &ncand, |bench, _| {
            bench.iter(|| {
                select_neighbors(
                    NodeIdx(u32::MAX),
                    Id(7),
                    &params,
                    black_box(cands.clone()),
                    &[],
                    &[],
                    |e| utility(&my_subs, &e.payload, &rates),
                    &mut rng,
                )
            })
        });
    }
    g.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let z = Zipf::new(5000, 1.65);
    let mut rng = SmallRng::seed_from_u64(6);
    c.bench_function("zipf_sample_5000", |bench| bench.iter(|| z.sample(&mut rng)));
}

criterion_group!(
    benches,
    bench_utility,
    bench_topicset_ops,
    bench_next_hop,
    bench_select_neighbors,
    bench_zipf
);
criterion_main!(benches);
