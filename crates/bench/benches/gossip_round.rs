//! Whole-system benchmarks: cost of one gossip round and of one full
//! publish wave for each of the three systems, at two network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vitis::system::{PubSub, SystemParams, VitisSystem};
use vitis::topic::{TopicId, TopicSet};
use vitis_baselines::{OptSystem, RvrSystem};
use vitis_workloads::{Correlation, SubscriptionModel};

fn params(n: usize) -> SystemParams {
    let model = SubscriptionModel {
        num_nodes: n,
        num_topics: n / 2,
        num_buckets: (n / 100).max(4),
        subs_per_node: 25,
        correlation: Correlation::Low,
    };
    let subs: Vec<TopicSet> = model
        .generate(7)
        .into_iter()
        .map(TopicSet::from_iter)
        .collect();
    let mut p = SystemParams::new(subs, model.num_topics);
    p.seed = 7;
    p
}

fn bench_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip_round");
    g.sample_size(10);
    for &n in &[250usize, 600] {
        g.bench_with_input(BenchmarkId::new("vitis", n), &n, |b, &n| {
            let mut sys = VitisSystem::new(params(n));
            sys.run_rounds(20); // steady state
            b.iter(|| sys.run_rounds(1));
        });
        g.bench_with_input(BenchmarkId::new("rvr", n), &n, |b, &n| {
            let mut sys = RvrSystem::new(params(n));
            sys.run_rounds(20);
            b.iter(|| sys.run_rounds(1));
        });
        g.bench_with_input(BenchmarkId::new("opt", n), &n, |b, &n| {
            let mut sys = OptSystem::new(params(n));
            sys.run_rounds(20);
            b.iter(|| sys.run_rounds(1));
        });
    }
    g.finish();
}

/// Dissemination meso-bench: one measured burst end to end — publish a
/// rate-weighted batch, drain it over enough rounds that notifications
/// reach the whole subscriber set, then reset. Exercises the full
/// runtime path (publish scheduling → engine rounds → monitor
/// accounting) rather than a single round in isolation.
fn bench_dissemination(c: &mut Criterion) {
    let mut g = c.benchmark_group("dissemination");
    g.sample_size(10);
    let n = 400;
    g.bench_function("vitis", |b| {
        let mut sys = VitisSystem::new(params(n));
        sys.run_rounds(30);
        b.iter(|| {
            for _ in 0..20 {
                sys.publish_weighted();
            }
            sys.run_rounds(5);
            sys.reset_metrics();
        });
    });
    g.bench_function("rvr", |b| {
        let mut sys = RvrSystem::new(params(n));
        sys.run_rounds(30);
        b.iter(|| {
            for _ in 0..20 {
                sys.publish_weighted();
            }
            sys.run_rounds(5);
            sys.reset_metrics();
        });
    });
    g.bench_function("opt", |b| {
        let mut sys = OptSystem::new(params(n));
        sys.run_rounds(30);
        b.iter(|| {
            for _ in 0..20 {
                sys.publish_weighted();
            }
            sys.run_rounds(5);
            sys.reset_metrics();
        });
    });
    g.finish();
}

/// Construction cost including the params clone a three-system
/// comparison pays per system — the path subscription interning is
/// meant to cheapen.
fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("system_build");
    g.sample_size(10);
    let n = 600;
    let p = params(n);
    g.bench_function("vitis", |b| {
        b.iter(|| VitisSystem::new(p.clone()));
    });
    g.bench_function("rvr", |b| {
        b.iter(|| RvrSystem::new(p.clone()));
    });
    g.bench_function("opt", |b| {
        b.iter(|| OptSystem::new(p.clone()));
    });
    g.finish();
}

fn bench_publish_wave(c: &mut Criterion) {
    let mut g = c.benchmark_group("publish_wave_50_events");
    g.sample_size(10);
    let n = 300;
    g.bench_function("vitis", |b| {
        let mut sys = VitisSystem::new(params(n));
        sys.run_rounds(40);
        b.iter(|| {
            for t in 0..50 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(3);
        });
    });
    g.bench_function("rvr", |b| {
        let mut sys = RvrSystem::new(params(n));
        sys.run_rounds(40);
        b.iter(|| {
            for t in 0..50 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(3);
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_round,
    bench_dissemination,
    bench_build,
    bench_publish_wave
);
criterion_main!(benches);
