//! Harness-free meso-benchmark (originally recorded `BENCH_PR4.json`).
//!
//! Mirrors the `gossip_round`, `dissemination` and `system_build` groups
//! of `benches/gossip_round.rs` but times them with plain
//! `std::time::Instant`, so it runs in environments where the criterion
//! harness is unavailable. Emits median microseconds in the shared
//! `vitis-bench-v1` BENCH schema (`vitis_experiments::benchfmt`) — the
//! same format as `vitis-experiments scale` — so any two reports diff
//! with the `bench-diff` binary:
//!
//! ```text
//! cargo run -p vitis-bench --release --bin meso_timing [-- --out FILE]
//! ```

use std::time::Instant;
use vitis_experiments::benchfmt::{self, BenchEntry};
use vitis::system::{PubSub, SystemParams, VitisSystem};
use vitis::topic::TopicSet;
use vitis_baselines::{OptSystem, RvrSystem};
use vitis_workloads::{Correlation, SubscriptionModel};

fn params(n: usize) -> SystemParams {
    let model = SubscriptionModel {
        num_nodes: n,
        num_topics: n / 2,
        num_buckets: (n / 100).max(4),
        subs_per_node: 25,
        correlation: Correlation::Low,
    };
    let subs: Vec<TopicSet> = model
        .generate(7)
        .into_iter()
        .map(TopicSet::from_iter)
        .collect();
    let mut p = SystemParams::new(subs, model.num_topics);
    p.seed = 7;
    p
}

/// Median wall time in microseconds over `samples` runs of `f`.
fn median_us(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    let mid = times.len() / 2;
    if times.len().is_multiple_of(2) {
        (times[mid - 1] + times[mid]) / 2.0
    } else {
        times[mid]
    }
}

fn round_bench(sys: &mut dyn PubSub, samples: usize) -> f64 {
    sys.run_rounds(20);
    median_us(samples, || sys.run_rounds(1))
}

fn dissemination_bench(sys: &mut dyn PubSub, samples: usize) -> f64 {
    sys.run_rounds(30);
    median_us(samples, || {
        for _ in 0..20 {
            sys.publish_weighted();
        }
        sys.run_rounds(5);
        sys.reset_metrics();
    })
}

fn main() {
    const SAMPLES: usize = 15;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("usage: meso_timing [--out FILE]   (unexpected argument: {other})");
                std::process::exit(2);
            }
        }
    }
    let mut entries: Vec<(String, f64)> = Vec::new();

    for &n in &[250usize, 600] {
        entries.push((
            format!("gossip_round/vitis/{n}"),
            round_bench(&mut VitisSystem::new(params(n)), SAMPLES),
        ));
        entries.push((
            format!("gossip_round/rvr/{n}"),
            round_bench(&mut RvrSystem::new(params(n)), SAMPLES),
        ));
        entries.push((
            format!("gossip_round/opt/{n}"),
            round_bench(&mut OptSystem::new(params(n)), SAMPLES),
        ));
    }

    let n = 400;
    entries.push((
        format!("dissemination/vitis/{n}"),
        dissemination_bench(&mut VitisSystem::new(params(n)), SAMPLES),
    ));
    entries.push((
        format!("dissemination/rvr/{n}"),
        dissemination_bench(&mut RvrSystem::new(params(n)), SAMPLES),
    ));
    entries.push((
        format!("dissemination/opt/{n}"),
        dissemination_bench(&mut OptSystem::new(params(n)), SAMPLES),
    ));

    let n = 600;
    let p = params(n);
    entries.push((
        format!("system_build/vitis/{n}"),
        median_us(SAMPLES, || drop(VitisSystem::new(p.clone()))),
    ));
    entries.push((
        format!("system_build/rvr/{n}"),
        median_us(SAMPLES, || drop(RvrSystem::new(p.clone()))),
    ));
    entries.push((
        format!("system_build/opt/{n}"),
        median_us(SAMPLES, || drop(OptSystem::new(p.clone()))),
    ));

    let bench: Vec<BenchEntry> = entries
        .into_iter()
        .map(|(name, us)| BenchEntry::new(name, (us * 10.0).round() / 10.0, "us"))
        .collect();
    let text = benchfmt::render(&bench);
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: could not write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {} BENCH entries to {path}", bench.len());
        }
        None => print!("{text}"),
    }
}
