//! # vitis-bench
//!
//! Criterion benchmark targets for the Vitis reproduction:
//!
//! * `microbench` — the hot per-round primitives (Equation 1 utility,
//!   subscription-set merges, greedy routing, Algorithm 4 selection, Zipf
//!   sampling),
//! * `gossip_round` — cost of a full gossip round and of a publish wave for
//!   each system at several network sizes,
//! * `figures` — one bench per paper figure, running the same harness code
//!   as `vitis-experiments` at a reduced scale,
//! * `ablation` — the A1/A2/A3 ablations of DESIGN.md.
//!
//! Run with `cargo bench -p vitis-bench` (or `cargo bench --workspace`).
//! The crate has no library code of its own.

#![warn(missing_docs)]
