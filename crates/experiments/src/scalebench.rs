//! The `scale` subcommand: a node-count sweep benchmarking all three
//! systems, emitting per-phase wall-clock, peak memory and dissemination
//! throughput in the shared BENCH format ([`crate::benchfmt`]).
//!
//! Points run **sequentially** (unlike the Rayon figure sweeps) so the
//! allocator peak measured after each point belongs to that point alone:
//! [`vitis_sim::perf::reset_mem_peak`] rebases the high-water mark before
//! each system is built. Wall-clock numbers never feed simulation state —
//! the simulations themselves stay bit-deterministic for a fixed seed.
//!
//! The default ladder stops at 10 000 nodes (the paper's scale, and what
//! CI's deep job can afford); `--max-nodes 1000000` unlocks the full
//! trajectory. Rungs above the paper scale switch to a reduced *frontier*
//! plan (fewer rounds/events, Vitis only) so the 100k–1M points measure
//! engine scaling without paying the baselines' superlinear costs; the
//! sweep logs exactly what each rung runs, and `--budget-secs` caps the
//! total wall-clock by skipping whole rungs once the budget is spent.
//!
//! Each Vitis point additionally re-runs under the deterministic parallel
//! executor and reports `parallel_speedup` (serial wall-clock / parallel
//! wall-clock over the round-driving phases). On a single-core host this
//! hovers at or below 1.0 — the executor is validated by bit-identity,
//! and the ratio records what the hardware actually delivered.

use crate::benchfmt::BenchEntry;
use crate::runner::synthetic_params;
use crate::scale::Scale;
use std::time::Instant;
use vitis::system::{PubSub, SystemParams, VitisSystem};
use vitis_baselines::{OptSystem, RvrSystem};
use vitis_sim::perf;
use vitis_sim::trace::TraceHandle;
use vitis_workloads::Correlation;

/// The full node-count trajectory. Entries above `max_nodes` are skipped
/// (the 100k–1M points take serious wall-clock and memory).
pub const LADDER: [usize; 9] = [
    2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000,
];

/// Default `--max-nodes`: the paper's 10 000-node setting.
pub const DEFAULT_MAX_NODES: usize = 10_000;

/// Largest rung that runs the full three-system paper plan; larger rungs
/// use the reduced frontier plan and benchmark Vitis only.
pub const PAPER_PLAN_MAX: usize = 10_000;

/// One benchmarked (system, node-count) point.
#[derive(Clone, Debug)]
pub struct BenchPoint {
    /// System label (`vitis` / `rvr` / `opt`).
    pub system: &'static str,
    /// Node count of this point.
    pub nodes: usize,
    /// Wall-clock per phase, milliseconds.
    pub build_ms: f64,
    /// Warmup-phase wall-clock (ms).
    pub warmup_ms: f64,
    /// Publish-window wall-clock (ms).
    pub measure_ms: f64,
    /// Drain-phase wall-clock (ms).
    pub drain_ms: f64,
    /// Allocator peak since the point started (0 without `perf-alloc`).
    pub peak_bytes: u64,
    /// Structural per-node footprint estimate at the end of the run.
    pub footprint_bytes: u64,
    /// Deliveries achieved in the window.
    pub delivered: u64,
    /// Deliveries per wall-clock second over measure + drain.
    pub deliveries_per_sec: f64,
    /// Hit ratio of the window (sanity context, never gated).
    pub hit_ratio: f64,
}

impl BenchPoint {
    /// Flatten into BENCH entries named `scale/{system}/{nodes}/...`.
    pub fn entries(&self) -> Vec<BenchEntry> {
        let p = format!("scale/{}/{}", self.system, self.nodes);
        let mut out = vec![
            BenchEntry::new(format!("{p}/build_ms"), self.build_ms, "ms"),
            BenchEntry::new(format!("{p}/warmup_ms"), self.warmup_ms, "ms"),
            BenchEntry::new(format!("{p}/measure_ms"), self.measure_ms, "ms"),
            BenchEntry::new(format!("{p}/drain_ms"), self.drain_ms, "ms"),
            BenchEntry::new(
                format!("{p}/deliveries_per_sec"),
                self.deliveries_per_sec,
                "per_sec",
            ),
            BenchEntry::new(
                format!("{p}/footprint_bytes"),
                self.footprint_bytes as f64,
                "bytes",
            ),
            BenchEntry::new(format!("{p}/delivered"), self.delivered as f64, "count"),
            BenchEntry::new(format!("{p}/hit_ratio"), self.hit_ratio, "ratio"),
        ];
        if self.peak_bytes > 0 {
            out.push(BenchEntry::new(
                format!("{p}/peak_bytes"),
                self.peak_bytes as f64,
                "bytes",
            ));
        }
        out
    }
}

/// The sweep's measurement plan at `nodes`: paper proportions, but a
/// fixed-size publish window so throughput numbers compare across the
/// ladder (the work per event grows with N; the event count must not).
pub fn sweep_scale(nodes: usize, seed: u64) -> Scale {
    let mut s = Scale::proportional(nodes, seed);
    s.warmup_rounds = 30;
    s.events = 200;
    s.drain_rounds = 8;
    s
}

/// The reduced measurement plan for rungs beyond the paper scale: enough
/// rounds to exercise steady-state gossip and a publish window, small
/// enough that a 1M-node rung finishes in minutes rather than hours.
/// Numbers from the same rung remain comparable across commits (the plan
/// is keyed on `nodes` only); they are *not* comparable to `sweep_scale`
/// rungs, which is why the ladder never mixes plans at one node count.
pub fn frontier_scale(nodes: usize, seed: u64) -> Scale {
    let mut s = Scale::proportional(nodes, seed);
    if nodes > 100_000 {
        s.warmup_rounds = 5;
        s.events = 50;
        s.drain_rounds = 3;
    } else {
        s.warmup_rounds = 10;
        s.events = 100;
        s.drain_rounds = 4;
    }
    s
}

/// The plan for `nodes`: the paper plan up to [`PAPER_PLAN_MAX`], the
/// frontier plan above it.
pub fn plan_for(nodes: usize, seed: u64) -> Scale {
    if nodes <= PAPER_PLAN_MAX {
        sweep_scale(nodes, seed)
    } else {
        frontier_scale(nodes, seed)
    }
}

/// Run one (system, node-count) point. `trace` is installed when the
/// caller streams an event trace.
fn bench_point(
    system: &'static str,
    scale: &Scale,
    trace: Option<TraceHandle>,
    parallel: bool,
    build: impl FnOnce(SystemParams) -> Box<dyn PubSub>,
) -> BenchPoint {
    let _span = perf::span("scale.point");
    perf::reset_mem_peak();

    let t = Instant::now();
    let params = synthetic_params(scale, Correlation::High);
    let mut sys = {
        let _span = perf::span("scale.build");
        build(params)
    };
    sys.set_parallel_rounds(parallel);
    if let Some(t) = trace {
        sys.install_trace(t);
    }
    let build_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    {
        let _span = perf::span("scale.warmup");
        sys.run_rounds(scale.warmup_rounds);
    }
    let warmup_ms = t.elapsed().as_secs_f64() * 1e3;
    sys.reset_metrics();

    let t = Instant::now();
    {
        let _span = perf::span("scale.measure");
        let chunk = (scale.events / 10).max(1);
        let mut published = 0usize;
        let mut topic = 0u32;
        while published < scale.events {
            for _ in 0..chunk.min(scale.events - published) {
                sys.publish(vitis::topic::TopicId(topic));
                topic = (topic + 1) % scale.topics as u32;
                published += 1;
            }
            sys.run_rounds(1);
        }
    }
    let measure_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    {
        let _span = perf::span("scale.drain");
        sys.run_rounds(scale.drain_rounds);
    }
    let drain_ms = t.elapsed().as_secs_f64() * 1e3;

    let stats = sys.stats();
    let window_secs = (measure_ms + drain_ms) / 1e3;
    BenchPoint {
        system,
        nodes: scale.nodes,
        build_ms,
        warmup_ms,
        measure_ms,
        drain_ms,
        peak_bytes: perf::mem_snapshot().peak_bytes,
        footprint_bytes: sys.footprint_estimate(),
        delivered: stats.delivered,
        deliveries_per_sec: if window_secs > 0.0 {
            stats.delivered as f64 / window_secs
        } else {
            0.0
        },
        hit_ratio: stats.hit_ratio,
    }
}

/// Total round-driving wall-clock of a point (the phases the executor
/// choice can affect; build is excluded).
fn round_ms(p: &BenchPoint) -> f64 {
    p.warmup_ms + p.measure_ms + p.drain_ms
}

/// Run the sweep over every ladder point `<= max_nodes`, returning the
/// flattened BENCH entries. Rungs up to [`PAPER_PLAN_MAX`] run all three
/// systems on the paper plan; larger rungs run Vitis only on the reduced
/// frontier plan (logged per rung — nothing is skipped silently). Every
/// Vitis point is re-run under the parallel executor and emits a
/// `parallel_speedup` entry.
///
/// `budget_secs` (when given) caps total wall-clock: once spent, the
/// remaining rungs — and the parallel re-run within a rung — are skipped
/// with a log line. Progress goes to stderr; `make_trace` (when given)
/// supplies a fresh trace handle per point, which the caller drains after
/// this returns point results via `on_point`.
pub fn run_sweep(
    max_nodes: usize,
    seed: u64,
    budget_secs: Option<u64>,
    mut make_trace: Option<&mut dyn FnMut(&'static str, usize) -> TraceHandle>,
    mut on_point: impl FnMut(&BenchPoint),
) -> Vec<BenchEntry> {
    let started = Instant::now();
    let over_budget = |at: &Instant| {
        budget_secs.is_some_and(|b| at.elapsed().as_secs() >= b)
    };
    let mut entries = Vec::new();
    let ladder: Vec<usize> = LADDER.iter().copied().filter(|&n| n <= max_nodes).collect();
    let skipped = LADDER.len() - ladder.len();
    if skipped > 0 {
        eprintln!(
            "scale: stopping at {max_nodes} nodes ({skipped} larger ladder points skipped; \
             raise --max-nodes for the full trajectory)"
        );
    }
    for &nodes in &ladder {
        if over_budget(&started) {
            eprintln!(
                "scale: wall-clock budget ({}s) spent — skipping the {nodes}-node rung and \
                 everything above it",
                budget_secs.unwrap_or(0)
            );
            break;
        }
        let scale = plan_for(nodes, seed);
        type Build = fn(SystemParams) -> Box<dyn PubSub>;
        let all: [(&'static str, Build); 3] = [
            ("vitis", |p| Box::new(VitisSystem::new(p))),
            ("rvr", |p| Box::new(RvrSystem::new(p))),
            ("opt", |p| Box::new(OptSystem::new(p))),
        ];
        let systems: &[(&'static str, Build)] = if nodes <= PAPER_PLAN_MAX {
            &all
        } else {
            eprintln!(
                "scale: {nodes} nodes uses the frontier plan (warmup {}, events {}, drain {}) \
                 and benchmarks vitis only",
                scale.warmup_rounds, scale.events, scale.drain_rounds
            );
            &all[..1]
        };
        for &(name, build) in systems {
            eprintln!("scale: {name} @ {nodes} nodes...");
            let trace = make_trace.as_mut().map(|f| f(name, nodes));
            let point = bench_point(name, &scale, trace, false, build);
            on_point(&point);
            entries.extend(point.entries());
            if name == "vitis" {
                if over_budget(&started) {
                    eprintln!(
                        "scale: wall-clock budget spent — skipping the parallel re-run at \
                         {nodes} nodes"
                    );
                    continue;
                }
                eprintln!("scale: vitis @ {nodes} nodes (parallel executor)...");
                let par = bench_point(name, &scale, None, true, build);
                let speedup = if round_ms(&par) > 0.0 {
                    round_ms(&point) / round_ms(&par)
                } else {
                    0.0
                };
                eprintln!(
                    "scale: vitis @ {nodes}: serial {:.0} ms vs parallel {:.0} ms \
                     (speedup {speedup:.2}x)",
                    round_ms(&point),
                    round_ms(&par)
                );
                entries.push(BenchEntry::new(
                    format!("scale/vitis/{nodes}/parallel_speedup"),
                    speedup,
                    "ratio",
                ));
            }
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_scale_fixes_the_window() {
        let s = sweep_scale(2_000, 42);
        assert_eq!(s.events, 200);
        assert_eq!(s.warmup_rounds, 30);
        assert_eq!(s.drain_rounds, 8);
        assert_eq!(s.topics, 1_000); // paper proportions preserved
    }

    #[test]
    fn tiny_sweep_emits_full_entry_set() {
        // Below the real ladder: drive bench_point directly at toy size so
        // the test stays fast while exercising the whole path.
        let scale = {
            let mut s = sweep_scale(200, 7);
            s.warmup_rounds = 15;
            s.events = 30;
            s
        };
        let point = bench_point("vitis", &scale, None, false, |p| Box::new(VitisSystem::new(p)));
        assert_eq!(point.nodes, 200);
        assert!(point.delivered > 0, "toy sweep must deliver events");
        assert!(point.deliveries_per_sec > 0.0);
        assert!(point.footprint_bytes > 0);
        let entries = point.entries();
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"scale/vitis/200/measure_ms"));
        assert!(names.contains(&"scale/vitis/200/deliveries_per_sec"));
        assert!(names.contains(&"scale/vitis/200/footprint_bytes"));
        // peak_bytes appears only when the counting allocator is active.
        assert_eq!(
            names.contains(&"scale/vitis/200/peak_bytes"),
            cfg!(feature = "perf-alloc")
        );
    }

    #[test]
    fn ladder_is_bounded_by_max_nodes() {
        let within: Vec<usize> = LADDER.iter().copied().filter(|&n| n <= 10_000).collect();
        assert_eq!(within, vec![2_000, 5_000, 10_000]);
    }

    #[test]
    fn ladder_reaches_one_million() {
        assert_eq!(*LADDER.last().unwrap(), 1_000_000);
        // Strictly increasing: one plan per node count, no duplicate rungs.
        assert!(LADDER.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn plans_split_at_the_paper_scale() {
        // Paper rungs keep the PR6 plan byte-for-byte so BENCH numbers
        // stay comparable across PRs.
        let paper = plan_for(10_000, 42);
        assert_eq!(
            (paper.warmup_rounds, paper.events, paper.drain_rounds),
            (30, 200, 8)
        );
        let mid = plan_for(50_000, 42);
        assert_eq!((mid.warmup_rounds, mid.events, mid.drain_rounds), (10, 100, 4));
        let big = plan_for(500_000, 42);
        assert_eq!((big.warmup_rounds, big.events, big.drain_rounds), (5, 50, 3));
        // Proportional workload shape is preserved at every tier.
        assert_eq!(big.nodes, 500_000);
    }

    #[test]
    fn parallel_bench_point_runs() {
        let scale = {
            let mut s = sweep_scale(200, 7);
            s.warmup_rounds = 10;
            s.events = 20;
            s
        };
        let serial = bench_point("vitis", &scale, None, false, |p| {
            Box::new(VitisSystem::new(p))
        });
        let par = bench_point("vitis", &scale, None, true, |p| {
            Box::new(VitisSystem::new(p))
        });
        // Same simulation either way: identical deliveries and hit ratio.
        assert_eq!(serial.delivered, par.delivered);
        assert_eq!(serial.hit_ratio, par.hit_ratio);
    }

    #[test]
    fn zero_budget_skips_every_rung() {
        let entries = run_sweep(10_000, 42, Some(0), None, |_| {
            panic!("no point should run under a zero budget")
        });
        assert!(entries.is_empty());
    }
}
