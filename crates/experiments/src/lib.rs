//! # vitis-experiments
//!
//! The experiment harness that regenerates every figure of the Vitis paper
//! (IPDPS 2011, Section IV), plus the ablation studies from DESIGN.md:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig4`] | Fig. 4(a,b) — friends vs sw-neighbors |
//! | [`fig5`] | Fig. 5 — per-node overhead distribution |
//! | [`fig6`] | Fig. 6(a,b) — routing-table size sweep |
//! | [`fig7`] | Fig. 7(a,b) — publication-rate skew sweep |
//! | [`fig8_9`] | Fig. 8 & 9 — Twitter trace analysis |
//! | [`fig10`] | Fig. 10(a,b,c) — three systems on Twitter subscriptions |
//! | [`fig11`] | Fig. 11 — unbounded OPT degree distribution |
//! | [`fig12`] | Fig. 12(a,b,c) — churn (Skype-like trace) |
//! | [`ablations`] | A1 gateway election, A2 utility ranking, A3 sw links |
//! | [`clusters`] | supplementary cluster-structure diagnostic (Figs. 1–2) |
//! | [`resilience`] | fault-episode severity sweep (hit ratio + reconvergence) |
//! | [`topology`] | overlay structural-health telemetry + invariant audit |
//!
//! Sweep points are embarrassingly parallel; each builds its own
//! single-threaded simulation, and Rayon fans the points out across cores.
//!
//! Run from the CLI: `cargo run -p vitis-experiments --release -- all
//! --nodes 2000` (use `--paper` for the full 10 000-node setting).

#![warn(missing_docs)]

pub mod ablations;
pub mod analyze;
pub mod benchfmt;
pub mod clusters;
pub mod fig10;
pub mod headline;
pub mod fig11;
pub mod fig12;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8_9;
pub mod obs;
pub mod report;
pub mod resilience;
pub mod runner;
pub mod scale;
pub mod scalebench;
pub mod topology;

pub use report::{Figure, Series};
pub use scale::Scale;
