//! Figure 10: the three systems on Twitter subscriptions, routing-table
//! size 15–35.
//!
//! Every user is both subscriber and topic (topics = nodes), subscriptions
//! are the followee lists of the BFS sample. The paper's findings: Vitis
//! and RVR hold 100 % hit ratio at every degree while bounded OPT tops out
//! around 80 %; Vitis's overhead is ~30–40 % below RVR's; Vitis is ~1.5×
//! faster than RVR and ~1.7× faster than OPT.

use crate::fig8_9::sampled_trace;
use crate::report::{Figure, Series};
use crate::obs::Obs;
use crate::runner::{measure_obs, params_from_subs, with_cfg, PublishPlan};
use crate::scale::Scale;
use rayon::prelude::*;
use vitis::system::{SystemParams, VitisSystem};
use vitis::topic::TopicSet;
use vitis_baselines::{OptSystem, RvrSystem};

/// Routing-table sizes swept.
pub const RT_SIZES: [usize; 5] = [15, 20, 25, 30, 35];

/// Which system a sweep point measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemKind {
    /// Vitis with `rt_size` links.
    Vitis,
    /// RVR with `rt_size` links.
    Rvr,
    /// OPT bounded to `rt_size` links.
    Opt,
}

impl SystemKind {
    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Vitis => "Vitis",
            SystemKind::Rvr => "RVR",
            SystemKind::Opt => "OPT",
        }
    }
}

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Routing-table size / degree bound.
    pub rt_size: usize,
    /// Hit ratio.
    pub hit_ratio: f64,
    /// Traffic overhead in percent.
    pub overhead: f64,
    /// Mean propagation delay in hops.
    pub delay: f64,
}

/// Subscription sets of the Twitter sample (topics = node indices).
pub fn twitter_params(scale: &Scale) -> SystemParams {
    let trace = sampled_trace(scale);
    let n = trace.len();
    let subs: Vec<TopicSet> = trace
        .follows
        .iter()
        .map(|f| TopicSet::from_iter(f.iter().copied()))
        .collect();
    params_from_subs(scale, subs, n)
}

/// Measure one system at one table size on the Twitter subscriptions.
pub fn point(scale: &Scale, kind: SystemKind, rt_size: usize) -> Point {
    let params = with_cfg(twitter_params(scale), |c| {
        c.rt_size = rt_size;
        c.k_sw = 1;
    });
    let mut scale = *scale;
    // Topics = nodes here, so cap the event batch at the population.
    scale.topics = params.num_topics;
    scale.events = scale.events.min(params.num_topics);
    let label = match kind {
        SystemKind::Vitis => "vitis",
        SystemKind::Rvr => "rvr",
        SystemKind::Opt => "opt",
    };
    let ctx = Obs::global().start("fig10", &format!("{label}-rt{rt_size}"));
    let stats = match kind {
        SystemKind::Vitis => {
            let mut sys = VitisSystem::new(params);
            measure_obs(&mut sys, &scale, PublishPlan::RoundRobin, ctx)
        }
        SystemKind::Rvr => {
            let mut sys = RvrSystem::new(params);
            measure_obs(&mut sys, &scale, PublishPlan::RoundRobin, ctx)
        }
        SystemKind::Opt => {
            let mut sys = OptSystem::new(params);
            measure_obs(&mut sys, &scale, PublishPlan::RoundRobin, ctx)
        }
    };
    Point {
        rt_size,
        hit_ratio: stats.hit_ratio,
        overhead: stats.overhead_pct,
        delay: stats.mean_hops,
    }
}

/// Run the sweep; returns `(hit ratio, overhead, delay)` figures.
pub fn run(scale: &Scale) -> (Figure, Figure, Figure) {
    let kinds = [SystemKind::Vitis, SystemKind::Rvr, SystemKind::Opt];
    let mut jobs = Vec::new();
    for k in kinds {
        for rt in RT_SIZES {
            jobs.push((k, rt));
        }
    }
    let results: Vec<(SystemKind, Point)> = jobs
        .par_iter()
        .map(|&(k, rt)| (k, point(scale, k, rt)))
        .collect();

    let mut hit = Figure::new(
        "Figure 10(a): hit ratio vs routing table size (Twitter)",
        "routing table size",
        "hit ratio %",
    );
    let mut overhead = Figure::new(
        "Figure 10(b): traffic overhead vs routing table size (Twitter)",
        "routing table size",
        "overhead %",
    );
    let mut delay = Figure::new(
        "Figure 10(c): propagation delay vs routing table size (Twitter)",
        "routing table size",
        "hops",
    );
    for k in kinds {
        let pts: Vec<&Point> = results
            .iter()
            .filter(|(kk, _)| *kk == k)
            .map(|(_, p)| p)
            .collect();
        hit.push_series(series_of(k.label(), &pts, |p| 100.0 * p.hit_ratio));
        overhead.push_series(series_of(k.label(), &pts, |p| p.overhead));
        delay.push_series(series_of(k.label(), &pts, |p| p.delay));
    }
    hit.note("paper: Vitis and RVR at 100%; OPT ~80% even at degree 35");
    overhead.note("paper: OPT ~0; Vitis 30-40% below RVR");
    delay.note("paper: Vitis ~1.5x faster than RVR, ~1.7x faster than OPT");
    (hit, overhead, delay)
}

fn series_of(label: &str, pts: &[&Point], y: impl Fn(&Point) -> f64) -> Series {
    let mut v: Vec<(f64, f64)> = pts.iter().map(|p| (p.rt_size as f64, y(p))).collect();
    v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
    Series::new(label, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ordering that defines Figure 10: Vitis ≥ OPT on hit ratio,
    /// OPT ≈ 0 overhead, Vitis below RVR on overhead.
    #[test]
    fn twitter_ordering_holds_at_smoke_scale() {
        let mut sc = Scale::quick();
        sc.warmup_rounds = 50;
        sc.events = 150;
        let v = point(&sc, SystemKind::Vitis, 15);
        let r = point(&sc, SystemKind::Rvr, 15);
        let o = point(&sc, SystemKind::Opt, 15);
        assert!(v.hit_ratio > 0.9, "vitis hit {}", v.hit_ratio);
        assert!(r.hit_ratio > 0.9, "rvr hit {}", r.hit_ratio);
        assert!(o.hit_ratio < v.hit_ratio, "opt {} vs vitis {}", o.hit_ratio, v.hit_ratio);
        assert!(o.overhead < 1.0, "opt overhead {}", o.overhead);
        assert!(v.overhead < r.overhead, "vitis {} vs rvr {}", v.overhead, r.overhead);
    }
}
