//! Figure 11: node-degree distribution of OPT with *unbounded* degree.
//!
//! The paper's scalability argument against pure correlation-based designs:
//! to reach full coverage on Twitter subscriptions, more than two thirds of
//! OPT nodes need degree above 15 and a heavy tail forms (0.3 % above 200,
//! max 708 in the paper's run).

use crate::fig10::twitter_params;
use crate::obs::Obs;
use crate::report::{Figure, Series};
use crate::scale::Scale;
use vitis::system::PubSub;
use vitis_baselines::{OptConfig, OptProtocol, OptSystem};

/// Degree statistics of the unbounded run.
#[derive(Clone, Debug)]
pub struct DegreeStats {
    /// All node degrees.
    pub degrees: Vec<u64>,
    /// Fraction of nodes with degree above 15.
    pub frac_above_15: f64,
    /// Maximum observed degree.
    pub max_degree: u64,
}

/// Run unbounded OPT on the Twitter sample until link churn settles, then
/// snapshot the degree distribution.
pub fn degree_stats(scale: &Scale) -> DegreeStats {
    let mut ctx = Obs::global().start("fig11", "opt-unbounded");
    let params = twitter_params(scale);
    let mut sys = OptSystem::with_protocol(
        OptProtocol::with_config(OptConfig {
            max_degree: None,
            ..OptConfig::default()
        }),
        params,
    );
    ctx.phase("build");
    ctx.install_trace(&mut sys);
    sys.run_rounds(scale.warmup_rounds);
    ctx.phase("warmup");
    ctx.sample(scale.warmup_rounds, &sys);
    let stats = sys.stats();
    ctx.record_perf(sys.perf_counters(), sys.footprint_estimate());
    ctx.finish(scale, &stats);
    let degrees = sys.degree_distribution();
    let n = degrees.len().max(1) as f64;
    let frac_above_15 = degrees.iter().filter(|&&d| d > 15).count() as f64 / n;
    let max_degree = degrees.iter().copied().max().unwrap_or(0);
    DegreeStats {
        degrees,
        frac_above_15,
        max_degree,
    }
}

/// Run the experiment and build the histogram figure (fraction of nodes
/// per degree bucket, like the paper's bar plot).
pub fn run(scale: &Scale) -> Figure {
    let stats = degree_stats(scale);
    let mut fig = Figure::new(
        "Figure 11: node degree distribution in OPT (unbounded)",
        "node degree (bucket lower edge)",
        "fraction of nodes",
    );
    let n = stats.degrees.len().max(1) as f64;
    let mut points = Vec::new();
    let bucket = 10u64;
    let max_bucket = 20; // 0..200, matching the paper's plotted range
    for b in 0..max_bucket {
        let lo = b * bucket;
        let hi = lo + bucket;
        let c = stats
            .degrees
            .iter()
            .filter(|&&d| d >= lo && d < hi)
            .count();
        points.push((lo as f64, c as f64 / n));
    }
    fig.push_series(Series::new("OPT", points));
    fig.note(format!(
        "{:.1}% of nodes above degree 15; {:.2}% above 200; max degree {}",
        100.0 * stats.frac_above_15,
        100.0 * stats.degrees.iter().filter(|&&d| d > 200).count() as f64 / n,
        stats.max_degree
    ));
    fig.note("paper: >2/3 of nodes above degree 15, 0.3% above 200, max 708");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_opt_needs_large_degrees() {
        // At smoke scale the Twitter sample has far fewer subscriptions per
        // node than the paper's (~80), so absolute degree thresholds scale
        // down; the invariants are the heavy tail and the cap overflow.
        let mut sc = Scale::quick();
        sc.warmup_rounds = 40;
        let s = degree_stats(&sc);
        assert!(
            s.frac_above_15 > 0.05,
            "a meaningful share should exceed degree 15: {}",
            s.frac_above_15
        );
        assert!(s.max_degree > 30, "max degree {}", s.max_degree);
        let mean = s.degrees.iter().sum::<u64>() as f64 / s.degrees.len().max(1) as f64;
        assert!(
            s.max_degree as f64 > 4.0 * mean,
            "tail should dwarf the mean: max {} vs mean {mean:.1}",
            s.max_degree
        );
    }
}
