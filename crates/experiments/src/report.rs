//! Figure/table data structures and plain-text rendering.
//!
//! Every experiment produces a [`Figure`]: named series of `(x, y)` points
//! (one per curve in the paper's plot) plus free-form notes. The renderer
//! prints an aligned table with one row per x value and one column per
//! series — the same rows the paper's plots are drawn from.

use std::fmt::Write as _;

/// One curve of a figure.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label (e.g. "Vitis - high correlation").
    pub label: String,
    /// `(x, y)` points in ascending x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create a series from points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// A complete regenerated figure.
#[derive(Clone, Debug, Default)]
pub struct Figure {
    /// Title, e.g. "Figure 4(a): traffic overhead vs number of friends".
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
    /// Free-form annotations (paper-vs-measured remarks, substitutions).
    pub notes: Vec<String>,
}

impl Figure {
    /// Create an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Add a curve.
    pub fn push_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Add an annotation line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Find a series by its label.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// All distinct x values across series, ascending.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("x values are finite"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        if self.series.is_empty() {
            let _ = writeln!(out, "(no data)");
        } else {
            let xs = self.x_values();
            let mut header = vec![format!("{} \\ {}", self.x_label, self.y_label)];
            header.extend(self.series.iter().map(|s| s.label.clone()));
            let mut rows: Vec<Vec<String>> = vec![header];
            for &x in &xs {
                let mut row = vec![trim_float(x)];
                for s in &self.series {
                    row.push(match s.y_at(x) {
                        Some(y) => format!("{y:.2}"),
                        None => "-".to_string(),
                    });
                }
                rows.push(row);
            }
            let widths: Vec<usize> = (0..rows[0].len())
                .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
                .collect();
            for (i, row) in rows.iter().enumerate() {
                let line: Vec<String> = row
                    .iter()
                    .zip(&widths)
                    .map(|(cell, w)| format!("{cell:>w$}", w = w))
                    .collect();
                let _ = writeln!(out, "  {}", line.join("  "));
                if i == 0 {
                    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
                    let _ = writeln!(out, "  {}", "-".repeat(total));
                }
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }
}

impl Figure {
    /// Render as CSV: header `x,<series...>`, one row per x value, empty
    /// cells for missing points, notes as trailing `#` comment lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = std::iter::once("x".to_string())
            .chain(self.series.iter().map(|s| csv_escape(&s.label)))
            .collect();
        let _ = writeln!(out, "{}", header.join(","));
        for x in self.x_values() {
            let mut row = vec![trim_float(x)];
            for s in &self.series {
                row.push(s.y_at(x).map(|y| format!("{y}")).unwrap_or_default());
            }
            let _ = writeln!(out, "{}", row.join(","));
        }
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        let mut f = Figure::new("Test", "x", "y");
        f.push_series(Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]));
        f.push_series(Series::new("b", vec![(1.0, 5.0), (2.0, 6.5)]));
        f.note("hello");
        f
    }

    #[test]
    fn x_values_union_sorted() {
        assert_eq!(fig().x_values(), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn y_at_exact_match_only() {
        let f = fig();
        assert_eq!(f.series_named("a").unwrap().y_at(1.0), Some(2.0));
        assert_eq!(f.series_named("a").unwrap().y_at(2.0), None);
        assert!(f.series_named("zzz").is_none());
    }

    #[test]
    fn render_contains_all_cells() {
        let r = fig().render();
        assert!(r.contains("== Test =="));
        assert!(r.contains("6.50"));
        assert!(r.contains('-'), "missing cells are dashes");
        assert!(r.contains("note: hello"));
        // Row for x=0 exists with the integer form.
        assert!(r.lines().any(|l| l.trim_start().starts_with('0')));
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(3.0), "3");
        assert_eq!(trim_float(0.25), "0.25");
    }

    #[test]
    fn csv_has_header_rows_and_notes() {
        let csv = fig().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("x,a,b"));
        assert_eq!(lines.next(), Some("0,1,"));
        assert_eq!(lines.next(), Some("1,2,5"));
        assert_eq!(lines.next(), Some("2,,6.5"));
        assert_eq!(lines.next(), Some("# hello"));
    }

    #[test]
    fn csv_escapes_labels() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
