//! The headline comparison with error bars: Vitis vs RVR vs OPT on
//! high-correlation and random subscriptions, replicated over independent
//! seeds. This is the statistical backbone behind the single-run figures —
//! it shows the paper-shape orderings are stable, not seed luck.

use crate::report::Figure;
use crate::obs::Obs;
use crate::runner::{measure_obs, synthetic_params, PublishPlan};
use crate::scale::Scale;
use rayon::prelude::*;
use vitis::monitor::PubSubStats;
use vitis::system::VitisSystem;
use vitis_baselines::{OptSystem, RvrSystem};
use vitis_sim::metrics::Summary;
use vitis_workloads::Correlation;

/// Mean ± standard deviation of a replicated metric.
#[derive(Clone, Copy, Debug)]
pub struct Replicated {
    /// Sample mean across replicas.
    pub mean: f64,
    /// Sample standard deviation across replicas.
    pub std: f64,
}

impl Replicated {
    fn from_summary(s: &Summary) -> Replicated {
        Replicated {
            mean: s.mean(),
            std: s.std_dev(),
        }
    }
}

/// Replicated metrics of one (system, correlation) cell.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Hit ratio.
    pub hit: Replicated,
    /// Traffic overhead percent.
    pub overhead: Replicated,
    /// Mean propagation hops.
    pub delay: Replicated,
}

fn aggregate(stats: &[PubSubStats]) -> Cell {
    let mut hit = Summary::new();
    let mut overhead = Summary::new();
    let mut delay = Summary::new();
    for s in stats {
        hit.record(s.hit_ratio);
        overhead.record(s.overhead_pct);
        delay.record(s.mean_hops);
    }
    Cell {
        hit: Replicated::from_summary(&hit),
        overhead: Replicated::from_summary(&overhead),
        delay: Replicated::from_summary(&delay),
    }
}

/// Which system a cell measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sys {
    /// Vitis.
    Vitis,
    /// RVR baseline.
    Rvr,
    /// OPT baseline (degree-bounded).
    Opt,
}

/// Run one cell over `replicas` independent seeds.
pub fn cell(scale: &Scale, sys: Sys, corr: Correlation, replicas: usize) -> Cell {
    let stats: Vec<PubSubStats> = (0..replicas as u64)
        .into_par_iter()
        .map(|r| {
            let mut sc = *scale;
            sc.seed = scale.seed.wrapping_add(r.wrapping_mul(0x9E37_79B9));
            let label = match sys {
                Sys::Vitis => "vitis",
                Sys::Rvr => "rvr",
                Sys::Opt => "opt",
            };
            let ctx =
                Obs::global().start("headline", &format!("{label}-{}-r{r}", corr.slug()));
            let params = synthetic_params(&sc, corr);
            match sys {
                Sys::Vitis => {
                    let mut s = VitisSystem::new(params);
                    measure_obs(&mut s, &sc, PublishPlan::RoundRobin, ctx)
                }
                Sys::Rvr => {
                    let mut s = RvrSystem::new(params);
                    measure_obs(&mut s, &sc, PublishPlan::RoundRobin, ctx)
                }
                Sys::Opt => {
                    let mut s = OptSystem::new(params);
                    measure_obs(&mut s, &sc, PublishPlan::RoundRobin, ctx)
                }
            }
        })
        .collect();
    aggregate(&stats)
}

/// Run the replicated headline table.
pub fn run(scale: &Scale, replicas: usize) -> Figure {
    let mut fig = Figure::new(
        format!("Headline comparison, {replicas} replicas (mean ± std)"),
        "-",
        "-",
    );
    for corr in [Correlation::High, Correlation::Random] {
        for sys in [Sys::Vitis, Sys::Rvr, Sys::Opt] {
            let c = cell(scale, sys, corr, replicas);
            fig.note(format!(
                "{:?} / {}: hit {:.3}±{:.3}  overhead {:.1}±{:.1}%  delay {:.2}±{:.2} hops",
                sys,
                corr.label(),
                c.hit.mean,
                c.hit.std,
                c.overhead.mean,
                c.overhead.std,
                c.delay.mean,
                c.delay.std,
            ));
        }
    }
    fig.note("paper shape: Vitis & RVR hit ~1.0, OPT lower; overhead Vitis << RVR, OPT ~0");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ordering survives replication at smoke scale.
    #[test]
    fn replicated_ordering_is_stable() {
        let mut sc = Scale::proportional(250, 7);
        sc.warmup_rounds = 40;
        sc.events = 80;
        let v = cell(&sc, Sys::Vitis, Correlation::High, 3);
        let r = cell(&sc, Sys::Rvr, Correlation::High, 3);
        assert!(v.hit.mean > 0.95);
        assert!(r.hit.mean > 0.95);
        // Separation is larger than the combined noise.
        assert!(
            v.overhead.mean + v.overhead.std < r.overhead.mean - r.overhead.std,
            "vitis {}±{} vs rvr {}±{}",
            v.overhead.mean,
            v.overhead.std,
            r.overhead.mean,
            r.overhead.std
        );
    }
}
