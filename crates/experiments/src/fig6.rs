//! Figure 6: routing-table size sweep (15–35).
//!
//! Larger tables help both systems but for different reasons: RVR gets more
//! small-world links (shorter rendezvous routes, leaner trees); Vitis keeps
//! its sw-link count fixed and turns every extra slot into a friend link
//! (better clustering, fewer relay paths). The paper notes Vitis's delay
//! with random subscriptions overtaking RVR's beyond ~30 entries.

use crate::report::{Figure, Series};
use crate::obs::Obs;
use crate::runner::{measure_obs, synthetic_params, with_cfg, PublishPlan};
use crate::scale::Scale;
use rayon::prelude::*;
use vitis::system::VitisSystem;
use vitis_baselines::RvrSystem;
use vitis_workloads::Correlation;

/// Routing-table sizes swept.
pub const RT_SIZES: [usize; 5] = [15, 20, 25, 30, 35];

/// One measured sweep point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Routing-table size.
    pub rt_size: usize,
    /// Traffic overhead in percent.
    pub overhead: f64,
    /// Mean propagation delay in hops.
    pub delay: f64,
    /// Hit ratio.
    pub hit_ratio: f64,
}

/// Measure Vitis at a given table size (k_sw stays 1; extra slots become
/// friends).
pub fn vitis_point(scale: &Scale, corr: Correlation, rt_size: usize) -> Point {
    let ctx = Obs::global().start("fig6", &format!("vitis-{}-rt{rt_size}", corr.slug()));
    let params = with_cfg(synthetic_params(scale, corr), |c| {
        c.rt_size = rt_size;
        c.k_sw = 1;
    });
    let mut sys = VitisSystem::new(params);
    let s = measure_obs(&mut sys, scale, PublishPlan::RoundRobin, ctx);
    Point {
        rt_size,
        overhead: s.overhead_pct,
        delay: s.mean_hops,
        hit_ratio: s.hit_ratio,
    }
}

/// Measure RVR at a given table size (all extra slots are sw links).
pub fn rvr_point(scale: &Scale, rt_size: usize) -> Point {
    let ctx = Obs::global().start("fig6", &format!("rvr-rt{rt_size}"));
    let params = with_cfg(synthetic_params(scale, Correlation::Random), |c| {
        c.rt_size = rt_size;
    });
    let mut sys = RvrSystem::new(params);
    let s = measure_obs(&mut sys, scale, PublishPlan::RoundRobin, ctx);
    Point {
        rt_size,
        overhead: s.overhead_pct,
        delay: s.mean_hops,
        hit_ratio: s.hit_ratio,
    }
}

/// Run the sweep; returns `(overhead figure, delay figure)`.
pub fn run(scale: &Scale) -> (Figure, Figure) {
    let corrs = [Correlation::High, Correlation::Low, Correlation::Random];
    let mut jobs: Vec<(Option<Correlation>, usize)> = Vec::new();
    for corr in corrs {
        for rt in RT_SIZES {
            jobs.push((Some(corr), rt));
        }
    }
    for rt in RT_SIZES {
        jobs.push((None, rt));
    }
    let results: Vec<(Option<Correlation>, Point)> = jobs
        .par_iter()
        .map(|&(corr, rt)| {
            let p = match corr {
                Some(c) => vitis_point(scale, c, rt),
                None => rvr_point(scale, rt),
            };
            (corr, p)
        })
        .collect();

    let mut overhead = Figure::new(
        "Figure 6(a): traffic overhead vs routing table size",
        "routing table size",
        "overhead %",
    );
    let mut delay = Figure::new(
        "Figure 6(b): propagation delay vs routing table size",
        "routing table size",
        "hops",
    );
    for corr in corrs {
        let label = format!("Vitis - {}", corr.label());
        let pts: Vec<&Point> = results
            .iter()
            .filter(|(c, _)| *c == Some(corr))
            .map(|(_, p)| p)
            .collect();
        overhead.push_series(series_of(&label, &pts, |p| p.overhead));
        delay.push_series(series_of(&label, &pts, |p| p.delay));
    }
    let rvr_pts: Vec<&Point> = results
        .iter()
        .filter(|(c, _)| c.is_none())
        .map(|(_, p)| p)
        .collect();
    overhead.push_series(series_of("RVR", &rvr_pts, |p| p.overhead));
    delay.push_series(series_of("RVR", &rvr_pts, |p| p.delay));
    overhead.note("paper: both systems improve with bigger tables; Vitis stays well below RVR");
    delay.note("paper: Vitis (random subs) overtakes RVR beyond ~30 entries");
    (overhead, delay)
}

fn series_of(label: &str, pts: &[&Point], y: impl Fn(&Point) -> f64) -> Series {
    let mut v: Vec<(f64, f64)> = pts.iter().map(|p| (p.rt_size as f64, y(p))).collect();
    v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
    Series::new(label, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_tables_reduce_vitis_overhead() {
        let mut sc = Scale::quick();
        sc.warmup_rounds = 45;
        sc.events = 120;
        let small = vitis_point(&sc, Correlation::Low, 15);
        let big = vitis_point(&sc, Correlation::Low, 35);
        assert!(
            big.overhead <= small.overhead + 2.0,
            "rt 35 {} should not exceed rt 15 {}",
            big.overhead,
            small.overhead
        );
        assert!(big.hit_ratio > 0.9);
    }

    #[test]
    fn rvr_delay_improves_with_more_sw_links() {
        let mut sc = Scale::quick();
        sc.warmup_rounds = 45;
        sc.events = 120;
        let small = rvr_point(&sc, 15);
        let big = rvr_point(&sc, 35);
        assert!(
            big.delay < small.delay + 0.5,
            "more sw links should not slow RVR: {} vs {}",
            big.delay,
            small.delay
        );
    }
}
