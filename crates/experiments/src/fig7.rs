//! Figure 7: publication-rate skew sweep (α from 0.3 to 3).
//!
//! Per-topic event rates follow a power law with exponent α; Equation 1
//! weights subscription overlap by rate, so as α grows Vitis re-clusters
//! around the hot topics and the random-subscription curves approach the
//! correlated ones. Events are drawn rate-weighted, as the rates define
//! the actual workload.

use crate::report::{Figure, Series};
use crate::obs::Obs;
use crate::runner::{measure_obs, synthetic_params, with_rates, PublishPlan};
use crate::scale::Scale;
use rayon::prelude::*;
use vitis::system::VitisSystem;
use vitis_baselines::RvrSystem;
use vitis_workloads::{powerlaw_rates, Correlation};

/// The α values swept (log-scaled axis in the paper).
pub const ALPHAS: [f64; 6] = [0.3, 0.5, 1.0, 1.5, 2.0, 3.0];

/// One measured point.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Rate-skew exponent α.
    pub alpha: f64,
    /// Traffic overhead in percent.
    pub overhead: f64,
    /// Mean propagation delay in hops.
    pub delay: f64,
    /// Hit ratio.
    pub hit_ratio: f64,
}

/// Measure Vitis under rate skew α.
pub fn vitis_point(scale: &Scale, corr: Correlation, alpha: f64) -> Point {
    let ctx = Obs::global().start("fig7", &format!("vitis-{}-a{alpha}", corr.slug()));
    let rates = powerlaw_rates(scale.topics, alpha, scale.seed);
    let params = with_rates(synthetic_params(scale, corr), rates);
    let mut sys = VitisSystem::new(params);
    let s = measure_obs(&mut sys, scale, PublishPlan::RateWeighted, ctx);
    Point {
        alpha,
        overhead: s.overhead_pct,
        delay: s.mean_hops,
        hit_ratio: s.hit_ratio,
    }
}

/// Measure RVR under rate skew α (subscription-oblivious, so rates only
/// change which topics carry the events).
pub fn rvr_point(scale: &Scale, alpha: f64) -> Point {
    let ctx = Obs::global().start("fig7", &format!("rvr-a{alpha}"));
    let rates = powerlaw_rates(scale.topics, alpha, scale.seed);
    let params = with_rates(synthetic_params(scale, Correlation::Random), rates);
    let mut sys = RvrSystem::new(params);
    let s = measure_obs(&mut sys, scale, PublishPlan::RateWeighted, ctx);
    Point {
        alpha,
        overhead: s.overhead_pct,
        delay: s.mean_hops,
        hit_ratio: s.hit_ratio,
    }
}

/// Run the sweep; returns `(overhead figure, delay figure)`.
pub fn run(scale: &Scale) -> (Figure, Figure) {
    let corrs = [Correlation::High, Correlation::Low, Correlation::Random];
    let mut jobs: Vec<(Option<Correlation>, f64)> = Vec::new();
    for corr in corrs {
        for a in ALPHAS {
            jobs.push((Some(corr), a));
        }
    }
    for a in ALPHAS {
        jobs.push((None, a));
    }
    let results: Vec<(Option<Correlation>, Point)> = jobs
        .par_iter()
        .map(|&(corr, a)| {
            let p = match corr {
                Some(c) => vitis_point(scale, c, a),
                None => rvr_point(scale, a),
            };
            (corr, p)
        })
        .collect();

    let mut overhead = Figure::new(
        "Figure 7(a): traffic overhead vs publication-rate skew alpha",
        "alpha",
        "overhead %",
    );
    let mut delay = Figure::new(
        "Figure 7(b): propagation delay vs publication-rate skew alpha",
        "alpha",
        "hops",
    );
    for corr in corrs {
        let label = format!("Vitis - {}", corr.label());
        let pts: Vec<&Point> = results
            .iter()
            .filter(|(c, _)| *c == Some(corr))
            .map(|(_, p)| p)
            .collect();
        overhead.push_series(series_of(&label, &pts, |p| p.overhead));
        delay.push_series(series_of(&label, &pts, |p| p.delay));
    }
    let rvr: Vec<&Point> = results
        .iter()
        .filter(|(c, _)| c.is_none())
        .map(|(_, p)| p)
        .collect();
    overhead.push_series(series_of("RVR", &rvr, |p| p.overhead));
    delay.push_series(series_of("RVR", &rvr, |p| p.delay));
    overhead.note(
        "paper: as alpha grows, the random-subscription curve approaches the \
         high-correlation one (rate weighting re-clusters around hot topics)",
    );
    (overhead, delay)
}

fn series_of(label: &str, pts: &[&Point], y: impl Fn(&Point) -> f64) -> Series {
    let mut v: Vec<(f64, f64)> = pts.iter().map(|p| (p.alpha, y(p))).collect();
    v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
    Series::new(label, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rate skew narrows the random-vs-correlated overhead gap.
    #[test]
    fn skew_helps_random_subscriptions() {
        let mut sc = Scale::quick();
        sc.warmup_rounds = 45;
        sc.events = 120;
        let flat = vitis_point(&sc, Correlation::Random, 0.3);
        let skewed = vitis_point(&sc, Correlation::Random, 3.0);
        assert!(
            skewed.overhead < flat.overhead + 1.0,
            "alpha 3 overhead {} should not exceed alpha 0.3 {}",
            skewed.overhead,
            flat.overhead
        );
        assert!(flat.hit_ratio > 0.85 && skewed.hit_ratio > 0.85);
    }
}
