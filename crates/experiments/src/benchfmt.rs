//! The shared BENCH file format (`vitis-bench-v1`).
//!
//! One schema for every wall-clock benchmark artifact in the repo: the
//! `scale` subcommand's `BENCH_PR6.json`, the `meso_timing` binary's
//! output, and anything CI wants to diff across commits. The file is a
//! single valid JSON object, laid out one entry per line so it also
//! greps and diffs like JSONL:
//!
//! ```text
//! {"schema":"vitis-bench-v1","entries":[
//! {"name":"scale/vitis/2000/measure_ms","value":812.4,"unit":"ms"},
//! {"name":"scale/vitis/2000/deliveries_per_sec","value":151204.0,"unit":"per_sec"}
//! ]}
//! ```
//!
//! Units carry the comparison direction for [`crate::benchfmt`]'s
//! consumers (`bench-diff`): time units (`ms`/`us`/`ns`) are
//! lower-is-better, `per_sec` is higher-is-better, and everything else
//! (`bytes`, `count`, `ratio`) is informational context that never gates.

use vitis_sim::trace::{push_f64, push_json_str};

/// The schema tag heading every BENCH file.
pub const SCHEMA: &str = "vitis-bench-v1";

/// One measured quantity: a slash-separated name, a value, and the unit
/// that tells consumers how to compare it.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Hierarchical metric name, e.g. `scale/vitis/2000/measure_ms`.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit: `ms`, `us`, `ns`, `per_sec`, `bytes`, `count`, `ratio`.
    pub unit: String,
}

impl BenchEntry {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, value: f64, unit: &str) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            value,
            unit: unit.to_string(),
        }
    }
}

/// How `bench-diff` treats a unit when comparing two files.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (time units): gate on increases.
    LowerIsBetter,
    /// Larger is better (throughput): gate on decreases.
    HigherIsBetter,
    /// Context only (bytes, counts, ratios): never gates.
    Informational,
}

/// The comparison direction a unit implies.
pub fn direction_of(unit: &str) -> Direction {
    match unit {
        "ms" | "us" | "ns" => Direction::LowerIsBetter,
        "per_sec" => Direction::HigherIsBetter,
        _ => Direction::Informational,
    }
}

/// Render entries as a BENCH file (valid JSON, one entry per line).
pub fn render(entries: &[BenchEntry]) -> String {
    let mut o = String::with_capacity(64 + entries.len() * 64);
    o.push_str("{\"schema\":\"");
    o.push_str(SCHEMA);
    o.push_str("\",\"entries\":[\n");
    for (i, e) in entries.iter().enumerate() {
        o.push_str("{\"name\":");
        push_json_str(&mut o, &e.name);
        o.push_str(",\"value\":");
        push_f64(&mut o, e.value);
        o.push_str(",\"unit\":");
        push_json_str(&mut o, &e.unit);
        o.push('}');
        if i + 1 < entries.len() {
            o.push(',');
        }
        o.push('\n');
    }
    o.push_str("]}\n");
    o
}

/// Parse a BENCH file produced by [`render`] (or hand-edited in the same
/// one-entry-per-line layout). Returns a labelled error on schema
/// mismatch or a malformed entry line.
pub fn parse(text: &str) -> Result<Vec<BenchEntry>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty BENCH file")?;
    if !header.contains(&format!("\"schema\":\"{SCHEMA}\"")) {
        return Err(format!("missing schema tag {SCHEMA:?} in header {header:?}"));
    }
    let mut entries = Vec::new();
    for line in lines {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "]}" {
            continue;
        }
        entries.push(parse_entry(line)?);
    }
    Ok(entries)
}

fn parse_entry(line: &str) -> Result<BenchEntry, String> {
    let name = field_str(line, "name").ok_or_else(|| format!("no \"name\" in {line:?}"))?;
    let unit = field_str(line, "unit").ok_or_else(|| format!("no \"unit\" in {line:?}"))?;
    let value = field_num(line, "value").ok_or_else(|| format!("no \"value\" in {line:?}"))?;
    Ok(BenchEntry { name, value, unit })
}

/// Extract a string field from a flat JSON object line. Handles the
/// escapes [`push_json_str`] emits (`\"`, `\\`, `\n`, `\t`, `\r`,
/// `\u00XX`) — enough to round-trip our own renderer.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                other => out.push(other),
            },
            other => out.push(other),
        }
    }
    None
}

/// Extract a numeric field from a flat JSON object line (`null` → NaN).
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or(rest.len());
    let tok = rest[..end].trim();
    if tok == "null" {
        return Some(f64::NAN);
    }
    tok.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let entries = vec![
            BenchEntry::new("scale/vitis/2000/measure_ms", 812.4, "ms"),
            BenchEntry::new("scale/vitis/2000/deliveries_per_sec", 151204.0, "per_sec"),
            BenchEntry::new("scale/vitis/2000/peak_bytes", 1.5e9, "bytes"),
        ];
        let text = render(&entries);
        assert!(text.starts_with("{\"schema\":\"vitis-bench-v1\",\"entries\":[\n"));
        assert!(text.ends_with("]}\n"));
        assert_eq!(parse(&text).unwrap(), entries);
    }

    #[test]
    fn empty_file_round_trips() {
        let text = render(&[]);
        assert_eq!(parse(&text).unwrap(), Vec::<BenchEntry>::new());
    }

    #[test]
    fn nan_renders_as_null_and_parses_back() {
        let text = render(&[BenchEntry::new("x", f64::NAN, "ratio")]);
        assert!(text.contains("\"value\":null"));
        let back = parse(&text).unwrap();
        assert!(back[0].value.is_nan());
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        assert!(parse("{\"schema\":\"other-v9\",\"entries\":[\n]}\n").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn units_imply_directions() {
        assert_eq!(direction_of("ms"), Direction::LowerIsBetter);
        assert_eq!(direction_of("us"), Direction::LowerIsBetter);
        assert_eq!(direction_of("per_sec"), Direction::HigherIsBetter);
        assert_eq!(direction_of("bytes"), Direction::Informational);
        assert_eq!(direction_of("count"), Direction::Informational);
    }

    #[test]
    fn escaped_names_survive() {
        let entries = vec![BenchEntry::new("weird \"name\"\nwith\tescapes", 1.0, "count")];
        let text = render(&entries);
        assert_eq!(parse(&text).unwrap(), entries);
    }
}
