//! Figure 12: Vitis vs RVR under Skype-trace churn.
//!
//! Both systems run against the same synthetic superpeer availability
//! trace (see `vitis_workloads::skype` for the substitution note). Hit
//! ratio, traffic overhead and propagation delay are sampled per window
//! alongside the online population; the flash-crowd episode is where the
//! paper's systems diverge (RVR dips to 87 %, Vitis stays ≈ 99 %).

use crate::obs::{Obs, RunCtx};
use crate::report::{Figure, Series};
use crate::runner::synthetic_params;
use crate::scale::Scale;
use rayon::prelude::*;
use vitis::system::{PubSub, SystemParams, VitisSystem};
use vitis_baselines::RvrSystem;
use vitis_sim::churn::{ChurnKind, ChurnTrace};
use vitis_sim::time::Duration;
use vitis_workloads::{Correlation, SkypeModel};

/// Churn-experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChurnPlan {
    /// The availability-trace model.
    pub model: SkypeModel,
    /// Measurement window length in trace hours.
    pub window_hours: f64,
    /// Events published per window.
    pub events_per_window: usize,
}

impl ChurnPlan {
    /// A plan matched to an experiment scale: the trace population equals
    /// the node count; the horizon shrinks below paper length for
    /// non-paper scales.
    pub fn for_scale(scale: &Scale) -> ChurnPlan {
        let paper = scale.nodes >= 4000;
        ChurnPlan {
            model: SkypeModel {
                num_nodes: scale.nodes,
                horizon_hours: if paper { 720.0 } else { 240.0 },
                flash_crowd_hour: if paper { 480.0 } else { 160.0 },
                ..SkypeModel::default()
            },
            window_hours: if paper { 24.0 } else { 12.0 },
            events_per_window: (scale.topics / 10).clamp(10, 200),
        }
    }
}

/// One sampled window of the churn run.
#[derive(Clone, Copy, Debug)]
pub struct WindowSample {
    /// Window end, in trace hours.
    pub hour: f64,
    /// Online nodes at window end.
    pub online: usize,
    /// Hit ratio over events published in the window.
    pub hit_ratio: f64,
    /// Traffic overhead percent over the window.
    pub overhead: f64,
    /// Mean delivery hops over the window.
    pub delay: f64,
}

/// Drive one system through the whole trace, sampling each window. The
/// run scope records one convergence sample (and health probe) per
/// window; pass `Obs::global().start(...)` even when observability is
/// off — a disabled scope is free.
pub fn run_system(
    sys: &mut dyn PubSub,
    plan: &ChurnPlan,
    trace: &ChurnTrace,
    scale: &Scale,
    mut ctx: RunCtx,
) -> Vec<WindowSample> {
    ctx.phase("build");
    ctx.install_trace(sys);
    let tph = plan.model.ticks_per_hour;
    // The system starts with every node online; the trace assumes everyone
    // starts offline.
    let n = plan.model.num_nodes as u32;
    for logical in 0..n {
        sys.set_online(logical, false);
    }
    let mut window = 0u64;
    let mut samples = Vec::new();
    let mut cursor = 0usize;
    let events = trace.events();
    let horizon = plan.model.horizon_hours;
    let window_ticks = (plan.window_hours * tph as f64) as u64;
    let mut hour = 0.0;
    while hour < horizon {
        let wend_hour = (hour + plan.window_hours).min(horizon);
        let wend_tick = (wend_hour * tph as f64) as u64;
        sys.reset_metrics();
        // Publish the window's batch up front (they get the whole window
        // to disseminate), unless nobody is online yet.
        let mut published = 0;
        let mut attempts = 0;
        while published < plan.events_per_window && attempts < plan.events_per_window * 5 {
            attempts += 1;
            if sys.publish_weighted().is_some() {
                published += 1;
            }
        }
        // Interleave churn events with simulation progress inside the
        // window.
        while cursor < events.len() && events[cursor].time.ticks() < wend_tick {
            let e = events[cursor];
            let now = sys.now().ticks();
            if e.time.ticks() > now {
                sys.run_ticks(e.time.ticks() - now);
            }
            sys.set_online(e.node, e.kind == ChurnKind::Join);
            cursor += 1;
        }
        let now = sys.now().ticks();
        if wend_tick > now {
            sys.run_ticks(wend_tick - now);
        }
        let stats = sys.stats();
        window += 1;
        ctx.sample(window, &*sys);
        samples.push(WindowSample {
            hour: wend_hour,
            online: sys.alive_count(),
            hit_ratio: stats.hit_ratio,
            overhead: stats.overhead_pct,
            delay: stats.mean_hops,
        });
        hour = wend_hour;
        let _ = window_ticks;
    }
    ctx.phase("trace");
    let stats = sys.stats();
    ctx.record_perf(sys.perf_counters(), sys.footprint_estimate());
    ctx.finish(scale, &stats);
    samples
}

/// Gossip rounds per trace hour. Real deployments gossip every few
/// seconds, i.e. thousands of rounds per median (~8 h) session; simulating
/// that over a month-long trace is intractable. Sixteen rounds per hour
/// (median session ≈ 128 rounds) is enough for tree/relay stabilization
/// while keeping the trace simulable. Sensitivity (EXPERIMENTS.md): at 4
/// rounds/hour RVR collapses to ~75 % hit under churn while Vitis still
/// delivers 96–100 % — the robustness gap widens as gossip slows.
pub const ROUNDS_PER_HOUR: u64 = 16;

fn churn_params(scale: &Scale, plan: &ChurnPlan) -> SystemParams {
    let mut p = synthetic_params(scale, Correlation::Low);
    p.round_period = Duration(plan.model.ticks_per_hour / ROUNDS_PER_HOUR);
    // Hit ratio counts a node only from 2 rounds after it joins (the
    // paper's "10 seconds after the node joins" rule).
    p.grace = Duration(2 * p.round_period.ticks());
    p
}

/// Run both systems over the trace; returns `(hit, overhead, delay)`
/// figures, each including the online-population series.
pub fn run(scale: &Scale) -> (Figure, Figure, Figure) {
    let plan = ChurnPlan::for_scale(scale);
    let trace = plan.model.generate(scale.seed);
    let runs: Vec<(&str, Vec<WindowSample>)> = [true, false]
        .par_iter()
        .map(|&vitis| {
            let params = churn_params(scale, &plan);
            let trace = trace.clone();
            if vitis {
                let ctx = Obs::global().start("fig12", "vitis");
                let mut sys = VitisSystem::new(params);
                ("Vitis", run_system(&mut sys, &plan, &trace, scale, ctx))
            } else {
                let ctx = Obs::global().start("fig12", "rvr");
                let mut sys = RvrSystem::new(params);
                ("RVR", run_system(&mut sys, &plan, &trace, scale, ctx))
            }
        })
        .collect();

    let mut hit = Figure::new(
        "Figure 12(a): hit ratio under churn (Skype-like trace)",
        "hour",
        "hit ratio % / online nodes",
    );
    let mut overhead = Figure::new(
        "Figure 12(b): traffic overhead under churn",
        "hour",
        "overhead % / online nodes",
    );
    let mut delay = Figure::new(
        "Figure 12(c): propagation delay under churn",
        "hour",
        "hops / online nodes",
    );
    let size_series: Vec<(f64, f64)> = runs[0]
        .1
        .iter()
        .map(|w| (w.hour, w.online as f64))
        .collect();
    for f in [&mut hit, &mut overhead, &mut delay] {
        f.push_series(Series::new("Network size", size_series.clone()));
    }
    for (label, samples) in &runs {
        hit.push_series(Series::new(
            label.to_string(),
            samples.iter().map(|w| (w.hour, 100.0 * w.hit_ratio)).collect(),
        ));
        overhead.push_series(Series::new(
            label.to_string(),
            samples.iter().map(|w| (w.hour, w.overhead)).collect(),
        ));
        delay.push_series(Series::new(
            label.to_string(),
            samples.iter().map(|w| (w.hour, w.delay)).collect(),
        ));
    }
    let fc = plan.model.flash_crowd_hour;
    hit.note(format!(
        "flash crowd at hour {fc}; paper: RVR dips to ~87%, Vitis worst case ~99%"
    ));
    overhead.note("paper: RVR's overhead drops at the flash crowd (broken trees), Vitis's rises slightly");
    delay.note("paper: delay roughly flat in moderate churn, higher after the flash crowd (bigger network)");
    (hit, overhead, delay)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> (Scale, ChurnPlan) {
        let mut sc = Scale::proportional(250, 11);
        sc.warmup_rounds = 0;
        let plan = ChurnPlan {
            model: SkypeModel {
                num_nodes: 250,
                horizon_hours: 100.0,
                flash_crowd_hour: 70.0,
                ..SkypeModel::default()
            },
            window_hours: 10.0,
            events_per_window: 20,
        };
        (sc, plan)
    }

    // Tracking: drives a full (if tiny) churn trace end to end; churn
    // behaviour is also exercised by tests/failure_injection.rs and the
    // flash-crowd test in tests/end_to_end.rs on every run.
    #[test]
    #[ignore = "slow (~14 s): full churn-trace smoke; run with `cargo test -- --ignored`"]
    fn vitis_tracks_population_and_delivers_under_churn() {
        let (sc, plan) = tiny_plan();
        let trace = plan.model.generate(sc.seed);
        let mut sys = VitisSystem::new(churn_params(&sc, &plan));
        let ctx = Obs::global().start("test", "fig12");
        let samples = run_system(&mut sys, &plan, &trace, &sc, ctx);
        assert_eq!(samples.len(), 10);
        // Population grows from zero and follows the trace.
        assert!(samples[0].online < samples.last().unwrap().online + 50);
        let late: Vec<&WindowSample> = samples.iter().filter(|w| w.hour > 40.0).collect();
        assert!(!late.is_empty());
        let mean_hit: f64 = late.iter().map(|w| w.hit_ratio).sum::<f64>() / late.len() as f64;
        assert!(mean_hit > 0.85, "late-trace mean hit {mean_hit}");
        // Population matches the trace's own bookkeeping at the horizon.
        let end_online = trace.online_at(vitis_sim::time::SimTime(
            (plan.model.horizon_hours * plan.model.ticks_per_hour as f64) as u64,
        ));
        assert_eq!(samples.last().unwrap().online, end_online);
    }
}
