//! Resilience: the three systems under scheduled fault episodes.
//!
//! Every `(system, severity)` point runs the same deterministic timeline:
//! fault-free warmup, baseline measurement windows, a partition episode
//! isolating `⌈severity·N⌉` nodes, then post-heal windows feeding a
//! [`ReconvergenceTracker`]. The sweep emits two curves per system —
//! hit ratio *during* the episode vs severity, and time from heal until
//! the hit ratio re-enters the pre-fault tolerance band.
//!
//! The Vitis runs enable the protocol-hardening knobs (publisher retries,
//! gateway failover, bounded event TTL); RVR and OPT have no equivalent,
//! which is exactly the robustness gap the experiment measures.

use crate::obs::Obs;
use crate::report::{Figure, Series};
use crate::runner::synthetic_params;
use crate::scale::Scale;
use rayon::prelude::*;
use vitis::monitor::{LossReason, PubSubStats, ReconvergenceTracker};
use vitis::runtime::TOPO_SAMPLE_TOPICS;
use vitis::system::{PubSub, SystemParams, VitisSystem};
use vitis::topic::TopicId;
use vitis::topo::{probe, TopoProbe};
use vitis_baselines::{OptSystem, RvrSystem};
use vitis_sim::antientropy::AeConfig;
use vitis_sim::fault::{FaultEpisode, FaultPlan, Span};
use vitis_sim::time::SimTime;
use vitis_sim::trace::{event_to_json, TraceEvent};
use vitis_workloads::Correlation;

/// Timeline and sweep parameters, all in rounds (tick spans derive from
/// the round period).
#[derive(Clone, Debug)]
pub struct ResiliencePlan {
    /// Fractions of the network isolated by the partition episode.
    pub severities: Vec<f64>,
    /// Fault-free convergence rounds before any measurement.
    pub warmup_rounds: u64,
    /// Measurement windows establishing the pre-fault baseline.
    pub baseline_windows: u64,
    /// Windows the partition stays up.
    pub episode_windows: u64,
    /// Maximum windows observed after healing before a run is declared
    /// non-reconverged.
    pub recovery_windows: u64,
    /// Rounds per measurement window (publish batch + dissemination).
    pub window_rounds: u64,
    /// Events published per window, round-robin over topics.
    pub events_per_window: usize,
    /// Reconvergence band: recovered once `hit ≥ baseline − tolerance`.
    pub tolerance: f64,
    /// Rounds between the heal and the fault-loss attribution pass. The
    /// episode-published events stay registered through this grace, so a
    /// repair layer (when enabled) gets a chance to pull fault-time
    /// losses back before they are attributed.
    pub repair_grace_rounds: u64,
}

impl ResiliencePlan {
    /// A plan matched to an experiment scale.
    pub fn for_scale(scale: &Scale) -> Self {
        ResiliencePlan {
            severities: vec![0.1, 0.25, 0.5],
            warmup_rounds: scale.warmup_rounds.max(20),
            baseline_windows: 2,
            episode_windows: 3,
            recovery_windows: 12,
            window_rounds: 3,
            events_per_window: scale.topics.min(20),
            tolerance: 0.02,
            repair_grace_rounds: 6,
        }
    }

    /// Ticks from run start until the partition heals.
    pub fn episode_end_tick(&self, round_period: u64) -> u64 {
        let start = self.warmup_rounds + self.baseline_windows * self.window_rounds;
        (start + self.episode_windows * self.window_rounds) * round_period
    }

    /// The partition episode for one severity: nodes `0..⌈s·N⌉` split off
    /// for the episode span. Severities that round to zero nodes (or the
    /// whole network) produce an empty plan.
    pub fn fault_plan(&self, severity: f64, n: usize, round_period: u64) -> FaultPlan {
        let k = ((severity * n as f64).ceil() as usize).min(n);
        if k == 0 || k == n {
            return FaultPlan::empty();
        }
        let start =
            (self.warmup_rounds + self.baseline_windows * self.window_rounds) * round_period;
        let end = self.episode_end_tick(round_period);
        FaultPlan::new(vec![FaultEpisode::Partition {
            groups: vec![(0..k as u32).collect()],
            span: Span::new(start, end),
        }])
        .expect("partition plan is valid by construction")
    }
}

/// Outcome of one `(system, severity)` run.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceOutcome {
    /// Fraction of nodes isolated during the episode.
    pub severity: f64,
    /// Mean hit ratio over the pre-fault baseline windows.
    pub baseline_hit: f64,
    /// Hit ratio pooled over the episode windows (one measurement window
    /// spanning the whole episode, taken at the heal).
    pub episode_hit: f64,
    /// Hit ratio of the last observed post-heal window.
    pub recovered_hit: f64,
    /// Rounds from heal until the hit ratio re-entered the tolerance
    /// band, or `None` if it never did within the observation horizon.
    pub recovery_rounds: Option<f64>,
    /// `LossReason::Network` misses among the episode-published events,
    /// attributed [`ResiliencePlan::repair_grace_rounds`] after the heal
    /// — the fault-time loss gap the repair layer exists to close.
    pub fault_net_losses: u64,
    /// First-arrival deliveries that came in through the repair layer
    /// (cumulative over the run; zero with repair off).
    pub recovered_deliveries: u64,
    /// Anti-entropy messages sent (`ae_digest` + `ae_want` + `ae_push`)
    /// across all measurement windows — the repair wire-cost.
    pub repair_msgs: u64,
}

/// Per-round overlay-health series of one resilience run: structural
/// probes ([`vitis::topo::probe`]) taken after every window round, in
/// the `topo` record schema of docs/METRICS.md §10. Correlates the
/// hit-ratio collapse during a partition with the structural decay that
/// causes it (fragmenting components, aging views, dangling relays).
pub struct TopoTrack {
    enabled: bool,
    period: u64,
    /// `(round, now, probe)` samples in round order.
    pub samples: Vec<(u64, u64, TopoProbe)>,
}

impl TopoTrack {
    /// A collector; when `enabled` is false, [`TopoTrack::sample`] is
    /// free, so the sweep only pays for snapshots when the metrics sink
    /// wants the series (or a test collects it directly).
    pub fn new(enabled: bool, round_period: u64) -> Self {
        TopoTrack {
            enabled,
            period: round_period.max(1),
            samples: Vec::new(),
        }
    }

    /// Snapshot and probe the overlay now (a no-op when disabled).
    pub fn sample(&mut self, sys: &dyn PubSub) {
        if !self.enabled {
            return;
        }
        let snap = sys.overlay_snapshot();
        let now = snap.now;
        self.samples
            .push((now / self.period, now, probe(&snap, TOPO_SAMPLE_TOPICS)));
    }
}

/// Publish one window's event batch round-robin over topics.
fn publish_window(
    sys: &mut dyn PubSub,
    plan: &ResiliencePlan,
    topics: usize,
    topic_cursor: &mut u32,
) {
    for _ in 0..plan.events_per_window {
        sys.publish(TopicId(*topic_cursor));
        *topic_cursor = (*topic_cursor + 1) % topics as u32;
    }
}

/// One measurement window: publish the batch, run the window round by
/// round (probing overlay health after each), return the window's stats.
fn window_stats(
    sys: &mut dyn PubSub,
    plan: &ResiliencePlan,
    topics: usize,
    topic_cursor: &mut u32,
    topo: &mut TopoTrack,
) -> PubSubStats {
    sys.reset_metrics();
    publish_window(sys, plan, topics, topic_cursor);
    for _ in 0..plan.window_rounds {
        sys.run_rounds(1);
        topo.sample(sys);
    }
    sys.stats()
}

/// Anti-entropy messages sent in a stats window (the repair wire-cost).
fn ae_sent(stats: &PubSubStats) -> u64 {
    stats
        .traffic_by_kind
        .iter()
        .filter(|k| k.kind.starts_with("ae_"))
        .map(|k| k.sent)
        .sum()
}

/// Drive one already-constructed system (whose params carry the matching
/// [`FaultPlan`]) through the timeline, feeding per-round overlay-health
/// probes into `topo`.
pub fn run_system(
    sys: &mut dyn PubSub,
    plan: &ResiliencePlan,
    scale: &Scale,
    severity: f64,
    round_period: u64,
    topo: &mut TopoTrack,
) -> ResilienceOutcome {
    let mut cursor = 0u32;
    let mut repair_msgs = 0u64;
    sys.run_rounds(plan.warmup_rounds);
    topo.sample(sys); // pre-fault structural baseline
    let mut baseline = 0.0;
    for _ in 0..plan.baseline_windows {
        let s = window_stats(sys, plan, scale.topics, &mut cursor, topo);
        baseline += s.hit_ratio;
        repair_msgs += ae_sent(&s);
    }
    baseline /= plan.baseline_windows.max(1) as f64;

    // Episode phase: one pooled measurement window spanning every episode
    // window, so the events published under the partition stay registered
    // through the post-heal repair grace and the loss attribution below
    // observes any repair-layer recoveries.
    sys.reset_metrics();
    for _ in 0..plan.episode_windows {
        publish_window(sys, plan, scale.topics, &mut cursor);
        for _ in 0..plan.window_rounds {
            sys.run_rounds(1);
            topo.sample(sys);
        }
    }
    let episode = sys.stats().hit_ratio;
    // The partition heals here; grant the grace before attributing the
    // fault-time losses.
    for _ in 0..plan.repair_grace_rounds {
        sys.run_rounds(1);
        topo.sample(sys);
    }
    let fault_net_losses = sys
        .loss_report()
        .by_reason
        .iter()
        .filter(|(r, _)| *r == LossReason::Network)
        .map(|&(_, c)| c)
        .sum();
    repair_msgs += ae_sent(&sys.stats());

    let heal = SimTime(plan.episode_end_tick(round_period));
    let mut tracker = ReconvergenceTracker::new(baseline, heal, plan.tolerance);
    let mut last = episode;
    for _ in 0..plan.recovery_windows {
        let s = window_stats(sys, plan, scale.topics, &mut cursor, topo);
        last = s.hit_ratio;
        repair_msgs += ae_sent(&s);
        tracker.observe(sys.now(), last);
        if tracker.recovered() {
            break;
        }
    }
    ResilienceOutcome {
        severity,
        baseline_hit: baseline,
        episode_hit: episode,
        recovered_hit: last,
        recovery_rounds: tracker
            .recovery_time()
            .map(|d| d.ticks() as f64 / round_period as f64),
        fault_net_losses,
        recovered_deliveries: sys.recovered_deliveries(),
        repair_msgs,
    }
}

/// Construct the named system over `params` and run the timeline. With
/// `repair` on, every node runs the anti-entropy layer at its default
/// (enabled) configuration.
pub fn run_point(
    system: &str,
    plan: &ResiliencePlan,
    scale: &Scale,
    severity: f64,
    repair: bool,
) -> ResilienceOutcome {
    let mut params: SystemParams = synthetic_params(scale, Correlation::Low);
    let period = params.round_period.ticks();
    params.faults = plan.fault_plan(severity, scale.nodes, period);
    if repair {
        params.repair = AeConfig::on();
    }
    let tag = if repair { "+ae" } else { "" };
    let mut ctx = Obs::global().start("resilience", &format!("{system}{tag}-s{severity}"));
    let mut sys: Box<dyn PubSub> = match system {
        "vitis" => {
            // Hardening on: retries re-flood unacknowledged publishes
            // after the heal, failover re-elects around silent gateways,
            // and the TTL stops partition-trapped traffic.
            params.cfg.publish_retries = 2;
            params.cfg.gateway_failover = true;
            params.cfg.max_event_hops = 64;
            Box::new(VitisSystem::new(params))
        }
        "rvr" => Box::new(RvrSystem::new(params)),
        _ => Box::new(OptSystem::new(params)),
    };
    ctx.phase("build");
    let mut topo = TopoTrack::new(Obs::global().metrics_on(), period);
    let outcome = run_system(sys.as_mut(), plan, scale, severity, period, &mut topo);
    ctx.phase("run");
    if !topo.samples.is_empty() {
        // The overlay-health series goes through the metrics sink (the
        // resilience sweep runs without a trace sink), one stamped
        // `topo` record per sampled round.
        Obs::global().push_metrics_lines(topo.samples.iter().map(|&(round, now, probe)| {
            crate::obs::stamp_run(
                &ctx.run,
                &event_to_json(&TraceEvent::TopoSample { round, now, probe }),
            )
        }));
    }
    // The reconvergence record: `rounds` stays `null` for runs that never
    // re-entered the band, so downstream analysis can tell "never
    // recovered" from "recovered slowly" (no sentinel values).
    if Obs::global().metrics_on() {
        Obs::global().push_metrics_lines(std::iter::once(crate::obs::stamp_run(
            &ctx.run,
            &event_to_json(&TraceEvent::Reconv {
                system: system.to_string().into(),
                severity_pct: (100.0 * severity).round() as u32,
                repair,
                rounds: outcome.recovery_rounds.map(|r| r.round() as u64),
            }),
        )));
    }
    let stats = sys.stats();
    ctx.record_perf(sys.perf_counters(), sys.footprint_estimate());
    ctx.finish(scale, &stats);
    outcome
}

/// Sweep severity across all three systems; returns the
/// hit-ratio-vs-severity and recovery-time-vs-severity figures, plus —
/// when `repair` is on — the repair cost/effect figure. With `repair`
/// on, every `(system, severity)` point runs twice at identical seeds
/// (anti-entropy off and on), so the figures carry paired curves.
pub fn run(scale: &Scale, repair: bool) -> Vec<Figure> {
    let plan = ResiliencePlan::for_scale(scale);
    let modes: &[bool] = if repair { &[false, true] } else { &[false] };
    let points: Vec<(&str, f64, bool)> = ["vitis", "rvr", "opt"]
        .iter()
        .flat_map(|&s| {
            plan.severities
                .iter()
                .flat_map(move |&sev| modes.iter().map(move |&ae| (s, sev, ae)))
        })
        .collect();
    let outcomes: Vec<(&str, bool, ResilienceOutcome)> = points
        .par_iter()
        .map(|&(system, sev, ae)| (system, ae, run_point(system, &plan, scale, sev, ae)))
        .collect();

    let mut hit = Figure::new(
        "Resilience: hit ratio during a partition episode",
        "% of nodes isolated",
        "hit ratio % (episode windows)",
    );
    let mut rec = Figure::new(
        "Resilience: reconvergence time after the partition heals",
        "% of nodes isolated",
        "rounds to re-enter the baseline band",
    );
    let mut cost = Figure::new(
        "Resilience: anti-entropy repair cost and effect",
        "% of nodes isolated",
        "messages / deliveries per run",
    );
    for name in ["vitis", "rvr", "opt"] {
        for &ae in modes {
            let label = match (name, ae) {
                ("vitis", false) => "Vitis",
                ("vitis", true) => "Vitis+AE",
                ("rvr", false) => "RVR",
                ("rvr", true) => "RVR+AE",
                (_, false) => "OPT",
                _ => "OPT+AE",
            };
            let mine: Vec<&ResilienceOutcome> = outcomes
                .iter()
                .filter(|(s, m, _)| *s == name && *m == ae)
                .map(|(_, _, o)| o)
                .collect();
            hit.push_series(Series::new(
                label,
                mine.iter()
                    .map(|o| (100.0 * o.severity, 100.0 * o.episode_hit))
                    .collect(),
            ));
            // Only the points that actually reconverged are plotted; runs
            // that never re-entered the band get an explicit note instead
            // of a sentinel value.
            rec.push_series(Series::new(
                label,
                mine.iter()
                    .filter_map(|o| o.recovery_rounds.map(|r| (100.0 * o.severity, r)))
                    .collect(),
            ));
            for o in &mine {
                if o.recovery_rounds.is_none() {
                    rec.note(format!(
                        "unrecovered: {label} at {:.0}% isolated never re-entered the band \
                         within {} post-heal windows",
                        100.0 * o.severity,
                        plan.recovery_windows
                    ));
                }
            }
            if repair {
                if ae {
                    cost.push_series(Series::new(
                        format!("{label} repair msgs"),
                        mine.iter()
                            .map(|o| (100.0 * o.severity, o.repair_msgs as f64))
                            .collect(),
                    ));
                    cost.push_series(Series::new(
                        format!("{label} recovered deliveries"),
                        mine.iter()
                            .map(|o| (100.0 * o.severity, o.recovered_deliveries as f64))
                            .collect(),
                    ));
                }
                for o in &mine {
                    cost.note(format!(
                        "fault-time Network losses, {label} at {:.0}%: {}",
                        100.0 * o.severity,
                        o.fault_net_losses
                    ));
                }
            }
        }
    }
    hit.note(format!(
        "baseline windows before the episode; tolerance band {:.0}% of baseline hit ratio",
        100.0 * plan.tolerance
    ));
    hit.note(
        "Vitis runs with hardening on: publish_retries=2, gateway_failover, max_event_hops=64",
    );
    rec.note(format!(
        "reconvergence observed for at most {} windows after the heal; unrecovered runs are \
         listed above, not plotted",
        plan.recovery_windows
    ));
    let mut figs = vec![hit, rec];
    if repair {
        cost.note("fault-time losses attributed after the post-heal repair grace; paired runs share seeds");
        figs.push(cost);
    }
    figs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_scales_with_severity() {
        let sc = Scale::proportional(100, 1);
        let plan = ResiliencePlan::for_scale(&sc);
        assert!(plan.fault_plan(0.0, 100, 64).is_empty());
        let p = plan.fault_plan(0.25, 100, 64);
        assert_eq!(p.episodes().len(), 1);
        match &p.episodes()[0] {
            FaultEpisode::Partition { groups, span } => {
                assert_eq!(groups[0].len(), 25);
                assert_eq!(span.end, SimTime(plan.episode_end_tick(64)));
                assert!(span.start < span.end);
            }
            other => panic!("expected a partition, got {other:?}"),
        }
    }

    /// The acceptance check at reduced scale: after the partition heals,
    /// every system's hit ratio returns to within the tolerance band of
    /// its own pre-fault baseline, in finite time. (The N=500 variant is
    /// the ignored test below.)
    #[test]
    fn all_systems_reconverge_after_partition_heals() {
        let mut sc = Scale::proportional(150, 19);
        sc.warmup_rounds = 25;
        let plan = ResiliencePlan::for_scale(&sc);
        for system in ["vitis", "rvr", "opt"] {
            let o = run_point(system, &plan, &sc, 0.25, false);
            assert!(o.baseline_hit > 0.9, "{system} baseline {}", o.baseline_hit);
            assert!(
                o.episode_hit < o.baseline_hit,
                "{system}: partition must hurt ({} vs {})",
                o.episode_hit,
                o.baseline_hit
            );
            assert!(
                o.recovery_rounds.is_some(),
                "{system} never reconverged (last hit {}, baseline {})",
                o.recovered_hit,
                o.baseline_hit
            );
        }
    }

    /// The overlay-health series must show structural decay while the
    /// partition is up and recovery after it heals — the correlate of
    /// the hit-ratio dip the sweep reports.
    #[test]
    fn overlay_health_series_shows_fragmentation_and_recovery() {
        let mut sc = Scale::proportional(150, 19);
        sc.warmup_rounds = 25;
        let plan = ResiliencePlan::for_scale(&sc);
        let severity = 0.4;
        let mut params = synthetic_params(&sc, Correlation::Low);
        let period = params.round_period.ticks();
        params.faults = plan.fault_plan(severity, sc.nodes, period);
        let mut sys = VitisSystem::new(params);
        let mut topo = TopoTrack::new(true, period);
        run_system(&mut sys, &plan, &sc, severity, period, &mut topo);
        for _ in 0..4 {
            sys.run_rounds(3);
            topo.sample(&sys);
        }

        let ep_start = plan.warmup_rounds + plan.baseline_windows * plan.window_rounds;
        let ep_end = ep_start + plan.episode_windows * plan.window_rounds;
        assert!(topo.samples.windows(2).all(|w| w[0].0 < w[1].0));
        let age = |s: &(u64, u64, TopoProbe)| s.2.mean_view_age.unwrap_or(0.0);
        let pre: Vec<_> = topo.samples.iter().filter(|s| s.0 <= ep_start).collect();
        let during: Vec<_> = topo
            .samples
            .iter()
            .filter(|s| s.0 > ep_start && s.0 <= ep_end)
            .collect();
        let after: Vec<_> = topo.samples.iter().filter(|s| s.0 > ep_end).collect();
        assert!(!pre.is_empty() && !during.is_empty() && !after.is_empty());

        // Gossip-layer decay: views starve while the partition blocks
        // refreshes, so the mean view age spikes during the episode...
        let pre_age = pre.iter().map(|s| age(s)).fold(0.0, f64::max);
        let ep_age = during.iter().map(|s| age(s)).fold(0.0, f64::max);
        assert!(
            ep_age > 1.5 * pre_age,
            "no view-age decay: episode {ep_age} vs pre-fault {pre_age}"
        );
        // ...and returns to the pre-fault regime after the heal.
        let final_age = age(after.last().unwrap());
        assert!(
            final_age < 1.5 * pre_age,
            "view age did not recover: {final_age} vs pre-fault {pre_age}"
        );

        // Relay-layer decay: backlinks expire (relay_ttl) while locally
        // refreshed upstream beliefs persist, so dangling-relay audit
        // violations surge through the episode and the repair churn just
        // after the heal, then clear as refreshes re-install both ends.
        let pre_viol = pre.iter().map(|s| s.2.violations).max().unwrap();
        let decay_viol = topo
            .samples
            .iter()
            .filter(|s| s.0 > ep_start)
            .map(|s| s.2.violations)
            .max()
            .unwrap();
        assert!(
            decay_viol > 3 * pre_viol.max(1),
            "no relay decay: peak {decay_viol} vs pre-fault {pre_viol}"
        );
        let final_viol = after.last().unwrap().2.violations;
        assert!(
            final_viol < decay_viol / 4,
            "relay damage did not heal: {final_viol} vs peak {decay_viol}"
        );
    }

    /// The repair layer must close part of the fault-time loss gap: at
    /// identical seeds, the run with anti-entropy on recovers deliveries
    /// through pulls, pays a nonzero (bounded) wire-cost, and ends the
    /// post-heal attribution with strictly fewer `Network` losses.
    #[test]
    fn repair_reduces_fault_time_network_losses() {
        let mut sc = Scale::proportional(150, 19);
        sc.warmup_rounds = 25;
        let plan = ResiliencePlan::for_scale(&sc);
        let off = run_point("vitis", &plan, &sc, 0.25, false);
        let on = run_point("vitis", &plan, &sc, 0.25, true);
        assert_eq!(off.recovered_deliveries, 0, "repair off must never recover");
        assert_eq!(off.repair_msgs, 0, "repair off must send no ae_* traffic");
        assert!(off.fault_net_losses > 0, "partition must drop something");
        assert!(on.recovered_deliveries > 0, "repair on must recover");
        assert!(
            on.repair_msgs > 0,
            "repair on must be accounted in the ledger"
        );
        assert!(
            on.fault_net_losses < off.fault_net_losses,
            "repair must shrink Network losses: {} vs {}",
            on.fault_net_losses,
            off.fault_net_losses
        );
    }

    #[test]
    #[ignore = "slow (N=500 acceptance run): cargo test --release -- --ignored"]
    fn n500_repair_strictly_reduces_network_losses() {
        let mut sc = Scale::proportional(500, 42);
        sc.warmup_rounds = 30;
        let plan = ResiliencePlan::for_scale(&sc);
        for system in ["vitis", "rvr", "opt"] {
            let off = run_point(system, &plan, &sc, 0.25, false);
            let on = run_point(system, &plan, &sc, 0.25, true);
            assert!(
                on.fault_net_losses < off.fault_net_losses,
                "{system}: repair did not shrink Network losses ({} vs {})",
                on.fault_net_losses,
                off.fault_net_losses
            );
            assert!(on.recovered_deliveries > 0, "{system}: nothing recovered");
        }
    }

    #[test]
    #[ignore = "slow (N=500 acceptance run): cargo test --release -- --ignored"]
    fn n500_partition_heal_recovers_within_band() {
        let mut sc = Scale::proportional(500, 42);
        sc.warmup_rounds = 30;
        let plan = ResiliencePlan::for_scale(&sc);
        for system in ["vitis", "rvr", "opt"] {
            let o = run_point(system, &plan, &sc, 0.25, false);
            assert!(
                o.recovery_rounds.is_some(),
                "{system}: infinite recovery time (last {}, baseline {})",
                o.recovered_hit,
                o.baseline_hit
            );
            assert!(
                o.recovered_hit >= o.baseline_hit - plan.tolerance,
                "{system}: recovered hit {} not within 2% of baseline {}",
                o.recovered_hit,
                o.baseline_hit
            );
        }
    }
}
