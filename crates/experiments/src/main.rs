//! CLI entry point: regenerate the paper's figures.
//!
//! ```text
//! vitis-experiments [FIGURES] [--nodes N] [--seed S] [--paper | --quick]
//!                   [--metrics-out FILE] [--trace-out FILE]
//!                   [--trace-capacity N]
//! vitis-experiments analyze TRACE.jsonl [--dot FILE.dot]
//!
//! FIGURES: any of fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!          ablations, or "all" (default)
//! ```
//!
//! `--metrics-out` writes one JSONL record per measurement run (phase
//! timers, final stats with the per-kind traffic split, per-round
//! convergence samples); `--trace-out` writes the per-run event traces
//! (round boundaries, churn, messages, health probes, and the delivery
//! forensics records that `analyze` reads back). Both schemas are
//! documented in `docs/METRICS.md`.

use std::process::ExitCode;
use vitis_experiments::obs::Obs;
use vitis_experiments::{ablations, clusters, headline, fig10, fig11, fig12, fig4, fig5, fig6, fig7, fig8_9, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("analyze") {
        return run_analyze(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("resilience") {
        return run_resilience(&args[1..]);
    }
    let mut figures: Vec<String> = Vec::new();
    let mut nodes: Option<usize> = None;
    let mut seed: u64 = 42;
    let mut replicas: usize = 5;
    let mut preset: Option<&str> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;

    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => nodes = Some(n),
                None => return usage("--nodes needs an integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--replicas" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) => replicas = r,
                None => return usage("--replicas needs an integer"),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p.clone()),
                None => return usage("--metrics-out needs a file path"),
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p.clone()),
                None => return usage("--trace-out needs a file path"),
            },
            "--trace-capacity" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => Obs::global().set_trace_capacity(n),
                _ => return usage("--trace-capacity needs a positive integer"),
            },
            "--paper" => preset = Some("paper"),
            "--quick" => preset = Some("quick"),
            "--help" | "-h" => return usage(""),
            f if f.starts_with("fig") || f == "all" || f == "ablations" || f == "clusters" || f == "headline" => {
                figures.push(f.to_string())
            }
            other => return usage(&format!("unknown argument: {other}")),
        }
    }
    if figures.is_empty() {
        figures.push("all".to_string());
    }
    Obs::global().enable(metrics_out.is_some(), trace_out.is_some());

    let mut scale = match preset {
        Some("paper") => Scale::paper(),
        Some("quick") => Scale::quick(),
        _ => Scale::default_run(),
    };
    if let Some(n) = nodes {
        scale = Scale::proportional(n, seed);
    }
    scale.seed = seed;

    println!(
        "# Vitis reproduction — scale: {} nodes, {} topics, {} subs/node, seed {}\n",
        scale.nodes, scale.topics, scale.subs_per_node, scale.seed
    );

    let want = |name: &str| figures.iter().any(|f| f == name || f == "all");

    if want("fig4") {
        let (a, b) = fig4::run(&scale);
        print!("{}\n{}\n", a.render(), b.render());
    }
    if want("fig5") {
        println!("{}", fig5::run(&scale).render());
    }
    if want("fig6") {
        let (a, b) = fig6::run(&scale);
        print!("{}\n{}\n", a.render(), b.render());
    }
    if want("fig7") {
        let (a, b) = fig7::run(&scale);
        print!("{}\n{}\n", a.render(), b.render());
    }
    if want("fig8") {
        println!("{}", fig8_9::run_fig8(&scale).render());
    }
    if want("fig9") {
        let (f, _, _) = fig8_9::run_fig9(&scale);
        println!("{}", f.render());
    }
    if want("fig10") {
        let (a, b, c) = fig10::run(&scale);
        print!("{}\n{}\n{}\n", a.render(), b.render(), c.render());
    }
    if want("fig11") {
        println!("{}", fig11::run(&scale).render());
    }
    if want("fig12") {
        let (a, b, c) = fig12::run(&scale);
        print!("{}\n{}\n{}\n", a.render(), b.render(), c.render());
    }
    if figures.iter().any(|f| f == "headline") {
        println!("{}", headline::run(&scale, replicas).render());
    }
    if want("clusters") {
        println!("{}", clusters::run(&scale).render());
    }
    if want("ablations") {
        println!("{}", ablations::gateway_election(&scale).render());
        println!("{}", ablations::utility_selection(&scale).render());
        println!("{}", ablations::sw_links(&scale).render());
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = write_jsonl(path, Obs::global().take_metrics()) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("wrote metrics records to {path}");
    }
    if let Some(path) = &trace_out {
        if let Err(e) = write_jsonl(path, Obs::global().take_trace()) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("wrote event trace to {path}");
    }
    ExitCode::SUCCESS
}

fn write_jsonl(path: &str, lines: Vec<String>) -> std::io::Result<()> {
    use std::io::Write;
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    for line in lines {
        writeln!(w, "{line}")?;
    }
    w.flush()
}

/// The `resilience` subcommand: sweep partition-episode severity across
/// the three systems and print the hit-ratio and reconvergence curves.
/// Fully deterministic for a fixed `--nodes`/`--seed` pair.
fn run_resilience(args: &[String]) -> ExitCode {
    let mut nodes: Option<usize> = None;
    let mut seed: u64 = 42;
    let mut preset: Option<&str> = None;
    let mut metrics_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => nodes = Some(n),
                None => return usage("--nodes needs an integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p.clone()),
                None => return usage("--metrics-out needs a file path"),
            },
            "--paper" => preset = Some("paper"),
            "--quick" => preset = Some("quick"),
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unexpected argument: {other}")),
        }
    }
    Obs::global().enable(metrics_out.is_some(), false);
    let mut scale = match preset {
        Some("paper") => Scale::paper(),
        Some("quick") => Scale::quick(),
        _ => Scale::default_run(),
    };
    if let Some(n) = nodes {
        scale = Scale::proportional(n, seed);
    }
    scale.seed = seed;
    println!(
        "# Vitis resilience sweep — scale: {} nodes, {} topics, {} subs/node, seed {}\n",
        scale.nodes, scale.topics, scale.subs_per_node, scale.seed
    );
    let (hit, rec) = vitis_experiments::resilience::run(&scale);
    print!("{}\n{}\n", hit.render(), rec.render());
    if let Some(path) = &metrics_out {
        if let Err(e) = write_jsonl(path, Obs::global().take_metrics()) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("wrote metrics records to {path}");
    }
    ExitCode::SUCCESS
}

/// The `analyze` subcommand: offline delivery forensics over a
/// `--trace-out` dump (report to stdout, optional Graphviz export).
fn run_analyze(args: &[String]) -> ExitCode {
    let mut path: Option<&String> = None;
    let mut dot: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dot" => match it.next() {
                Some(p) => dot = Some(p),
                None => return usage("--dot needs a file path"),
            },
            "--help" | "-h" => return usage(""),
            _ if path.is_none() && !a.starts_with('-') => path = Some(a),
            other => return usage(&format!("unexpected argument: {other}")),
        }
    }
    let Some(path) = path else {
        return usage("analyze needs a trace file (from --trace-out)");
    };
    match vitis_experiments::analyze::run_file(path, dot.map(String::as_str)) {
        Ok(report) => {
            print!("{report}");
            if let Some(d) = dot {
                eprintln!("wrote dissemination trees to {d}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: vitis-experiments [fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 clusters headline ablations | all]\n\
         \t[--nodes N] [--seed S] [--replicas R] [--paper | --quick]\n\
         \t[--metrics-out FILE.jsonl] [--trace-out FILE.jsonl] [--trace-capacity N]\n\
         \t(schema: docs/METRICS.md)\n\
         \n\
         \tvitis-experiments analyze TRACE.jsonl [--dot FILE.dot]\n\
         \t(delivery forensics: per-event trees, hop/latency percentiles, loss attribution)\n\
         \n\
         \tvitis-experiments resilience [--nodes N] [--seed S] [--quick | --paper] [--metrics-out FILE.jsonl]\n\
         \t(partition-severity sweep: hit ratio during the episode + reconvergence time after heal)"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
