//! CLI entry point: regenerate the paper's figures.
//!
//! ```text
//! vitis-experiments [FIGURES] [--nodes N] [--seed S] [--paper | --quick]
//!                   [--metrics-out FILE] [--trace-out FILE]
//!                   [--trace-capacity N] [--perf-out FILE]
//! vitis-experiments analyze TRACE.jsonl [--dot FILE.dot]
//! vitis-experiments topology [--nodes N] [--seed S] [--system vitis|rvr|opt]
//!                   [--rounds R] [--every K] [--out FILE] [--dot FILE] [--strict]
//! vitis-experiments scale [--max-nodes N] [--budget-secs B] [--seed S] [--out BENCH.json]
//!                   [--perf-out FILE] [--trace-out FILE]
//!
//! FIGURES: any of fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!          ablations, or "all" (default)
//! ```
//!
//! `--metrics-out` streams one JSONL record per measurement run (phase
//! timers, final stats with the per-kind traffic split, per-round
//! convergence samples, deterministic perf counters); `--trace-out`
//! streams the per-run event traces (round boundaries, churn, messages,
//! health probes, and the delivery forensics records that `analyze`
//! reads back). Records hit disk as each run finishes, so an aborted
//! sweep still leaves valid partial files. `--perf-out` enables the span
//! profiler and writes its aggregate (plus memory accounting) as JSONL,
//! with a flamegraph-compatible `FILE.folded` companion. All schemas are
//! documented in `docs/METRICS.md`.

use std::process::ExitCode;
use vitis_experiments::obs::Obs;
use vitis_experiments::{
    ablations, clusters, fig10, fig11, fig12, fig4, fig5, fig6, fig7, fig8_9, headline, Scale,
};
use vitis_sim::perf;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("analyze") {
        return run_analyze(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("resilience") {
        return run_resilience(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("scale") {
        return run_scale(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("topology") {
        return run_topology(&args[1..]);
    }
    let mut figures: Vec<String> = Vec::new();
    let mut nodes: Option<usize> = None;
    let mut seed: u64 = 42;
    let mut replicas: usize = 5;
    let mut preset: Option<&str> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut perf_out: Option<String> = None;

    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => nodes = Some(n),
                None => return usage("--nodes needs an integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--replicas" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) => replicas = r,
                None => return usage("--replicas needs an integer"),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p.clone()),
                None => return usage("--metrics-out needs a file path"),
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p.clone()),
                None => return usage("--trace-out needs a file path"),
            },
            "--perf-out" => match it.next() {
                Some(p) => perf_out = Some(p.clone()),
                None => return usage("--perf-out needs a file path"),
            },
            "--trace-capacity" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => Obs::global().set_trace_capacity(n),
                _ => return usage("--trace-capacity needs a positive integer"),
            },
            "--paper" => preset = Some("paper"),
            "--quick" => preset = Some("quick"),
            "--help" | "-h" => return usage(""),
            f if f.starts_with("fig")
                || f == "all"
                || f == "ablations"
                || f == "clusters"
                || f == "headline" =>
            {
                figures.push(f.to_string())
            }
            other => return usage(&format!("unknown argument: {other}")),
        }
    }
    if figures.is_empty() {
        figures.push("all".to_string());
    }
    Obs::global().enable(metrics_out.is_some(), trace_out.is_some());
    if let Some(path) = &metrics_out {
        if let Err(e) = Obs::global().set_metrics_file(path) {
            eprintln!("error: could not open {path}: {e}");
            return ExitCode::from(1);
        }
    }
    if let Some(path) = &trace_out {
        if let Err(e) = Obs::global().set_trace_file(path) {
            eprintln!("error: could not open {path}: {e}");
            return ExitCode::from(1);
        }
    }
    perf::set_enabled(perf_out.is_some());

    let mut scale = match preset {
        Some("paper") => Scale::paper(),
        Some("quick") => Scale::quick(),
        _ => Scale::default_run(),
    };
    if let Some(n) = nodes {
        scale = Scale::proportional(n, seed);
    }
    scale.seed = seed;

    println!(
        "# Vitis reproduction — scale: {} nodes, {} topics, {} subs/node, seed {}\n",
        scale.nodes, scale.topics, scale.subs_per_node, scale.seed
    );

    let want = |name: &str| figures.iter().any(|f| f == name || f == "all");

    if want("fig4") {
        let (a, b) = fig4::run(&scale);
        print!("{}\n{}\n", a.render(), b.render());
    }
    if want("fig5") {
        println!("{}", fig5::run(&scale).render());
    }
    if want("fig6") {
        let (a, b) = fig6::run(&scale);
        print!("{}\n{}\n", a.render(), b.render());
    }
    if want("fig7") {
        let (a, b) = fig7::run(&scale);
        print!("{}\n{}\n", a.render(), b.render());
    }
    if want("fig8") {
        println!("{}", fig8_9::run_fig8(&scale).render());
    }
    if want("fig9") {
        let (f, _, _) = fig8_9::run_fig9(&scale);
        println!("{}", f.render());
    }
    if want("fig10") {
        let (a, b, c) = fig10::run(&scale);
        print!("{}\n{}\n{}\n", a.render(), b.render(), c.render());
    }
    if want("fig11") {
        println!("{}", fig11::run(&scale).render());
    }
    if want("fig12") {
        let (a, b, c) = fig12::run(&scale);
        print!("{}\n{}\n{}\n", a.render(), b.render(), c.render());
    }
    if figures.iter().any(|f| f == "headline") {
        println!("{}", headline::run(&scale, replicas).render());
    }
    if want("clusters") {
        println!("{}", clusters::run(&scale).render());
    }
    if want("ablations") {
        println!("{}", ablations::gateway_election(&scale).render());
        println!("{}", ablations::utility_selection(&scale).render());
        println!("{}", ablations::sw_links(&scale).render());
    }
    report_sinks();
    if let Some(path) = &perf_out {
        if let Err(e) = write_perf_report(path) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

/// Report how many records each file-streaming sink wrote (they are
/// already on disk — flushed line by line as runs finished).
fn report_sinks() {
    if let Some((path, lines)) = Obs::global().metrics_file_status() {
        eprintln!("wrote {lines} metrics records to {path}");
    }
    if let Some((path, lines)) = Obs::global().trace_file_status() {
        eprintln!("wrote {lines} event-trace records to {path}");
    }
    if let Some((runs, evicted)) = Obs::global().trace_overflow_status() {
        eprintln!(
            "warning: trace ring overflowed in {runs} run(s), {evicted} events \
             evicted in total (raise --trace-capacity)"
        );
    }
    if let Some(dropped) = vitis_sim::antientropy::exhausted_pull_status() {
        eprintln!(
            "warning: anti-entropy gave up on {dropped} pull(s) after exhausting \
             their retry budget (raise pull_retries or cache_rounds)"
        );
    }
}

/// Write the span profiler's aggregate and the memory accounting snapshot
/// as JSONL to `path`, plus a flamegraph-compatible folded-stack
/// companion at `path.folded` (`flamegraph.pl FILE.folded > out.svg`).
fn write_perf_report(path: &str) -> std::io::Result<()> {
    use std::io::Write;
    let spans = perf::take_spans();
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    for (p, s) in &spans {
        writeln!(w, "{}", perf::span_jsonl_line(p, s))?;
    }
    writeln!(w, "{}", perf::mem_jsonl_line(&perf::mem_snapshot()))?;
    w.flush()?;
    let folded_path = format!("{path}.folded");
    let mut fw = std::io::BufWriter::new(std::fs::File::create(&folded_path)?);
    for (p, s) in &spans {
        writeln!(fw, "{}", perf::folded_line(p, s))?;
    }
    fw.flush()?;
    eprintln!(
        "wrote {} span aggregates to {path} (folded stacks: {folded_path})",
        spans.len()
    );
    Ok(())
}

/// The `scale` subcommand: sweep the node-count ladder across all three
/// systems and write the results as a BENCH file (see `docs/METRICS.md`
/// §9). Build with `--features perf-alloc` to include real allocator
/// peak-memory entries.
fn run_scale(args: &[String]) -> ExitCode {
    use vitis_experiments::scalebench;
    let mut max_nodes = scalebench::DEFAULT_MAX_NODES;
    let mut seed: u64 = 42;
    let mut out = "BENCH_PR9.json".to_string();
    let mut perf_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut budget_secs: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-nodes" | "--max-n" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => max_nodes = n,
                None => return usage("--max-nodes needs an integer"),
            },
            "--budget-secs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(b) => budget_secs = Some(b),
                None => return usage("--budget-secs needs an integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => return usage("--out needs a file path"),
            },
            "--perf-out" => match it.next() {
                Some(p) => perf_out = Some(p.clone()),
                None => return usage("--perf-out needs a file path"),
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p.clone()),
                None => return usage("--trace-out needs a file path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unexpected argument: {other}")),
        }
    }
    perf::set_enabled(perf_out.is_some());
    let mut trace_w = match &trace_out {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("error: could not open {path}: {e}");
                return ExitCode::from(1);
            }
        },
        None => None,
    };
    let streaming = trace_w.is_some();
    println!(
        "# Vitis scale sweep — up to {max_nodes} nodes, seed {seed}, allocator accounting {}",
        if perf::mem_snapshot().counting {
            "on"
        } else {
            "off (build with --features perf-alloc)"
        }
    );

    // Each point gets a fresh shared trace; its events stream to the
    // trace file the moment the point completes (Trace::write_jsonl), so
    // nothing is double-buffered and an aborted sweep keeps every
    // finished point's events.
    let pending: std::cell::RefCell<Option<vitis_sim::trace::TraceHandle>> =
        std::cell::RefCell::new(None);
    let mut make_trace = |_sys: &'static str, _nodes: usize| {
        let h = vitis_sim::trace::Trace::shared(Obs::global().trace_capacity());
        *pending.borrow_mut() = Some(h.clone());
        h
    };
    let entries = scalebench::run_sweep(
        max_nodes,
        seed,
        budget_secs,
        streaming.then_some(&mut make_trace as &mut dyn FnMut(&'static str, usize) -> _),
        |point| {
            println!(
                "{}/{}: build {:.0} ms, warmup {:.0} ms, measure {:.0} ms, drain {:.0} ms, \
                 {:.0} deliveries/s",
                point.system,
                point.nodes,
                point.build_ms,
                point.warmup_ms,
                point.measure_ms,
                point.drain_ms,
                point.deliveries_per_sec
            );
            if let (Some(w), Some(h)) = (trace_w.as_mut(), pending.borrow_mut().take()) {
                if let Err(e) = h.borrow().write_jsonl(w) {
                    eprintln!("warning: trace stream failed: {e}");
                }
            }
        },
    );
    if let Some(mut w) = trace_w {
        use std::io::Write;
        if let Err(e) = w.flush() {
            eprintln!("warning: trace stream flush failed: {e}");
        }
    }
    let text = vitis_experiments::benchfmt::render(&entries);
    if let Err(e) = std::fs::write(&out, text) {
        eprintln!("error: could not write {out}: {e}");
        return ExitCode::from(1);
    }
    eprintln!("wrote {} BENCH entries to {out}", entries.len());
    if let Some(path) = &perf_out {
        if let Err(e) = write_perf_report(path) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

/// The `resilience` subcommand: sweep partition-episode severity across
/// the three systems and print the hit-ratio and reconvergence curves.
/// Fully deterministic for a fixed `--nodes`/`--seed` pair.
fn run_resilience(args: &[String]) -> ExitCode {
    let mut nodes: Option<usize> = None;
    let mut seed: u64 = 42;
    let mut preset: Option<&str> = None;
    let mut metrics_out: Option<String> = None;
    let mut repair = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => nodes = Some(n),
                None => return usage("--nodes needs an integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--metrics-out" => match it.next() {
                Some(p) => metrics_out = Some(p.clone()),
                None => return usage("--metrics-out needs a file path"),
            },
            "--paper" => preset = Some("paper"),
            "--quick" => preset = Some("quick"),
            "--repair" => repair = true,
            "--no-repair" => repair = false,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unexpected argument: {other}")),
        }
    }
    Obs::global().enable(metrics_out.is_some(), false);
    if let Some(path) = &metrics_out {
        if let Err(e) = Obs::global().set_metrics_file(path) {
            eprintln!("error: could not open {path}: {e}");
            return ExitCode::from(1);
        }
    }
    let mut scale = match preset {
        Some("paper") => Scale::paper(),
        Some("quick") => Scale::quick(),
        _ => Scale::default_run(),
    };
    if let Some(n) = nodes {
        scale = Scale::proportional(n, seed);
    }
    scale.seed = seed;
    println!(
        "# Vitis resilience sweep — scale: {} nodes, {} topics, {} subs/node, seed {}{}\n",
        scale.nodes,
        scale.topics,
        scale.subs_per_node,
        scale.seed,
        if repair {
            ", paired anti-entropy runs"
        } else {
            ""
        }
    );
    for fig in vitis_experiments::resilience::run(&scale, repair) {
        print!("{}\n", fig.render());
    }
    report_sinks();
    ExitCode::SUCCESS
}

/// The `topology` subcommand: sample overlay structural health over a
/// fixed-seed run, audit relay-path invariants at the end, and export
/// the series as topology JSONL plus an optional Graphviz DOT of the
/// final overlay. `--strict` exits nonzero on any invariant violation
/// (the CI gate).
fn run_topology(args: &[String]) -> ExitCode {
    use vitis_experiments::topology::{self, SystemKind, TopologyOpts};
    let mut nodes: Option<usize> = None;
    let mut seed: u64 = 42;
    let mut preset: Option<&str> = None;
    let mut opts = TopologyOpts::default();
    let mut out: Option<String> = None;
    let mut dot: Option<String> = None;
    let mut strict = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => nodes = Some(n),
                None => return usage("--nodes needs an integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--system" => match it.next().and_then(|v| SystemKind::parse(v)) {
                Some(s) => opts.system = s,
                None => return usage("--system needs one of: vitis rvr opt"),
            },
            "--rounds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) => opts.rounds = r,
                None => return usage("--rounds needs an integer"),
            },
            "--every" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(k) if k > 0 => opts.every = k,
                _ => return usage("--every needs a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage("--out needs a file path"),
            },
            "--dot" => match it.next() {
                Some(p) => dot = Some(p.clone()),
                None => return usage("--dot needs a file path"),
            },
            "--strict" => strict = true,
            "--paper" => preset = Some("paper"),
            "--quick" => preset = Some("quick"),
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unexpected argument: {other}")),
        }
    }
    let mut scale = match preset {
        Some("paper") => Scale::paper(),
        Some("quick") => Scale::quick(),
        _ => Scale::default_run(),
    };
    if let Some(n) = nodes {
        scale = Scale::proportional(n, seed);
    }
    scale.seed = seed;
    println!(
        "# Vitis topology telemetry — {} @ {} nodes, seed {}, {} rounds sampled every {}\n",
        opts.system.as_str(),
        scale.nodes,
        scale.seed,
        opts.rounds,
        opts.every
    );
    let run = topology::run(&scale, &opts);
    if let Some(path) = &out {
        let mut text = String::with_capacity(run.jsonl.iter().map(|l| l.len() + 1).sum());
        for line in &run.jsonl {
            text.push_str(line);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("wrote {} topology records to {path}", run.jsonl.len());
    }
    if let Some(path) = &dot {
        if let Err(e) = std::fs::write(path, &run.dot) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("wrote overlay graph to {path}");
    }
    print!("{}", run.summary);
    if strict && !run.violations.is_empty() {
        eprintln!(
            "error: --strict and the final audit found {} violation(s)",
            run.violations.len()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// The `analyze` subcommand: offline delivery forensics over a
/// `--trace-out` dump (report to stdout, optional Graphviz export).
fn run_analyze(args: &[String]) -> ExitCode {
    let mut path: Option<&String> = None;
    let mut dot: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dot" => match it.next() {
                Some(p) => dot = Some(p),
                None => return usage("--dot needs a file path"),
            },
            "--help" | "-h" => return usage(""),
            _ if path.is_none() && !a.starts_with('-') => path = Some(a),
            other => return usage(&format!("unexpected argument: {other}")),
        }
    }
    let Some(path) = path else {
        return usage("analyze needs a trace file (from --trace-out)");
    };
    match vitis_experiments::analyze::run_file(path, dot.map(String::as_str)) {
        Ok(report) => {
            print!("{report}");
            if let Some(d) = dot {
                eprintln!("wrote dissemination trees to {d}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: vitis-experiments [fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 clusters headline ablations | all]\n\
         \t[--nodes N] [--seed S] [--replicas R] [--paper | --quick]\n\
         \t[--metrics-out FILE.jsonl] [--trace-out FILE.jsonl] [--trace-capacity N]\n\
         \t[--perf-out FILE.jsonl] (span profiler + memory accounting; also writes FILE.jsonl.folded)\n\
         \t(schema: docs/METRICS.md)\n\
         \n\
         \tvitis-experiments analyze TRACE.jsonl [--dot FILE.dot]\n\
         \t(delivery forensics: per-event trees, hop/latency percentiles, loss attribution)\n\
         \n\
         \tvitis-experiments resilience [--nodes N] [--seed S] [--quick | --paper] [--metrics-out FILE.jsonl]\n\
         \t\t[--repair | --no-repair]\n\
         \t(partition-severity sweep: hit ratio during the episode + reconvergence time after heal;\n\
         \t --repair runs every point twice at identical seeds — anti-entropy off and on — and adds\n\
         \t the repair cost/effect figure)\n\
         \n\
         \tvitis-experiments topology [--nodes N] [--seed S] [--system vitis|rvr|opt]\n\
         \t\t[--rounds R] [--every K] [--out TOPO.jsonl] [--dot FILE.dot] [--strict]\n\
         \t(overlay structural-health series + invariant audit; topo schema in docs/METRICS.md §10;\n\
         \t --strict exits nonzero on any audit violation)\n\
         \n\
         \tvitis-experiments scale [--max-nodes N] [--budget-secs B] [--seed S] [--out BENCH.json]\n\
         \t\t[--perf-out FILE.jsonl] [--trace-out FILE.jsonl]\n\
         \t(node-count ladder 2k..100k across vitis/rvr/opt; BENCH schema in docs/METRICS.md §9.\n\
         \t build with --features perf-alloc for allocator peak-memory entries;\n\
         \t compare two BENCH files with the bench-diff binary)"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
