//! Supplementary diagnostic: cluster structure per topic.
//!
//! The paper's Figures 1–2 are conceptual sketches of the mechanism —
//! biased neighbor selection groups subscribers into a few clusters per
//! topic; gateways and relay paths stitch them together. This experiment
//! makes those sketches measurable: clusters per topic, cluster sizes,
//! gateways per topic and relay-path footprint, across correlation levels.

use crate::obs::Obs;
use crate::report::Figure;
use crate::runner::synthetic_params;
use crate::scale::Scale;
use vitis::system::{PubSub, VitisSystem};
use vitis::topic::TopicId;
use vitis_sim::metrics::Summary;
use vitis_workloads::Correlation;

/// Aggregated cluster-structure diagnostics for one configuration.
#[derive(Clone, Debug)]
pub struct ClusterStats {
    /// Mean clusters per topic (lower = better grouping).
    pub mean_clusters: f64,
    /// Mean size of the largest cluster per topic.
    pub mean_largest: f64,
    /// Mean gateways per topic.
    pub mean_gateways: f64,
    /// Mean relay-state holders (relay nodes) per topic.
    pub mean_relay_holders: f64,
    /// Fraction of topics with a single cluster.
    pub single_cluster_frac: f64,
}

/// Measure cluster structure after convergence at a correlation level.
pub fn cluster_stats(scale: &Scale, corr: Correlation) -> ClusterStats {
    let mut ctx = Obs::global().start("clusters", corr.slug());
    let mut sys = VitisSystem::new(synthetic_params(scale, corr));
    ctx.phase("build");
    ctx.install_trace(&mut sys);
    sys.run_rounds(scale.warmup_rounds);
    ctx.phase("warmup");
    ctx.sample(scale.warmup_rounds, &sys);
    ctx.record_perf(sys.perf_counters(), sys.footprint_estimate());
    ctx.finish(scale, &sys.stats());
    let mut clusters = Summary::new();
    let mut largest = Summary::new();
    let mut gateways = Summary::new();
    let mut relays = Summary::new();
    let mut single = 0usize;
    let mut counted = 0usize;
    let probe_topics = scale.topics.min(200);
    for t in 0..probe_topics as u32 {
        let topic = TopicId(t);
        let comps = sys.topic_clusters(topic);
        if comps.is_empty() {
            continue;
        }
        counted += 1;
        clusters.record(comps.len() as f64);
        largest.record(comps.iter().map(|c| c.len()).max().unwrap_or(0) as f64);
        if comps.len() == 1 {
            single += 1;
        }
        let gws = sys
            .engine()
            .alive_nodes()
            .filter(|(_, n)| n.is_gateway(topic))
            .count();
        gateways.record(gws as f64);
        let rel = sys
            .engine()
            .alive_nodes()
            .filter(|(_, n)| {
                n.relay_table().has(topic) && !n.subscriptions().contains(topic)
            })
            .count();
        relays.record(rel as f64);
    }
    ClusterStats {
        mean_clusters: clusters.mean(),
        mean_largest: largest.mean(),
        mean_gateways: gateways.mean(),
        mean_relay_holders: relays.mean(),
        single_cluster_frac: if counted == 0 {
            0.0
        } else {
            single as f64 / counted as f64
        },
    }
}

/// Run the diagnostic over the three correlation levels.
pub fn run(scale: &Scale) -> Figure {
    let mut fig = Figure::new(
        "Cluster structure per topic (diagnostic for Figures 1-2)",
        "-",
        "-",
    );
    for corr in [Correlation::High, Correlation::Low, Correlation::Random] {
        let s = cluster_stats(scale, corr);
        fig.note(format!(
            "{}: clusters/topic {:.2} (largest {:.1} nodes, {:.0}% single-cluster), \
             gateways/topic {:.2}, relay nodes/topic {:.2}",
            corr.label(),
            s.mean_clusters,
            s.mean_largest,
            100.0 * s.single_cluster_frac,
            s.mean_gateways,
            s.mean_relay_holders,
        ));
    }
    fig.note("expectation: higher correlation => fewer, larger clusters and fewer relay nodes");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The clustering mechanism itself: correlated subscriptions produce
    /// fewer clusters per topic than random ones.
    #[test]
    fn correlation_consolidates_clusters() {
        let mut sc = Scale::quick();
        sc.warmup_rounds = 45;
        let hi = cluster_stats(&sc, Correlation::High);
        let rnd = cluster_stats(&sc, Correlation::Random);
        assert!(
            hi.mean_clusters < rnd.mean_clusters,
            "high {} vs random {}",
            hi.mean_clusters,
            rnd.mean_clusters
        );
        assert!(hi.mean_gateways >= 1.0);
        assert!(hi.single_cluster_frac > rnd.single_cluster_frac);
    }
}
