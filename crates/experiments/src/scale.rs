//! Experiment scale presets.
//!
//! The paper evaluates at 10 000 nodes, 5000 topics, 100 buckets and 50
//! subscriptions per node. Everything here keeps those *proportions*
//! (topics = nodes/2, one bucket per 50 topics) while letting the node
//! count scale down for CI and benchmarks.

use vitis_workloads::{Correlation, SubscriptionModel};

/// The size and measurement plan of one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of topics.
    pub topics: usize,
    /// Buckets for the correlated subscription patterns.
    pub buckets: usize,
    /// Subscriptions per node.
    pub subs_per_node: usize,
    /// Gossip rounds before measurement starts.
    pub warmup_rounds: u64,
    /// Events published in the measurement window (spread over topics).
    pub events: usize,
    /// Rounds allowed for dissemination after the last publish.
    pub drain_rounds: u64,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Paper scale: 10 000 nodes, 5000 topics, 100 buckets.
    pub fn paper() -> Scale {
        Scale::proportional(10_000, 42)
    }

    /// Default harness scale: 2000 nodes — large enough that every paper
    /// trend is visible, small enough to sweep in minutes.
    pub fn default_run() -> Scale {
        Scale::proportional(2000, 42)
    }

    /// Quick scale for CI smoke tests.
    pub fn quick() -> Scale {
        Scale::proportional(400, 42)
    }

    /// Keep the paper's proportions at an arbitrary node count.
    pub fn proportional(nodes: usize, seed: u64) -> Scale {
        let topics = (nodes / 2).max(20);
        Scale {
            nodes,
            topics,
            buckets: (topics / 50).max(4),
            subs_per_node: 50.min(topics / 2).max(2),
            warmup_rounds: 60,
            events: topics.min(1000),
            drain_rounds: 10,
            seed,
        }
    }

    /// The matching synthetic subscription model at a correlation level.
    pub fn subscription_model(&self, correlation: Correlation) -> SubscriptionModel {
        SubscriptionModel {
            num_nodes: self.nodes,
            num_topics: self.topics,
            num_buckets: self.buckets,
            subs_per_node: self.subs_per_node,
            correlation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_section_iv() {
        let s = Scale::paper();
        assert_eq!(s.nodes, 10_000);
        assert_eq!(s.topics, 5000);
        assert_eq!(s.buckets, 100);
        assert_eq!(s.subs_per_node, 50);
    }

    #[test]
    fn proportions_hold_when_scaled() {
        let s = Scale::proportional(1000, 1);
        assert_eq!(s.topics, 500);
        assert_eq!(s.buckets, 10);
        assert_eq!(s.subs_per_node, 50);
        let tiny = Scale::proportional(40, 1);
        assert!(tiny.topics >= 20);
        assert!(tiny.subs_per_node >= 2);
    }

    #[test]
    fn model_mirrors_scale() {
        let s = Scale::quick();
        let m = s.subscription_model(Correlation::Low);
        assert_eq!(m.num_nodes, s.nodes);
        assert_eq!(m.num_topics, s.topics);
        assert_eq!(m.correlation, Correlation::Low);
    }
}
