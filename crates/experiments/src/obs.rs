//! Process-wide observability sinks for experiment runs.
//!
//! The CLI enables the global [`Obs`] once (from `--metrics-out` /
//! `--trace-out`); every figure runner then labels its measurement runs
//! through [`Obs::start`], and [`crate::runner::measure_obs`] records
//! per-run phase timers, a per-round convergence time series, overlay
//! health probes and the final [`PubSubStats`] into JSONL sinks. Sweep
//! points run on Rayon workers, so the sinks hold pre-rendered lines
//! behind mutexes; when disabled (the default, and always in unit tests)
//! every recording call is a cheap no-op.
//!
//! The schema of both sinks is documented in `docs/METRICS.md`.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use vitis::monitor::PubSubStats;
use vitis_sim::perf::EngineCounters;
use vitis_sim::trace::{push_f64, push_json_str, HealthProbe, Trace, TraceEvent, TraceHandle};

/// Default ring-buffer capacity of the per-run event trace. Old events
/// are evicted (and counted) beyond this; the `trace_meta` record reports
/// how many, and the CLI's `--trace-capacity` flag overrides it via
/// [`Obs::set_trace_capacity`].
pub const TRACE_CAPACITY: usize = 65_536;

/// One per-round convergence sample taken during the measure/drain
/// phases (the `samples` array of a metrics record).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundSample {
    /// Rounds since measurement started (1-based).
    pub round: u64,
    /// Simulation time of the sample.
    pub now: u64,
    /// Hit ratio so far in the window.
    pub hit_ratio: f64,
    /// Traffic overhead percent so far in the window.
    pub overhead_pct: f64,
    /// Deliveries achieved so far.
    pub delivered: u64,
    /// Deliveries expected so far.
    pub expected: u64,
}

/// Where a sink's finished JSONL lines go.
///
/// `Mem` accumulates lines for the CLI to drain at the end of a figure
/// (the historical behavior). `File` streams each record to disk the
/// moment a run finishes — every line is written and flushed whole, so a
/// sweep that panics or is killed part-way still leaves a valid JSONL
/// prefix covering every completed run.
enum SinkStore {
    Mem(Vec<String>),
    File {
        f: std::fs::File,
        path: String,
        lines: u64,
    },
}

impl SinkStore {
    /// Submit a batch of finished lines. In `File` mode the batch is
    /// rendered into one buffer and written with a single `write_all`
    /// (only whole lines ever reach the file), then flushed.
    fn push_batch<I: IntoIterator<Item = String>>(&mut self, batch: I) {
        match self {
            SinkStore::Mem(v) => v.extend(batch),
            SinkStore::File { f, path, lines } => {
                let mut buf = String::new();
                let mut n = 0u64;
                for line in batch {
                    buf.push_str(&line);
                    buf.push('\n');
                    n += 1;
                }
                if n == 0 {
                    return;
                }
                if let Err(e) = f.write_all(buf.as_bytes()).and_then(|()| f.flush()) {
                    eprintln!("warning: obs sink {path}: write failed: {e}");
                } else {
                    *lines += n;
                }
            }
        }
    }

    fn take(&mut self) -> Vec<String> {
        match self {
            SinkStore::Mem(v) => std::mem::take(v),
            SinkStore::File { .. } => Vec::new(),
        }
    }

    /// `(path, lines written)` when file-backed.
    fn file_status(&self) -> Option<(String, u64)> {
        match self {
            SinkStore::Mem(_) => None,
            SinkStore::File { path, lines, .. } => Some((path.clone(), *lines)),
        }
    }
}

/// The global observability switchboard: two JSONL sinks plus on/off
/// flags, shared by every figure runner in the process.
pub struct Obs {
    metrics_on: AtomicBool,
    trace_on: AtomicBool,
    trace_capacity: AtomicUsize,
    run_counter: AtomicU64,
    overflow_runs: AtomicU64,
    overflow_evicted: AtomicU64,
    metrics_sink: Mutex<SinkStore>,
    trace_sink: Mutex<SinkStore>,
}

static GLOBAL: Obs = Obs {
    metrics_on: AtomicBool::new(false),
    trace_on: AtomicBool::new(false),
    trace_capacity: AtomicUsize::new(TRACE_CAPACITY),
    run_counter: AtomicU64::new(0),
    overflow_runs: AtomicU64::new(0),
    overflow_evicted: AtomicU64::new(0),
    metrics_sink: Mutex::new(SinkStore::Mem(Vec::new())),
    trace_sink: Mutex::new(SinkStore::Mem(Vec::new())),
};

impl Obs {
    /// The process-wide instance. Disabled until [`Obs::enable`] is
    /// called, so library users and tests pay nothing.
    pub fn global() -> &'static Obs {
        &GLOBAL
    }

    /// Turn the sinks on (idempotent; the CLI calls this once).
    pub fn enable(&self, metrics: bool, trace: bool) {
        self.metrics_on.store(metrics, Ordering::Relaxed);
        self.trace_on.store(trace, Ordering::Relaxed);
    }

    /// Whether per-run metrics records are being collected.
    pub fn metrics_on(&self) -> bool {
        self.metrics_on.load(Ordering::Relaxed)
    }

    /// Whether per-run event traces are being collected.
    pub fn trace_on(&self) -> bool {
        self.trace_on.load(Ordering::Relaxed)
    }

    /// Per-run trace ring capacity (`--trace-capacity`, default
    /// [`TRACE_CAPACITY`]).
    pub fn trace_capacity(&self) -> usize {
        self.trace_capacity.load(Ordering::Relaxed)
    }

    /// Override the per-run trace ring capacity (the CLI calls this once,
    /// before any run starts).
    pub fn set_trace_capacity(&self, cap: usize) {
        self.trace_capacity.store(cap.max(1), Ordering::Relaxed);
    }

    /// Open a labelled run scope. `figure` names the experiment module
    /// (`"fig6"`), `label` the sweep point (`"vitis-low-rt25"`); the
    /// returned context stamps every record with a unique
    /// `figure/label#N` run id.
    pub fn start(&'static self, figure: &str, label: &str) -> RunCtx {
        let n = self.run_counter.fetch_add(1, Ordering::Relaxed);
        RunCtx {
            obs: self,
            run: format!("{figure}/{label}#{n}"),
            last_phase: Instant::now(),
            phases: Vec::new(),
            samples: Vec::new(),
            trace: None,
            perf: None,
        }
    }

    /// Stream metrics records straight to `path` instead of buffering in
    /// memory. Each record is written and flushed as its run finishes, so
    /// an aborted sweep leaves a valid partial JSONL file.
    pub fn set_metrics_file(&self, path: &str) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        *self.metrics_sink.lock().expect("obs lock") = SinkStore::File {
            f,
            path: path.to_string(),
            lines: 0,
        };
        Ok(())
    }

    /// Stream trace records straight to `path` (same crash-safety as
    /// [`Obs::set_metrics_file`]).
    pub fn set_trace_file(&self, path: &str) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        *self.trace_sink.lock().expect("obs lock") = SinkStore::File {
            f,
            path: path.to_string(),
            lines: 0,
        };
        Ok(())
    }

    /// Drain the metrics sink (one JSONL line per finished run). Empty in
    /// file-streaming mode — the records are already on disk.
    pub fn take_metrics(&self) -> Vec<String> {
        self.metrics_sink.lock().expect("obs lock").take()
    }

    /// Drain the trace sink (one JSONL line per trace event, each
    /// stamped with its run id). Empty in file-streaming mode.
    pub fn take_trace(&self) -> Vec<String> {
        self.trace_sink.lock().expect("obs lock").take()
    }

    /// `(path, lines written so far)` of the metrics sink when it streams
    /// to a file.
    pub fn metrics_file_status(&self) -> Option<(String, u64)> {
        self.metrics_sink.lock().expect("obs lock").file_status()
    }

    /// `(path, lines written so far)` of the trace sink when it streams
    /// to a file.
    pub fn trace_file_status(&self) -> Option<(String, u64)> {
        self.trace_sink.lock().expect("obs lock").file_status()
    }

    /// Submit lines produced outside a run scope (e.g. the CLI's final
    /// health records) through the same sink as run metrics.
    pub fn push_metrics_lines<I: IntoIterator<Item = String>>(&self, lines: I) {
        self.metrics_sink.lock().expect("obs lock").push_batch(lines);
    }

    /// Account one run whose trace ring overflowed. Returns true only for
    /// the first overflowed run of the process — the caller prints the
    /// detailed warning then, and every later overflow stays silent until
    /// the [`Obs::trace_overflow_status`] summary at exit.
    pub fn note_trace_overflow(&self, evicted: u64) -> bool {
        self.overflow_evicted.fetch_add(evicted, Ordering::Relaxed);
        self.overflow_runs.fetch_add(1, Ordering::Relaxed) == 0
    }

    /// `(overflowed runs, events evicted in total)` across the process,
    /// or `None` if no trace ever overflowed.
    pub fn trace_overflow_status(&self) -> Option<(u64, u64)> {
        let runs = self.overflow_runs.load(Ordering::Relaxed);
        (runs > 0).then(|| (runs, self.overflow_evicted.load(Ordering::Relaxed)))
    }
}

/// The per-run recording scope handed to [`crate::runner::measure_obs`].
/// Created by [`Obs::start`]; lives on one Rayon worker for the duration
/// of a single sweep point.
pub struct RunCtx {
    obs: &'static Obs,
    /// Unique run id (`figure/label#N`) stamped on every record.
    pub run: String,
    last_phase: Instant,
    phases: Vec<(&'static str, f64)>,
    samples: Vec<RoundSample>,
    trace: Option<TraceHandle>,
    perf: Option<PerfSample>,
}

/// Deterministic perf facts captured at the end of a run: engine-side
/// counters plus the structural footprint estimate. Pure functions of the
/// simulation (no wall clock), so they survive the determinism
/// double-run diff unchanged.
#[derive(Clone, Copy, Debug)]
pub struct PerfSample {
    /// Queue high-water mark and per-phase activation counts.
    pub counters: EngineCounters,
    /// Structural per-node footprint estimate, summed over alive nodes.
    pub footprint_bytes: u64,
}

impl RunCtx {
    /// True when nothing is being collected; recording calls no-op.
    pub fn disabled(&self) -> bool {
        !self.obs.metrics_on() && !self.obs.trace_on()
    }

    /// Install a fresh event trace into `sys` (no-op unless `--trace-out`
    /// is active). Returns the handle for callers that want to inspect it.
    pub fn install_trace(&mut self, sys: &mut dyn vitis::system::PubSub) -> Option<TraceHandle> {
        if !self.obs.trace_on() {
            return None;
        }
        let handle = Trace::shared(self.obs.trace_capacity());
        sys.install_trace(handle.clone());
        self.trace = Some(handle.clone());
        Some(handle)
    }

    /// Whether a trace is installed on this run scope.
    pub fn has_trace(&self) -> bool {
        self.trace.is_some()
    }

    /// Close the current wall-clock phase under `name` (milliseconds
    /// since the previous phase boundary, or since [`Obs::start`]).
    pub fn phase(&mut self, name: &'static str) {
        let elapsed = self.last_phase.elapsed().as_secs_f64() * 1e3;
        self.last_phase = Instant::now();
        if self.disabled() {
            return;
        }
        self.phases.push((name, elapsed));
        if let Some(t) = &self.trace {
            t.borrow_mut().record(TraceEvent::Phase {
                name: name.into(),
                wall_ms: elapsed,
            });
        }
    }

    /// Record one per-round convergence sample (and mirror it, plus a
    /// round boundary and a health probe, into the event trace).
    pub fn sample(&mut self, round: u64, sys: &dyn vitis::system::PubSub) {
        if self.disabled() {
            return;
        }
        let stats = sys.stats();
        let now = sys.now().0;
        let s = RoundSample {
            round,
            now,
            hit_ratio: stats.hit_ratio,
            overhead_pct: stats.overhead_pct,
            delivered: stats.delivered,
            expected: stats.expected,
        };
        self.samples.push(s);
        if let Some(t) = &self.trace {
            let probe = sys.health_probe();
            let mut t = t.borrow_mut();
            t.record(TraceEvent::Round {
                round,
                now,
                alive: probe.alive,
            });
            t.record(TraceEvent::Sample {
                round,
                now,
                hit_ratio: s.hit_ratio,
                overhead_pct: s.overhead_pct,
                delivered: s.delivered,
                expected: s.expected,
            });
            t.record(TraceEvent::Health { now, probe });
        }
    }

    /// Attach the system's deterministic perf facts to this run's metrics
    /// record (rendered as the `"perf"` object). Call just before
    /// [`RunCtx::finish`], after the measurement window closes.
    pub fn record_perf(&mut self, counters: EngineCounters, footprint_bytes: u64) {
        if self.disabled() {
            return;
        }
        self.perf = Some(PerfSample {
            counters,
            footprint_bytes,
        });
    }

    /// Render and submit this run's records to the global sinks. Called
    /// once at the end of [`crate::runner::measure_obs`].
    pub fn finish(self, scale: &crate::scale::Scale, stats: &PubSubStats) {
        if self.obs.metrics_on() {
            let line = render_metrics_line(
                &self.run,
                scale,
                &self.phases,
                &self.samples,
                stats,
                self.perf.as_ref(),
            );
            self.obs
                .metrics_sink
                .lock()
                .expect("obs lock")
                .push_batch([line]);
        }
        if let Some(t) = &self.trace {
            let t = t.borrow();
            // Rate-limited: the first overflowed run prints the full
            // warning, later ones only feed the exit summary (the
            // per-run trace_meta record still carries exact counts).
            if t.evicted() > 0 && self.obs.note_trace_overflow(t.evicted()) {
                eprintln!(
                    "warning: trace for {} overflowed: {} of {} events evicted \
                     (raise --trace-capacity; see the trace_meta record; \
                     later overflows are summarized at exit)",
                    self.run,
                    t.evicted(),
                    t.total_recorded()
                );
            }
            let mut batch = vec![trace_meta_line(&self.run, &t)];
            for ev in t.events() {
                batch.push(stamp_run(&self.run, &vitis_sim::trace::event_to_json(ev)));
            }
            self.obs
                .trace_sink
                .lock()
                .expect("obs lock")
                .push_batch(batch);
        }
    }
}

/// Prefix a rendered trace-event object with a `"run"` field.
pub(crate) fn stamp_run(run: &str, event_json: &str) -> String {
    let mut out = String::with_capacity(event_json.len() + run.len() + 10);
    out.push_str("{\"run\":");
    push_json_str(&mut out, run);
    out.push(',');
    out.push_str(&event_json[1..]);
    out
}

/// The `trace_meta` record heading a run's trace: capacity and how many
/// events the ring buffer evicted (0 means the trace is complete).
fn trace_meta_line(run: &str, t: &Trace) -> String {
    stamp_run(
        run,
        &vitis_sim::trace::event_to_json(&TraceEvent::TraceMeta {
            capacity: t.capacity() as u64,
            recorded: t.total_recorded(),
            evicted: t.evicted(),
        }),
    )
}

fn render_metrics_line(
    run: &str,
    scale: &crate::scale::Scale,
    phases: &[(&'static str, f64)],
    samples: &[RoundSample],
    stats: &PubSubStats,
    perf: Option<&PerfSample>,
) -> String {
    let mut o = String::with_capacity(512);
    o.push_str("{\"type\":\"run\",\"run\":");
    push_json_str(&mut o, run);
    o.push_str(&format!(
        ",\"nodes\":{},\"topics\":{},\"seed\":{}",
        scale.nodes, scale.topics, scale.seed
    ));
    if let Some(p) = perf {
        let c = &p.counters;
        o.push_str(&format!(
            ",\"perf\":{{\"queue_hwm\":{},\"activations\":{{\"start\":{},\"round\":{},\
             \"message\":{},\"stop\":{}}},\"sched\":{{\"batches\":{},\"overflow\":{}}},\
             \"footprint_bytes\":{}}}",
            c.queue_hwm,
            c.activations_start,
            c.activations_round,
            c.activations_message,
            c.activations_stop,
            c.sched_batches,
            c.sched_overflow,
            p.footprint_bytes
        ));
    }
    o.push_str(",\"phase_ms\":{");
    for (i, (name, ms)) in phases.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        push_json_str(&mut o, name);
        o.push(':');
        push_f64(&mut o, *ms);
    }
    o.push_str("},\"stats\":{");
    o.push_str(&format!(
        "\"published\":{},\"expected\":{},\"delivered\":{},",
        stats.published, stats.expected, stats.delivered
    ));
    o.push_str("\"hit_ratio\":");
    push_f64(&mut o, stats.hit_ratio);
    o.push_str(",\"mean_hops\":");
    push_f64(&mut o, stats.mean_hops);
    o.push_str(&format!(",\"max_hops\":{},", stats.max_hops));
    o.push_str(&format!(
        "\"useful_msgs\":{},\"relay_msgs\":{},",
        stats.useful_msgs, stats.relay_msgs
    ));
    o.push_str("\"overhead_pct\":");
    push_f64(&mut o, stats.overhead_pct);
    o.push_str(",\"mean_latency_ticks\":");
    push_f64(&mut o, stats.mean_latency_ticks);
    o.push_str(&format!(",\"max_latency_ticks\":{},", stats.max_latency_ticks));
    o.push_str("\"control_bytes_per_round\":");
    push_f64(&mut o, stats.control_bytes_per_round);
    o.push_str(&format!(
        ",\"control_sent\":{},\"data_sent\":{},",
        stats.control_sent, stats.data_sent
    ));
    o.push_str("\"traffic_by_kind\":[");
    for (i, k) in stats.traffic_by_kind.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str("{\"kind\":");
        push_json_str(&mut o, &k.kind);
        o.push_str(",\"class\":");
        push_json_str(&mut o, &k.class);
        o.push_str(&format!(",\"sent\":{},\"delivered\":{}}}", k.sent, k.delivered));
    }
    o.push_str("]},\"samples\":[");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!("{{\"round\":{},\"now\":{},", s.round, s.now));
        o.push_str("\"hit_ratio\":");
        push_f64(&mut o, s.hit_ratio);
        o.push_str(",\"overhead_pct\":");
        push_f64(&mut o, s.overhead_pct);
        o.push_str(&format!(
            ",\"delivered\":{},\"expected\":{}}}",
            s.delivered, s.expected
        ));
    }
    o.push_str("]}");
    o
}

/// Render a final health probe as its own JSONL record (used by the CLI
/// after a figure completes, outside any run scope).
pub fn health_line(run: &str, now: u64, probe: &HealthProbe) -> String {
    stamp_run(
        run,
        &vitis_sim::trace::event_to_json(&TraceEvent::Health { now, probe: *probe }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_run_produces_valid_prefixed_object() {
        let ev = TraceEvent::Round {
            round: 3,
            now: 90,
            alive: 10,
        };
        let line = stamp_run("fig6/vitis#0", &vitis_sim::trace::event_to_json(&ev));
        assert!(line.starts_with("{\"run\":\"fig6/vitis#0\","));
        // The run field is extra; the trace parser must still accept it.
        assert_eq!(vitis_sim::trace::parse_event(&line), Ok(ev));
    }

    #[test]
    fn metrics_line_is_well_formed() {
        let scale = crate::scale::Scale::quick();
        let stats = PubSubStats {
            hit_ratio: f64::NAN, // must render as null, not break JSON
            ..PubSubStats::default()
        };
        let line = render_metrics_line(
            "t/x#1",
            &scale,
            &[("build", 1.5), ("measure", 2.0)],
            &[RoundSample {
                round: 1,
                now: 30,
                hit_ratio: 0.5,
                overhead_pct: 10.0,
                delivered: 5,
                expected: 10,
            }],
            &stats,
            None,
        );
        assert!(line.contains("\"phase_ms\":{\"build\":1.5,\"measure\":2}"));
        assert!(line.contains("\"hit_ratio\":null"));
        assert!(line.contains("\"samples\":[{\"round\":1,"));
        assert!(!line.contains('\n'));
        assert!(!line.contains("\"perf\""));
    }

    #[test]
    fn perf_object_renders_deterministic_integers() {
        let scale = crate::scale::Scale::quick();
        let stats = PubSubStats::default();
        let perf = PerfSample {
            counters: EngineCounters {
                queue_hwm: 7,
                activations_start: 4,
                activations_round: 40,
                activations_message: 12,
                activations_stop: 1,
                sched_batches: 9,
                sched_overflow: 2,
            },
            footprint_bytes: 2048,
        };
        let line = render_metrics_line("t/x#2", &scale, &[], &[], &stats, Some(&perf));
        assert!(line.contains(
            "\"perf\":{\"queue_hwm\":7,\"activations\":{\"start\":4,\"round\":40,\
             \"message\":12,\"stop\":1},\"sched\":{\"batches\":9,\"overflow\":2},\
             \"footprint_bytes\":2048}"
        ));
    }

    #[test]
    fn file_sink_streams_whole_flushed_lines() {
        let path = std::env::temp_dir().join(format!("obs_sink_test_{}.jsonl", std::process::id()));
        let path_s = path.to_str().unwrap().to_string();
        let mut sink = SinkStore::File {
            f: std::fs::File::create(&path).unwrap(),
            path: path_s.clone(),
            lines: 0,
        };
        sink.push_batch(["{\"a\":1}".to_string(), "{\"b\":2}".to_string()]);
        // Lines are durable immediately — read back without dropping the
        // sink, as a killed process would leave them.
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, "{\"a\":1}\n{\"b\":2}\n");
        assert_eq!(sink.file_status(), Some((path_s, 2)));
        // File mode has nothing to drain; records are already on disk.
        assert!(sink.take().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overflow_warning_fires_once_and_accumulates() {
        // Use a private Obs so the process-global counters stay clean.
        let obs = Obs {
            metrics_on: AtomicBool::new(false),
            trace_on: AtomicBool::new(false),
            trace_capacity: AtomicUsize::new(TRACE_CAPACITY),
            run_counter: AtomicU64::new(0),
            overflow_runs: AtomicU64::new(0),
            overflow_evicted: AtomicU64::new(0),
            metrics_sink: Mutex::new(SinkStore::Mem(Vec::new())),
            trace_sink: Mutex::new(SinkStore::Mem(Vec::new())),
        };
        assert_eq!(obs.trace_overflow_status(), None);
        assert!(obs.note_trace_overflow(10)); // first run warns
        assert!(!obs.note_trace_overflow(5)); // later runs stay silent
        assert!(!obs.note_trace_overflow(1));
        assert_eq!(obs.trace_overflow_status(), Some((3, 16)));
    }

    #[test]
    fn disabled_ctx_records_nothing() {
        // The global obs is off in tests, so a run scope is inert.
        let mut ctx = Obs::global().start("test", "noop");
        assert!(ctx.disabled());
        ctx.phase("build");
        let stats = PubSubStats::default();
        ctx.finish(&crate::scale::Scale::quick(), &stats);
        assert!(Obs::global().take_metrics().is_empty());
        assert!(Obs::global().take_trace().is_empty());
    }
}
