//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * **A1 — gateway election** (Algorithm 5): with election off, every
//!   subscriber builds its own relay path (Scribe-style inside Vitis);
//!   relay traffic should rise substantially.
//! * **A2 — Equation 1 friend selection**: with utility ranking off,
//!   friends are random peers; clustering collapses and relay traffic
//!   rises toward RVR levels.
//! * **A3 — small-world link count**: Symphony's routing cost is
//!   `O(log²N / k)`; more sw links cut lookup (and thus inter-cluster)
//!   delay at the price of fewer friend slots.

use crate::report::{Figure, Series};
use crate::obs::Obs;
use crate::runner::{measure_obs, synthetic_params, with_cfg, PublishPlan};
use crate::scale::Scale;
use rayon::prelude::*;
use vitis::system::VitisSystem;
use vitis_workloads::Correlation;

/// Measure overhead/delay with a config toggle applied. `label` names the
/// toggle in the observability run id (`ablations/<label>#N`).
fn toggled_run(
    scale: &Scale,
    corr: Correlation,
    label: &str,
    f: impl FnOnce(&mut vitis::config::VitisConfig),
) -> (f64, f64, f64) {
    let ctx = Obs::global().start("ablations", label);
    let params = with_cfg(synthetic_params(scale, corr), f);
    let mut sys = VitisSystem::new(params);
    let s = measure_obs(&mut sys, scale, PublishPlan::RoundRobin, ctx);
    (s.overhead_pct, s.mean_hops, s.hit_ratio)
}

/// A1: gateway election on/off, high-correlation subscriptions.
pub fn gateway_election(scale: &Scale) -> Figure {
    let results: Vec<(bool, (f64, f64, f64))> = [true, false]
        .par_iter()
        .map(|&on| {
            (
                on,
                toggled_run(scale, Correlation::High, &format!("gateway-{on}"), |c| {
                    c.gateway_election = on
                }),
            )
        })
        .collect();
    let mut fig = Figure::new(
        "Ablation A1: gateway election (Algorithm 5)",
        "election enabled (0/1)",
        "overhead %",
    );
    let pts: Vec<(f64, f64)> = results
        .iter()
        .map(|&(on, (o, _, _))| (on as u64 as f64, o))
        .collect();
    fig.push_series(Series::new("Vitis - high correlation", pts));
    for &(on, (o, d, h)) in &results {
        fig.note(format!(
            "election={on}: overhead {o:.1}% delay {d:.2} hops hit {h:.3}"
        ));
    }
    fig.note("expectation: per-subscriber relay paths (election off) raise relay traffic");
    fig
}

/// A2: Equation 1 utility ranking vs random friends.
pub fn utility_selection(scale: &Scale) -> Figure {
    let results: Vec<(bool, (f64, f64, f64))> = [true, false]
        .par_iter()
        .map(|&on| {
            (
                on,
                toggled_run(scale, Correlation::High, &format!("utility-{on}"), |c| {
                    c.utility_selection = on
                }),
            )
        })
        .collect();
    let mut fig = Figure::new(
        "Ablation A2: Equation 1 friend selection vs random friends",
        "utility ranking enabled (0/1)",
        "overhead %",
    );
    let pts: Vec<(f64, f64)> = results
        .iter()
        .map(|&(on, (o, _, _))| (on as u64 as f64, o))
        .collect();
    fig.push_series(Series::new("Vitis - high correlation", pts));
    for &(on, (o, d, h)) in &results {
        fig.note(format!(
            "utility={on}: overhead {o:.1}% delay {d:.2} hops hit {h:.3}"
        ));
    }
    fig.note("expectation: random friends destroy clustering; overhead rises sharply");
    fig
}

/// A3: small-world link count k (table size fixed at 15).
pub fn sw_links(scale: &Scale) -> Figure {
    let ks = [1usize, 2, 4, 8];
    let results: Vec<(usize, (f64, f64, f64))> = ks
        .par_iter()
        .map(|&k| {
            (
                k,
                toggled_run(scale, Correlation::Random, &format!("sw{k}"), |c| c.k_sw = k),
            )
        })
        .collect();
    let mut fig = Figure::new(
        "Ablation A3: small-world links vs propagation delay (random subs)",
        "sw links k",
        "hops",
    );
    let mut delay_pts: Vec<(f64, f64)> = results
        .iter()
        .map(|&(k, (_, d, _))| (k as f64, d))
        .collect();
    delay_pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    fig.push_series(Series::new("Vitis delay", delay_pts));
    let mut over_pts: Vec<(f64, f64)> = results
        .iter()
        .map(|&(k, (o, _, _))| (k as f64, o))
        .collect();
    over_pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    fig.push_series(Series::new("Vitis overhead %", over_pts));
    fig.note("expectation: delay falls with k (O(log^2 N / k) routing); overhead rises (fewer friends)");
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> Scale {
        let mut sc = Scale::quick();
        sc.warmup_rounds = 45;
        sc.events = 120;
        sc
    }

    #[test]
    fn gateway_election_cuts_overhead() {
        let sc = sc();
        let (on, _, hit_on) =
            toggled_run(&sc, Correlation::High, "t", |c| c.gateway_election = true);
        let (off, _, _) = toggled_run(&sc, Correlation::High, "t", |c| c.gateway_election = false);
        assert!(hit_on > 0.9);
        assert!(
            on <= off + 1.0,
            "election on {on}% should not exceed off {off}%"
        );
    }

    #[test]
    fn utility_selection_is_what_creates_clusters() {
        let sc = sc();
        let (on, _, _) = toggled_run(&sc, Correlation::High, "t", |c| c.utility_selection = true);
        let (off, _, _) = toggled_run(&sc, Correlation::High, "t", |c| c.utility_selection = false);
        assert!(
            on < off,
            "utility ranking must cut overhead: on {on}% vs off {off}%"
        );
    }
}
