//! Figure 4: friends vs sw-neighbors.
//!
//! Routing tables are fixed at 15 entries (2 ring links); the sweep moves
//! the remaining 13 between small-world links and friends. The paper shows
//! traffic overhead dropping sharply as friends replace sw links (88 %
//! reduction at high correlation) while propagation delay falls for
//! correlated subscriptions and rises slightly for random ones; RVR is the
//! flat reference line.

use crate::report::{Figure, Series};
use crate::obs::Obs;
use crate::runner::{measure_obs, synthetic_params, with_cfg, PublishPlan};
use crate::scale::Scale;
use rayon::prelude::*;
use vitis::system::VitisSystem;
use vitis_baselines::RvrSystem;
use vitis_workloads::Correlation;

/// The friend counts swept on the x axis.
pub const FRIEND_COUNTS: [usize; 7] = [0, 2, 4, 6, 8, 10, 12];

/// The three correlation levels plotted.
pub const CORRELATIONS: [Correlation; 3] =
    [Correlation::High, Correlation::Low, Correlation::Random];

/// One measured point of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// x value (number of friends).
    pub x: f64,
    /// Traffic overhead in percent.
    pub overhead: f64,
    /// Mean propagation delay in hops.
    pub delay: f64,
    /// Hit ratio (the paper reports 100 % for both systems here).
    pub hit_ratio: f64,
}

/// Run the sweep; returns `(overhead figure, delay figure)`.
pub fn run(scale: &Scale) -> (Figure, Figure) {
    let mut jobs: Vec<(String, Option<Correlation>, usize)> = Vec::new();
    for corr in CORRELATIONS {
        for f in FRIEND_COUNTS {
            jobs.push((format!("Vitis - {}", corr.label()), Some(corr), f));
        }
    }
    jobs.push(("RVR".to_string(), None, 0));

    let results: Vec<(String, usize, Point)> = jobs
        .par_iter()
        .map(|(label, corr, friends)| {
            let point = match corr {
                Some(c) => vitis_point(scale, *c, *friends),
                None => rvr_point(scale),
            };
            (label.clone(), *friends, point)
        })
        .collect();

    let mut overhead = Figure::new(
        "Figure 4(a): traffic overhead vs number of friends",
        "friends (of 15 links)",
        "overhead %",
    );
    let mut delay = Figure::new(
        "Figure 4(b): propagation delay vs number of friends",
        "friends (of 15 links)",
        "hops",
    );
    for corr in CORRELATIONS {
        let label = format!("Vitis - {}", corr.label());
        let mut o = Vec::new();
        let mut d = Vec::new();
        for (l, _, pt) in &results {
            if *l == label {
                o.push((pt.x, pt.overhead));
                d.push((pt.x, pt.delay));
            }
        }
        o.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
        d.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
        overhead.push_series(Series::new(label.clone(), o));
        delay.push_series(Series::new(label, d));
    }
    // RVR is friend-count independent: draw it flat across the sweep.
    if let Some((_, _, rvr)) = results.iter().find(|(l, _, _)| l == "RVR") {
        let flat_o: Vec<(f64, f64)> = FRIEND_COUNTS
            .iter()
            .map(|&f| (f as f64, rvr.overhead))
            .collect();
        let flat_d: Vec<(f64, f64)> = FRIEND_COUNTS
            .iter()
            .map(|&f| (f as f64, rvr.delay))
            .collect();
        overhead.push_series(Series::new("RVR", flat_o));
        delay.push_series(Series::new("RVR", flat_d));
        overhead.note(format!(
            "RVR hit ratio {:.3}; expectation: all systems ~1.0 here",
            rvr.hit_ratio
        ));
    }
    overhead.note(
        "paper: Vitis overhead falls ~88% (high corr) as friends replace sw links; \
         Vitis < 1/3 of RVR even with random subscriptions",
    );
    delay.note("paper: delay improves with friends for correlated subs, degrades for random");
    (overhead, delay)
}

/// Measure a single Vitis configuration of the sweep.
pub fn vitis_point(scale: &Scale, corr: Correlation, friends: usize) -> Point {
    let ctx = Obs::global().start("fig4", &format!("vitis-{}-f{friends}", corr.slug()));
    let params = with_cfg(synthetic_params(scale, corr), |c| {
        *c = c.clone().with_friends(friends);
    });
    let mut sys = VitisSystem::new(params);
    let s = measure_obs(&mut sys, scale, PublishPlan::RoundRobin, ctx);
    Point {
        x: friends as f64,
        overhead: s.overhead_pct,
        delay: s.mean_hops,
        hit_ratio: s.hit_ratio,
    }
}

/// Measure the RVR reference point.
pub fn rvr_point(scale: &Scale) -> Point {
    let ctx = Obs::global().start("fig4", "rvr");
    let mut sys = RvrSystem::new(synthetic_params(scale, Correlation::Random));
    let s = measure_obs(&mut sys, scale, PublishPlan::RoundRobin, ctx);
    Point {
        x: 0.0,
        overhead: s.overhead_pct,
        delay: s.mean_hops,
        hit_ratio: s.hit_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline trend at smoke scale: more friends => less overhead,
    /// and Vitis at full friends beats RVR.
    // Tracking: slowest single test in the experiments crate; the trend it
    // checks is also covered by tests/end_to_end.rs (correlation_reduces_
    // vitis_overhead) on every run.
    #[test]
    #[ignore = "slow (~13 s at quick scale): four full measurement runs; run with `cargo test -- --ignored`"]
    fn overhead_falls_with_friends_and_beats_rvr() {
        let mut sc = Scale::quick();
        sc.warmup_rounds = 45;
        sc.events = 120;
        let lo = vitis_point(&sc, Correlation::High, 2);
        let hi = vitis_point(&sc, Correlation::High, 12);
        let rvr = rvr_point(&sc);
        assert!(
            hi.overhead < lo.overhead,
            "friends should cut overhead: {} -> {}",
            lo.overhead,
            hi.overhead
        );
        assert!(
            hi.overhead < rvr.overhead / 2.0,
            "vitis {} vs rvr {}",
            hi.overhead,
            rvr.overhead
        );
        assert!(hi.hit_ratio > 0.9 && rvr.hit_ratio > 0.9);
    }
}
