//! The common measurement driver: build a system, warm it up, publish a
//! measured batch of events, let dissemination drain, and collect stats.

use crate::obs::{Obs, RunCtx};
use crate::scale::Scale;
use vitis::config::VitisConfig;
use vitis::monitor::PubSubStats;
use vitis::system::{PubSub, SystemParams};
use vitis::topic::{RateTable, TopicId, TopicSet};
use vitis_workloads::Correlation;

/// How the measured events pick their topics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PublishPlan {
    /// Round-robin over all topics (uniform rates — the default setting).
    RoundRobin,
    /// Rate-weighted random topics (the α-sweep of Figure 7).
    RateWeighted,
}

/// Build `SystemParams` for a synthetic-subscription experiment.
pub fn synthetic_params(scale: &Scale, correlation: Correlation) -> SystemParams {
    let subs: Vec<TopicSet> = scale
        .subscription_model(correlation)
        .generate(scale.seed)
        .into_iter()
        .map(TopicSet::from_iter)
        .collect();
    params_from_subs(scale, subs, scale.topics)
}

/// Build `SystemParams` from explicit subscription sets (trace-driven
/// experiments).
pub fn params_from_subs(
    scale: &Scale,
    subscriptions: Vec<TopicSet>,
    num_topics: usize,
) -> SystemParams {
    let mut p = SystemParams::new(subscriptions, num_topics);
    p.seed = scale.seed;
    p.cfg.est_n = scale.nodes.max(2);
    p
}

/// Replace the rate table of prepared params (the α sweep).
pub fn with_rates(mut p: SystemParams, rates: Vec<f64>) -> SystemParams {
    p.rates = RateTable::from_rates(rates);
    p
}

/// Apply a Vitis-config transformation to prepared params.
pub fn with_cfg(mut p: SystemParams, f: impl FnOnce(&mut VitisConfig)) -> SystemParams {
    f(&mut p.cfg);
    p
}

/// Warm up, publish the measured batch, drain, and return the stats.
///
/// Events are published in ten spaced chunks so dissemination load overlaps
/// rounds realistically instead of arriving as a single burst. Records into
/// an anonymous run scope; figure runners label theirs via [`measure_obs`].
pub fn measure(sys: &mut dyn PubSub, scale: &Scale, plan: PublishPlan) -> PubSubStats {
    let ctx = Obs::global().start("run", "measure");
    measure_obs(sys, scale, plan, ctx)
}

/// [`measure`] with an explicit run scope: phase wall-clock timers
/// (build/warmup/measure/drain), one convergence sample per measured
/// round, per-round health probes into the event trace when enabled, and
/// the final stats record — all submitted to the global [`Obs`] sinks.
///
/// Create `ctx` with `Obs::global().start(figure, label)` *before*
/// building the system so the "build" phase timer covers construction.
pub fn measure_obs(
    sys: &mut dyn PubSub,
    scale: &Scale,
    plan: PublishPlan,
    mut ctx: RunCtx,
) -> PubSubStats {
    ctx.phase("build");
    ctx.install_trace(sys);
    {
        let _span = vitis_sim::perf::span("measure.warmup");
        sys.run_rounds(scale.warmup_rounds);
    }
    ctx.phase("warmup");
    sys.reset_metrics();
    let chunk = (scale.events / 10).max(1);
    let mut published = 0usize;
    let mut topic_cursor = 0u32;
    let mut round = 0u64;
    {
        let _span = vitis_sim::perf::span("measure.publish_window");
        while published < scale.events {
            for _ in 0..chunk.min(scale.events - published) {
                match plan {
                    PublishPlan::RoundRobin => {
                        sys.publish(TopicId(topic_cursor));
                        topic_cursor = (topic_cursor + 1) % scale.topics as u32;
                    }
                    PublishPlan::RateWeighted => {
                        sys.publish_weighted();
                    }
                }
                published += 1;
            }
            sys.run_rounds(1);
            round += 1;
            ctx.sample(round, &*sys);
        }
    }
    ctx.phase("measure");
    {
        let _span = vitis_sim::perf::span("measure.drain");
        for _ in 0..scale.drain_rounds {
            sys.run_rounds(1);
            round += 1;
            ctx.sample(round, &*sys);
        }
    }
    ctx.phase("drain");
    if ctx.has_trace() {
        // Close the measurement window with the loss-attribution pass:
        // every still-missed (event, subscriber) pair gets a classified
        // `drop_event` record in the installed trace.
        let _ = sys.loss_report();
    }
    ctx.record_perf(sys.perf_counters(), sys.footprint_estimate());
    let stats = sys.stats();
    ctx.finish(scale, &stats);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitis::system::VitisSystem;
    use vitis_baselines::{OptSystem, RvrSystem};

    fn tiny() -> Scale {
        let mut s = Scale::proportional(150, 7);
        s.warmup_rounds = 30;
        s.events = 50;
        s.drain_rounds = 6;
        s
    }

    #[test]
    fn measure_vitis_round_robin() {
        let sc = tiny();
        let mut sys = VitisSystem::new(synthetic_params(&sc, Correlation::High));
        let s = measure(&mut sys, &sc, PublishPlan::RoundRobin);
        assert_eq!(s.published, 50);
        assert!(s.hit_ratio > 0.9, "hit {}", s.hit_ratio);
    }

    #[test]
    fn measure_rvr_and_opt_run() {
        let sc = tiny();
        let mut rvr = RvrSystem::new(synthetic_params(&sc, Correlation::Random));
        let s = measure(&mut rvr, &sc, PublishPlan::RoundRobin);
        assert!(s.hit_ratio > 0.8, "rvr hit {}", s.hit_ratio);
        let mut opt = OptSystem::new(synthetic_params(&sc, Correlation::Random));
        let s = measure(&mut opt, &sc, PublishPlan::RateWeighted);
        assert_eq!(s.relay_msgs, 0);
    }

    #[test]
    fn with_cfg_and_rates_apply() {
        let sc = tiny();
        let p = with_cfg(synthetic_params(&sc, Correlation::Low), |c| {
            c.rt_size = 20;
        });
        assert_eq!(p.cfg.rt_size, 20);
        let p = with_rates(p, vec![2.0; sc.topics]);
        assert_eq!(p.rates.rate(TopicId(0)), 2.0);
    }
}
