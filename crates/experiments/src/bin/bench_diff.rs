//! Compare two BENCH files (`vitis-bench-v1`) and gate on regressions.
//!
//! ```text
//! bench-diff BASELINE.json CURRENT.json [--tolerance PCT]
//! ```
//!
//! Every metric name present in **both** files is compared; names unique
//! to one side are listed but never gate (the ladder may legitimately
//! grow or shrink with `--max-nodes`). The unit decides the direction:
//! time units (`ms`/`us`/`ns`) regress when the current value rises more
//! than the tolerance above baseline, `per_sec` regresses when it falls
//! more than the tolerance below, and informational units (`bytes`,
//! `count`, `ratio`) are printed for context only. Exit status 1 when any
//! gated metric regressed, 2 on usage or parse errors.
//!
//! Wall-clock benchmarks are noisy; the default tolerance is 25%, wide
//! enough that CI only trips on structural slowdowns.

use std::process::ExitCode;
use vitis_experiments::benchfmt::{self, BenchEntry, Direction};

/// Default tolerance, percent.
const DEFAULT_TOLERANCE_PCT: f64 = 25.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&String> = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE_PCT;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => return usage("--tolerance needs a non-negative number (percent)"),
            },
            "--help" | "-h" => return usage(""),
            _ if !a.starts_with('-') => files.push(a),
            other => return usage(&format!("unexpected argument: {other}")),
        }
    }
    let [baseline_path, current_path] = files[..] else {
        return usage("need exactly two BENCH files: baseline and current");
    };
    let baseline = match load(baseline_path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let current = match load(current_path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {current_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!("# bench-diff: {baseline_path} -> {current_path} (tolerance {tolerance}%)");
    for b in &baseline {
        let Some(c) = current.iter().find(|c| c.name == b.name) else {
            println!("  only-in-baseline  {}", b.name);
            continue;
        };
        if !b.value.is_finite() || !c.value.is_finite() || b.value == 0.0 {
            println!("  skip              {} (non-finite or zero baseline)", b.name);
            continue;
        }
        let delta_pct = (c.value - b.value) / b.value * 100.0;
        let verdict = match benchfmt::direction_of(&b.unit) {
            Direction::Informational => "info",
            Direction::LowerIsBetter => {
                compared += 1;
                if delta_pct > tolerance {
                    regressions += 1;
                    "REGRESSED"
                } else {
                    "ok"
                }
            }
            Direction::HigherIsBetter => {
                compared += 1;
                if delta_pct < -tolerance {
                    regressions += 1;
                    "REGRESSED"
                } else {
                    "ok"
                }
            }
        };
        println!(
            "  {verdict:<17} {} {:.6} -> {:.6} {} ({delta_pct:+.1}%)",
            b.name, b.value, c.value, b.unit
        );
    }
    for c in &current {
        if !baseline.iter().any(|b| b.name == c.name) {
            println!("  only-in-current   {}", c.name);
        }
    }
    println!("# {compared} gated metrics compared, {regressions} regressed");
    if regressions > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn load(path: &str) -> Result<Vec<BenchEntry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    benchfmt::parse(&text)
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: bench-diff BASELINE.json CURRENT.json [--tolerance PCT]\n\
         \tCompares vitis-bench-v1 files (from `vitis-experiments scale` or\n\
         \t`meso_timing`). Time units gate on increases, per_sec on decreases,\n\
         \tbytes/count/ratio are informational. Default tolerance: 25%.\n\
         \tExit 1 on regression, 2 on bad input."
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
