//! Figures 8 and 9: the Twitter trace analysis.
//!
//! Figure 8 is the in-/out-degree frequency plot of the follow graph with
//! its power-law fit (the paper estimates α = 1.65); Figure 9 is the
//! summary-statistics table. Both are regenerated from our synthetic
//! follow graph (a documented substitution — see DESIGN.md §3), which is
//! exactly how we demonstrate the generator matches the statistical
//! profile the paper reports.

use crate::report::{Figure, Series};
use crate::scale::Scale;
use vitis_sim::stats::frequency;
use vitis_workloads::twitter::TraceStats;
use vitis_workloads::{FollowGraph, TwitterModel};

/// Build the full synthetic graph for a scale (5× the sample size, capped
/// for memory) and BFS-sample `scale.nodes` users, as Section IV-E does.
pub fn sampled_trace(scale: &Scale) -> FollowGraph {
    let model = TwitterModel {
        num_users: (scale.nodes * 5).max(2_000),
        alpha: 1.65,
        max_out_degree: 2_000,
    };
    let full = FollowGraph::generate(&model, scale.seed);
    full.bfs_sample(scale.nodes, scale.seed ^ 0xB5)
}

/// Figure 8: degree-frequency series (log-log in the paper) of the *full*
/// synthetic graph, with MLE α annotations.
pub fn run_fig8(scale: &Scale) -> Figure {
    let model = TwitterModel {
        num_users: (scale.nodes * 5).max(2_000),
        alpha: 1.65,
        max_out_degree: 2_000,
    };
    let g = FollowGraph::generate(&model, scale.seed);
    let stats = g.stats();
    let mut fig = Figure::new(
        "Figure 8: degree distribution of the (synthetic) Twitter trace",
        "degree",
        "frequency",
    );
    fig.push_series(Series::new("indegree", freq_series(&g.in_degrees(), 12)));
    fig.push_series(Series::new("outdegree", freq_series(&g.out_degrees(), 12)));
    fig.note(format!(
        "MLE alpha: in={:.2?} out={:.2?} (paper fit: 1.65)",
        stats.alpha_in, stats.alpha_out
    ));
    fig.note("substitution: synthetic power-law follow graph, see DESIGN.md §3");
    fig
}

/// Figure 9: the summary-statistics table, rendered as notes.
pub fn run_fig9(scale: &Scale) -> (Figure, TraceStats, TraceStats) {
    let model = TwitterModel {
        num_users: (scale.nodes * 5).max(2_000),
        alpha: 1.65,
        max_out_degree: 2_000,
    };
    let full = FollowGraph::generate(&model, scale.seed);
    let sample = full.bfs_sample(scale.nodes, scale.seed ^ 0xB5);
    let fs = full.stats();
    let ss = sample.stats();
    let mut fig = Figure::new(
        "Figure 9: summary statistics of the (synthetic) Twitter data set",
        "-",
        "-",
    );
    for (name, s) in [("full graph", &fs), ("BFS sample", &ss)] {
        fig.note(format!(
            "{name}: users={} follows={} mean_out={:.1} max_out={} max_in={} \
             no_followees={:.1}% no_followers={:.1}% alpha_in={:.2?} alpha_out={:.2?}",
            s.num_users,
            s.num_edges,
            s.mean_out_degree,
            s.max_out_degree,
            s.max_in_degree,
            100.0 * s.frac_no_followees,
            100.0 * s.frac_no_followers,
            s.alpha_in,
            s.alpha_out,
        ));
    }
    fig.note("paper (full log): ~2.4M users, power-law degrees with alpha = 1.65");
    (fig, fs, ss)
}

/// Log-spaced degree-frequency points (keeps tables readable while showing
/// the power-law shape; one point per log-spaced degree bucket).
fn freq_series(degrees: &[u64], buckets: usize) -> Vec<(f64, f64)> {
    let f = frequency(degrees);
    let max_d = f.last().map(|&(d, _)| d).unwrap_or(0).max(1);
    let mut out: Vec<(f64, f64)> = Vec::new();
    let ratio = (max_d as f64).powf(1.0 / buckets as f64);
    let mut lo = 1.0f64;
    for _ in 0..buckets {
        let hi = (lo * ratio).max(lo + 1.0);
        let count: u64 = f
            .iter()
            .filter(|&&(d, _)| (d as f64) >= lo && (d as f64) < hi)
            .map(|&(_, c)| c)
            .sum();
        if count > 0 {
            out.push((lo.round(), count as f64));
        }
        lo = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_has_heavy_tail_and_alpha_near_target() {
        let sc = Scale::quick();
        let fig = run_fig8(&sc);
        let ind = fig.series_named("indegree").expect("indegree series");
        assert!(ind.points.len() >= 4);
        // Frequencies decay over the log buckets (power law).
        let first = ind.points.first().unwrap().1;
        let last = ind.points.last().unwrap().1;
        assert!(first > last * 3.0, "no decay: {first} vs {last}");
    }

    #[test]
    fn fig9_sample_matches_requested_size() {
        let sc = Scale::quick();
        let (_, full, sample) = run_fig9(&sc);
        assert_eq!(sample.num_users, sc.nodes);
        assert!(full.num_users >= 5 * sc.nodes);
        assert!(sample.mean_out_degree > 1.0);
    }

    #[test]
    fn sampled_trace_is_dense_enough_for_pubsub() {
        let sc = Scale::quick();
        let t = sampled_trace(&sc);
        assert_eq!(t.len(), sc.nodes);
        let with_subs = t.follows.iter().filter(|f| !f.is_empty()).count();
        assert!(
            with_subs as f64 > 0.5 * sc.nodes as f64,
            "most sampled users should follow someone: {with_subs}"
        );
    }
}
