//! The `topology` subcommand: overlay structural-health telemetry.
//!
//! Runs one fixed-seed system, samples [`vitis::topo`] snapshots every
//! few rounds, and exports three artifacts:
//!
//! * a JSONL time series of `topo` records (the same schema the runtime
//!   sampler emits into event traces — docs/METRICS.md §10);
//! * an optional Graphviz DOT rendering of the final overlay (per-kind
//!   links solid, relay paths dashed, rendezvous nodes double-circled);
//! * an end-of-run invariant audit summary with node/topic provenance.
//!
//! Everything is deterministic for a fixed `--nodes`/`--seed` pair: the
//! snapshot iterates nodes in slot order and topics in ascending order,
//! so two invocations produce byte-identical JSONL and DOT files.

use std::fmt::Write as _;

use crate::runner::synthetic_params;
use crate::scale::Scale;
use vitis::runtime::TOPO_SAMPLE_TOPICS;
use vitis::system::{PubSub, VitisSystem};
use vitis::topo::{analyze, audit, OverlaySnapshot, TopoMetrics, Violation};
use vitis_baselines::{OptSystem, RvrSystem};
use vitis_sim::trace::{event_to_json, TraceEvent};
use vitis_workloads::Correlation;

/// Which system the `topology` subcommand builds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemKind {
    /// The full Vitis hybrid overlay (default).
    Vitis,
    /// The rendezvous-routing baseline.
    Rvr,
    /// The unbounded-mesh baseline.
    Opt,
}

impl SystemKind {
    /// Parse a CLI name (`vitis` | `rvr` | `opt`).
    pub fn parse(s: &str) -> Option<SystemKind> {
        match s {
            "vitis" => Some(SystemKind::Vitis),
            "rvr" => Some(SystemKind::Rvr),
            "opt" => Some(SystemKind::Opt),
            _ => None,
        }
    }

    /// Stable lowercase label, used in run names and report headers.
    pub fn as_str(self) -> &'static str {
        match self {
            SystemKind::Vitis => "vitis",
            SystemKind::Rvr => "rvr",
            SystemKind::Opt => "opt",
        }
    }
}

/// Options of one `topology` invocation (paths and strictness are
/// handled by the CLI layer; this is the measurement core).
#[derive(Clone, Copy, Debug)]
pub struct TopologyOpts {
    /// System under observation.
    pub system: SystemKind,
    /// Sampled rounds after warmup.
    pub rounds: u64,
    /// Sampling period in rounds.
    pub every: u64,
}

impl Default for TopologyOpts {
    fn default() -> Self {
        TopologyOpts {
            system: SystemKind::Vitis,
            rounds: 30,
            every: 5,
        }
    }
}

/// Everything one `topology` run produces.
pub struct TopologyRun {
    /// One `topo` JSONL line per sample, in round order.
    pub jsonl: Vec<String>,
    /// Structural metrics of the final snapshot.
    pub final_metrics: TopoMetrics,
    /// Invariant violations found in the final snapshot.
    pub violations: Vec<Violation>,
    /// Graphviz DOT rendering of the final overlay.
    pub dot: String,
    /// Human-readable end-of-run summary (includes the audit verdict).
    pub summary: String,
}

/// Build, warm up, and sample one system; audit the final snapshot.
pub fn run(scale: &Scale, opts: &TopologyOpts) -> TopologyRun {
    let params = synthetic_params(scale, Correlation::High);
    let mut sys: Box<dyn PubSub> = match opts.system {
        SystemKind::Vitis => Box::new(VitisSystem::new(params)),
        SystemKind::Rvr => Box::new(RvrSystem::new(params)),
        SystemKind::Opt => Box::new(OptSystem::new(params)),
    };
    sys.run_rounds(scale.warmup_rounds);

    let every = opts.every.max(1);
    let mut jsonl = Vec::new();
    let mut round = scale.warmup_rounds;
    let mut snap = sys.overlay_snapshot();
    push_sample(&mut jsonl, round, &snap);
    let mut sampled = 0;
    while sampled < opts.rounds {
        let step = every.min(opts.rounds - sampled);
        sys.run_rounds(step);
        sampled += step;
        round += step;
        snap = sys.overlay_snapshot();
        push_sample(&mut jsonl, round, &snap);
    }

    let final_metrics = analyze(&snap, TOPO_SAMPLE_TOPICS);
    let violations = audit(&snap);
    let dot = render_dot(&snap);
    let summary = render_summary(
        opts.system,
        round,
        jsonl.len(),
        &final_metrics,
        &violations,
    );
    TopologyRun {
        jsonl,
        final_metrics,
        violations,
        dot,
        summary,
    }
}

/// Append one `topo` record for `snap` (schema: docs/METRICS.md §10).
fn push_sample(out: &mut Vec<String>, round: u64, snap: &OverlaySnapshot) {
    let probe = vitis::topo::probe(snap, TOPO_SAMPLE_TOPICS);
    out.push(event_to_json(&TraceEvent::TopoSample {
        round,
        now: snap.now,
        probe,
    }));
}

/// Render the final snapshot as deterministic Graphviz DOT. Overlay
/// links are solid (colored by kind), relay upstream paths are dashed
/// and labeled with their topic, and rendezvous holders get a double
/// circle.
pub fn render_dot(snap: &OverlaySnapshot) -> String {
    let mut s = String::new();
    s.push_str("digraph overlay {\n  rankdir=LR;\n  node [shape=circle fontsize=10];\n");
    for nt in &snap.nodes {
        let rdv = nt.relays.iter().any(|r| r.rendezvous);
        let _ = writeln!(
            s,
            "  n{} [label=\"{}\"{}];",
            nt.node.0,
            nt.node.0,
            if rdv { " peripheries=2" } else { "" }
        );
    }
    for nt in &snap.nodes {
        for l in &nt.links {
            if !snap.is_alive(l.peer) {
                continue;
            }
            let color = match l.kind {
                "succ" => "black",
                "pred" => "gray50",
                "sw" => "blue",
                "friend" => "forestgreen",
                _ => "gray30", // mesh and future kinds
            };
            let _ = writeln!(s, "  n{} -> n{} [color={}];", nt.node.0, l.peer.0, color);
        }
        for r in &nt.relays {
            if let Some(up) = r.upstream {
                let _ = writeln!(
                    s,
                    "  n{} -> n{} [style=dashed color=red label=\"T{}\"];",
                    nt.node.0, up.0, r.topic.0
                );
            }
        }
    }
    s.push_str("}\n");
    s
}

/// Render the human-readable end-of-run report.
fn render_summary(
    system: SystemKind,
    final_round: u64,
    samples: usize,
    m: &TopoMetrics,
    violations: &[Violation],
) -> String {
    let p = &m.probe;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "topology audit — {} @ round {} ({} samples)",
        system.as_str(),
        final_round,
        samples
    );
    let _ = writeln!(
        s,
        "  nodes {}  links {}  mean view age {}",
        p.nodes,
        p.links,
        p.mean_view_age
            .map_or("n/a".into(), |a| format!("{a:.2}")),
    );
    let _ = writeln!(
        s,
        "  sampled topics {}: components {} (stitched {}), largest-component frac {:.3}",
        p.sampled_topics, p.components, p.stitched_components, p.largest_component_frac
    );
    let _ = writeln!(
        s,
        "  rendezvous conflicts {}  headless topics {}  dead relay links {}",
        p.rendezvous_conflicts, p.headless_topics, p.dead_links
    );
    let _ = writeln!(
        s,
        "  max gateway load {}  mean relay stretch {}",
        p.max_gateway_load,
        p.mean_relay_stretch
            .map_or("n/a".into(), |x| format!("{x:.2}")),
    );
    if violations.is_empty() {
        let _ = writeln!(s, "  invariants: OK (0 violations)");
    } else {
        let _ = writeln!(s, "  invariants: {} VIOLATIONS", violations.len());
        for v in violations.iter().take(20) {
            let _ = writeln!(
                s,
                "    {} at node {}{}: {}",
                v.kind,
                v.node.0,
                v.topic.map_or(String::new(), |t| format!(" topic {}", t.0)),
                v.detail
            );
        }
        if violations.len() > 20 {
            let _ = writeln!(s, "    ... and {} more", violations.len() - 20);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        let mut s = Scale::proportional(120, 11);
        s.warmup_rounds = 30;
        s
    }

    #[test]
    fn vitis_run_is_audit_clean_and_deterministic() {
        let sc = tiny();
        let opts = TopologyOpts {
            rounds: 10,
            every: 5,
            ..TopologyOpts::default()
        };
        let a = run(&sc, &opts);
        assert!(
            a.violations.is_empty(),
            "unexpected violations:\n{}",
            a.summary
        );
        assert_eq!(a.jsonl.len(), 3); // warmup snapshot + 2 sampled
        assert!(a.jsonl[0].starts_with("{\"type\":\"topo\""));
        // Every line round-trips through the trace parser.
        for line in &a.jsonl {
            vitis_sim::trace::parse_event(line).expect("topo line parses");
        }
        let b = run(&sc, &opts);
        assert_eq!(a.jsonl, b.jsonl, "topology JSONL must be bit-identical");
        assert_eq!(a.dot, b.dot, "DOT export must be bit-identical");
    }

    #[test]
    fn baselines_run_and_export() {
        let sc = tiny();
        for system in [SystemKind::Rvr, SystemKind::Opt] {
            let opts = TopologyOpts {
                system,
                rounds: 5,
                every: 5,
            };
            let r = run(&sc, &opts);
            assert!(r.final_metrics.probe.nodes > 0);
            assert!(r.dot.starts_with("digraph overlay {"));
            assert!(r.dot.ends_with("}\n"));
            match system {
                // OPT has no relay layer, so nothing can dangle.
                SystemKind::Opt => assert!(
                    r.violations.is_empty(),
                    "opt violations:\n{}",
                    r.summary
                ),
                // RVR's hop-capped joins install an upstream belief
                // without ever sending the join onward (`join_step`
                // sets upstream even at max_lookup_hops), so the
                // auditor legitimately reports dangling upstream links
                // — and must report nothing else.
                SystemKind::Rvr => assert!(
                    r.violations.iter().all(|v| v.kind == "asymmetric_upstream"),
                    "rvr unexpected violations:\n{}",
                    r.summary
                ),
                SystemKind::Vitis => unreachable!(),
            }
        }
    }

    #[test]
    fn dot_marks_rendezvous_and_relay_edges() {
        let sc = tiny();
        let r = run(&sc, &TopologyOpts::default());
        assert!(r.dot.contains("peripheries=2"), "no rendezvous node found");
        assert!(r.dot.contains("style=dashed"), "no relay edge found");
    }
}
