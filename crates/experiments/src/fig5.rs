//! Figure 5: distribution of per-node traffic overhead.
//!
//! The paper's answer to "doesn't Vitis just concentrate load on gateways
//! and rendezvous nodes?" — the per-node overhead histogram shows Vitis
//! increasing the fraction of nodes in the lowest bucket while cutting the
//! fraction above 20 % overhead to less than a third of RVR's.

use crate::report::{Figure, Series};
use crate::obs::Obs;
use crate::runner::{measure_obs, synthetic_params, PublishPlan};
use crate::scale::Scale;
use rayon::prelude::*;
use vitis::system::{PubSub, VitisSystem};
use vitis_baselines::RvrSystem;
use vitis_sim::metrics::Histogram;
use vitis_workloads::Correlation;

/// Histogram bins over overhead percent.
pub const BINS: usize = 10;

/// Collect the per-node overhead distribution of one system run.
fn distribution(per_node: &[f64]) -> Vec<(f64, f64)> {
    let mut h = Histogram::new(BINS, 100.0);
    for &pct in per_node {
        h.record(pct);
    }
    // Merge the overflow bin (exactly 100 %) into the last regular bin.
    let mut points: Vec<(f64, f64)> = (0..BINS).map(|i| (h.bin_lower(i), h.fraction(i))).collect();
    if let Some(last) = points.last_mut() {
        last.1 += h.fraction(BINS);
    }
    points
}

/// Fraction of nodes whose overhead exceeds `threshold` percent.
pub fn fraction_above(per_node: &[f64], threshold: f64) -> f64 {
    if per_node.is_empty() {
        return 0.0;
    }
    per_node.iter().filter(|&&x| x > threshold).count() as f64 / per_node.len() as f64
}

/// Run the experiment: Vitis and RVR on correlated and random
/// subscriptions, per-node distribution over nodes with ≥ `min_msgs`
/// data-plane messages.
pub fn run(scale: &Scale) -> Figure {
    let jobs: Vec<(&str, bool, Correlation)> = vec![
        ("Vitis - correlated", true, Correlation::High),
        ("Vitis - random", true, Correlation::Random),
        ("RVR - correlated", false, Correlation::High),
        ("RVR - random", false, Correlation::Random),
    ];
    let results: Vec<(String, Vec<f64>)> = jobs
        .par_iter()
        .map(|&(label, vitis, corr)| (label.to_string(), per_node_overhead(scale, vitis, corr)))
        .collect();

    let mut fig = Figure::new(
        "Figure 5: distribution of per-node traffic overhead",
        "overhead bin lower edge (%)",
        "fraction of nodes",
    );
    for (label, per_node) in &results {
        fig.push_series(Series::new(label.clone(), distribution(per_node)));
    }
    for (label, per_node) in &results {
        fig.note(format!(
            "{label}: {:.1}% of nodes above 20% overhead",
            100.0 * fraction_above(per_node, 20.0)
        ));
    }
    fig.note(
        "paper: Vitis grows the <=10% bucket and cuts nodes above 20% overhead to \
         less than a third of RVR's",
    );
    fig
}

/// Per-node overhead percentages for one system/pattern.
pub fn per_node_overhead(scale: &Scale, vitis: bool, corr: Correlation) -> Vec<f64> {
    let sys_name = if vitis { "vitis" } else { "rvr" };
    let ctx = Obs::global().start("fig5", &format!("{sys_name}-{}", corr.slug()));
    let params = synthetic_params(scale, corr);
    if vitis {
        let mut sys = VitisSystem::new(params);
        measure_obs(&mut sys, scale, PublishPlan::RoundRobin, ctx);
        sys.per_node_overhead(1)
    } else {
        let mut sys = RvrSystem::new(params);
        measure_obs(&mut sys, scale, PublishPlan::RoundRobin, ctx);
        sys.per_node_overhead(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_is_normalized() {
        let d = distribution(&[0.0, 5.0, 15.0, 99.9, 100.0]);
        let total: f64 = d.iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(d.len(), BINS);
        assert_eq!(d[0].0, 0.0);
    }

    #[test]
    fn fraction_above_counts_strictly() {
        assert_eq!(fraction_above(&[10.0, 20.0, 30.0, 40.0], 20.0), 0.5);
        assert_eq!(fraction_above(&[], 20.0), 0.0);
    }

    /// At smoke scale: fewer Vitis nodes carry heavy relay load than RVR
    /// nodes on correlated subscriptions.
    #[test]
    fn vitis_has_fewer_overloaded_nodes() {
        let mut sc = Scale::quick();
        sc.warmup_rounds = 45;
        sc.events = 120;
        let v = per_node_overhead(&sc, true, Correlation::High);
        let r = per_node_overhead(&sc, false, Correlation::High);
        let fv = fraction_above(&v, 20.0);
        let fr = fraction_above(&r, 20.0);
        assert!(fv < fr, "vitis {fv} vs rvr {fr} above 20% overhead");
    }
}
