//! Offline delivery-forensics analyzer (the `analyze` subcommand).
//!
//! Reads a `--trace-out` JSONL file, reconstructs each traced event's
//! dissemination tree from its `pub_event`/`fwd`/`deliver_event` records,
//! and prints per-run summaries: tree shape, hop and latency percentiles,
//! and the loss-attribution breakdown (`drop_event` records), checking
//! that the per-reason counts sum exactly to `expected - delivered`.
//! Optionally exports the per-topic dissemination trees as Graphviz DOT.
//!
//! The record schema is documented in `docs/METRICS.md` §7.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use vitis_sim::metrics::Histogram;
use vitis_sim::trace::{parse_stamped, TraceEvent};

/// One first-arrival delivery of an event at a subscriber.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Subscriber's engine slot.
    pub node: u32,
    /// Hops travelled by the first copy to arrive.
    pub hops: u32,
    /// Publish-to-arrival latency in ticks.
    pub latency: u64,
    /// `>`-joined causal path from publisher to subscriber.
    pub path: String,
    /// Whether the first copy arrived through the anti-entropy repair
    /// layer rather than the protocol's own dissemination.
    pub recovered: bool,
}

/// One event's reconstructed dissemination record.
#[derive(Clone, Debug, Default)]
pub struct EventTrace {
    /// Topic id (from the `pub_event` record; absent if that record was
    /// evicted from the ring buffer).
    pub topic: Option<u64>,
    /// Publisher's engine slot.
    pub publisher: Option<u32>,
    /// Publish time in ticks.
    pub published_at: Option<u64>,
    /// Expected `(event, subscriber)` deliveries.
    pub expected: u64,
    /// Forward edges `(from, to, hop)` in record order.
    pub fwds: Vec<(u32, u32, u32)>,
    /// First-arrival deliveries.
    pub delivers: Vec<Delivery>,
    /// Attributed losses `(subscriber, reason)`.
    pub drops: Vec<(u32, String)>,
    /// Copies of this event lost in transit (`net_drop` records). Lost
    /// copies are not misses — they never count against
    /// `expected - delivered`; a miss they caused shows up in `drops`
    /// with reason `network`.
    pub net_drops: u64,
}

/// Everything reconstructed for one run id.
#[derive(Clone, Debug, Default)]
pub struct RunForensics {
    /// Per-event records keyed by event id.
    pub events: BTreeMap<u64, EventTrace>,
    /// `(capacity, recorded, evicted)` from the run's `trace_meta`
    /// record; `evicted > 0` means the forensics below are incomplete.
    pub meta: Option<(u64, u64, u64)>,
    /// Reconvergence records `(system, severity %, repair on, rounds)`;
    /// `rounds` is `None` for runs that never re-entered the band.
    pub reconv: Vec<(String, u32, bool, Option<u64>)>,
}

/// A parsed trace file: per-run forensics plus parse accounting.
#[derive(Clone, Debug, Default)]
pub struct TraceFile {
    /// Forensics grouped by run stamp (unstamped lines group under `""`).
    pub runs: BTreeMap<String, RunForensics>,
    /// Non-empty lines read.
    pub lines: u64,
    /// Lines that failed to parse as trace records.
    pub skipped: u64,
    /// Well-formed records that carry no forensic payload (round
    /// boundaries, samples, health probes, ...).
    pub other_events: u64,
}

/// Parse a JSONL trace dump into grouped per-event forensics.
/// Malformed lines are counted in [`TraceFile::skipped`], never fatal.
pub fn parse_trace(text: &str) -> TraceFile {
    let mut tf = TraceFile::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        tf.lines += 1;
        let (run, ev) = match parse_stamped(line) {
            Ok(x) => x,
            Err(_) => {
                tf.skipped += 1;
                continue;
            }
        };
        let rf = tf.runs.entry(run.unwrap_or_default()).or_default();
        match ev {
            TraceEvent::PubEvent {
                now,
                event,
                topic,
                node,
                expected,
            } => {
                let e = rf.events.entry(event).or_default();
                e.topic = Some(topic);
                e.publisher = Some(node);
                e.published_at = Some(now);
                e.expected = expected;
            }
            TraceEvent::Fwd {
                event,
                from,
                to,
                hop,
                ..
            } => rf
                .events
                .entry(event)
                .or_default()
                .fwds
                .push((from, to, hop)),
            TraceEvent::DeliverEvent {
                event,
                node,
                hops,
                latency,
                path,
                recovered,
                ..
            } => rf.events.entry(event).or_default().delivers.push(Delivery {
                node,
                hops,
                latency,
                path,
                recovered,
            }),
            TraceEvent::DropEvent {
                event,
                node,
                reason,
                ..
            } => rf
                .events
                .entry(event)
                .or_default()
                .drops
                .push((node, reason.into_owned())),
            TraceEvent::NetDrop {
                event: Some(event), ..
            } => rf.events.entry(event).or_default().net_drops += 1,
            // Control-plane copies carry no event id; nothing to pin the
            // drop to.
            TraceEvent::NetDrop { event: None, .. } => tf.other_events += 1,
            TraceEvent::TraceMeta {
                capacity,
                recorded,
                evicted,
            } => rf.meta = Some((capacity, recorded, evicted)),
            TraceEvent::Reconv {
                system,
                severity_pct,
                repair,
                rounds,
            } => rf
                .reconv
                .push((system.into_owned(), severity_pct, repair, rounds)),
            _ => tf.other_events += 1,
        }
    }
    tf
}

/// Tree edges `(parent, child)` implied by the causal delivery paths of
/// one event (consecutive path pairs, deduplicated).
pub fn tree_edges(e: &EventTrace) -> BTreeSet<(u32, u32)> {
    let mut edges = BTreeSet::new();
    for d in &e.delivers {
        let slots: Vec<u32> = d.path.split('>').filter_map(|s| s.parse().ok()).collect();
        for w in slots.windows(2) {
            edges.insert((w[0], w[1]));
        }
    }
    edges
}

/// Render the human-readable forensics report.
pub fn report(tf: &TraceFile) -> String {
    let mut o = String::new();
    let total_events: usize = tf.runs.values().map(|r| r.events.len()).sum();
    let _ = writeln!(
        o,
        "# delivery forensics — {} run(s), {} traced event(s), {} line(s) read, {} unparsable",
        tf.runs.len(),
        total_events,
        tf.lines,
        tf.skipped
    );
    for (run, rf) in &tf.runs {
        let name = if run.is_empty() { "(unstamped)" } else { run };
        let _ = writeln!(o, "\n## run {name}");
        if let Some((cap, recorded, evicted)) = rf.meta {
            if evicted > 0 {
                let _ = writeln!(
                    o,
                    "WARNING: ring buffer evicted {evicted} of {recorded} events \
                     (capacity {cap}) — forensics below are incomplete"
                );
            }
        }
        let expected: u64 = rf.events.values().map(|e| e.expected).sum();
        let delivered: u64 = rf.events.values().map(|e| e.delivers.len() as u64).sum();
        let dropped: u64 = rf.events.values().map(|e| e.drops.len() as u64).sum();
        let fwds: u64 = rf.events.values().map(|e| e.fwds.len() as u64).sum();
        let _ = writeln!(
            o,
            "events {}  expected {expected}  delivered {delivered}  dropped {dropped}  forwards {fwds}",
            rf.events.len()
        );
        let net_drops: u64 = rf.events.values().map(|e| e.net_drops).sum();
        if net_drops > 0 {
            let _ = writeln!(
                o,
                "in-transit drops: {net_drops} lost cop(ies) — informational; \
                 resulting misses appear under reason `network`"
            );
        }
        let recovered: u64 = rf
            .events
            .values()
            .map(|e| e.delivers.iter().filter(|d| d.recovered).count() as u64)
            .sum();
        if recovered > 0 {
            let _ = writeln!(
                o,
                "recovered deliveries: {recovered} of {delivered} arrived through \
                 the anti-entropy repair layer"
            );
        }
        for (system, severity_pct, repair, rounds) in &rf.reconv {
            let ae = if *repair { "repair on" } else { "repair off" };
            match rounds {
                Some(r) => {
                    let _ = writeln!(
                        o,
                        "reconvergence: {system} at {severity_pct}% isolated ({ae}) — {r} round(s)"
                    );
                }
                None => {
                    let _ = writeln!(
                        o,
                        "reconvergence: {system} at {severity_pct}% isolated ({ae}) — UNRECOVERED \
                         within the observation window"
                    );
                }
            }
        }

        // Delivery-tree shape over all reconstructed events.
        let (mut edges, mut depth) = (0usize, 0usize);
        for e in rf.events.values() {
            edges += tree_edges(e).len();
            depth = depth.max(
                e.delivers
                    .iter()
                    .map(|d| d.path.split('>').count().saturating_sub(1))
                    .max()
                    .unwrap_or(0),
            );
        }
        let _ = writeln!(o, "trees: {edges} causal edge(s), max depth {depth}");

        let hops: Vec<f64> = rf
            .events
            .values()
            .flat_map(|e| e.delivers.iter().map(|d| f64::from(d.hops)))
            .collect();
        let lat: Vec<f64> = rf
            .events
            .values()
            .flat_map(|e| e.delivers.iter().map(|d| d.latency as f64))
            .collect();
        percentile_line(&mut o, "hops   ", &hops);
        percentile_line(&mut o, "latency", &lat);

        // Loss attribution: per-reason counts must partition the misses.
        let mut by_reason: BTreeMap<&str, u64> = BTreeMap::new();
        for e in rf.events.values() {
            for (_, reason) in &e.drops {
                *by_reason.entry(reason).or_default() += 1;
            }
        }
        if expected > 0 {
            let _ = writeln!(o, "loss attribution:");
            for (reason, count) in &by_reason {
                let _ = writeln!(o, "  {reason:<22} {count}");
            }
            let check = if dropped == expected - delivered {
                "ok"
            } else {
                "MISMATCH"
            };
            let _ = writeln!(
                o,
                "  {:<22} {dropped}  (expected {expected} - delivered {delivered} = {}; {check})",
                "total",
                expected - delivered
            );
        }
    }
    o
}

/// Append one `p50/p90/p99/max` line for `xs` (skipped when empty),
/// estimated via [`Histogram::percentile`].
fn percentile_line(o: &mut String, label: &str, xs: &[f64]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut h = Histogram::new(256, (max + 1.0).max(1.0));
    for &x in xs {
        h.record(x);
    }
    let _ = writeln!(
        o,
        "{label}: p50 {:.1}  p90 {:.1}  p99 {:.1}  max {max:.0}  (n={})",
        h.percentile(0.50),
        h.percentile(0.90),
        h.percentile(0.99),
        xs.len()
    );
}

/// Export the per-topic dissemination trees as Graphviz DOT: one cluster
/// per topic, aggregating the causal edges of every event on that topic
/// across all runs.
pub fn export_dot(tf: &TraceFile) -> String {
    let mut by_topic: BTreeMap<u64, BTreeSet<(u32, u32)>> = BTreeMap::new();
    for rf in tf.runs.values() {
        for e in rf.events.values() {
            let Some(topic) = e.topic else { continue };
            by_topic.entry(topic).or_default().extend(tree_edges(e));
        }
    }
    let mut o = String::from("digraph dissemination {\n  node [shape=circle];\n");
    for (t, edges) in &by_topic {
        let _ = writeln!(o, "  subgraph cluster_topic_{t} {{");
        let _ = writeln!(o, "    label=\"topic {t}\";");
        let slots: BTreeSet<u32> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        for s in slots {
            let _ = writeln!(o, "    t{t}_n{s} [label=\"{s}\"];");
        }
        for (a, b) in edges {
            let _ = writeln!(o, "    t{t}_n{a} -> t{t}_n{b};");
        }
        let _ = writeln!(o, "  }}");
    }
    o.push_str("}\n");
    o
}

/// Read `path`, write the optional DOT export, and return the report.
pub fn run_file(path: &str, dot_out: Option<&str>) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let tf = parse_trace(&text);
    if tf.lines == 0 {
        return Err(format!("{path} holds no trace records"));
    }
    if let Some(dot_path) = dot_out {
        std::fs::write(dot_path, export_dot(&tf))
            .map_err(|e| format!("cannot write {dot_path}: {e}"))?;
    }
    Ok(report(&tf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> &'static str {
        concat!(
            "{\"run\":\"fig6/vitis#0\",\"type\":\"trace_meta\",\"capacity\":100,\"recorded\":9,\"evicted\":0}\n",
            "{\"run\":\"fig6/vitis#0\",\"type\":\"pub_event\",\"now\":10,\"event\":1,\"topic\":3,\"node\":0,\"expected\":3}\n",
            "{\"run\":\"fig6/vitis#0\",\"type\":\"fwd\",\"now\":10,\"event\":1,\"from\":0,\"to\":5,\"hop\":1}\n",
            "{\"run\":\"fig6/vitis#0\",\"type\":\"fwd\",\"now\":12,\"event\":1,\"from\":5,\"to\":7,\"hop\":2}\n",
            "{\"run\":\"fig6/vitis#0\",\"type\":\"deliver_event\",\"now\":12,\"event\":1,\"node\":5,\"hops\":1,\"latency\":2,\"path\":\"0>5\"}\n",
            "{\"run\":\"fig6/vitis#0\",\"type\":\"deliver_event\",\"now\":14,\"event\":1,\"node\":7,\"hops\":2,\"latency\":4,\"path\":\"0>5>7\"}\n",
            "{\"run\":\"fig6/vitis#0\",\"type\":\"drop_event\",\"now\":90,\"event\":1,\"node\":9,\"reason\":\"no_gateway\"}\n",
            "{\"run\":\"fig6/vitis#0\",\"type\":\"net_drop\",\"now\":11,\"from\":0,\"to\":9,\"kind\":\"notification\",\"event\":1}\n",
            "{\"run\":\"fig6/vitis#0\",\"type\":\"round\",\"round\":1,\"now\":64,\"alive\":10}\n",
            "this line is not json\n",
        )
    }

    fn repair_trace() -> String {
        concat!(
            "{\"run\":\"res/vitis+ae-s0.25#0\",\"type\":\"pub_event\",\"now\":10,\"event\":1,\"topic\":3,\"node\":0,\"expected\":2}\n",
            "{\"run\":\"res/vitis+ae-s0.25#0\",\"type\":\"deliver_event\",\"now\":12,\"event\":1,\"node\":5,\"hops\":1,\"latency\":2,\"path\":\"0>5\"}\n",
            "{\"run\":\"res/vitis+ae-s0.25#0\",\"type\":\"deliver_event\",\"now\":40,\"event\":1,\"node\":7,\"hops\":2,\"latency\":30,\"path\":\"0>5>7\",\"recovered\":true}\n",
            "{\"run\":\"res/vitis+ae-s0.25#0\",\"type\":\"reconv\",\"system\":\"vitis\",\"severity_pct\":25,\"repair\":true,\"rounds\":9}\n",
            "{\"run\":\"res/rvr-s0.5#0\",\"type\":\"reconv\",\"system\":\"rvr\",\"severity_pct\":50,\"repair\":false,\"rounds\":null}\n",
        )
        .to_string()
    }

    #[test]
    fn parse_groups_by_run_and_event() {
        let tf = parse_trace(sample_trace());
        assert_eq!(tf.lines, 10);
        assert_eq!(tf.skipped, 1);
        assert_eq!(tf.other_events, 1);
        let rf = &tf.runs["fig6/vitis#0"];
        assert_eq!(rf.meta, Some((100, 9, 0)));
        let e = &rf.events[&1];
        assert_eq!(e.topic, Some(3));
        assert_eq!(e.publisher, Some(0));
        assert_eq!(e.expected, 3);
        assert_eq!(e.fwds.len(), 2);
        assert_eq!(e.delivers.len(), 2);
        assert_eq!(e.drops, vec![(9, "no_gateway".to_string())]);
        assert_eq!(e.net_drops, 1, "in-transit drop attributed to the event");
    }

    #[test]
    fn net_drops_stay_out_of_the_exact_sum_check() {
        let tf = parse_trace(sample_trace());
        let r = report(&tf);
        assert!(r.contains("in-transit drops: 1 lost"), "report:\n{r}");
        // The lost copy is informational; the exact-sum check still holds.
        assert!(r.contains("(expected 3 - delivered 2 = 1; ok)"));
    }

    #[test]
    fn report_checks_that_drops_cover_the_misses() {
        let tf = parse_trace(sample_trace());
        let r = report(&tf);
        assert!(r.contains("expected 3  delivered 2  dropped 1"));
        assert!(r.contains("no_gateway"));
        assert!(r.contains("(expected 3 - delivered 2 = 1; ok)"));
        assert!(r.contains("max depth 2"));
        // One delivery was dropped short: a missing drop_event must be
        // flagged rather than silently accepted.
        let truncated: String = sample_trace()
            .lines()
            .filter(|l| !l.contains("drop_event"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(report(&parse_trace(&truncated)).contains("MISMATCH"));
    }

    #[test]
    fn recovered_deliveries_and_reconv_records_render() {
        let tf = parse_trace(&repair_trace());
        let rf = &tf.runs["res/vitis+ae-s0.25#0"];
        assert_eq!(rf.events[&1].delivers.len(), 2);
        assert!(rf.events[&1].delivers[1].recovered);
        assert!(!rf.events[&1].delivers[0].recovered);
        assert_eq!(rf.reconv, vec![("vitis".to_string(), 25, true, Some(9))]);
        assert_eq!(
            tf.runs["res/rvr-s0.5#0"].reconv,
            vec![("rvr".to_string(), 50, false, None)]
        );
        let r = report(&tf);
        assert!(
            r.contains("recovered deliveries: 1 of 2"),
            "repair split rendered:\n{r}"
        );
        assert!(
            r.contains("reconvergence: vitis at 25% isolated (repair on) — 9 round(s)"),
            "recovered run rendered:\n{r}"
        );
        assert!(
            r.contains("reconvergence: rvr at 50% isolated (repair off) — UNRECOVERED"),
            "unrecovered run rendered explicitly:\n{r}"
        );
    }

    #[test]
    fn report_warns_on_truncated_ring() {
        let text = sample_trace().replace("\"evicted\":0", "\"evicted\":4");
        assert!(report(&parse_trace(&text)).contains("evicted 4 of 9"));
    }

    #[test]
    fn dot_export_holds_the_causal_tree() {
        let tf = parse_trace(sample_trace());
        let dot = export_dot(&tf);
        assert!(dot.starts_with("digraph dissemination {"));
        assert!(dot.contains("subgraph cluster_topic_3"));
        assert!(dot.contains("t3_n0 -> t3_n5;"));
        assert!(dot.contains("t3_n5 -> t3_n7;"));
        assert!(!dot.contains("t3_n9"), "dropped subscriber is no tree node");
    }

    #[test]
    fn percentiles_come_from_the_recorded_sample() {
        let tf = parse_trace(sample_trace());
        let r = report(&tf);
        assert!(r.contains("hops   "), "hop percentiles present:\n{r}");
        assert!(r.contains("latency"), "latency percentiles present:\n{r}");
        assert!(r.contains("max 2  (n=2)"), "hop max reported:\n{r}");
    }
}
