//! Shared system-harness machinery: the workload bookkeeping every
//! publish/subscribe system (Vitis, RVR, OPT) needs around its engine —
//! ground-truth subscriber sets, publisher choice, rate-weighted topic
//! draws, and the join-grace rule for expected deliveries.

use crate::topic::{RateTable, Subs, TopicId, TopicSet};
use rand::rngs::SmallRng;
use rand::Rng;
use std::sync::Arc;
use vitis_sim::event::NodeIdx;
use vitis_sim::rng::{domain, stream_rng};
use vitis_sim::time::{Duration, SimTime};

/// Ground-truth subscription state and publish-scheduling helpers. Logical
/// node ids coincide with engine slots (systems allocate slots in logical
/// order and re-join into the same slot).
pub struct Workload {
    subs: Vec<Subs>,
    topic_subscribers: Vec<Vec<u32>>,
    rates: Arc<RateTable>,
    cum_rates: Vec<f64>,
    grace: Duration,
    rng: SmallRng,
}

impl Workload {
    /// Build from per-node subscription sets over `num_topics` topics.
    /// Accepts owned [`TopicSet`]s or already-interned [`Subs`] handles
    /// (the latter avoids re-allocating shared subscription storage).
    ///
    /// # Panics
    /// Panics if a subscription references a topic `>= num_topics`.
    pub fn new<S: Into<Subs>>(
        subscriptions: Vec<S>,
        num_topics: usize,
        rates: RateTable,
        grace: Duration,
        seed: u64,
    ) -> Self {
        let subscriptions: Vec<Subs> = subscriptions.into_iter().map(Into::into).collect();
        let mut topic_subscribers = vec![Vec::new(); num_topics];
        for (i, s) in subscriptions.iter().enumerate() {
            for t in s.iter() {
                assert!(
                    (t.0 as usize) < num_topics,
                    "subscription to unknown topic {t}"
                );
                topic_subscribers[t.0 as usize].push(i as u32);
            }
        }
        let mut cum_rates = Vec::with_capacity(num_topics);
        let mut acc = 0.0;
        for t in 0..num_topics {
            acc += rates.rate(TopicId(t as u32)).max(0.0);
            cum_rates.push(acc);
        }
        Workload {
            subs: subscriptions,
            topic_subscribers,
            rates: Arc::new(rates),
            cum_rates,
            grace,
            rng: stream_rng(seed, domain::PUBLISH, 0),
        }
    }

    /// Number of logical nodes.
    pub fn num_nodes(&self) -> usize {
        self.subs.len()
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.topic_subscribers.len()
    }

    /// The shared rate table.
    pub fn rates(&self) -> &Arc<RateTable> {
        &self.rates
    }

    /// The subscription set of a logical node.
    pub fn subs_of(&self, logical: u32) -> &Subs {
        &self.subs[logical as usize]
    }

    /// All logical subscribers of `topic`.
    pub fn subscribers(&self, topic: TopicId) -> &[u32] {
        &self.topic_subscribers[topic.0 as usize]
    }

    /// Replace a node's subscriptions (drives dynamic-subscription tests).
    pub fn resubscribe(&mut self, logical: u32, new_subs: TopicSet) {
        let old = self.subs[logical as usize].clone();
        for t in old.iter() {
            self.topic_subscribers[t.0 as usize].retain(|&s| s != logical);
        }
        for t in new_subs.iter() {
            assert!((t.0 as usize) < self.topic_subscribers.len());
            self.topic_subscribers[t.0 as usize].push(logical);
        }
        self.subs[logical as usize] = Arc::new(new_subs);
    }

    /// Draw a topic with probability proportional to its publication rate
    /// (uniform if all rates are zero).
    pub fn draw_topic(&mut self) -> TopicId {
        let total = *self.cum_rates.last().unwrap_or(&0.0);
        if total <= 0.0 {
            return TopicId(self.rng.gen_range(0..self.num_topics().max(1)) as u32);
        }
        let x = self.rng.gen::<f64>() * total;
        let i = self.cum_rates.partition_point(|&c| c <= x);
        TopicId(i.min(self.num_topics() - 1) as u32)
    }

    /// Pick a random publisher for `topic` among subscribers satisfying
    /// `alive` (the paper publishes from within the topic's population).
    pub fn choose_publisher(
        &mut self,
        topic: TopicId,
        mut alive: impl FnMut(u32) -> bool,
    ) -> Option<u32> {
        let cands: Vec<u32> = self.topic_subscribers[topic.0 as usize]
            .iter()
            .copied()
            .filter(|&s| alive(s))
            .collect();
        if cands.is_empty() {
            None
        } else {
            Some(cands[self.rng.gen_range(0..cands.len())])
        }
    }

    /// The expected-delivery set for an event on `topic` published at
    /// `now`: alive subscribers other than the publisher whose join time is
    /// at least the grace period in the past (the "10 seconds after the
    /// node joins" rule of Section IV-E).
    pub fn expected_subscribers(
        &self,
        topic: TopicId,
        publisher: u32,
        now: SimTime,
        mut joined_at: impl FnMut(u32) -> Option<SimTime>,
    ) -> Vec<NodeIdx> {
        self.topic_subscribers[topic.0 as usize]
            .iter()
            .copied()
            .filter(|&s| s != publisher)
            .filter_map(|s| {
                let j = joined_at(s)?;
                (j + self.grace <= now).then_some(NodeIdx(s))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[u32]) -> TopicSet {
        TopicSet::from_iter(v.iter().copied())
    }

    fn workload() -> Workload {
        Workload::new(
            vec![ts(&[0, 1]), ts(&[1]), ts(&[0, 2]), ts(&[])],
            3,
            RateTable::uniform(3),
            Duration(10),
            7,
        )
    }

    #[test]
    fn subscriber_index_is_inverted_correctly() {
        let w = workload();
        assert_eq!(w.subscribers(TopicId(0)), &[0, 2]);
        assert_eq!(w.subscribers(TopicId(1)), &[0, 1]);
        assert_eq!(w.subscribers(TopicId(2)), &[2]);
        assert_eq!(w.num_nodes(), 4);
        assert_eq!(w.num_topics(), 3);
    }

    #[test]
    fn choose_publisher_respects_aliveness() {
        let mut w = workload();
        assert_eq!(w.choose_publisher(TopicId(2), |_| true), Some(2));
        assert_eq!(w.choose_publisher(TopicId(2), |_| false), None);
        let p = w.choose_publisher(TopicId(0), |s| s != 0).unwrap();
        assert_eq!(p, 2);
    }

    #[test]
    fn expected_excludes_publisher_and_recent_joiners() {
        let w = workload();
        let joined = |s: u32| -> Option<SimTime> {
            match s {
                0 => Some(SimTime(0)),
                1 => Some(SimTime(95)), // joined too recently for grace 10
                _ => None,              // offline
            }
        };
        let exp = w.expected_subscribers(TopicId(1), 0, SimTime(100), joined);
        assert!(exp.is_empty());
        let exp = w.expected_subscribers(TopicId(1), 99, SimTime(100), joined);
        assert_eq!(exp, vec![NodeIdx(0)]);
        let exp = w.expected_subscribers(TopicId(1), 99, SimTime(200), joined);
        assert_eq!(exp, vec![NodeIdx(0), NodeIdx(1)]);
    }

    #[test]
    fn draw_topic_follows_rates() {
        let mut w = Workload::new(
            vec![ts(&[0])],
            3,
            RateTable::from_rates(vec![0.0, 0.0, 5.0]),
            Duration(0),
            1,
        );
        for _ in 0..100 {
            assert_eq!(w.draw_topic(), TopicId(2));
        }
    }

    #[test]
    fn draw_topic_uniform_when_rates_zero() {
        let mut w = Workload::new(
            vec![ts(&[0])],
            4,
            RateTable::from_rates(vec![0.0; 4]),
            Duration(0),
            1,
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(w.draw_topic().0);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn resubscribe_rewires_index() {
        let mut w = workload();
        w.resubscribe(0, ts(&[2]));
        assert_eq!(w.subscribers(TopicId(0)), &[2]);
        assert_eq!(w.subscribers(TopicId(1)), &[1]);
        assert_eq!(w.subscribers(TopicId(2)), &[2, 0]);
        assert!(w.subs_of(0).contains(TopicId(2)));
    }

    #[test]
    #[should_panic(expected = "unknown topic")]
    fn unknown_topic_subscription_panics() {
        Workload::new(vec![ts(&[9])], 3, RateTable::uniform(3), Duration(0), 1);
    }
}
