//! A compact sorted-vector map for per-node hot state.
//!
//! Vitis nodes hold many tiny maps — gateway proposals per subscribed topic,
//! per-neighbor advertisement caches, reverse-link tables, relay entries —
//! each with a handful of entries (bounded by the view size or subscription
//! count, typically < 32). A `BTreeMap` spends a heap allocation per node
//! (or per leaf) and chases pointers on every lookup; at N = 100k–1M nodes
//! that dominates the round loop's cache behavior. [`SmallMap`] stores the
//! entries as a single `Vec<(K, V)>` kept sorted by key: lookups are a
//! binary search over one contiguous allocation, iteration is a linear scan
//! in ascending key order — the *same* deterministic order `BTreeMap`
//! iteration produced, so replacing one with the other is behavior- and
//! golden-trace-preserving.
//!
//! The API mirrors the `BTreeMap` subset the node code uses (`get`,
//! `insert`, `remove`, `retain`, `iter`, `keys`, `values_mut`, …) with one
//! deviation: instead of the full `Entry` API there is
//! [`SmallMap::entry_or_default`], covering the only entry pattern the
//! callers need.

/// A map backed by a `Vec<(K, V)>` sorted by `K`.
///
/// Insertions and removals are `O(n)` shifts — the right trade for the
/// small, read-mostly maps in per-node state, where `n` is bounded by the
/// fanout/view size and the contiguous layout wins on every lookup and scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K, V> Default for SmallMap<K, V> {
    fn default() -> Self {
        SmallMap {
            entries: Vec::new(),
        }
    }
}

impl<K: Ord + Copy, V> SmallMap<K, V> {
    /// An empty map (no allocation until the first insert).
    pub fn new() -> Self {
        SmallMap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn pos(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.pos(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value for `key`, if present.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.pos(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.pos(key).is_ok()
    }

    /// Insert `value` under `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.pos(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.pos(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The value for `key`, inserting `V::default()` first if absent —
    /// the `entry(key).or_default()` pattern.
    pub fn entry_or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        let i = match self.pos(&key) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (key, V::default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Keep only the entries for which `f` returns true, preserving order.
    pub fn retain<F: FnMut(&K, &mut V) -> bool>(&mut self, mut f: F) {
        self.entries.retain_mut(|(k, v)| f(k, v));
    }

    /// Entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Mutable values in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.entries.iter_mut().map(|(_, v)| v)
    }
}

impl<'a, K: Ord + Copy, V> IntoIterator for &'a SmallMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;

    fn into_iter(self) -> Self::IntoIter {
        fn split<K, V>(e: &(K, V)) -> (&K, &V) {
            (&e.0, &e.1)
        }
        self.entries.iter().map(split as fn(&(K, V)) -> (&K, &V))
    }
}

impl<K: Ord + Copy, V> FromIterator<(K, V)> for SmallMap<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut m = SmallMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: SmallMap<u32, &str> = SmallMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, "five"), None);
        assert_eq!(m.insert(1, "one"), None);
        assert_eq!(m.insert(3, "three"), None);
        assert_eq!(m.insert(3, "THREE"), Some("three"));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&3), Some(&"THREE"));
        assert_eq!(m.get(&2), None);
        assert!(m.contains_key(&1));
        assert_eq!(m.remove(&1), Some("one"));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iterates_in_ascending_key_order() {
        let mut m: SmallMap<u32, u32> = SmallMap::new();
        for k in [9, 2, 7, 4, 0] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, vec![0, 2, 4, 7, 9]);
        let pairs: Vec<(u32, u32)> = (&m).into_iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(pairs, vec![(0, 0), (2, 20), (4, 40), (7, 70), (9, 90)]);
    }

    #[test]
    fn matches_btreemap_on_random_ops() {
        use std::collections::BTreeMap;
        let mut small: SmallMap<u16, u64> = SmallMap::new();
        let mut tree: BTreeMap<u16, u64> = BTreeMap::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for step in 0..4000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 64) as u16;
            match x % 5 {
                0 | 1 => {
                    assert_eq!(small.insert(k, step), tree.insert(k, step));
                }
                2 => {
                    assert_eq!(small.remove(&k), tree.remove(&k));
                }
                3 => {
                    assert_eq!(small.get(&k), tree.get(&k));
                    assert_eq!(small.contains_key(&k), tree.contains_key(&k));
                }
                _ => {
                    *small.entry_or_default(k) += 1;
                    *tree.entry(k).or_default() += 1;
                }
            }
            if step % 97 == 0 {
                small.retain(|k, _| k % 3 != 0);
                tree.retain(|k, _| k % 3 != 0);
            }
        }
        let a: Vec<(u16, u64)> = small.iter().map(|(&k, &v)| (k, v)).collect();
        let b: Vec<(u16, u64)> = tree.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn entry_or_default_and_values_mut() {
        let mut m: SmallMap<u8, Vec<u8>> = SmallMap::new();
        m.entry_or_default(2).push(20);
        m.entry_or_default(1).push(10);
        m.entry_or_default(2).push(21);
        assert_eq!(m.get(&2), Some(&vec![20, 21]));
        for v in m.values_mut() {
            v.push(99);
        }
        assert_eq!(m.get(&1), Some(&vec![10, 99]));
        let vals: Vec<&Vec<u8>> = m.values().collect();
        assert_eq!(vals.len(), 2);
    }

    #[test]
    fn retain_preserves_sorted_order() {
        let mut m: SmallMap<u32, u32> = (0..20u32).map(|k| (k, k)).collect();
        m.retain(|k, v| {
            *v += 1;
            k % 2 == 0
        });
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, (0..20).filter(|k| k % 2 == 0).collect::<Vec<_>>());
        assert_eq!(m.get(&4), Some(&5));
    }
}
