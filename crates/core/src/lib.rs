//! # vitis
//!
//! A from-scratch implementation of **Vitis** — the gossip-based hybrid
//! overlay for internet-scale topic-based publish/subscribe introduced by
//! Rahimian, Girdzijauskas, Payberah and Haridi (IEEE IPDPS 2011).
//!
//! Vitis combines two ostensibly opposite mechanisms under a *bounded node
//! degree*:
//!
//! * **unstructured clustering** — a gossip preference function (Equation 1,
//!   [`utility()`]) groups nodes with similar subscriptions into clusters, so
//!   most dissemination is flooding among interested peers; and
//! * **structured rendezvous routing** — a Symphony-style navigable
//!   small-world ring lets each cluster elect a few *gateways*
//!   ([`gateway`], Algorithm 5) that greedily route to the topic's
//!   rendezvous node, stitching all clusters of a topic together over
//!   short relay paths ([`relay`]).
//!
//! The result delivers every event to every subscriber (100 % hit ratio)
//! while relay (uninteresting) traffic stays far below a Scribe-like
//! rendezvous-routing design, and propagation delay stays `O(log²N)`.
//!
//! ## Quick start
//!
//! ```
//! use vitis::prelude::*;
//!
//! // 64 nodes, 16 topics, 4 random subscriptions each.
//! let mut sys = random_system(64, 16, 4, 7);
//! sys.run_rounds(30); // let gossip converge
//! sys.reset_metrics();
//! for t in 0..16 {
//!     sys.publish(TopicId(t));
//! }
//! sys.run_rounds(5); // let dissemination finish
//! let stats = sys.stats();
//! assert!(stats.hit_ratio > 0.95, "hit ratio {}", stats.hit_ratio);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod conformance;
pub mod gateway;
pub mod harness;
pub mod monitor;
pub mod msg;
pub mod node;
pub mod relay;
pub mod runtime;
pub mod smallmap;
pub mod system;
pub mod topic;
pub mod topo;
pub mod utility;

pub use utility::utility;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::config::{SamplingService, VitisConfig};
    pub use crate::gateway::Proposal;
    pub use crate::harness::Workload;
    pub use crate::monitor::{EventId, Monitor, MonitorOp, PubSubStats};
    pub use crate::smallmap::SmallMap;
    pub use crate::msg::{Notification, ProfileMsg, VitisMsg};
    pub use crate::node::VitisNode;
    pub use crate::runtime::{PubSubProtocol, SystemRuntime};
    pub use crate::system::{
        random_system, NetworkSpec, PubSub, SystemParams, VitisProtocol, VitisSystem,
    };
    pub use crate::topic::{RateTable, Subs, TopicId, TopicSet};
    pub use crate::utility::utility;
}
