//! Vitis protocol configuration.

use serde::{Deserialize, Serialize};

/// Which gossip peer-sampling service the node runs. The paper's
/// evaluation uses Newscast; Cyclon is a drop-in alternative with more
/// uniform samples ("any of the existing implementations for this service
/// can be used", Section III-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SamplingService {
    /// Newscast: whole-view exchange, keep the freshest entries.
    Newscast,
    /// Cyclon: bounded shuffle with the oldest neighbor.
    Cyclon,
}

/// All tunables of a Vitis node. Defaults mirror the paper's experimental
/// settings (Section IV-A): routing-table size 15, `k = 3` small-world links
/// counting the two ring links (so one extra sw-neighbor), gateway radius
/// `d = 5`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VitisConfig {
    /// Bounded routing-table size (node degree bound). Paper default: 15.
    pub rt_size: usize,
    /// Small-world links beyond the two ring links. Paper's `k = 3` counts
    /// predecessor + successor + this many extras, so the default is 1.
    pub k_sw: usize,
    /// Gateway radius `d`: a gateway serves subscribers at most this many
    /// cluster-hops away; the number of gateways per cluster scales with
    /// the cluster diameter divided by `d`. Paper default: 5.
    pub d_max_hops: u32,
    /// Estimated network size, feeding the Symphony harmonic distance draw.
    pub est_n: usize,
    /// Routing-table entries older than this many rounds are expired
    /// (failure-detection threshold of Algorithm 6).
    pub age_threshold: u16,
    /// Relay-path soft state expires after this many rounds without refresh.
    pub relay_ttl: u16,
    /// Peer-sampling view capacity.
    pub sampling_view: usize,
    /// Which peer-sampling service to run.
    pub sampling_service: SamplingService,
    /// Estimate the network size from observed ring density instead of
    /// trusting `est_n` (Symphony's approach); the estimate feeds the
    /// harmonic small-world draw.
    pub estimate_network_size: bool,
    /// Safety cap on greedy-lookup path length.
    pub max_lookup_hops: u32,
    /// Ablation: when false, gateway election is disabled and *every*
    /// subscriber builds its own relay path (Scribe-like behaviour inside
    /// Vitis — isolates the contribution of Algorithm 5).
    pub gateway_election: bool,
    /// Ablation: when false, friend slots are filled with random candidates
    /// instead of Equation 1 ranking — isolates the clustering benefit.
    pub utility_selection: bool,
    /// Fault hardening: publisher-side retries. After publishing, if no
    /// gateway/relay holder acknowledges within
    /// [`VitisConfig::publish_ack_timeout`], the publisher re-floods the
    /// notification, up to this many times with capped exponential
    /// backoff. `0` (the default) disables retries and acknowledgments
    /// entirely — the fault-free path is bit-identical to earlier builds.
    pub publish_retries: u32,
    /// Ticks a publisher waits for the first acknowledgment before its
    /// first retry; subsequent retries double the wait.
    pub publish_ack_timeout: u64,
    /// Upper bound on the exponential retry backoff, in ticks.
    pub publish_backoff_cap: u64,
    /// Fault hardening: TTL bound on notification forwarding. Copies that
    /// have travelled this many hops are still delivered locally but no
    /// longer forwarded, so traffic trapped by a partition dies out
    /// instead of wandering. `u32::MAX` (the default) disables the bound.
    pub max_event_hops: u32,
    /// Fault hardening: gateway failover. When true, remembered neighbor
    /// proposals age each round and are discarded once they exceed
    /// [`VitisConfig::age_threshold`] without a refreshing heartbeat, so
    /// the election re-runs without the silent gateway mid-episode
    /// instead of waiting for the neighbor entry itself to expire.
    pub gateway_failover: bool,
}

impl Default for VitisConfig {
    fn default() -> Self {
        VitisConfig {
            rt_size: 15,
            k_sw: 1,
            d_max_hops: 5,
            est_n: 10_000,
            age_threshold: 5,
            relay_ttl: 5,
            sampling_view: 15,
            sampling_service: SamplingService::Newscast,
            estimate_network_size: false,
            max_lookup_hops: 128,
            gateway_election: true,
            utility_selection: true,
            publish_retries: 0,
            publish_ack_timeout: 96,
            publish_backoff_cap: 512,
            max_event_hops: u32::MAX,
            gateway_failover: false,
        }
    }
}

impl VitisConfig {
    /// Number of friend slots implied by the sizing.
    pub fn num_friends(&self) -> usize {
        self.rt_size.saturating_sub(2 + self.k_sw)
    }

    /// Validate invariants; call after manual construction.
    ///
    /// # Panics
    /// Panics if the table cannot hold the two ring links, or trivially
    /// invalid values are set.
    pub fn validate(&self) {
        assert!(self.rt_size >= 3, "rt_size must hold ring links + 1");
        assert!(self.est_n >= 2, "est_n must be at least 2");
        assert!(self.d_max_hops >= 1, "d_max_hops must be at least 1");
        assert!(self.sampling_view >= 1, "sampling view must be non-empty");
        assert!(self.max_lookup_hops >= 1, "lookups need at least one hop");
        assert!(self.max_event_hops >= 1, "events need at least one hop");
        assert!(
            self.publish_retries == 0 || self.publish_ack_timeout >= 1,
            "retries need a positive ack timeout"
        );
    }

    /// The Figure 4 sweep: fix `rt_size`, dedicate 2 entries to the ring and
    /// split the remaining 13 between friends and sw links.
    pub fn with_friends(mut self, friends: usize) -> Self {
        assert!(friends + 2 <= self.rt_size, "friends exceed table");
        self.k_sw = self.rt_size - 2 - friends;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = VitisConfig::default();
        c.validate();
        assert_eq!(c.rt_size, 15);
        assert_eq!(c.k_sw, 1);
        assert_eq!(c.d_max_hops, 5);
        assert_eq!(c.num_friends(), 12);
    }

    #[test]
    fn with_friends_splits_table() {
        let c = VitisConfig::default().with_friends(6);
        assert_eq!(c.k_sw, 7);
        assert_eq!(c.num_friends(), 6);
        let c0 = VitisConfig::default().with_friends(0);
        assert_eq!(c0.k_sw, 13);
        assert_eq!(c0.num_friends(), 0);
    }

    #[test]
    #[should_panic(expected = "friends exceed table")]
    fn with_friends_overflow_panics() {
        let _ = VitisConfig::default().with_friends(14);
    }

    #[test]
    #[should_panic(expected = "rt_size")]
    fn tiny_table_rejected() {
        let c = VitisConfig {
            rt_size: 2,
            ..Default::default()
        };
        c.validate();
    }
}
