//! Shared [`PubSub`] conformance suite.
//!
//! Every system built on [`SystemRuntime`] must honor the same driver
//! contract; these checks state it executably, once, and each system's
//! test suite instantiates them (see `tests/pubsub_conformance.rs` in the
//! umbrella crate). Each check panics with a labelled message on
//! violation, so a failing instantiation names both the system and the
//! broken clause.
//!
//! The suite assumes a freshly built system whose workload can publish on
//! topics `0..topics` and that has at least `2 × churn_nodes` logical
//! nodes.

use crate::runtime::{PubSub, PubSubProtocol, SystemRuntime};
use crate::topic::TopicId;

/// Run the full suite on a freshly built system.
pub fn check_pubsub_conformance<P: PubSubProtocol>(
    sys: &mut SystemRuntime<P>,
    name: &str,
    topics: u32,
    churn_nodes: u32,
) {
    check_reset_zeroes_stats(sys, name, topics);
    check_loss_report_partitions_misses(sys, name, topics, churn_nodes);
    check_set_online_idempotent(sys, name, churn_nodes);
    check_agrees_with_engine(sys, name);
    check_perf_surface(sys, name);
}

/// After `reset_metrics`, every counter of the stats snapshot is zero.
pub fn check_reset_zeroes_stats(sys: &mut impl PubSub, name: &str, topics: u32) {
    sys.run_rounds(10);
    for t in 0..topics {
        sys.publish(TopicId(t));
    }
    sys.run_rounds(3);
    sys.reset_metrics();
    let s = sys.stats();
    assert_eq!(s.published, 0, "{name}: published after reset");
    assert_eq!(s.expected, 0, "{name}: expected after reset");
    assert_eq!(s.delivered, 0, "{name}: delivered after reset");
    assert_eq!(s.useful_msgs, 0, "{name}: useful_msgs after reset");
    assert_eq!(s.relay_msgs, 0, "{name}: relay_msgs after reset");
    assert_eq!(s.control_sent, 0, "{name}: control_sent after reset");
    assert_eq!(s.data_sent, 0, "{name}: data_sent after reset");
    assert_eq!(s.max_hops, 0, "{name}: max_hops after reset");
    assert_eq!(s.max_latency_ticks, 0, "{name}: max_latency after reset");
    let kind_sent: u64 = s.traffic_by_kind.iter().map(|k| k.sent).sum();
    assert_eq!(kind_sent, 0, "{name}: per-kind ledger after reset");
}

/// `loss_report` per-reason counts sum exactly to `expected - delivered`,
/// and its totals agree with the stats snapshot — including under churn
/// that strands some expected subscribers.
pub fn check_loss_report_partitions_misses(
    sys: &mut impl PubSub,
    name: &str,
    topics: u32,
    churn_nodes: u32,
) {
    sys.run_rounds(15);
    sys.reset_metrics();
    for t in 0..topics {
        sys.publish(TopicId(t));
    }
    for logical in 0..churn_nodes {
        sys.set_online(logical, false);
    }
    sys.run_rounds(4);
    let s = sys.stats();
    let report = sys.loss_report();
    assert_eq!(report.expected, s.expected, "{name}: report.expected");
    assert_eq!(report.delivered, s.delivered, "{name}: report.delivered");
    let sum: u64 = report.by_reason.iter().map(|&(_, c)| c).sum();
    assert_eq!(
        sum,
        s.expected - s.delivered,
        "{name}: loss reasons must partition the missed pairs"
    );
    for logical in 0..churn_nodes {
        sys.set_online(logical, true);
    }
}

/// `set_online` is idempotent (repeating the current state is a no-op)
/// and incarnation-safe (repeated offline/online toggles of the same
/// logical node keep the population consistent and the system running).
pub fn check_set_online_idempotent(sys: &mut impl PubSub, name: &str, churn_nodes: u32) {
    sys.run_rounds(5);
    let full = sys.alive_count();
    // Idempotent in the online state...
    sys.set_online(0, true);
    assert_eq!(sys.alive_count(), full, "{name}: online->online is a no-op");
    // ...and in the offline state.
    sys.set_online(0, false);
    let down = sys.alive_count();
    assert_eq!(down, full - 1, "{name}: offline removes exactly one node");
    sys.set_online(0, false);
    assert_eq!(
        sys.alive_count(),
        down,
        "{name}: offline->offline is a no-op"
    );
    sys.set_online(0, true);
    assert_eq!(sys.alive_count(), full, "{name}: rejoin restores the node");
    // Rapid repeated toggles must neither lose slots nor wedge the run
    // (each rejoin starts a fresh incarnation in the same slot).
    for _ in 0..3 {
        for logical in 0..churn_nodes {
            sys.set_online(logical, false);
        }
        sys.run_rounds(1);
        for logical in 0..churn_nodes {
            sys.set_online(logical, true);
        }
        sys.run_rounds(1);
    }
    assert_eq!(
        sys.alive_count(),
        full,
        "{name}: toggle storm must conserve the population"
    );
    sys.run_rounds(3);
}

/// The perf surface is live and structurally consistent: activations
/// accumulate as the system runs, the queue high-water mark is nonzero
/// once rounds are scheduled, and the footprint estimate tracks the
/// alive population.
pub fn check_perf_surface(sys: &mut impl PubSub, name: &str) {
    let before = sys.perf_counters();
    assert!(
        before.activations_start as usize >= sys.alive_count(),
        "{name}: every alive node was started at least once"
    );
    assert!(before.queue_hwm > 0, "{name}: round scheduling fills the queue");
    sys.run_rounds(2);
    let after = sys.perf_counters();
    assert!(
        after.activations_round > before.activations_round,
        "{name}: running rounds accumulates round activations"
    );
    assert!(
        after.total_activations() >= before.total_activations(),
        "{name}: activation totals are monotone"
    );
    let full = sys.footprint_estimate();
    assert!(full > 0, "{name}: footprint estimate covers live nodes");
    sys.set_online(0, false);
    assert!(
        sys.footprint_estimate() < full,
        "{name}: footprint estimate shrinks when a node leaves"
    );
    sys.set_online(0, true);
}

/// `alive_count` and `mean_degree` are views of engine state, not
/// independent bookkeeping: both must agree with a direct engine scan.
pub fn check_agrees_with_engine<P: PubSubProtocol>(sys: &SystemRuntime<P>, name: &str) {
    assert_eq!(
        sys.alive_count(),
        sys.engine().alive_count(),
        "{name}: alive_count mirrors the engine"
    );
    let (sum, count) = sys
        .engine()
        .alive_nodes()
        .fold((0usize, 0usize), |(s, c), (_, n)| (s + P::degree(n), c + 1));
    let expect = if count == 0 { 0.0 } else { sum as f64 / count as f64 };
    assert_eq!(
        sys.mean_degree().to_bits(),
        expect.to_bits(),
        "{name}: mean_degree is the engine-wide degree mean"
    );
    assert_eq!(
        sys.alive_count(),
        sys.degree_distribution().len(),
        "{name}: one degree sample per alive node"
    );
}
