//! The system-level API: construction parameters shared by all three
//! systems, the [`VitisProtocol`] adapter that plugs the Vitis node into
//! the generic [`SystemRuntime`], and the [`VitisSystem`] alias.
//!
//! The driver trait ([`PubSub`]) and the runtime that implements it live
//! in [`crate::runtime`]; this module contributes only what is specific
//! to Vitis — node construction, overlay accessors, rendezvous-aware
//! loss classification — plus the parameter types the baselines reuse.

use crate::config::VitisConfig;
use crate::harness::Workload;
use crate::monitor::{EventId, LossReason, LossReport, Monitor};
use crate::msg::VitisMsg;
use crate::node::VitisNode;
use crate::runtime::{hybrid_rt_probe, PubSubProtocol, SystemRuntime};
use crate::topic::{RateTable, Subs, TopicId, TopicSet};
use crate::topo::{NodeTopo, RelayTopo, TopoLink};
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;
use vitis_overlay::entry::Entry;
use vitis_overlay::graph::Graph;
use vitis_overlay::id::Id;
use vitis_sim::antientropy::AeConfig;
use vitis_sim::event::NodeIdx;
use vitis_sim::fault::FaultPlan;
use vitis_sim::rng::{domain, stream_rng};
use vitis_sim::time::Duration;

pub use crate::runtime::PubSub;

/// Subscriber-cluster statistics over up to four evenly spaced sample
/// topics: `(component count, largest component)`. Shared by the health
/// probes of all three systems.
pub fn cluster_probe(
    graph: &Graph,
    workload: &Workload,
    alive: impl Fn(u32) -> bool,
) -> (u64, u64) {
    let n = workload.num_topics();
    let step = (n / 4).max(1);
    let mut clusters = 0u64;
    let mut largest = 0u64;
    for t in (0..n).step_by(step).take(4) {
        let subs: Vec<u32> = workload
            .subscribers(TopicId(t as u32))
            .iter()
            .copied()
            .filter(|&s| alive(s))
            .collect();
        for c in graph.components_within(&subs) {
            clusters += 1;
            largest = largest.max(c.len() as u64);
        }
    }
    (clusters, largest)
}

/// The network model a system runs over.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetworkSpec {
    /// Constant per-message latency in ticks.
    Constant(u64),
    /// Uniform latency in `[min, max]` ticks.
    Uniform(u64, u64),
    /// Constant latency plus independent per-message loss probability.
    LossyConstant(u64, f64),
}

impl Default for NetworkSpec {
    fn default() -> Self {
        NetworkSpec::Constant(1)
    }
}

impl NetworkSpec {
    /// Materialize the boxed model for an engine.
    pub fn build(self) -> vitis_sim::network::DynNetworkModel {
        use vitis_sim::network::{ConstantLatency, Lossy, UniformLatency};
        match self {
            NetworkSpec::Constant(d) => Box::new(ConstantLatency(Duration(d))),
            NetworkSpec::Uniform(min, max) => Box::new(UniformLatency { min, max }),
            NetworkSpec::LossyConstant(d, loss) => Box::new(Lossy {
                inner: ConstantLatency(Duration(d)),
                loss,
            }),
        }
    }
}

/// Construction parameters for any [`SystemRuntime`]-based system.
///
/// Subscriptions are interned behind shared [`Subs`] handles at
/// construction, so cloning params for a side-by-side comparison (and
/// every node/message assembly downstream) copies reference-counted
/// pointers, not topic vectors.
#[derive(Clone)]
pub struct SystemParams {
    /// Master seed for the run.
    pub seed: u64,
    /// Protocol configuration.
    pub cfg: VitisConfig,
    /// Per-logical-node subscriptions (shared handles).
    pub subscriptions: Vec<Subs>,
    /// Number of topics.
    pub num_topics: usize,
    /// Per-topic publication rates.
    pub rates: RateTable,
    /// Gossip round period in ticks.
    pub round_period: Duration,
    /// Bootstrap contacts handed to each joining node.
    pub bootstrap_contacts: usize,
    /// Join grace before a node is counted in expected-delivery sets.
    pub grace: Duration,
    /// The network model (latency/loss) messages travel over.
    pub network: NetworkSpec,
    /// Scheduled fault episodes applied on top of the network model and,
    /// for crash/freeze episodes, to the engine's node population. The
    /// empty plan (default) is bit-identical to a fault-free run.
    pub faults: FaultPlan,
    /// Anti-entropy repair layer (digest exchange + pull recovery),
    /// threaded into every node of whichever protocol runs on these
    /// params. Disabled by default — the off configuration is
    /// bit-identical to a build without the layer.
    pub repair: AeConfig,
}

impl SystemParams {
    /// Sensible defaults around a subscription assignment.
    pub fn new(subscriptions: Vec<TopicSet>, num_topics: usize) -> Self {
        let subscriptions: Vec<Subs> = subscriptions.into_iter().map(Arc::new).collect();
        let n = subscriptions.len();
        let rates = RateTable::uniform(num_topics);
        let cfg = VitisConfig {
            est_n: n.max(2),
            ..VitisConfig::default()
        };
        SystemParams {
            seed: 42,
            cfg,
            subscriptions,
            num_topics,
            rates,
            round_period: Duration(64),
            bootstrap_contacts: 5,
            grace: Duration(0),
            network: NetworkSpec::default(),
            faults: FaultPlan::empty(),
            repair: AeConfig::default(),
        }
    }
}

/// A complete Vitis network behind the uniform [`PubSub`] API.
pub type VitisSystem = SystemRuntime<VitisProtocol>;

/// The Vitis adapter for [`SystemRuntime`]: hybrid-overlay nodes,
/// rendezvous-aware loss classification, ring + view-age structure probe.
pub struct VitisProtocol {
    cfg: Arc<VitisConfig>,
    repair: AeConfig,
}

impl VitisProtocol {
    /// The shared protocol configuration.
    pub fn config(&self) -> &Arc<VitisConfig> {
        &self.cfg
    }

    /// Classify one missed `(event, subscriber)` pair against the current
    /// overlay structure. `comps` are the alive-subscriber components of
    /// the miss's topic, `rendezvous_claims` the number of nodes claiming
    /// the topic's rendezvous relay.
    fn classify_miss(
        rt: &SystemRuntime<Self>,
        comps: &[Vec<u32>],
        rendezvous_claims: usize,
        miss: &crate::monitor::MissContext<'_>,
    ) -> LossReason {
        let engine = rt.engine();
        if !engine.is_alive(miss.subscriber) {
            return LossReason::SubscriberChurned;
        }
        if engine
            .network_event_drops()
            .iter()
            .any(|&(e, s)| e == miss.event.0 && s == miss.subscriber.0)
        {
            // A copy addressed to this subscriber died in transit (lossy
            // link, partition or freeze) and no later copy made it.
            return LossReason::Network;
        }
        let Some(comp) = comps.iter().find(|c| c.contains(&miss.subscriber.0)) else {
            // Alive but absent from every component: resubscribed after
            // publish or otherwise outside the ground truth — treat as
            // disconnected.
            return LossReason::PartitionedCluster;
        };
        if comp
            .iter()
            .any(|&x| miss.delivered.binary_search(&NodeIdx(x)).is_ok())
        {
            // The event reached this connected cluster but forwarding
            // stopped before covering it.
            return LossReason::IncompleteFlood;
        }
        let gateways: Vec<&VitisNode> = comp
            .iter()
            .filter_map(|&x| engine.node(NodeIdx(x)))
            .filter(|n| n.is_gateway(miss.topic))
            .collect();
        if gateways.is_empty() {
            return LossReason::NoGateway;
        }
        if !gateways.iter().any(|g| g.relay_table().has(miss.topic)) {
            return LossReason::RelayBroken;
        }
        match rendezvous_claims {
            0 => LossReason::RelayBroken, // relay chain never terminated
            1 => LossReason::PartitionedCluster,
            _ => LossReason::RingMisroute, // conflicting rendezvous points
        }
    }
}

impl PubSubProtocol for VitisProtocol {
    type Node = VitisNode;

    const BOOT_SALT: u64 = u64::MAX;

    fn from_params(params: &SystemParams) -> Self {
        params.cfg.validate();
        VitisProtocol {
            cfg: Arc::new(params.cfg.clone()),
            repair: params.repair.clone(),
        }
    }

    fn make_node(
        &self,
        logical: u32,
        subs: Subs,
        bootstrap: Vec<Entry<Subs>>,
        rates: &Arc<RateTable>,
        monitor: &Monitor,
    ) -> VitisNode {
        VitisNode::new(
            Id::of_node(logical as u64),
            subs,
            self.cfg.clone(),
            rates.clone(),
            monitor.clone(),
            bootstrap,
        )
        .with_repair(self.repair.clone())
    }

    fn describe(node: &VitisNode) -> (Id, Subs) {
        (node.ring_id(), node.subscriptions().clone())
    }

    fn degree(node: &VitisNode) -> usize {
        node.routing_table().len()
    }

    fn for_each_neighbor(node: &VitisNode, mut f: impl FnMut(NodeIdx)) {
        for e in node.routing_table().iter() {
            f(e.addr);
        }
    }

    fn publish_cmd(event: EventId, topic: TopicId) -> VitisMsg {
        VitisMsg::PublishCmd { event, topic }
    }

    fn loss_report(rt: &SystemRuntime<Self>) -> LossReport {
        let graph = rt.overlay_graph();
        let engine = rt.engine();
        // Lazily computed per-topic state, shared across the misses of a
        // topic: alive-subscriber components and rendezvous-claim counts.
        let mut comps_by_topic: HashMap<TopicId, Vec<Vec<u32>>> = HashMap::new();
        let mut rdv_by_topic: HashMap<TopicId, usize> = HashMap::new();
        rt.monitor().attribute_losses(engine.now(), |miss| {
            let comps = comps_by_topic
                .entry(miss.topic)
                .or_insert_with(|| graph.components_within(&rt.alive_subscribers(miss.topic)));
            let rdv = *rdv_by_topic.entry(miss.topic).or_insert_with(|| {
                engine
                    .alive_nodes()
                    .filter(|(_, n)| {
                        n.relay_table()
                            .get(miss.topic)
                            .is_some_and(|e| e.is_rendezvous())
                    })
                    .count()
            });
            Self::classify_miss(rt, comps, rdv, miss)
        })
    }

    fn structure_probe(rt: &SystemRuntime<Self>) -> (Option<f64>, Option<f64>) {
        let (ring, age) = hybrid_rt_probe(rt, |n| n.routing_table());
        (Some(ring), age)
    }

    fn node_topo(&self, idx: NodeIdx, node: &VitisNode) -> NodeTopo {
        NodeTopo {
            node: idx,
            ring_id: node.ring_id(),
            subs: node.subscriptions().iter().collect(),
            links: node
                .routing_table()
                .iter_kinds()
                .map(|(kind, e)| TopoLink {
                    peer: e.addr,
                    kind: kind.as_str(),
                    age: Some(e.age),
                })
                .collect(),
            relays: node
                .relay_table()
                .entries()
                .map(|(topic, e)| RelayTopo {
                    topic,
                    upstream: e.upstream(),
                    upstream_age: e.upstream_age(),
                    downstream: e.downstreams().collect(),
                    rendezvous: e.is_rendezvous(),
                })
                .collect(),
            gateway_view: node
                .subscriptions()
                .iter()
                .filter_map(|t| node.proposal(t).map(|p| (t, p.gw_addr)))
                .collect(),
            view_bound: Some(self.cfg.rt_size),
            relay_ttl: Some(self.cfg.relay_ttl),
        }
    }
}

/// Deterministic helper used across tests/benches: a quick static network
/// with `n` nodes, `topics` topics, `subs_per_node` random subscriptions.
pub fn random_system(n: usize, topics: usize, subs_per_node: usize, seed: u64) -> VitisSystem {
    let mut rng = stream_rng(seed, domain::WORKLOAD, 1);
    let subscriptions: Vec<TopicSet> = (0..n)
        .map(|_| TopicSet::from_iter((0..subs_per_node).map(|_| rng.gen_range(0..topics as u32))))
        .collect();
    let mut params = SystemParams::new(subscriptions, topics);
    params.seed = seed;
    VitisSystem::new(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Converged static network: every event reaches every subscriber.
    #[test]
    fn full_hit_ratio_after_convergence() {
        let mut sys = random_system(200, 40, 6, 11);
        sys.run_rounds(40);
        sys.reset_metrics();
        for t in 0..40 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(6);
        let s = sys.stats();
        assert!(s.expected > 0);
        assert!(
            s.hit_ratio > 0.99,
            "hit ratio {} ({} / {})",
            s.hit_ratio,
            s.delivered,
            s.expected
        );
        assert!(s.overhead_pct < 60.0, "overhead {}", s.overhead_pct);
        assert!(s.mean_hops >= 1.0);
    }

    #[test]
    fn ring_converges() {
        let mut sys = random_system(150, 20, 4, 3);
        sys.run_rounds(40);
        let acc = sys.ring_accuracy();
        assert!(acc > 0.95, "ring accuracy {acc}");
    }

    #[test]
    fn degree_stays_bounded() {
        let mut sys = random_system(120, 30, 5, 5);
        sys.run_rounds(30);
        for (_, node) in sys.engine().alive_nodes() {
            assert!(node.routing_table().len() <= 15);
        }
        assert!(sys.mean_degree() <= 15.0);
        assert!(sys.mean_degree() > 5.0, "table should fill up");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut sys = random_system(80, 10, 3, seed);
            sys.run_rounds(20);
            sys.reset_metrics();
            for t in 0..10 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(4);
            let s = sys.stats();
            (s.delivered, s.useful_msgs, s.relay_msgs)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn churn_recovery_restores_delivery() {
        let mut sys = random_system(150, 15, 4, 21);
        sys.run_rounds(30);
        // Crash 20% of the nodes.
        for logical in 0..30 {
            sys.set_online(logical, false);
        }
        assert_eq!(sys.alive_count(), 120);
        sys.run_rounds(15); // heal
        sys.reset_metrics();
        for t in 0..15 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(6);
        let s = sys.stats();
        assert!(s.hit_ratio > 0.97, "hit ratio after churn {}", s.hit_ratio);
        // Bring them back: they rejoin and eventually receive events again.
        for logical in 0..30 {
            sys.set_online(logical, true);
        }
        assert_eq!(sys.alive_count(), 150);
        sys.run_rounds(15);
        sys.reset_metrics();
        for t in 0..15 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(6);
        let s = sys.stats();
        assert!(s.hit_ratio > 0.97, "hit ratio after rejoin {}", s.hit_ratio);
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        use vitis_sim::trace::Trace;
        let run = |traced: bool| {
            let mut sys = random_system(120, 15, 4, 17);
            if traced {
                sys.install_trace(Trace::shared(1 << 14));
            }
            sys.run_rounds(25);
            sys.reset_metrics();
            for t in 0..15 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(5);
            let s = sys.stats();
            (
                s.delivered,
                s.expected,
                s.useful_msgs,
                s.relay_msgs,
                s.mean_hops.to_bits(),
                s.mean_latency_ticks.to_bits(),
                s.control_sent,
                s.data_sent,
            )
        };
        assert_eq!(run(false), run(true), "forensics tracing must be inert");
    }

    #[test]
    fn loss_report_counts_sum_to_missed_pairs() {
        use vitis_sim::trace::{Trace, TraceEvent};
        let mut sys = random_system(150, 15, 4, 23);
        let trace = Trace::shared(1 << 16);
        sys.install_trace(trace.clone());
        sys.run_rounds(25);
        sys.reset_metrics();
        for t in 0..15 {
            sys.publish(TopicId(t));
        }
        // Crash a fifth of the network right after publishing so some
        // expected subscribers can never be reached.
        for logical in 0..30 {
            sys.set_online(logical, false);
        }
        sys.run_rounds(5);
        let s = sys.stats();
        let report = sys.loss_report();
        assert_eq!(report.expected, s.expected);
        assert_eq!(report.delivered, s.delivered);
        let total: u64 = report.by_reason.iter().map(|(_, c)| c).sum();
        assert_eq!(total, s.expected - s.delivered, "every miss classified");
        assert!(report.missed() > 0, "the crash should cause misses");
        assert!(
            report.count(LossReason::SubscriberChurned) > 0,
            "crashed subscribers should be attributed to churn: {:?}",
            report.by_reason
        );
        // Each miss produced exactly one drop_event forensics record.
        let drops = trace
            .borrow()
            .events()
            .filter(|ev| matches!(ev, TraceEvent::DropEvent { .. }))
            .count() as u64;
        assert_eq!(drops, report.missed());
    }

    #[test]
    fn traced_run_reconstructs_delivery_paths() {
        use vitis_sim::trace::{Trace, TraceEvent};
        let mut sys = random_system(100, 10, 3, 7);
        sys.run_rounds(25);
        sys.install_trace(Trace::shared(1 << 16));
        sys.reset_metrics();
        let e = sys.publish(TopicId(0)).expect("publishable");
        sys.run_rounds(4);
        let trace = sys.engine().trace_handle().expect("installed");
        let t = trace.borrow();
        let mut pub_seen = false;
        let mut delivers = 0u64;
        let mut fwds = 0u64;
        for ev in t.events() {
            match ev {
                TraceEvent::PubEvent { event, .. } if *event == e.0 => pub_seen = true,
                TraceEvent::DeliverEvent {
                    event, path, hops, ..
                } if *event == e.0 => {
                    delivers += 1;
                    // Path carries publisher..=subscriber: hops+1 slots.
                    let len = path.split('>').count() as u32;
                    assert_eq!(len, hops + 1, "path {path} vs hops {hops}");
                }
                TraceEvent::Fwd { event, .. } if *event == e.0 => fwds += 1,
                _ => {}
            }
        }
        assert!(pub_seen, "pub_event recorded");
        let (expected, delivered) = sys.monitor().event_progress(e).unwrap();
        assert!(expected > 0);
        assert_eq!(delivers as usize, delivered);
        assert!(fwds as usize >= delivered, "every delivery rode a forward");
    }

    #[test]
    fn publish_returns_none_without_subscribers() {
        let subs = vec![TopicSet::from_iter([0u32]); 4];
        let params = SystemParams::new(subs, 2);
        let mut sys = VitisSystem::new(params);
        sys.run_rounds(2);
        assert!(
            sys.publish(TopicId(1)).is_none(),
            "topic 1 has no subscribers"
        );
        assert!(sys.publish(TopicId(0)).is_some());
    }

    #[test]
    fn topic_clusters_cover_subscribers() {
        let mut sys = random_system(100, 10, 3, 13);
        sys.run_rounds(25);
        let total: usize = sys.topic_clusters(TopicId(0)).iter().map(|c| c.len()).sum();
        let alive_subs = sys
            .workload()
            .subscribers(TopicId(0))
            .iter()
            .filter(|&&s| sys.engine().is_alive(NodeIdx(s)))
            .count();
        assert_eq!(total, alive_subs);
    }

    #[test]
    fn gateway_ablation_still_delivers() {
        let mut rng = stream_rng(31, domain::WORKLOAD, 1);
        let subscriptions: Vec<TopicSet> = (0..100)
            .map(|_| TopicSet::from_iter((0..4).map(|_| rng.gen_range(0..10u32))))
            .collect();
        let mut params = SystemParams::new(subscriptions, 10);
        params.seed = 31;
        params.cfg.gateway_election = false;
        let mut sys = VitisSystem::new(params);
        sys.run_rounds(25);
        sys.reset_metrics();
        for t in 0..10 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(5);
        let s = sys.stats();
        assert!(s.hit_ratio > 0.97, "hit {}", s.hit_ratio);
    }

    #[test]
    fn params_clone_shares_subscription_storage() {
        let sys_params = SystemParams::new(vec![TopicSet::from_iter([0u32, 1]); 8], 2);
        let cloned = sys_params.clone();
        for (a, b) in sys_params.subscriptions.iter().zip(&cloned.subscriptions) {
            assert!(Arc::ptr_eq(a, b), "clone must share interned topic sets");
        }
    }
}
