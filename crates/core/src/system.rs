//! The system-level API: a whole Vitis network in one value, plus the
//! [`PubSub`] trait that the RVR and OPT baselines also implement so the
//! experiment harness can drive all three uniformly.

use crate::config::VitisConfig;
use crate::harness::Workload;
use crate::monitor::{EventId, LossReason, LossReport, Monitor, PubSubStats};
use crate::msg::VitisMsg;
use crate::node::VitisNode;
use crate::topic::{RateTable, TopicId, TopicSet};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use std::rc::Rc;
use vitis_overlay::entry::Entry;
use vitis_overlay::graph::Graph;
use vitis_overlay::id::Id;
use vitis_sim::engine::{Engine, EngineConfig};
use vitis_sim::event::NodeIdx;
use vitis_sim::prelude::StopReason;
use vitis_sim::rng::{domain, stream_rng};
use vitis_sim::time::{Duration, SimTime};
use vitis_sim::trace::{HealthProbe, TraceHandle};

/// The uniform driver interface over Vitis, RVR and OPT systems.
pub trait PubSub {
    /// Advance `n` gossip rounds.
    fn run_rounds(&mut self, n: u64);

    /// Advance by raw simulation ticks (fine-grained churn interleaving).
    fn run_ticks(&mut self, ticks: u64);

    /// Publish one event on `topic` from a random online subscriber.
    /// Returns `None` when no subscriber is online.
    fn publish(&mut self, topic: TopicId) -> Option<EventId>;

    /// Publish one event on a rate-weighted random topic.
    fn publish_weighted(&mut self) -> Option<EventId>;

    /// Metrics since the last reset.
    fn stats(&self) -> PubSubStats;

    /// Clear the measurement window (end of warmup).
    fn reset_metrics(&mut self);

    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Number of online nodes.
    fn alive_count(&self) -> usize;

    /// Bring a logical node online/offline (churn driver hook). No-op if
    /// already in the requested state.
    fn set_online(&mut self, logical: u32, online: bool);

    /// Mean node degree over online nodes.
    fn mean_degree(&self) -> f64;

    /// Per-node traffic overhead percentages (Figure 5's distribution),
    /// over nodes that received at least `min_msgs` data-plane messages.
    fn per_node_overhead(&self, min_msgs: u64) -> Vec<f64>;

    /// Install a shared trace into the system's engine **and** its
    /// monitor: lifecycle and message events are recorded engine-side,
    /// and per-event forensics records (`pub_event` / `fwd` /
    /// `deliver_event` / `drop_event`) are recorded monitor-side, all
    /// into the same ring buffer.
    fn install_trace(&mut self, trace: TraceHandle);

    /// Classify every missed `(event, subscriber)` pair of the current
    /// window against the system's present structural state (see
    /// [`LossReason`]). Per-reason counts sum exactly to
    /// `expected - delivered`; when a trace is installed each miss also
    /// emits a `drop_event` record.
    fn loss_report(&self) -> LossReport;

    /// Sample the overlay's structural health (ring consistency, view
    /// staleness, subscriber clustering). All three systems fill what
    /// they can measure; structure-less fields stay `None`.
    fn health_probe(&self) -> HealthProbe;
}

/// Subscriber-cluster statistics over up to four evenly spaced sample
/// topics: `(component count, largest component)`. Shared by the health
/// probes of all three systems.
pub fn cluster_probe(
    graph: &Graph,
    workload: &Workload,
    alive: impl Fn(u32) -> bool,
) -> (u64, u64) {
    let n = workload.num_topics();
    let step = (n / 4).max(1);
    let mut clusters = 0u64;
    let mut largest = 0u64;
    for t in (0..n).step_by(step).take(4) {
        let subs: Vec<u32> = workload
            .subscribers(TopicId(t as u32))
            .iter()
            .copied()
            .filter(|&s| alive(s))
            .collect();
        for c in graph.components_within(&subs) {
            clusters += 1;
            largest = largest.max(c.len() as u64);
        }
    }
    (clusters, largest)
}

/// The network model a system runs over.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetworkSpec {
    /// Constant per-message latency in ticks.
    Constant(u64),
    /// Uniform latency in `[min, max]` ticks.
    Uniform(u64, u64),
    /// Constant latency plus independent per-message loss probability.
    LossyConstant(u64, f64),
}

impl Default for NetworkSpec {
    fn default() -> Self {
        NetworkSpec::Constant(1)
    }
}

impl NetworkSpec {
    /// Materialize the boxed model for an engine.
    pub fn build(self) -> vitis_sim::network::DynNetworkModel {
        use vitis_sim::network::{ConstantLatency, Lossy, UniformLatency};
        match self {
            NetworkSpec::Constant(d) => Box::new(ConstantLatency(Duration(d))),
            NetworkSpec::Uniform(min, max) => Box::new(UniformLatency { min, max }),
            NetworkSpec::LossyConstant(d, loss) => Box::new(Lossy {
                inner: ConstantLatency(Duration(d)),
                loss,
            }),
        }
    }
}

/// Construction parameters for [`VitisSystem`] (and, mirrored, for the
/// baseline systems).
#[derive(Clone)]
pub struct SystemParams {
    /// Master seed for the run.
    pub seed: u64,
    /// Protocol configuration.
    pub cfg: VitisConfig,
    /// Per-logical-node subscriptions.
    pub subscriptions: Vec<TopicSet>,
    /// Number of topics.
    pub num_topics: usize,
    /// Per-topic publication rates.
    pub rates: RateTable,
    /// Gossip round period in ticks.
    pub round_period: Duration,
    /// Bootstrap contacts handed to each joining node.
    pub bootstrap_contacts: usize,
    /// Join grace before a node is counted in expected-delivery sets.
    pub grace: Duration,
    /// The network model (latency/loss) messages travel over.
    pub network: NetworkSpec,
}

impl SystemParams {
    /// Sensible defaults around a subscription assignment.
    pub fn new(subscriptions: Vec<TopicSet>, num_topics: usize) -> Self {
        let n = subscriptions.len();
        let rates = RateTable::uniform(num_topics);
        let cfg = VitisConfig {
            est_n: n.max(2),
            ..VitisConfig::default()
        };
        SystemParams {
            seed: 42,
            cfg,
            subscriptions,
            num_topics,
            rates,
            round_period: Duration(64),
            bootstrap_contacts: 5,
            grace: Duration(0),
            network: NetworkSpec::default(),
        }
    }
}

/// A complete Vitis network: engine, nodes, workload ground truth and
/// metrics, behind a compact public API.
pub struct VitisSystem {
    engine: Engine<VitisNode, vitis_sim::network::DynNetworkModel>,
    monitor: Monitor,
    workload: Workload,
    cfg: Rc<VitisConfig>,
    boot_rng: SmallRng,
    bootstrap_contacts: usize,
}

impl VitisSystem {
    /// Build and start a network with every node online.
    pub fn new(params: SystemParams) -> Self {
        params.cfg.validate();
        let n = params.subscriptions.len();
        let cfg = Rc::new(params.cfg);
        let monitor = Monitor::new();
        let workload = Workload::new(
            params.subscriptions,
            params.num_topics,
            params.rates,
            params.grace,
            params.seed,
        );
        let engine = Engine::with_network(
            EngineConfig {
                seed: params.seed,
                round_period: params.round_period,
                desynchronize_rounds: true,
            },
            params.network.build(),
        );
        let boot_rng = stream_rng(params.seed, domain::WORKLOAD, u64::MAX);
        let mut sys = VitisSystem {
            engine,
            monitor,
            workload,
            cfg,
            boot_rng,
            bootstrap_contacts: params.bootstrap_contacts,
        };
        for logical in 0..n as u32 {
            let node = sys.make_node(logical);
            let slot = sys.engine.add_node(node);
            debug_assert_eq!(slot.0, logical);
        }
        sys
    }

    fn make_node(&mut self, logical: u32) -> VitisNode {
        let subs = self.workload.subs_of(logical).clone();
        let bootstrap = self.bootstrap_entries();
        VitisNode::new(
            Id::of_node(logical as u64),
            subs,
            self.cfg.clone(),
            self.workload.rates().clone(),
            self.monitor.clone(),
            bootstrap,
        )
    }

    /// Sample bootstrap contacts among currently online nodes (the
    /// bootstrap-server emulation of Algorithm 1).
    fn bootstrap_entries(&mut self) -> Vec<Entry<Rc<TopicSet>>> {
        let mut alive: Vec<NodeIdx> = self.engine.alive_indices();
        alive.shuffle(&mut self.boot_rng);
        alive
            .into_iter()
            .take(self.bootstrap_contacts)
            .map(|slot| {
                let node = self.engine.node(slot).expect("sampled alive node");
                Entry::fresh(slot, node.ring_id(), node.subscriptions().clone())
            })
            .collect()
    }

    /// The shared monitor (e.g. for custom event registration in tests).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The underlying engine (read access for snapshots).
    pub fn engine(&self) -> &Engine<VitisNode, vitis_sim::network::DynNetworkModel> {
        &self.engine
    }

    /// Replace the subscriptions of an online node at runtime; the change
    /// is reflected both in the delivery ground truth and in the node's
    /// next profile heartbeat.
    pub fn resubscribe(&mut self, logical: u32, new_subs: TopicSet) {
        self.workload.resubscribe(logical, new_subs);
        let subs = self.workload.subs_of(logical).clone();
        if let Some(node) = self.engine.node_mut(NodeIdx(logical)) {
            node.set_subscriptions(subs);
        }
    }

    /// The workload ground truth.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Snapshot the current overlay as an undirected graph (an edge per
    /// routing-table link to an online node).
    pub fn overlay_graph(&self) -> Graph {
        let n = self.engine.num_slots();
        let mut g = Graph::new(n);
        for (idx, node) in self.engine.alive_nodes() {
            for e in node.routing_table().iter() {
                if self.engine.is_alive(e.addr) {
                    g.add_edge(idx.0, e.addr.0);
                }
            }
        }
        g
    }

    /// The clusters (maximal connected subscriber subgraphs) of `topic` in
    /// the current overlay.
    pub fn topic_clusters(&self, topic: TopicId) -> Vec<Vec<u32>> {
        let g = self.overlay_graph();
        let subs: Vec<u32> = self
            .workload
            .subscribers(topic)
            .iter()
            .copied()
            .filter(|&s| self.engine.is_alive(NodeIdx(s)))
            .collect();
        g.components_within(&subs)
    }

    /// Publish from an explicit node (must be online). Returns the event id.
    pub fn publish_from(&mut self, publisher: u32, topic: TopicId) -> Option<EventId> {
        if !self.engine.is_alive(NodeIdx(publisher)) {
            return None;
        }
        let now = self.engine.now();
        let engine = &self.engine;
        let expected = self.workload.expected_subscribers(topic, publisher, now, |s| {
            engine.joined_at(NodeIdx(s))
        });
        let event = self.monitor.register_event(topic, now, expected);
        self.monitor.trace_publish(event, NodeIdx(publisher));
        self.engine.inject(
            NodeIdx(publisher),
            VitisMsg::PublishCmd { event, topic },
        );
        Some(event)
    }

    /// Classify one missed `(event, subscriber)` pair against the current
    /// overlay structure. `graph` is the overlay snapshot, `comps` the
    /// alive-subscriber components of the miss's topic within it.
    fn classify_miss(
        &self,
        comps: &[Vec<u32>],
        rendezvous_claims: usize,
        miss: &crate::monitor::MissContext<'_>,
    ) -> LossReason {
        if !self.engine.is_alive(miss.subscriber) {
            return LossReason::SubscriberChurned;
        }
        let Some(comp) = comps.iter().find(|c| c.contains(&miss.subscriber.0)) else {
            // Alive but absent from every component: resubscribed after
            // publish or otherwise outside the ground truth — treat as
            // disconnected.
            return LossReason::PartitionedCluster;
        };
        if comp
            .iter()
            .any(|&x| miss.delivered.binary_search(&NodeIdx(x)).is_ok())
        {
            // The event reached this connected cluster but forwarding
            // stopped before covering it.
            return LossReason::IncompleteFlood;
        }
        let gateways: Vec<&VitisNode> = comp
            .iter()
            .filter_map(|&x| self.engine.node(NodeIdx(x)))
            .filter(|n| n.is_gateway(miss.topic))
            .collect();
        if gateways.is_empty() {
            return LossReason::NoGateway;
        }
        if !gateways.iter().any(|g| g.relay_table().has(miss.topic)) {
            return LossReason::RelayBroken;
        }
        match rendezvous_claims {
            0 => LossReason::RelayBroken, // relay chain never terminated
            1 => LossReason::PartitionedCluster,
            _ => LossReason::RingMisroute, // conflicting rendezvous points
        }
    }

    /// Fraction of online nodes whose successor pointer matches the true
    /// ring (convergence diagnostic).
    pub fn ring_accuracy(&self) -> f64 {
        let nodes: Vec<(Id, Option<Id>)> = self
            .engine
            .alive_nodes()
            .map(|(_, n)| {
                (
                    n.ring_id(),
                    n.routing_table().succ.as_ref().and_then(|s| {
                        self.engine.is_alive(s.addr).then_some(s.id)
                    }),
                )
            })
            .collect();
        vitis_overlay::ring::ring_accuracy(&nodes)
    }
}

impl PubSub for VitisSystem {
    fn run_rounds(&mut self, n: u64) {
        self.engine.run_rounds(n);
    }

    fn run_ticks(&mut self, ticks: u64) {
        self.engine.run_for(Duration(ticks));
    }

    fn publish(&mut self, topic: TopicId) -> Option<EventId> {
        let engine = &self.engine;
        let publisher = self
            .workload
            .choose_publisher(topic, |s| engine.is_alive(NodeIdx(s)))?;
        self.publish_from(publisher, topic)
    }

    fn publish_weighted(&mut self) -> Option<EventId> {
        let topic = self.workload.draw_topic();
        self.publish(topic)
    }

    fn stats(&self) -> PubSubStats {
        self.monitor
            .snapshot()
            .with_kind_traffic(&self.engine.kind_traffic())
    }

    fn reset_metrics(&mut self) {
        self.monitor.reset();
        self.engine.reset_kind_traffic();
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn alive_count(&self) -> usize {
        self.engine.alive_count()
    }

    fn set_online(&mut self, logical: u32, online: bool) {
        let slot = NodeIdx(logical);
        let is_alive = self.engine.is_alive(slot);
        match (is_alive, online) {
            (false, true) => {
                let node = self.make_node(logical);
                if (slot.index()) < self.engine.num_slots() {
                    self.engine.rejoin_node(slot, node);
                } else {
                    let got = self.engine.add_node(node);
                    assert_eq!(got, slot, "logical ids must join in order");
                }
            }
            (true, false) => {
                self.engine.remove_node(slot, StopReason::Crash);
            }
            _ => {}
        }
    }

    fn mean_degree(&self) -> f64 {
        let (sum, count) = self
            .engine
            .alive_nodes()
            .fold((0usize, 0usize), |(s, c), (_, n)| {
                (s + n.routing_table().len(), c + 1)
            });
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    fn per_node_overhead(&self, min_msgs: u64) -> Vec<f64> {
        self.monitor
            .per_node_overhead(min_msgs)
            .into_iter()
            .map(|(_, pct)| pct)
            .collect()
    }

    fn install_trace(&mut self, trace: TraceHandle) {
        self.monitor.set_trace(Some(trace.clone()));
        self.engine.set_trace(trace);
    }

    fn loss_report(&self) -> LossReport {
        let graph = self.overlay_graph();
        // Lazily computed per-topic state, shared across the misses of a
        // topic: alive-subscriber components and rendezvous-claim counts.
        let mut comps_by_topic: HashMap<TopicId, Vec<Vec<u32>>> = HashMap::new();
        let mut rdv_by_topic: HashMap<TopicId, usize> = HashMap::new();
        self.monitor.attribute_losses(self.engine.now(), |miss| {
            let comps = comps_by_topic.entry(miss.topic).or_insert_with(|| {
                let subs: Vec<u32> = self
                    .workload
                    .subscribers(miss.topic)
                    .iter()
                    .copied()
                    .filter(|&s| self.engine.is_alive(NodeIdx(s)))
                    .collect();
                graph.components_within(&subs)
            });
            let rdv = *rdv_by_topic.entry(miss.topic).or_insert_with(|| {
                self.engine
                    .alive_nodes()
                    .filter(|(_, n)| {
                        n.relay_table()
                            .get(miss.topic)
                            .is_some_and(|e| e.is_rendezvous())
                    })
                    .count()
            });
            self.classify_miss(comps, rdv, miss)
        })
    }

    fn health_probe(&self) -> HealthProbe {
        let (age_sum, entries) = self
            .engine
            .alive_nodes()
            .flat_map(|(_, n)| n.routing_table().iter())
            .fold((0u64, 0u64), |(s, c), e| (s + u64::from(e.age), c + 1));
        let graph = self.overlay_graph();
        let engine = &self.engine;
        let (clusters, largest) =
            cluster_probe(&graph, &self.workload, |s| engine.is_alive(NodeIdx(s)));
        HealthProbe {
            alive: self.engine.alive_count() as u64,
            mean_degree: self.mean_degree(),
            ring_accuracy: Some(self.ring_accuracy()),
            mean_view_age: (entries > 0).then(|| age_sum as f64 / entries as f64),
            clusters: Some(clusters),
            largest_cluster: Some(largest),
        }
    }
}

/// Deterministic helper used across tests/benches: a quick static network
/// with `n` nodes, `topics` topics, `subs_per_node` random subscriptions.
pub fn random_system(n: usize, topics: usize, subs_per_node: usize, seed: u64) -> VitisSystem {
    let mut rng = stream_rng(seed, domain::WORKLOAD, 1);
    let subscriptions: Vec<TopicSet> = (0..n)
        .map(|_| {
            TopicSet::from_iter(
                (0..subs_per_node).map(|_| rng.gen_range(0..topics as u32)),
            )
        })
        .collect();
    let mut params = SystemParams::new(subscriptions, topics);
    params.seed = seed;
    VitisSystem::new(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Converged static network: every event reaches every subscriber.
    #[test]
    fn full_hit_ratio_after_convergence() {
        let mut sys = random_system(200, 40, 6, 11);
        sys.run_rounds(40);
        sys.reset_metrics();
        for t in 0..40 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(6);
        let s = sys.stats();
        assert!(s.expected > 0);
        assert!(
            s.hit_ratio > 0.99,
            "hit ratio {} ({} / {})",
            s.hit_ratio,
            s.delivered,
            s.expected
        );
        assert!(s.overhead_pct < 60.0, "overhead {}", s.overhead_pct);
        assert!(s.mean_hops >= 1.0);
    }

    #[test]
    fn ring_converges() {
        let mut sys = random_system(150, 20, 4, 3);
        sys.run_rounds(40);
        let acc = sys.ring_accuracy();
        assert!(acc > 0.95, "ring accuracy {acc}");
    }

    #[test]
    fn degree_stays_bounded() {
        let mut sys = random_system(120, 30, 5, 5);
        sys.run_rounds(30);
        for (_, node) in sys.engine().alive_nodes() {
            assert!(node.routing_table().len() <= 15);
        }
        assert!(sys.mean_degree() <= 15.0);
        assert!(sys.mean_degree() > 5.0, "table should fill up");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut sys = random_system(80, 10, 3, seed);
            sys.run_rounds(20);
            sys.reset_metrics();
            for t in 0..10 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(4);
            let s = sys.stats();
            (s.delivered, s.useful_msgs, s.relay_msgs)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn churn_recovery_restores_delivery() {
        let mut sys = random_system(150, 15, 4, 21);
        sys.run_rounds(30);
        // Crash 20% of the nodes.
        for logical in 0..30 {
            sys.set_online(logical, false);
        }
        assert_eq!(sys.alive_count(), 120);
        sys.run_rounds(15); // heal
        sys.reset_metrics();
        for t in 0..15 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(6);
        let s = sys.stats();
        assert!(s.hit_ratio > 0.97, "hit ratio after churn {}", s.hit_ratio);
        // Bring them back: they rejoin and eventually receive events again.
        for logical in 0..30 {
            sys.set_online(logical, true);
        }
        assert_eq!(sys.alive_count(), 150);
        sys.run_rounds(15);
        sys.reset_metrics();
        for t in 0..15 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(6);
        let s = sys.stats();
        assert!(s.hit_ratio > 0.97, "hit ratio after rejoin {}", s.hit_ratio);
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        use vitis_sim::trace::Trace;
        let run = |traced: bool| {
            let mut sys = random_system(120, 15, 4, 17);
            if traced {
                sys.install_trace(Trace::shared(1 << 14));
            }
            sys.run_rounds(25);
            sys.reset_metrics();
            for t in 0..15 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(5);
            let s = sys.stats();
            (
                s.delivered,
                s.expected,
                s.useful_msgs,
                s.relay_msgs,
                s.mean_hops.to_bits(),
                s.mean_latency_ticks.to_bits(),
                s.control_sent,
                s.data_sent,
            )
        };
        assert_eq!(run(false), run(true), "forensics tracing must be inert");
    }

    #[test]
    fn loss_report_counts_sum_to_missed_pairs() {
        use vitis_sim::trace::{Trace, TraceEvent};
        let mut sys = random_system(150, 15, 4, 23);
        let trace = Trace::shared(1 << 16);
        sys.install_trace(trace.clone());
        sys.run_rounds(25);
        sys.reset_metrics();
        for t in 0..15 {
            sys.publish(TopicId(t));
        }
        // Crash a fifth of the network right after publishing so some
        // expected subscribers can never be reached.
        for logical in 0..30 {
            sys.set_online(logical, false);
        }
        sys.run_rounds(5);
        let s = sys.stats();
        let report = sys.loss_report();
        assert_eq!(report.expected, s.expected);
        assert_eq!(report.delivered, s.delivered);
        let total: u64 = report.by_reason.iter().map(|(_, c)| c).sum();
        assert_eq!(total, s.expected - s.delivered, "every miss classified");
        assert!(report.missed() > 0, "the crash should cause misses");
        assert!(
            report.count(LossReason::SubscriberChurned) > 0,
            "crashed subscribers should be attributed to churn: {:?}",
            report.by_reason
        );
        // Each miss produced exactly one drop_event forensics record.
        let drops = trace
            .borrow()
            .events()
            .filter(|ev| matches!(ev, TraceEvent::DropEvent { .. }))
            .count() as u64;
        assert_eq!(drops, report.missed());
    }

    #[test]
    fn traced_run_reconstructs_delivery_paths() {
        use vitis_sim::trace::{Trace, TraceEvent};
        let mut sys = random_system(100, 10, 3, 7);
        sys.run_rounds(25);
        sys.install_trace(Trace::shared(1 << 16));
        sys.reset_metrics();
        let e = sys.publish(TopicId(0)).expect("publishable");
        sys.run_rounds(4);
        let trace = sys.engine().trace_handle().expect("installed");
        let t = trace.borrow();
        let mut pub_seen = false;
        let mut delivers = 0u64;
        let mut fwds = 0u64;
        for ev in t.events() {
            match ev {
                TraceEvent::PubEvent { event, .. } if *event == e.0 => pub_seen = true,
                TraceEvent::DeliverEvent { event, path, hops, .. } if *event == e.0 => {
                    delivers += 1;
                    // Path carries publisher..=subscriber: hops+1 slots.
                    let len = path.split('>').count() as u32;
                    assert_eq!(len, hops + 1, "path {path} vs hops {hops}");
                }
                TraceEvent::Fwd { event, .. } if *event == e.0 => fwds += 1,
                _ => {}
            }
        }
        assert!(pub_seen, "pub_event recorded");
        let (expected, delivered) = sys.monitor().event_progress(e).unwrap();
        assert!(expected > 0);
        assert_eq!(delivers as usize, delivered);
        assert!(fwds as usize >= delivered, "every delivery rode a forward");
    }

    #[test]
    fn publish_returns_none_without_subscribers() {
        let subs = vec![TopicSet::from_iter([0u32]); 4];
        let params = SystemParams::new(subs, 2);
        let mut sys = VitisSystem::new(params);
        sys.run_rounds(2);
        assert!(sys.publish(TopicId(1)).is_none(), "topic 1 has no subscribers");
        assert!(sys.publish(TopicId(0)).is_some());
    }

    #[test]
    fn topic_clusters_cover_subscribers() {
        let mut sys = random_system(100, 10, 3, 13);
        sys.run_rounds(25);
        let total: usize = sys.topic_clusters(TopicId(0)).iter().map(|c| c.len()).sum();
        let alive_subs = sys
            .workload()
            .subscribers(TopicId(0))
            .iter()
            .filter(|&&s| sys.engine().is_alive(NodeIdx(s)))
            .count();
        assert_eq!(total, alive_subs);
    }

    #[test]
    fn gateway_ablation_still_delivers() {
        let mut rng = stream_rng(31, domain::WORKLOAD, 1);
        let subscriptions: Vec<TopicSet> = (0..100)
            .map(|_| TopicSet::from_iter((0..4).map(|_| rng.gen_range(0..10u32))))
            .collect();
        let mut params = SystemParams::new(subscriptions, 10);
        params.seed = 31;
        params.cfg.gateway_election = false;
        let mut sys = VitisSystem::new(params);
        sys.run_rounds(25);
        sys.reset_metrics();
        for t in 0..10 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(5);
        let s = sys.stats();
        assert!(s.hit_ratio > 0.97, "hit {}", s.hit_ratio);
    }
}
