//! Overlay topology snapshots, structural health metrics and the relay
//! invariant auditor.
//!
//! Vitis's correctness is structural before it is behavioral: same-topic
//! subscribers must be stitched into connected relay paths, each topic
//! must resolve to a unique rendezvous, and gossip views must stay
//! bounded. Delivery metrics (hit ratio, latency) only show the *symptoms*
//! of structural decay; this module observes the structure itself.
//!
//! The entry point is [`OverlaySnapshot`] — a dense, self-contained export
//! of every online node's per-kind links, relay entries and gateway
//! beliefs, produced by `PubSub::overlay_snapshot`. Everything here is a
//! pure function of the snapshot:
//!
//! * [`analyze`] computes per-round structural metrics — topic
//!   connectivity with and without relay stitching, rendezvous
//!   uniqueness, gateway load, degree/view-age histograms and sampled
//!   relay-path stretch — summarized into a
//!   [`vitis_sim::trace::TopoProbe`].
//! * [`audit`] checks the relay-layer invariants (upstream/downstream
//!   symmetry, no links to departed nodes, bounded views, rendezvous
//!   marked iff terminal) and reports violations with node/topic
//!   provenance.
//!
//! Iteration orders are deterministic throughout (slot order for nodes,
//! topic order for relay state), so identical snapshots produce
//! byte-identical exports.

use crate::topic::TopicId;
use std::collections::{BTreeMap, BTreeSet};
use vitis_overlay::graph::Graph;
use vitis_overlay::id::Id;
use vitis_sim::event::NodeIdx;
pub use vitis_sim::trace::TopoProbe;

/// One overlay link as exported by a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopoLink {
    /// The neighbor's engine slot.
    pub peer: NodeIdx,
    /// Stable link-kind label (`"succ"`, `"pred"`, `"sw"`, `"friend"`,
    /// or `"mesh"` for kind-less overlays).
    pub kind: &'static str,
    /// Gossip freshness age, `None` where the overlay keeps no ages.
    pub age: Option<u16>,
}

/// One topic's relay state at one node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelayTopo {
    /// The topic.
    pub topic: TopicId,
    /// Next hop toward the rendezvous, if any.
    pub upstream: Option<NodeIdx>,
    /// Rounds since the upstream link was last installed or refreshed.
    /// Fresh links (below [`RELAY_SYMMETRY_GRACE`]) may still have their
    /// install message in flight, so the auditor gives them grace.
    pub upstream_age: Option<u16>,
    /// Links back toward the gateways whose lookups passed through.
    pub downstream: Vec<NodeIdx>,
    /// Whether this node claims to be the topic's rendezvous.
    pub rendezvous: bool,
}

/// Everything one node exports into a topology snapshot.
#[derive(Clone, Debug)]
pub struct NodeTopo {
    /// The node's engine slot.
    pub node: NodeIdx,
    /// The node's ring identifier.
    pub ring_id: Id,
    /// Subscribed topics, ascending.
    pub subs: Vec<TopicId>,
    /// Current overlay links with kind and age.
    pub links: Vec<TopoLink>,
    /// Relay entries, in topic order.
    pub relays: Vec<RelayTopo>,
    /// Per subscribed topic, the node this node currently believes is the
    /// topic's cluster gateway (from the gossiped proposal). Empty for
    /// systems without gateway election.
    pub gateway_view: Vec<(TopicId, NodeIdx)>,
    /// Configured view-size bound, `None` for unbounded overlays.
    pub view_bound: Option<usize>,
    /// Configured relay soft-state TTL, `None` for overlays without
    /// relay state. A link whose age has reached the TTL is in its final
    /// round before collection, so the auditor treats it as already dead.
    pub relay_ttl: Option<u16>,
}

/// A dense structural snapshot of the whole overlay at one instant:
/// every online node's [`NodeTopo`], in slot order.
#[derive(Clone, Debug, Default)]
pub struct OverlaySnapshot {
    /// Simulated time the snapshot was taken at, in ticks.
    pub now: u64,
    /// Engine slot-space size (node indices are `< num_slots`).
    pub num_slots: usize,
    /// Online nodes, sorted by slot.
    pub nodes: Vec<NodeTopo>,
}

impl OverlaySnapshot {
    /// The exported state of `idx`, or `None` if it was offline at
    /// snapshot time.
    pub fn node(&self, idx: NodeIdx) -> Option<&NodeTopo> {
        self.nodes
            .binary_search_by_key(&idx, |n| n.node)
            .ok()
            .map(|i| &self.nodes[i])
    }

    /// Whether `idx` was online at snapshot time.
    pub fn is_alive(&self, idx: NodeIdx) -> bool {
        self.node(idx).is_some()
    }

    /// Alive subscribers per topic, derived by inverting the per-node
    /// subscription lists. Topics and subscriber lists are sorted.
    pub fn subscribers_by_topic(&self) -> BTreeMap<TopicId, Vec<u32>> {
        let mut map: BTreeMap<TopicId, Vec<u32>> = BTreeMap::new();
        for n in &self.nodes {
            for &t in &n.subs {
                map.entry(t).or_default().push(n.node.0);
            }
        }
        map
    }

    /// The undirected overlay graph over online nodes (links to offline
    /// peers are ignored — routing-table staleness is expected, not an
    /// error).
    pub fn overlay_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_slots);
        for n in &self.nodes {
            for l in &n.links {
                if self.is_alive(l.peer) {
                    g.add_edge(n.node.0, l.peer.0);
                }
            }
        }
        g
    }
}

/// Full analysis output: the flat [`TopoProbe`] summary plus the
/// distributions that do not fit a flat trace record.
#[derive(Clone, Debug, Default)]
pub struct TopoMetrics {
    /// Flat per-round summary (what the periodic sampler records).
    pub probe: TopoProbe,
    /// Out-degree histogram over online nodes: `hist[d]` = nodes with
    /// `d` live outgoing links.
    pub out_degree_hist: Vec<u64>,
    /// In-degree histogram over online nodes.
    pub in_degree_hist: Vec<u64>,
    /// View-age histogram over live links that carry ages.
    pub view_age_hist: Vec<u64>,
    /// Per-gateway load: `(gateway slot, topics it fronts)`, sorted by
    /// slot; a gateway's load is the number of distinct topics some node
    /// currently believes it is the gateway for.
    pub gateway_loads: Vec<(u32, u64)>,
}

fn bump(hist: &mut Vec<u64>, value: usize) {
    if hist.len() <= value {
        hist.resize(value + 1, 0);
    }
    hist[value] += 1;
}

/// Evenly spaced sample of up to `max` items out of `0..len`.
fn sample_indices(len: usize, max: usize) -> Vec<usize> {
    if len <= max || max == 0 {
        return (0..len).collect();
    }
    let step = len as f64 / max as f64;
    (0..max).map(|i| (i as f64 * step) as usize).collect()
}

/// Walk the upstream relay chain for `topic` starting at `start`.
/// Returns `Some(hops, terminal)` when the chain reaches a rendezvous
/// claimant; `None` for broken chains (missing entry, departed node,
/// cycle, or a headless end).
fn walk_upstream(snap: &OverlaySnapshot, topic: TopicId, start: NodeIdx) -> Option<(u32, NodeIdx)> {
    let mut cur = start;
    let mut hops = 0u32;
    let mut seen = BTreeSet::new();
    loop {
        if !seen.insert(cur) {
            return None; // cycle
        }
        let entry = snap
            .node(cur)?
            .relays
            .iter()
            .find(|r| r.topic == topic)?;
        if entry.rendezvous {
            return Some((hops, cur));
        }
        cur = entry.upstream?;
        hops += 1;
    }
}

/// Compute the structural health metrics of a snapshot.
///
/// Per-topic connectivity is computed over at most `max_topics` evenly
/// spaced subscribed topics (all of them when `max_topics` is large
/// enough); `TopoProbe::sampled_topics` records how many were analysed.
pub fn analyze(snap: &OverlaySnapshot, max_topics: usize) -> TopoMetrics {
    let mut m = TopoMetrics {
        probe: TopoProbe {
            nodes: snap.nodes.len() as u64,
            ..TopoProbe::default()
        },
        ..TopoMetrics::default()
    };
    let graph = snap.overlay_graph();

    // Degree and view-age distributions over live links.
    let mut in_deg: BTreeMap<u32, u64> = BTreeMap::new();
    let (mut age_sum, mut aged_links) = (0u64, 0u64);
    for n in &snap.nodes {
        let mut out = 0usize;
        for l in &n.links {
            if !snap.is_alive(l.peer) {
                continue;
            }
            out += 1;
            *in_deg.entry(l.peer.0).or_default() += 1;
            if let Some(age) = l.age {
                bump(&mut m.view_age_hist, age as usize);
                age_sum += u64::from(age);
                aged_links += 1;
            }
        }
        m.probe.links += out as u64;
        bump(&mut m.out_degree_hist, out);
    }
    for n in &snap.nodes {
        bump(
            &mut m.in_degree_hist,
            in_deg.get(&n.node.0).copied().unwrap_or(0) as usize,
        );
    }
    m.probe.mean_view_age = (aged_links > 0).then(|| age_sum as f64 / aged_links as f64);

    // Relay state inventory: per-topic edges, holders and rendezvous
    // claimants; dead links counted globally.
    let mut relay_edges: BTreeMap<TopicId, Vec<(u32, u32)>> = BTreeMap::new();
    let mut relay_holders: BTreeMap<TopicId, BTreeSet<u32>> = BTreeMap::new();
    let mut rendezvous_claims: BTreeMap<TopicId, u64> = BTreeMap::new();
    for n in &snap.nodes {
        for r in &n.relays {
            relay_holders.entry(r.topic).or_default().insert(n.node.0);
            if r.rendezvous {
                *rendezvous_claims.entry(r.topic).or_default() += 1;
            }
            for peer in r.upstream.iter().chain(r.downstream.iter()) {
                if snap.is_alive(*peer) {
                    relay_edges.entry(r.topic).or_default().push((n.node.0, peer.0));
                } else {
                    m.probe.dead_links += 1;
                }
            }
        }
    }
    for (&t, holders) in &relay_holders {
        match rendezvous_claims.get(&t).copied().unwrap_or(0) {
            0 if !holders.is_empty() => m.probe.headless_topics += 1,
            c if c >= 2 => m.probe.rendezvous_conflicts += 1,
            _ => {}
        }
    }

    // Gateway load: distinct topics each node fronts, per anyone's view.
    let mut believed: BTreeSet<(NodeIdx, TopicId)> = BTreeSet::new();
    for n in &snap.nodes {
        for &(t, gw) in &n.gateway_view {
            believed.insert((gw, t));
        }
    }
    let mut loads: BTreeMap<u32, u64> = BTreeMap::new();
    for (gw, _) in &believed {
        *loads.entry(gw.0).or_default() += 1;
    }
    m.probe.max_gateway_load = loads.values().copied().max().unwrap_or(0);
    m.gateway_loads = loads.into_iter().collect();

    // Per-topic connectivity: components of the alive-subscriber induced
    // subgraph (fragmentation), then again with the topic's relay edges
    // added and relay holders allowed as intermediate vertices (what the
    // relay layer actually stitches).
    let by_topic = snap.subscribers_by_topic();
    let topics: Vec<TopicId> = by_topic.keys().copied().collect();
    let sampled = sample_indices(topics.len(), max_topics);
    let mut frac_sum = 0.0f64;
    let mut stretch_sum = 0.0f64;
    let mut stretch_n = 0u64;
    for &i in &sampled {
        let t = topics[i];
        let subs = &by_topic[&t];
        if subs.is_empty() {
            continue;
        }
        m.probe.sampled_topics += 1;
        m.probe.components += graph.components_within(subs).len() as u64;

        let mut stitched = graph.clone();
        if let Some(edges) = relay_edges.get(&t) {
            for &(a, b) in edges {
                stitched.add_edge(a, b);
            }
        }
        let mut vertices: BTreeSet<u32> = subs.iter().copied().collect();
        if let Some(holders) = relay_holders.get(&t) {
            vertices.extend(holders.iter().copied());
        }
        let vertices: Vec<u32> = vertices.into_iter().collect();
        let sub_set: BTreeSet<u32> = subs.iter().copied().collect();
        let mut largest_subs = 0usize;
        for comp in stitched.components_within(&vertices) {
            let in_comp = comp.iter().filter(|v| sub_set.contains(v)).count();
            if in_comp > 0 {
                m.probe.stitched_components += 1;
                largest_subs = largest_subs.max(in_comp);
            }
        }
        frac_sum += largest_subs as f64 / subs.len() as f64;

        // Relay-path stretch: upstream-chain length from each believed
        // gateway vs. the overlay-graph BFS distance to the rendezvous.
        let mut gateways: Vec<NodeIdx> = Vec::new();
        for n in &snap.nodes {
            if n.gateway_view.iter().any(|&(gt, gw)| gt == t && gw == n.node) {
                gateways.push(n.node);
            }
        }
        for gw in gateways {
            let Some((hops, terminal)) = walk_upstream(snap, t, gw) else {
                continue;
            };
            if hops == 0 {
                continue; // the gateway is the rendezvous itself
            }
            let dist = graph.bfs_hops(gw.0, None)[terminal.0 as usize];
            if let Some(d) = dist.filter(|&d| d > 0) {
                stretch_sum += f64::from(hops) / f64::from(d);
                stretch_n += 1;
            }
        }
    }
    if m.probe.sampled_topics > 0 {
        m.probe.largest_component_frac = frac_sum / m.probe.sampled_topics as f64;
    }
    m.probe.mean_relay_stretch = (stretch_n > 0).then(|| stretch_sum / stretch_n as f64);
    m
}

/// One invariant violation, with provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The node whose exported state violates the invariant.
    pub node: NodeIdx,
    /// The topic involved, if the invariant is per-topic.
    pub topic: Option<TopicId>,
    /// Stable snake_case invariant name.
    pub kind: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

/// Rounds of grace before a missing upstream/downstream backlink counts
/// as an `asymmetric_upstream` violation. Upstream links are installed
/// at send time and the matching downstream at delivery, so a link must
/// survive one full round before its backlink is guaranteed observable.
pub const RELAY_SYMMETRY_GRACE: u16 = 2;

/// Audit the relay-layer invariants of a snapshot. Returns violations in
/// deterministic (slot, topic) order; an empty vector means the overlay
/// is structurally sound.
///
/// Invariants checked:
/// * `view_overflow` — a node holds more links than its configured bound.
/// * `rendezvous_with_upstream` — an entry claims rendezvous (terminal)
///   while also holding an upstream link.
/// * `dead_upstream` / `dead_downstream` — a relay link references a node
///   absent from the snapshot (departed). Expected transiently under
///   churn (soft state heals by TTL); must be zero in a stable network.
/// * `asymmetric_upstream` — node A's upstream for a topic points at a
///   live node B, but B holds no matching downstream link back to A.
///   The two ends are installed by different events (A at send time, B
///   when the relay request arrives), so links younger than
///   [`RELAY_SYMMETRY_GRACE`] rounds get grace — their install message
///   may still be in flight. Links whose age has reached the node's
///   configured relay TTL are exempt at the other end of their life:
///   both halves expire when `age > ttl`, but round clocks are
///   desynchronized, so at the TTL boundary the peer may already have
///   collected its backlink one tick before A collects the upstream —
///   that final-round window is dead soft state, not a dangling link. A
///   link between grace and TTL without a backlink is genuinely dangling.
pub fn audit(snap: &OverlaySnapshot) -> Vec<Violation> {
    let mut out = Vec::new();
    for n in &snap.nodes {
        if let Some(bound) = n.view_bound {
            if n.links.len() > bound {
                out.push(Violation {
                    node: n.node,
                    topic: None,
                    kind: "view_overflow",
                    detail: format!("{} links exceed bound {bound}", n.links.len()),
                });
            }
        }
        for r in &n.relays {
            if r.rendezvous && r.upstream.is_some() {
                out.push(Violation {
                    node: n.node,
                    topic: Some(r.topic),
                    kind: "rendezvous_with_upstream",
                    detail: format!("rendezvous claim with upstream {:?}", r.upstream),
                });
            }
            if let Some(up) = r.upstream {
                match snap.node(up) {
                    None => out.push(Violation {
                        node: n.node,
                        topic: Some(r.topic),
                        kind: "dead_upstream",
                        detail: format!("upstream {} departed", up.0),
                    }),
                    Some(peer) => {
                        let symmetric = peer
                            .relays
                            .iter()
                            .find(|pr| pr.topic == r.topic)
                            .is_some_and(|pr| pr.downstream.contains(&n.node));
                        let past_grace =
                            r.upstream_age.is_none_or(|a| a >= RELAY_SYMMETRY_GRACE);
                        let expiring = n
                            .relay_ttl
                            .zip(r.upstream_age)
                            .is_some_and(|(ttl, a)| a >= ttl);
                        if !symmetric && past_grace && !expiring {
                            out.push(Violation {
                                node: n.node,
                                topic: Some(r.topic),
                                kind: "asymmetric_upstream",
                                detail: format!(
                                    "upstream link (age {:?}) has no downstream back from {}",
                                    r.upstream_age, up.0
                                ),
                            });
                        }
                    }
                }
            }
            for d in &r.downstream {
                if !snap.is_alive(*d) {
                    out.push(Violation {
                        node: n.node,
                        topic: Some(r.topic),
                        kind: "dead_downstream",
                        detail: format!("downstream {} departed", d.0),
                    });
                }
            }
        }
    }
    out
}

/// Convenience: full probe of a snapshot — [`analyze`] plus the
/// [`audit`] violation count folded in. What the periodic sampler and
/// the health time series record.
pub fn probe(snap: &OverlaySnapshot, max_topics: usize) -> TopoProbe {
    let mut p = analyze(snap, max_topics).probe;
    p.violations = audit(snap).len() as u64;
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(slot: u32) -> NodeTopo {
        NodeTopo {
            node: NodeIdx(slot),
            ring_id: Id(u64::from(slot) << 32),
            subs: Vec::new(),
            links: Vec::new(),
            relays: Vec::new(),
            gateway_view: Vec::new(),
            view_bound: Some(4),
            relay_ttl: Some(5),
        }
    }

    fn link(peer: u32, age: u16) -> TopoLink {
        TopoLink {
            peer: NodeIdx(peer),
            kind: "sw",
            age: Some(age),
        }
    }

    const T: TopicId = TopicId(0);

    /// Two 2-node subscriber clusters {0,1} and {2,3}, stitched through
    /// the non-subscriber relay node 4: 1 (gateway) → 4 → 2 (rendezvous).
    fn stitched_snapshot() -> OverlaySnapshot {
        let mut nodes: Vec<NodeTopo> = (0..5).map(node).collect();
        for n in &mut nodes[..4] {
            n.subs = vec![T];
        }
        nodes[0].links = vec![link(1, 0)];
        nodes[1].links = vec![link(0, 1)];
        nodes[2].links = vec![link(3, 0)];
        nodes[3].links = vec![link(2, 2)];
        nodes[1].gateway_view = vec![(T, NodeIdx(1))];
        nodes[0].gateway_view = vec![(T, NodeIdx(1))];
        nodes[1].relays = vec![RelayTopo {
            topic: T,
            upstream: Some(NodeIdx(4)),
            upstream_age: Some(3),
            downstream: vec![],
            rendezvous: false,
        }];
        nodes[4].relays = vec![RelayTopo {
            topic: T,
            upstream: Some(NodeIdx(2)),
            upstream_age: Some(3),
            downstream: vec![NodeIdx(1)],
            rendezvous: false,
        }];
        nodes[2].relays = vec![RelayTopo {
            topic: T,
            upstream: None,
            upstream_age: None,
            downstream: vec![NodeIdx(4)],
            rendezvous: true,
        }];
        OverlaySnapshot {
            now: 64,
            num_slots: 5,
            nodes,
        }
    }

    #[test]
    fn relay_paths_stitch_components() {
        let snap = stitched_snapshot();
        let m = analyze(&snap, 16);
        assert_eq!(m.probe.nodes, 5);
        assert_eq!(m.probe.sampled_topics, 1);
        // Overlay alone: {0,1} and {2,3}.
        assert_eq!(m.probe.components, 2);
        // Relay edges 1–4–2 join everything.
        assert_eq!(m.probe.stitched_components, 1);
        assert!((m.probe.largest_component_frac - 1.0).abs() < 1e-12);
        assert_eq!(m.probe.rendezvous_conflicts, 0);
        assert_eq!(m.probe.headless_topics, 0);
        assert_eq!(m.probe.dead_links, 0);
        assert_eq!(m.probe.max_gateway_load, 1);
        assert_eq!(m.gateway_loads, vec![(1, 1)]);
        // Gateway 1 reaches rendezvous 2 in 2 relay hops; the overlay
        // graph has no path at all, so no stretch sample is possible.
        assert_eq!(m.probe.mean_relay_stretch, None);
        // 4 directed live links, ages 0,1,0,2.
        assert_eq!(m.probe.links, 4);
        assert_eq!(m.out_degree_hist, vec![1, 4]); // node 4 has 0 links
        assert_eq!(m.view_age_hist, vec![2, 1, 1]);
        assert!(audit(&snap).is_empty());
    }

    #[test]
    fn stretch_uses_overlay_distance() {
        let mut snap = stitched_snapshot();
        // Give the overlay a direct 1–2 edge: relay chain (2 hops) over
        // BFS distance 1 → stretch 2.
        snap.nodes[1].links.push(link(2, 0));
        let m = analyze(&snap, 16);
        assert_eq!(m.probe.mean_relay_stretch, Some(2.0));
        // The direct edge also merges the overlay-only components.
        assert_eq!(m.probe.components, 1);
    }

    #[test]
    fn broken_chain_counts_headless_topics() {
        let mut snap = stitched_snapshot();
        // The rendezvous loses its claim (entry expired): node 2 keeps
        // only the downstream link.
        snap.nodes[2].relays[0].rendezvous = false;
        let m = analyze(&snap, 16);
        assert_eq!(m.probe.headless_topics, 1);
        assert_eq!(m.probe.mean_relay_stretch, None);
    }

    #[test]
    fn rendezvous_conflicts_detected() {
        let mut snap = stitched_snapshot();
        snap.nodes[3].relays = vec![RelayTopo {
            topic: T,
            upstream: None,
            upstream_age: None,
            downstream: vec![NodeIdx(2)],
            rendezvous: true,
        }];
        let m = analyze(&snap, 16);
        assert_eq!(m.probe.rendezvous_conflicts, 1);
    }

    #[test]
    fn dead_relay_links_counted_and_audited() {
        let mut snap = stitched_snapshot();
        // Node 4 departs; 1's upstream and 2's downstream now dangle.
        snap.nodes.remove(4);
        let m = analyze(&snap, 16);
        assert_eq!(m.probe.dead_links, 2);
        assert_eq!(m.probe.stitched_components, 2, "stitching is lost");
        let v = audit(&snap);
        let kinds: Vec<&str> = v.iter().map(|x| x.kind).collect();
        assert_eq!(kinds, vec!["dead_upstream", "dead_downstream"]);
        assert_eq!(v[0].node, NodeIdx(1));
        assert_eq!(v[0].topic, Some(T));
        assert_eq!(m.probe.violations, 0, "analyze() does not audit");
        assert_eq!(probe(&snap, 16).violations, 2);
    }

    #[test]
    fn asymmetric_upstream_and_terminal_invariants() {
        let mut snap = stitched_snapshot();
        // Drop 4's downstream link back to 1.
        snap.nodes[4].relays[0].downstream.clear();
        let v = audit(&snap);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "asymmetric_upstream");
        assert_eq!(v[0].node, NodeIdx(1));
        // A fresh upstream link gets grace: its relay request (which
        // installs the backlink at delivery) may still be in flight.
        snap.nodes[1].relays[0].upstream_age = Some(RELAY_SYMMETRY_GRACE - 1);
        assert!(audit(&snap).is_empty());
        // A link at the TTL boundary is exempt too: the peer's
        // desynchronized clock may already have collected its backlink
        // one tick before this node collects the upstream.
        snap.nodes[1].relays[0].upstream_age = Some(5);
        assert!(audit(&snap).is_empty());
        // ... but only where a relay TTL is configured.
        snap.nodes[1].relay_ttl = None;
        assert_eq!(audit(&snap).len(), 1);

        // A rendezvous claim with an upstream link is terminal-invariant
        // breakage.
        let mut snap = stitched_snapshot();
        snap.nodes[4].relays[0].rendezvous = true;
        let v = audit(&snap);
        assert!(v.iter().any(|x| x.kind == "rendezvous_with_upstream"));
    }

    #[test]
    fn view_bound_enforced() {
        let mut snap = stitched_snapshot();
        snap.nodes[0].view_bound = Some(1);
        snap.nodes[0].links = vec![link(1, 0), link(2, 0)];
        let v = audit(&snap);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "view_overflow");
        // Unbounded overlays are never flagged.
        snap.nodes[0].view_bound = None;
        assert!(audit(&snap).is_empty());
    }

    #[test]
    fn topic_sampling_is_even_and_bounded() {
        assert_eq!(sample_indices(3, 8), vec![0, 1, 2]);
        assert_eq!(sample_indices(8, 4), vec![0, 2, 4, 6]);
        assert_eq!(sample_indices(0, 4), Vec::<usize>::new());
        let s = sample_indices(1000, 64);
        assert_eq!(s.len(), 64);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn snapshot_lookup_is_by_slot() {
        let snap = stitched_snapshot();
        assert_eq!(snap.node(NodeIdx(3)).unwrap().node, NodeIdx(3));
        assert!(snap.node(NodeIdx(9)).is_none());
        assert!(snap.is_alive(NodeIdx(0)));
        let subs = snap.subscribers_by_topic();
        assert_eq!(subs[&T], vec![0, 1, 2, 3]);
    }
}
