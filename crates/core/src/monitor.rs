//! The evaluation monitor: ground-truth event tracking and data-plane
//! traffic accounting, shared by all three systems.
//!
//! The monitor implements the paper's three metrics:
//!
//! * **Hit ratio** — fraction of (event, subscriber) pairs delivered, where
//!   the expected subscriber set is fixed at publish time (alive subscribers
//!   that joined at least a grace period earlier, matching the paper's
//!   "10 seconds after the node joins" rule in the churn experiments).
//! * **Traffic overhead** — the proportion of *relay* (uninteresting)
//!   data-plane messages, globally and per node (Figure 5's distribution).
//! * **Propagation delay** — hops from publisher to subscriber, averaged
//!   over achieved deliveries.
//!
//! A [`Monitor`] is a cheap `Arc` handle cloned into every node of a system.
//! Under serial execution each handle applies writes immediately; under the
//! engine's deterministic parallel executor a handle switches into *deferred*
//! mode and buffers its writes as [`MonitorOp`]s, which the engine replays on
//! the merge thread in exact serial event order (see
//! `vitis_sim::protocol::ParallelProtocol`).

use crate::topic::TopicId;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use vitis_sim::event::NodeIdx;
use vitis_sim::metrics::Summary;
use vitis_sim::time::SimTime;
use vitis_sim::trace::{KindTraffic, TraceEvent, TraceHandle, TrafficClass};

/// Identifier of a published event within a run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EventId(pub u64);

/// Causal hop-path provenance carried inside dissemination messages: the
/// engine slots an event copy has visited, publisher first. Backed by a
/// shared `Arc` so fanning a notification out to `k` neighbors clones a
/// pointer, not the path; [`HopPath::extend`] allocates once per hop.
///
/// The path is forensic metadata only — it never influences routing and
/// does not count toward wire-size accounting (see `docs/METRICS.md` §6).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HopPath(Arc<Vec<NodeIdx>>);

impl HopPath {
    /// A path starting (and ending) at the publisher.
    pub fn origin(node: NodeIdx) -> Self {
        HopPath(Arc::new(vec![node]))
    }

    /// The path with `node` appended (a copy; the original is unchanged).
    pub fn extend(&self, node: NodeIdx) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(node);
        HopPath(Arc::new(v))
    }

    /// Visited slots, publisher first.
    pub fn nodes(&self) -> &[NodeIdx] {
        &self.0
    }

    /// Number of visited slots (0 for an empty/absent path).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no provenance was carried.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The trace encoding: `>`-joined slot numbers, e.g. `"0>5>12"`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (i, n) in self.0.iter().enumerate() {
            if i > 0 {
                s.push('>');
            }
            s.push_str(&n.0.to_string());
        }
        s
    }
}

/// Why a missed `(event, subscriber)` pair failed, as classified by the
/// loss-attribution pass at window close ([`Monitor::attribute_losses`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LossReason {
    /// The subscriber went offline between publish and window close.
    SubscriberChurned,
    /// The subscriber's connected topic cluster contains no gateway, so
    /// nothing in its component could have pulled the event off the ring.
    NoGateway,
    /// A gateway exists in the subscriber's cluster but holds no relay
    /// state for the topic (relay path never built or expired).
    RelayBroken,
    /// Conflicting rendezvous claims: more than one alive node believes
    /// it is the topic's rendezvous point, so relay paths diverge.
    RingMisroute,
    /// The subscriber's cluster is disconnected from every copy of the
    /// event (and none of the finer-grained causes above applies).
    PartitionedCluster,
    /// The event reached the subscriber's connected cluster but flooding
    /// or forwarding stopped before covering it (e.g. window closed too
    /// early, or a forwarding gap).
    IncompleteFlood,
    /// The network itself dropped a copy addressed to this subscriber
    /// (lossy link, partition, freeze suppression) and no other copy
    /// arrived — classified from the engine's transit-drop record.
    Network,
}

impl LossReason {
    /// Every reason, in display order. `Network` stays last so reports
    /// and goldens from pre-fault-injection runs only gain a trailing
    /// zero-count entry.
    pub const ALL: [LossReason; 7] = [
        LossReason::SubscriberChurned,
        LossReason::NoGateway,
        LossReason::RelayBroken,
        LossReason::RingMisroute,
        LossReason::PartitionedCluster,
        LossReason::IncompleteFlood,
        LossReason::Network,
    ];

    /// Stable snake_case name used in `drop_event` trace records.
    pub fn as_str(self) -> &'static str {
        match self {
            LossReason::SubscriberChurned => "subscriber_churned",
            LossReason::NoGateway => "no_gateway",
            LossReason::RelayBroken => "relay_broken",
            LossReason::RingMisroute => "ring_misroute",
            LossReason::PartitionedCluster => "partitioned_cluster",
            LossReason::IncompleteFlood => "incomplete_flood",
            LossReason::Network => "network",
        }
    }

    /// Inverse of [`LossReason::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        LossReason::ALL.into_iter().find(|r| r.as_str() == s)
    }
}

/// One missed `(event, subscriber)` pair handed to the classification
/// callback of [`Monitor::attribute_losses`].
#[derive(Clone, Debug)]
pub struct MissContext<'a> {
    /// The undelivered event.
    pub event: EventId,
    /// Its topic.
    pub topic: TopicId,
    /// The expected subscriber that never received it.
    pub subscriber: NodeIdx,
    /// Sorted slots that *did* receive the event — lets a classifier ask
    /// whether the event ever reached the subscriber's cluster.
    pub delivered: &'a [NodeIdx],
}

/// The loss-attribution breakdown of one measurement window: every missed
/// `(event, subscriber)` pair classified by a [`LossReason`]. Counts sum
/// exactly to `expected - delivered`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LossReport {
    /// Expected `(event, subscriber)` deliveries over the window.
    pub expected: u64,
    /// Deliveries achieved.
    pub delivered: u64,
    /// Misses per reason, ordered as [`LossReason::ALL`].
    pub by_reason: Vec<(LossReason, u64)>,
}

impl LossReport {
    /// Total missed pairs (`expected - delivered`).
    pub fn missed(&self) -> u64 {
        self.expected - self.delivered
    }

    /// Misses attributed to `reason`.
    pub fn count(&self, reason: LossReason) -> u64 {
        self.by_reason
            .iter()
            .find(|(r, _)| *r == reason)
            .map_or(0, |(_, n)| *n)
    }
}

/// Reconvergence measurement for one fault episode: how long after the
/// episode ends does the hit ratio climb back to its pre-fault baseline?
///
/// Usage: capture the baseline hit ratio before injecting the episode,
/// construct the tracker with the episode's end time and a tolerance, then
/// feed per-round hit-ratio samples via [`ReconvergenceTracker::observe`].
/// The recovery time is the span from episode end to the first sample at
/// or above `baseline - tolerance`; it stays `None` (infinite — the system
/// never reconverged) if no such sample arrives.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReconvergenceTracker {
    baseline: f64,
    episode_end: SimTime,
    tolerance: f64,
    recovered_at: Option<SimTime>,
}

impl ReconvergenceTracker {
    /// Track recovery toward `baseline` (a hit ratio in `[0, 1]` captured
    /// before the fault) after an episode ending at `episode_end`, calling
    /// the system recovered once samples reach `baseline - tolerance`.
    pub fn new(baseline: f64, episode_end: SimTime, tolerance: f64) -> Self {
        ReconvergenceTracker {
            baseline,
            episode_end,
            tolerance: tolerance.max(0.0),
            recovered_at: None,
        }
    }

    /// The pre-fault baseline hit ratio being recovered toward.
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// Feed one hit-ratio sample taken at `now`. Samples during the
    /// episode are ignored; the first qualifying post-episode sample is
    /// latched. Returns the recovery time once known.
    pub fn observe(&mut self, now: SimTime, hit_ratio: f64) -> Option<vitis_sim::time::Duration> {
        if self.recovered_at.is_none()
            && now >= self.episode_end
            && hit_ratio >= self.baseline - self.tolerance
        {
            self.recovered_at = Some(now);
        }
        self.recovery_time()
    }

    /// Time from episode end to the latched recovery sample, or `None`
    /// while (or if never) unrecovered.
    pub fn recovery_time(&self) -> Option<vitis_sim::time::Duration> {
        self.recovered_at.map(|t| t.since(self.episode_end))
    }

    /// Whether a qualifying post-episode sample has been seen.
    pub fn recovered(&self) -> bool {
        self.recovered_at.is_some()
    }
}

#[derive(Clone, Debug)]
struct EventRecord {
    topic: TopicId,
    published_at: SimTime,
    /// Sorted subscriber slots expected to receive the event.
    expected: Vec<NodeIdx>,
    /// slot -> (best hop count, earliest arrival time) observed.
    delivered: HashMap<NodeIdx, (u32, SimTime)>,
}

#[derive(Debug, Default)]
struct MonitorInner {
    events: Vec<EventRecord>,
    /// EventId of `events[0]`. Ids stay globally unique across window
    /// resets — nodes deduplicate forwarding by EventId, so an id must
    /// never be reused within a run.
    first_id: u64,
    /// Forensics sink: when installed, per-event causal records
    /// (`pub_event` / `fwd` / `deliver_event` / `drop_event`) are emitted
    /// here. Pure observation — never consulted by any protocol decision.
    trace: Option<TraceHandle>,
    /// Per-slot received data-plane messages for subscribed topics.
    useful_rx: Vec<u64>,
    /// Per-slot received data-plane messages for unsubscribed topics.
    relay_rx: Vec<u64>,
    /// Control-plane bytes sent, per slot (gossip, heartbeats, lookups).
    control_tx_bytes: Vec<u64>,
    /// Rounds worth of control traffic observed, per slot.
    control_rounds: Vec<u64>,
    /// First arrivals that came through the anti-entropy repair layer
    /// (monitor lifetime; not reset with metrics windows).
    recovered_deliveries: u64,
}

impl MonitorInner {
    fn record_of(&mut self, event: EventId) -> Option<&mut EventRecord> {
        let i = event.0.checked_sub(self.first_id)? as usize;
        self.events.get_mut(i)
    }
}

/// Aggregated publish/subscribe metrics over the monitor's current window.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PubSubStats {
    /// Events published.
    pub published: u64,
    /// Total expected (event, subscriber) deliveries.
    pub expected: u64,
    /// Deliveries achieved.
    pub delivered: u64,
    /// `delivered / expected` (1.0 when nothing was expected).
    pub hit_ratio: f64,
    /// Mean hops over achieved deliveries.
    pub mean_hops: f64,
    /// Maximum hops over achieved deliveries.
    pub max_hops: u32,
    /// Data-plane messages received by interested nodes.
    pub useful_msgs: u64,
    /// Data-plane messages received by uninterested (relay) nodes.
    pub relay_msgs: u64,
    /// Global traffic overhead: `relay / (relay + useful)` in percent.
    pub overhead_pct: f64,
    /// Mean delivery latency in simulation ticks (publish to arrival).
    pub mean_latency_ticks: f64,
    /// Maximum delivery latency in ticks.
    pub max_latency_ticks: u64,
    /// Mean control-plane bytes a node sends per gossip round.
    pub control_bytes_per_round: f64,
    /// Control-plane messages handed to the network (engine-side count
    /// over the window, from `Protocol::classify`).
    pub control_sent: u64,
    /// Data-plane messages handed to the network over the window.
    pub data_sent: u64,
    /// Per-message-kind sent/delivered counts over the window, in
    /// first-seen order (empty until a system merges its engine ledger
    /// via [`PubSubStats::with_kind_traffic`]).
    pub traffic_by_kind: Vec<KindStat>,
}

/// Sent/delivered counters for one protocol message kind, as surfaced in
/// [`PubSubStats::traffic_by_kind`]. Owned strings so the snapshot is
/// self-contained and serializable.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindStat {
    /// Message-kind name (e.g. `"rt_req"`, `"notification"`).
    pub kind: String,
    /// `"control"` or `"data"`.
    pub class: String,
    /// Messages of this kind handed to the network.
    pub sent: u64,
    /// Messages of this kind delivered to alive nodes.
    pub delivered: u64,
}

impl PubSubStats {
    /// Merge an engine traffic ledger into this snapshot, filling
    /// [`PubSubStats::control_sent`], [`PubSubStats::data_sent`] and
    /// [`PubSubStats::traffic_by_kind`]. Every system calls this in its
    /// `stats()` so all three report the same schema.
    pub fn with_kind_traffic(mut self, kinds: &[KindTraffic]) -> Self {
        self.control_sent = 0;
        self.data_sent = 0;
        self.traffic_by_kind.clear();
        for k in kinds {
            match k.class {
                TrafficClass::Control => self.control_sent += k.sent,
                TrafficClass::Data => self.data_sent += k.sent,
            }
            self.traffic_by_kind.push(KindStat {
                kind: k.kind.to_string(),
                class: k.class.as_str().to_string(),
                sent: k.sent,
                delivered: k.delivered,
            });
        }
        self
    }
}

/// One buffered monitor write, captured while a handle is in deferred mode
/// (parallel round execution) and replayed on the engine thread in exact
/// serial event order. Only the *handler-side* writers are represented —
/// harness-side operations (event registration, snapshots, loss attribution)
/// never run inside node handlers and stay immediate.
#[derive(Clone, Debug)]
pub enum MonitorOp {
    /// [`Monitor::record_control_tx`].
    ControlTx {
        /// Sending node.
        node: NodeIdx,
        /// Control-plane bytes sent.
        bytes: u64,
    },
    /// [`Monitor::record_control_round`].
    ControlRound {
        /// Node that executed a gossip round.
        node: NodeIdx,
    },
    /// [`Monitor::record_data_rx`].
    DataRx {
        /// Receiving node.
        node: NodeIdx,
        /// Whether the receiver subscribes to the message's topic.
        useful: bool,
    },
    /// [`Monitor::record_forward`].
    Forward {
        /// Event being forwarded.
        event: EventId,
        /// Forwarding node.
        from: NodeIdx,
        /// Receiving node.
        to: NodeIdx,
        /// Hop count carried by the copy.
        hop: u32,
        /// Simulated time of the forward.
        now: SimTime,
    },
    /// [`Monitor::record_delivery_traced`] (and via it
    /// [`Monitor::record_delivery`], with an empty path).
    DeliveryTraced {
        /// Delivered event.
        event: EventId,
        /// Delivering node.
        node: NodeIdx,
        /// Hop count at arrival.
        hops: u32,
        /// Arrival time.
        now: SimTime,
        /// Causal hop path (cheap `Arc` clone).
        path: HopPath,
        /// `true` when the copy arrived via anti-entropy repair (a
        /// digest-triggered pull) rather than normal dissemination.
        recovered: bool,
    },
}

/// Shared monitor handle.
///
/// Cloning shares the underlying accounting state but gives the clone its
/// own (empty, inactive) deferral buffer — each node's handle defers
/// independently under parallel execution.
#[derive(Debug, Default)]
pub struct Monitor {
    inner: Arc<Mutex<MonitorInner>>,
    /// `Some` while this handle is in deferred mode: handler-side writes
    /// are buffered here instead of applied. Per-handle, not shared.
    deferred: RefCell<Option<Vec<MonitorOp>>>,
}

impl Clone for Monitor {
    fn clone(&self) -> Self {
        Monitor {
            inner: Arc::clone(&self.inner),
            deferred: RefCell::new(None),
        }
    }
}

impl Monitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Enter (`true`) or leave (`false`) deferred mode for *this handle*.
    /// While on, handler-side writes buffer into the handle instead of
    /// touching shared state; collect them with [`Monitor::take_deferred`].
    pub fn set_deferred(&self, on: bool) {
        let mut d = self.deferred.borrow_mut();
        if on {
            if d.is_none() {
                *d = Some(Vec::new());
            }
        } else {
            debug_assert!(
                d.as_ref().is_none_or(|v| v.is_empty()),
                "leaving deferred mode with uncollected monitor ops"
            );
            *d = None;
        }
    }

    /// Take the ops buffered on this handle since the last call (empty if
    /// not in deferred mode).
    pub fn take_deferred(&self) -> Vec<MonitorOp> {
        self.deferred
            .borrow_mut()
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Replay previously buffered ops against the shared state, in order.
    /// Called on the engine thread during the deterministic parallel merge.
    pub fn apply_ops(&self, ops: Vec<MonitorOp>) {
        if ops.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        for op in ops {
            Self::apply_op(&mut inner, op);
        }
    }

    /// Buffer `op` if this handle is deferred, else apply it immediately.
    fn submit(&self, op: MonitorOp) {
        if let Some(buf) = self.deferred.borrow_mut().as_mut() {
            buf.push(op);
            return;
        }
        Self::apply_op(&mut self.inner.lock().unwrap(), op);
    }

    /// The single mutation path for handler-side writes: immediate calls
    /// and deferred replays both land here, so both orders of operations
    /// produce identical state.
    fn apply_op(inner: &mut MonitorInner, op: MonitorOp) {
        match op {
            MonitorOp::ControlTx { node, bytes } => {
                let i = node.index();
                if inner.control_tx_bytes.len() <= i {
                    inner.control_tx_bytes.resize(i + 1, 0);
                }
                inner.control_tx_bytes[i] += bytes;
            }
            MonitorOp::ControlRound { node } => {
                let i = node.index();
                if inner.control_rounds.len() <= i {
                    inner.control_rounds.resize(i + 1, 0);
                }
                inner.control_rounds[i] += 1;
            }
            MonitorOp::DataRx { node, useful } => {
                let i = node.index();
                let v = if useful {
                    &mut inner.useful_rx
                } else {
                    &mut inner.relay_rx
                };
                if v.len() <= i {
                    v.resize(i + 1, 0);
                }
                v[i] += 1;
            }
            MonitorOp::Forward {
                event,
                from,
                to,
                hop,
                now,
            } => {
                if let Some(trace) = &inner.trace {
                    trace.borrow_mut().record(TraceEvent::Fwd {
                        now: now.ticks(),
                        event: event.0,
                        from: from.0,
                        to: to.0,
                        hop,
                    });
                }
            }
            MonitorOp::DeliveryTraced {
                event,
                node,
                hops,
                now,
                path,
                recovered,
            } => {
                let Some(rec) = inner.record_of(event) else {
                    return;
                };
                if rec.expected.binary_search(&node).is_err() {
                    return;
                }
                let first = !rec.delivered.contains_key(&node);
                let published_at = rec.published_at;
                rec.delivered
                    .entry(node)
                    .and_modify(|(h, t)| {
                        *h = (*h).min(hops);
                        *t = (*t).min(now);
                    })
                    .or_insert((hops, now));
                if first {
                    // A repair-recovered first arrival is a distinct
                    // delivery class: counted (it shrinks the loss gap
                    // and its `LossReason` attribution) and flagged in
                    // the forensics record. Duplicate recoveries of an
                    // already-delivered event change nothing.
                    if recovered {
                        inner.recovered_deliveries += 1;
                    }
                    if let Some(trace) = &inner.trace {
                        trace.borrow_mut().record(TraceEvent::DeliverEvent {
                            now: now.ticks(),
                            event: event.0,
                            node: node.0,
                            hops,
                            latency: now.since(published_at).ticks(),
                            path: path.render(),
                            recovered,
                        });
                    }
                }
            }
        }
    }

    /// Register a published event with its ground-truth expected subscriber
    /// set (the caller excludes the publisher and applies any join-grace
    /// filtering). Returns the event's id.
    pub fn register_event(
        &self,
        topic: TopicId,
        published_at: SimTime,
        mut expected: Vec<NodeIdx>,
    ) -> EventId {
        expected.sort_unstable();
        expected.dedup();
        let mut inner = self.inner.lock().unwrap();
        let id = EventId(inner.first_id + inner.events.len() as u64);
        inner.events.push(EventRecord {
            topic,
            published_at,
            expected,
            delivered: HashMap::new(),
        });
        id
    }

    /// Record the arrival of `event` at `node` after `hops` hops at time
    /// `now`. Arrivals at nodes outside the expected set are ignored (e.g.
    /// late joiners); repeated arrivals keep the minimum hop count and the
    /// earliest arrival time.
    pub fn record_delivery(&self, event: EventId, node: NodeIdx, hops: u32, now: SimTime) {
        self.record_delivery_traced(event, node, hops, now, &HopPath::default());
    }

    /// [`Monitor::record_delivery`] with causal provenance: the first
    /// arrival at an expected subscriber additionally emits a
    /// `deliver_event` forensics record (hops, publish-to-arrival latency,
    /// and the hop path) into the installed trace, if any.
    pub fn record_delivery_traced(
        &self,
        event: EventId,
        node: NodeIdx,
        hops: u32,
        now: SimTime,
        path: &HopPath,
    ) {
        self.submit(MonitorOp::DeliveryTraced {
            event,
            node,
            hops,
            now,
            path: path.clone(),
            recovered: false,
        });
    }

    /// [`Monitor::record_delivery_traced`] for a copy that arrived via
    /// the anti-entropy repair layer: the first arrival still counts as a
    /// delivery (shrinking the loss gap) but is flagged `recovered` in
    /// its forensics record and tallied separately
    /// ([`Monitor::recovered_deliveries`]).
    pub fn record_delivery_recovered(
        &self,
        event: EventId,
        node: NodeIdx,
        hops: u32,
        now: SimTime,
        path: &HopPath,
    ) {
        self.submit(MonitorOp::DeliveryTraced {
            event,
            node,
            hops,
            now,
            path: path.clone(),
            recovered: true,
        });
    }

    /// First arrivals at expected subscribers that came through the
    /// anti-entropy repair layer (process lifetime of this monitor, never
    /// reset by metrics windows — callers diff across windows).
    pub fn recovered_deliveries(&self) -> u64 {
        self.inner.lock().unwrap().recovered_deliveries
    }

    /// Install (or, with `None`, remove) the forensics trace sink. Systems
    /// wire this alongside their engine trace so causal records land in
    /// the same ring buffer as transport events.
    pub fn set_trace(&self, trace: Option<TraceHandle>) {
        self.inner.lock().unwrap().trace = trace;
    }

    /// Emit the `pub_event` forensics record for a freshly registered
    /// event: the root of its delivery tree. Call right after
    /// [`Monitor::register_event`], once the publisher is known.
    pub fn trace_publish(&self, event: EventId, publisher: NodeIdx) {
        let mut inner = self.inner.lock().unwrap();
        let Some(rec) = inner.record_of(event) else {
            return;
        };
        let (now, topic, expected) = (
            rec.published_at.ticks(),
            rec.topic.0 as u64,
            rec.expected.len() as u64,
        );
        if let Some(trace) = &inner.trace {
            trace.borrow_mut().record(TraceEvent::PubEvent {
                now,
                event: event.0,
                topic,
                node: publisher.0,
                expected,
            });
        }
    }

    /// Emit one `fwd` forensics record: `from` handed a copy of `event` to
    /// `to` carrying hop count `hop`. No-op unless a trace is installed,
    /// so protocols call it unconditionally on their forwarding paths.
    pub fn record_forward(
        &self,
        event: EventId,
        from: NodeIdx,
        to: NodeIdx,
        hop: u32,
        now: SimTime,
    ) {
        self.submit(MonitorOp::Forward {
            event,
            from,
            to,
            hop,
            now,
        });
    }

    /// Classify every missed `(event, subscriber)` pair of the current
    /// window. `classify` receives a [`MissContext`] per miss and returns
    /// its [`LossReason`]; each miss also emits a `drop_event` forensics
    /// record. The returned report's per-reason counts sum exactly to
    /// `expected - delivered`.
    ///
    /// The monitor is not borrowed while `classify` runs, so the callback
    /// is free to inspect system state that itself consults the monitor.
    pub fn attribute_losses<F>(&self, now: SimTime, mut classify: F) -> LossReport
    where
        F: FnMut(&MissContext<'_>) -> LossReason,
    {
        // Snapshot the misses first so `classify` runs without any borrow
        // of the monitor held.
        struct Miss {
            event: EventId,
            topic: TopicId,
            delivered: Vec<NodeIdx>,
            missing: Vec<NodeIdx>,
        }
        let (misses, trace, mut report) = {
            let inner = self.inner.lock().unwrap();
            let mut misses = Vec::new();
            let mut report = LossReport::default();
            for (i, rec) in inner.events.iter().enumerate() {
                report.expected += rec.expected.len() as u64;
                report.delivered += rec.delivered.len() as u64;
                let missing: Vec<NodeIdx> = rec
                    .expected
                    .iter()
                    .filter(|n| !rec.delivered.contains_key(n))
                    .copied()
                    .collect();
                if missing.is_empty() {
                    continue;
                }
                let mut delivered: Vec<NodeIdx> = rec.delivered.keys().copied().collect();
                delivered.sort_unstable();
                misses.push(Miss {
                    event: EventId(inner.first_id + i as u64),
                    topic: rec.topic,
                    delivered,
                    missing,
                });
            }
            (misses, inner.trace.clone(), report)
        };
        report.by_reason = LossReason::ALL.iter().map(|&r| (r, 0)).collect();
        for miss in &misses {
            for &sub in &miss.missing {
                let reason = classify(&MissContext {
                    event: miss.event,
                    topic: miss.topic,
                    subscriber: sub,
                    delivered: &miss.delivered,
                });
                if let Some(slot) = report.by_reason.iter_mut().find(|(r, _)| *r == reason) {
                    slot.1 += 1;
                }
                if let Some(trace) = &trace {
                    trace.borrow_mut().record(TraceEvent::DropEvent {
                        now: now.ticks(),
                        event: miss.event.0,
                        node: sub.0,
                        reason: Cow::Borrowed(reason.as_str()),
                    });
                }
            }
        }
        report
    }

    /// Account control-plane bytes sent by `node` (gossip buffers,
    /// heartbeats, relay lookups, exchange replies).
    pub fn record_control_tx(&self, node: NodeIdx, bytes: u64) {
        self.submit(MonitorOp::ControlTx { node, bytes });
    }

    /// Mark one gossip round executed at `node`; the per-round control
    /// bandwidth statistic divides recorded bytes by recorded rounds.
    pub fn record_control_round(&self, node: NodeIdx) {
        self.submit(MonitorOp::ControlRound { node });
    }

    /// Account one received data-plane message at `node`; `useful` is true
    /// iff the receiver is subscribed to the message's topic.
    pub fn record_data_rx(&self, node: NodeIdx, useful: bool) {
        self.submit(MonitorOp::DataRx { node, useful });
    }

    /// Delivery latency (in ticks) is not tracked — the paper measures hops.
    /// Exposed for completeness of per-event introspection in tests.
    pub fn event_published_at(&self, event: EventId) -> Option<SimTime> {
        self.inner
            .lock()
            .unwrap()
            .record_of(event)
            .map(|r| r.published_at)
    }

    /// Expected and delivered counts of a single event.
    pub fn event_progress(&self, event: EventId) -> Option<(usize, usize)> {
        self.inner
            .lock()
            .unwrap()
            .record_of(event)
            .map(|r| (r.expected.len(), r.delivered.len()))
    }

    /// Aggregate metrics over everything recorded since the last reset.
    pub fn snapshot(&self) -> PubSubStats {
        let inner = self.inner.lock().unwrap();
        let mut expected = 0u64;
        let mut delivered = 0u64;
        let mut hops = Summary::new();
        let mut max_hops = 0u32;
        let mut latency = Summary::new();
        let mut max_latency = 0u64;
        for rec in &inner.events {
            expected += rec.expected.len() as u64;
            delivered += rec.delivered.len() as u64;
            // Iterate in sorted node order (expected is sorted and
            // delivered ⊆ expected) so the streaming means accumulate in
            // a deterministic order — hash-map iteration order would make
            // the float stats differ bit-wise between identical runs.
            for node in &rec.expected {
                let Some(&(h, at)) = rec.delivered.get(node) else {
                    continue;
                };
                hops.record(h as f64);
                max_hops = max_hops.max(h);
                let lat = at.since(rec.published_at).ticks();
                latency.record(lat as f64);
                max_latency = max_latency.max(lat);
            }
        }
        let ctl_bytes: u64 = inner.control_tx_bytes.iter().sum();
        let ctl_rounds: u64 = inner.control_rounds.iter().sum();
        let useful: u64 = inner.useful_rx.iter().sum();
        let relay: u64 = inner.relay_rx.iter().sum();
        let total = useful + relay;
        PubSubStats {
            published: inner.events.len() as u64,
            expected,
            delivered,
            hit_ratio: if expected == 0 {
                1.0
            } else {
                delivered as f64 / expected as f64
            },
            mean_hops: hops.mean(),
            max_hops,
            useful_msgs: useful,
            relay_msgs: relay,
            overhead_pct: if total == 0 {
                0.0
            } else {
                100.0 * relay as f64 / total as f64
            },
            mean_latency_ticks: latency.mean(),
            max_latency_ticks: max_latency,
            control_bytes_per_round: if ctl_rounds == 0 {
                0.0
            } else {
                ctl_bytes as f64 / ctl_rounds as f64
            },
            control_sent: 0,
            data_sent: 0,
            traffic_by_kind: Vec::new(),
        }
    }

    /// Per-node traffic overhead in percent, for every slot that received at
    /// least `min_msgs` data-plane messages (Figure 5's distribution).
    pub fn per_node_overhead(&self, min_msgs: u64) -> Vec<(NodeIdx, f64)> {
        let inner = self.inner.lock().unwrap();
        let n = inner.useful_rx.len().max(inner.relay_rx.len());
        let mut out = Vec::new();
        for i in 0..n {
            let u = inner.useful_rx.get(i).copied().unwrap_or(0);
            let r = inner.relay_rx.get(i).copied().unwrap_or(0);
            let total = u + r;
            if total >= min_msgs.max(1) {
                out.push((NodeIdx(i as u32), 100.0 * r as f64 / total as f64));
            }
        }
        out
    }

    /// Per-topic delivery breakdown over the current window:
    /// `(topic, expected, delivered)`, topics in ascending order. Lets a
    /// harness find the worst-served topics (e.g. split clusters).
    pub fn per_topic_progress(&self) -> Vec<(TopicId, u64, u64)> {
        let inner = self.inner.lock().unwrap();
        let mut by_topic: std::collections::BTreeMap<TopicId, (u64, u64)> =
            std::collections::BTreeMap::new();
        for rec in &inner.events {
            let e = by_topic.entry(rec.topic).or_insert((0, 0));
            e.0 += rec.expected.len() as u64;
            e.1 += rec.delivered.len() as u64;
        }
        by_topic
            .into_iter()
            .map(|(t, (exp, del))| (t, exp, del))
            .collect()
    }

    /// Forget all events and traffic (end of a warmup phase, or the start
    /// of a new measurement window in the churn experiment).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.first_id += inner.events.len() as u64;
        inner.events.clear();
        inner.useful_rx.clear();
        inner.relay_rx.clear();
        inner.control_tx_bytes.clear();
        inner.control_rounds.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeIdx {
        NodeIdx(i)
    }

    #[test]
    fn hit_ratio_counts_expected_pairs_only() {
        let m = Monitor::new();
        let e = m.register_event(TopicId(0), SimTime(5), vec![n(1), n(2), n(3)]);
        m.record_delivery(e, n(1), 2, SimTime(9));
        m.record_delivery(e, n(2), 4, SimTime(9));
        m.record_delivery(e, n(9), 1, SimTime(9)); // not expected: ignored
        let s = m.snapshot();
        assert_eq!(s.published, 1);
        assert_eq!(s.expected, 3);
        assert_eq!(s.delivered, 2);
        assert!((s.hit_ratio - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_hops - 3.0).abs() < 1e-12);
        assert_eq!(s.max_hops, 4);
    }

    #[test]
    fn duplicate_deliveries_keep_min_hops() {
        let m = Monitor::new();
        let e = m.register_event(TopicId(0), SimTime(0), vec![n(1)]);
        m.record_delivery(e, n(1), 7, SimTime(9));
        m.record_delivery(e, n(1), 3, SimTime(9));
        m.record_delivery(e, n(1), 9, SimTime(9));
        let s = m.snapshot();
        assert_eq!(s.delivered, 1);
        assert!((s.mean_hops - 3.0).abs() < 1e-12);
    }

    #[test]
    fn expected_set_dedups() {
        let m = Monitor::new();
        let e = m.register_event(TopicId(0), SimTime(0), vec![n(1), n(1), n(2)]);
        assert_eq!(m.event_progress(e), Some((2, 0)));
    }

    #[test]
    fn overhead_is_relay_share() {
        let m = Monitor::new();
        for _ in 0..3 {
            m.record_data_rx(n(0), true);
        }
        m.record_data_rx(n(1), false);
        let s = m.snapshot();
        assert_eq!(s.useful_msgs, 3);
        assert_eq!(s.relay_msgs, 1);
        assert!((s.overhead_pct - 25.0).abs() < 1e-12);
    }

    #[test]
    fn per_node_overhead_distribution() {
        let m = Monitor::new();
        m.record_data_rx(n(0), true);
        m.record_data_rx(n(0), false);
        m.record_data_rx(n(2), false);
        let d = m.per_node_overhead(1);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], (n(0), 50.0));
        assert_eq!(d[1], (n(2), 100.0));
        // Threshold filters low-traffic nodes.
        assert_eq!(m.per_node_overhead(2).len(), 1);
    }

    #[test]
    fn empty_snapshot_is_benign() {
        let s = Monitor::new().snapshot();
        assert_eq!(s.hit_ratio, 1.0);
        assert_eq!(s.overhead_pct, 0.0);
        assert_eq!(s.mean_hops, 0.0);
    }

    #[test]
    fn reset_clears_window() {
        let m = Monitor::new();
        let e = m.register_event(TopicId(0), SimTime(0), vec![n(1)]);
        m.record_delivery(e, n(1), 1, SimTime(9));
        m.record_data_rx(n(1), false);
        m.reset();
        let s = m.snapshot();
        assert_eq!(s.published, 0);
        assert_eq!(s.relay_msgs, 0);
    }

    #[test]
    fn clone_shares_state() {
        let m = Monitor::new();
        let m2 = m.clone();
        m2.register_event(TopicId(1), SimTime(0), vec![n(0)]);
        assert_eq!(m.snapshot().published, 1);
    }
}

#[cfg(test)]
mod forensics_tests {
    use super::*;
    use vitis_sim::trace::Trace;

    fn n(i: u32) -> NodeIdx {
        NodeIdx(i)
    }

    #[test]
    fn reconvergence_tracker_latches_first_recovery() {
        let mut tr = ReconvergenceTracker::new(0.95, SimTime(100), 0.02);
        assert_eq!(tr.baseline(), 0.95);
        // Samples during the episode never count, however good.
        assert_eq!(tr.observe(SimTime(50), 1.0), None);
        // Below baseline - tolerance: still recovering.
        assert_eq!(tr.observe(SimTime(120), 0.80), None);
        // First qualifying sample latches the recovery time...
        assert_eq!(
            tr.observe(SimTime(150), 0.94),
            Some(vitis_sim::time::Duration(50))
        );
        assert!(tr.recovered());
        // ...and later samples cannot move it.
        assert_eq!(
            tr.observe(SimTime(200), 1.0),
            Some(vitis_sim::time::Duration(50))
        );
        // A system that never recovers reports None forever.
        let mut never = ReconvergenceTracker::new(0.99, SimTime(10), 0.0);
        assert_eq!(never.observe(SimTime(1000), 0.5), None);
        assert!(!never.recovered());
    }

    #[test]
    fn hop_path_extends_immutably_and_renders() {
        let p0 = HopPath::origin(n(4));
        let p1 = p0.extend(n(9));
        let p2 = p1.extend(n(2));
        assert_eq!(p0.nodes(), &[n(4)]);
        assert_eq!(p1.nodes(), &[n(4), n(9)]);
        assert_eq!(p2.render(), "4>9>2");
        assert_eq!(p2.len(), 3);
        let empty = HopPath::default();
        assert!(empty.is_empty());
        assert_eq!(empty.render(), "");
    }

    #[test]
    fn traced_monitor_emits_causal_records() {
        let m = Monitor::new();
        let trace = Trace::shared(64);
        m.set_trace(Some(trace.clone()));
        let e = m.register_event(TopicId(3), SimTime(10), vec![n(1), n(2)]);
        m.trace_publish(e, n(0));
        m.record_forward(e, n(0), n(1), 1, SimTime(11));
        let path = HopPath::origin(n(0)).extend(n(1));
        m.record_delivery_traced(e, n(1), 1, SimTime(12), &path);
        // A duplicate arrival and an unexpected node emit nothing extra.
        m.record_delivery_traced(e, n(1), 2, SimTime(13), &path);
        m.record_delivery_traced(e, n(9), 1, SimTime(12), &path);
        let evs: Vec<TraceEvent> = trace.borrow().events().cloned().collect();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs[0],
            TraceEvent::PubEvent {
                now: 10,
                event: e.0,
                topic: 3,
                node: 0,
                expected: 2
            }
        );
        assert_eq!(
            evs[1],
            TraceEvent::Fwd {
                now: 11,
                event: e.0,
                from: 0,
                to: 1,
                hop: 1
            }
        );
        assert_eq!(
            evs[2],
            TraceEvent::DeliverEvent {
                now: 12,
                event: e.0,
                node: 1,
                hops: 1,
                latency: 2,
                path: "0>1".to_string(),
                recovered: false,
            }
        );
        // Aggregates are unaffected by tracing.
        let s = m.snapshot();
        assert_eq!((s.expected, s.delivered), (2, 1));
    }

    #[test]
    fn untraced_forensics_calls_are_no_ops() {
        let m = Monitor::new();
        let e = m.register_event(TopicId(0), SimTime(0), vec![n(1)]);
        m.trace_publish(e, n(0));
        m.record_forward(e, n(0), n(1), 1, SimTime(1));
        m.record_delivery_traced(e, n(1), 1, SimTime(2), &HopPath::origin(n(0)));
        assert_eq!(m.snapshot().delivered, 1);
    }

    #[test]
    fn attribute_losses_counts_sum_to_missed_and_emit_drops() {
        let m = Monitor::new();
        let trace = Trace::shared(64);
        m.set_trace(Some(trace.clone()));
        let e = m.register_event(TopicId(0), SimTime(0), vec![n(1), n(2), n(3)]);
        m.record_delivery(e, n(1), 1, SimTime(5));
        let report = m.attribute_losses(SimTime(100), |miss| {
            assert_eq!(miss.event, e);
            assert_eq!(miss.topic, TopicId(0));
            assert_eq!(miss.delivered, &[n(1)]);
            if miss.subscriber == n(2) {
                LossReason::SubscriberChurned
            } else {
                LossReason::NoGateway
            }
        });
        assert_eq!(report.expected, 3);
        assert_eq!(report.delivered, 1);
        assert_eq!(report.missed(), 2);
        assert_eq!(report.count(LossReason::SubscriberChurned), 1);
        assert_eq!(report.count(LossReason::NoGateway), 1);
        let total: u64 = report.by_reason.iter().map(|(_, c)| c).sum();
        assert_eq!(total, report.missed());
        let drops = trace
            .borrow()
            .events()
            .filter(|ev| matches!(ev, TraceEvent::DropEvent { .. }))
            .count();
        assert_eq!(drops, 2);
    }

    #[test]
    fn attribute_losses_with_full_delivery_is_empty() {
        let m = Monitor::new();
        let e = m.register_event(TopicId(0), SimTime(0), vec![n(1)]);
        m.record_delivery(e, n(1), 1, SimTime(1));
        let report = m.attribute_losses(SimTime(9), |_| unreachable!("no misses"));
        assert_eq!(report.missed(), 0);
        let total: u64 = report.by_reason.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn loss_reasons_round_trip_their_names() {
        for r in LossReason::ALL {
            assert_eq!(LossReason::parse(r.as_str()), Some(r));
        }
        assert_eq!(LossReason::parse("bogus"), None);
    }
}

#[cfg(test)]
mod kind_traffic_tests {
    use super::*;
    use vitis_sim::trace::MsgTag;

    #[test]
    fn with_kind_traffic_splits_control_and_data() {
        let mut ledger = vitis_sim::trace::TrafficLedger::new();
        for _ in 0..5 {
            ledger.record_send(MsgTag::control("ps_req"));
        }
        for _ in 0..3 {
            ledger.record_send(MsgTag::data("notification"));
        }
        ledger.record_deliver(MsgTag::data("notification"));
        let s = Monitor::new().snapshot().with_kind_traffic(ledger.kinds());
        assert_eq!(s.control_sent, 5);
        assert_eq!(s.data_sent, 3);
        assert_eq!(s.traffic_by_kind.len(), 2);
        let notif = s
            .traffic_by_kind
            .iter()
            .find(|k| k.kind == "notification")
            .unwrap();
        assert_eq!(notif.class, "data");
        assert_eq!((notif.sent, notif.delivered), (3, 1));
    }

    #[test]
    fn with_kind_traffic_is_idempotent() {
        let mut ledger = vitis_sim::trace::TrafficLedger::new();
        ledger.record_send(MsgTag::control("hb"));
        let s = Monitor::new()
            .snapshot()
            .with_kind_traffic(ledger.kinds())
            .with_kind_traffic(ledger.kinds());
        assert_eq!(s.control_sent, 1);
        assert_eq!(s.traffic_by_kind.len(), 1);
    }
}

#[cfg(test)]
mod reset_tests {
    use super::*;

    #[test]
    fn event_ids_stay_unique_across_resets() {
        let m = Monitor::new();
        let a = m.register_event(TopicId(0), SimTime(0), vec![NodeIdx(1)]);
        m.reset();
        let b = m.register_event(TopicId(0), SimTime(1), vec![NodeIdx(1)]);
        assert_ne!(a, b);
        // Deliveries against the pre-reset id are ignored, not misattributed.
        m.record_delivery(a, NodeIdx(1), 1, SimTime(9));
        assert_eq!(m.snapshot().delivered, 0);
        m.record_delivery(b, NodeIdx(1), 1, SimTime(9));
        assert_eq!(m.snapshot().delivered, 1);
    }
}

#[cfg(test)]
mod bandwidth_tests {
    use super::*;

    #[test]
    fn latency_tracks_publish_to_arrival() {
        let m = Monitor::new();
        let e = m.register_event(TopicId(0), SimTime(100), vec![NodeIdx(1), NodeIdx(2)]);
        m.record_delivery(e, NodeIdx(1), 2, SimTime(130));
        m.record_delivery(e, NodeIdx(2), 5, SimTime(160));
        // A later duplicate must not worsen the recorded latency.
        m.record_delivery(e, NodeIdx(1), 9, SimTime(500));
        let s = m.snapshot();
        assert!((s.mean_latency_ticks - 45.0).abs() < 1e-9);
        assert_eq!(s.max_latency_ticks, 60);
        assert!((s.mean_hops - 3.5).abs() < 1e-9);
    }

    #[test]
    fn control_bandwidth_is_bytes_per_round() {
        let m = Monitor::new();
        m.record_control_round(NodeIdx(0));
        m.record_control_tx(NodeIdx(0), 300);
        m.record_control_round(NodeIdx(0));
        m.record_control_tx(NodeIdx(0), 100);
        m.record_control_round(NodeIdx(1));
        let s = m.snapshot();
        assert!((s.control_bytes_per_round - 400.0 / 3.0).abs() < 1e-9);
        m.reset();
        assert_eq!(m.snapshot().control_bytes_per_round, 0.0);
    }
}

#[cfg(test)]
mod per_topic_tests {
    use super::*;

    #[test]
    fn per_topic_progress_groups_and_sorts() {
        let m = Monitor::new();
        let a = m.register_event(TopicId(2), SimTime(0), vec![NodeIdx(1), NodeIdx(2)]);
        let b = m.register_event(TopicId(0), SimTime(0), vec![NodeIdx(3)]);
        let c = m.register_event(TopicId(2), SimTime(1), vec![NodeIdx(4)]);
        m.record_delivery(a, NodeIdx(1), 1, SimTime(2));
        m.record_delivery(b, NodeIdx(3), 1, SimTime(2));
        let _ = c;
        let got = m.per_topic_progress();
        assert_eq!(got, vec![(TopicId(0), 1, 1), (TopicId(2), 3, 1)]);
    }
}
