//! The evaluation monitor: ground-truth event tracking and data-plane
//! traffic accounting, shared by all three systems.
//!
//! The monitor implements the paper's three metrics:
//!
//! * **Hit ratio** — fraction of (event, subscriber) pairs delivered, where
//!   the expected subscriber set is fixed at publish time (alive subscribers
//!   that joined at least a grace period earlier, matching the paper's
//!   "10 seconds after the node joins" rule in the churn experiments).
//! * **Traffic overhead** — the proportion of *relay* (uninteresting)
//!   data-plane messages, globally and per node (Figure 5's distribution).
//! * **Propagation delay** — hops from publisher to subscriber, averaged
//!   over achieved deliveries.
//!
//! A [`Monitor`] is a cheap `Rc` handle cloned into every node of a system;
//! the engine is single-threaded so `RefCell` suffices.

use crate::topic::TopicId;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use vitis_sim::event::NodeIdx;
use vitis_sim::metrics::Summary;
use vitis_sim::time::SimTime;
use vitis_sim::trace::{KindTraffic, TrafficClass};

/// Identifier of a published event within a run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct EventId(pub u64);

#[derive(Clone, Debug)]
struct EventRecord {
    topic: TopicId,
    published_at: SimTime,
    /// Sorted subscriber slots expected to receive the event.
    expected: Vec<NodeIdx>,
    /// slot -> (best hop count, earliest arrival time) observed.
    delivered: HashMap<NodeIdx, (u32, SimTime)>,
}

#[derive(Debug, Default)]
struct MonitorInner {
    events: Vec<EventRecord>,
    /// EventId of `events[0]`. Ids stay globally unique across window
    /// resets — nodes deduplicate forwarding by EventId, so an id must
    /// never be reused within a run.
    first_id: u64,
    /// Per-slot received data-plane messages for subscribed topics.
    useful_rx: Vec<u64>,
    /// Per-slot received data-plane messages for unsubscribed topics.
    relay_rx: Vec<u64>,
    /// Control-plane bytes sent, per slot (gossip, heartbeats, lookups).
    control_tx_bytes: Vec<u64>,
    /// Rounds worth of control traffic observed, per slot.
    control_rounds: Vec<u64>,
}

impl MonitorInner {
    fn record_of(&mut self, event: EventId) -> Option<&mut EventRecord> {
        let i = event.0.checked_sub(self.first_id)? as usize;
        self.events.get_mut(i)
    }
}

/// Aggregated publish/subscribe metrics over the monitor's current window.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PubSubStats {
    /// Events published.
    pub published: u64,
    /// Total expected (event, subscriber) deliveries.
    pub expected: u64,
    /// Deliveries achieved.
    pub delivered: u64,
    /// `delivered / expected` (1.0 when nothing was expected).
    pub hit_ratio: f64,
    /// Mean hops over achieved deliveries.
    pub mean_hops: f64,
    /// Maximum hops over achieved deliveries.
    pub max_hops: u32,
    /// Data-plane messages received by interested nodes.
    pub useful_msgs: u64,
    /// Data-plane messages received by uninterested (relay) nodes.
    pub relay_msgs: u64,
    /// Global traffic overhead: `relay / (relay + useful)` in percent.
    pub overhead_pct: f64,
    /// Mean delivery latency in simulation ticks (publish to arrival).
    pub mean_latency_ticks: f64,
    /// Maximum delivery latency in ticks.
    pub max_latency_ticks: u64,
    /// Mean control-plane bytes a node sends per gossip round.
    pub control_bytes_per_round: f64,
    /// Control-plane messages handed to the network (engine-side count
    /// over the window, from `Protocol::classify`).
    pub control_sent: u64,
    /// Data-plane messages handed to the network over the window.
    pub data_sent: u64,
    /// Per-message-kind sent/delivered counts over the window, in
    /// first-seen order (empty until a system merges its engine ledger
    /// via [`PubSubStats::with_kind_traffic`]).
    pub traffic_by_kind: Vec<KindStat>,
}

/// Sent/delivered counters for one protocol message kind, as surfaced in
/// [`PubSubStats::traffic_by_kind`]. Owned strings so the snapshot is
/// self-contained and serializable.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindStat {
    /// Message-kind name (e.g. `"rt_req"`, `"notification"`).
    pub kind: String,
    /// `"control"` or `"data"`.
    pub class: String,
    /// Messages of this kind handed to the network.
    pub sent: u64,
    /// Messages of this kind delivered to alive nodes.
    pub delivered: u64,
}

impl PubSubStats {
    /// Merge an engine traffic ledger into this snapshot, filling
    /// [`PubSubStats::control_sent`], [`PubSubStats::data_sent`] and
    /// [`PubSubStats::traffic_by_kind`]. Every system calls this in its
    /// `stats()` so all three report the same schema.
    pub fn with_kind_traffic(mut self, kinds: &[KindTraffic]) -> Self {
        self.control_sent = 0;
        self.data_sent = 0;
        self.traffic_by_kind.clear();
        for k in kinds {
            match k.class {
                TrafficClass::Control => self.control_sent += k.sent,
                TrafficClass::Data => self.data_sent += k.sent,
            }
            self.traffic_by_kind.push(KindStat {
                kind: k.kind.to_string(),
                class: k.class.as_str().to_string(),
                sent: k.sent,
                delivered: k.delivered,
            });
        }
        self
    }
}

/// Shared monitor handle.
#[derive(Clone, Debug, Default)]
pub struct Monitor {
    inner: Rc<RefCell<MonitorInner>>,
}

impl Monitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Register a published event with its ground-truth expected subscriber
    /// set (the caller excludes the publisher and applies any join-grace
    /// filtering). Returns the event's id.
    pub fn register_event(
        &self,
        topic: TopicId,
        published_at: SimTime,
        mut expected: Vec<NodeIdx>,
    ) -> EventId {
        expected.sort_unstable();
        expected.dedup();
        let mut inner = self.inner.borrow_mut();
        let id = EventId(inner.first_id + inner.events.len() as u64);
        inner.events.push(EventRecord {
            topic,
            published_at,
            expected,
            delivered: HashMap::new(),
        });
        id
    }

    /// Record the arrival of `event` at `node` after `hops` hops at time
    /// `now`. Arrivals at nodes outside the expected set are ignored (e.g.
    /// late joiners); repeated arrivals keep the minimum hop count and the
    /// earliest arrival time.
    pub fn record_delivery(&self, event: EventId, node: NodeIdx, hops: u32, now: SimTime) {
        let mut inner = self.inner.borrow_mut();
        let Some(rec) = inner.record_of(event) else {
            return;
        };
        if rec.expected.binary_search(&node).is_err() {
            return;
        }
        rec.delivered
            .entry(node)
            .and_modify(|(h, t)| {
                *h = (*h).min(hops);
                *t = (*t).min(now);
            })
            .or_insert((hops, now));
    }

    /// Account control-plane bytes sent by `node` (gossip buffers,
    /// heartbeats, relay lookups, exchange replies).
    pub fn record_control_tx(&self, node: NodeIdx, bytes: u64) {
        let mut inner = self.inner.borrow_mut();
        let i = node.index();
        if inner.control_tx_bytes.len() <= i {
            inner.control_tx_bytes.resize(i + 1, 0);
        }
        inner.control_tx_bytes[i] += bytes;
    }

    /// Mark one gossip round executed at `node`; the per-round control
    /// bandwidth statistic divides recorded bytes by recorded rounds.
    pub fn record_control_round(&self, node: NodeIdx) {
        let mut inner = self.inner.borrow_mut();
        let i = node.index();
        if inner.control_rounds.len() <= i {
            inner.control_rounds.resize(i + 1, 0);
        }
        inner.control_rounds[i] += 1;
    }

    /// Account one received data-plane message at `node`; `useful` is true
    /// iff the receiver is subscribed to the message's topic.
    pub fn record_data_rx(&self, node: NodeIdx, useful: bool) {
        let mut inner = self.inner.borrow_mut();
        let i = node.index();
        let v = if useful {
            &mut inner.useful_rx
        } else {
            &mut inner.relay_rx
        };
        if v.len() <= i {
            v.resize(i + 1, 0);
        }
        v[i] += 1;
    }

    /// Delivery latency (in ticks) is not tracked — the paper measures hops.
    /// Exposed for completeness of per-event introspection in tests.
    pub fn event_published_at(&self, event: EventId) -> Option<SimTime> {
        self.inner
            .borrow_mut()
            .record_of(event)
            .map(|r| r.published_at)
    }

    /// Expected and delivered counts of a single event.
    pub fn event_progress(&self, event: EventId) -> Option<(usize, usize)> {
        self.inner
            .borrow_mut()
            .record_of(event)
            .map(|r| (r.expected.len(), r.delivered.len()))
    }

    /// Aggregate metrics over everything recorded since the last reset.
    pub fn snapshot(&self) -> PubSubStats {
        let inner = self.inner.borrow();
        let mut expected = 0u64;
        let mut delivered = 0u64;
        let mut hops = Summary::new();
        let mut max_hops = 0u32;
        let mut latency = Summary::new();
        let mut max_latency = 0u64;
        for rec in &inner.events {
            expected += rec.expected.len() as u64;
            delivered += rec.delivered.len() as u64;
            for &(h, at) in rec.delivered.values() {
                hops.record(h as f64);
                max_hops = max_hops.max(h);
                let lat = at.since(rec.published_at).ticks();
                latency.record(lat as f64);
                max_latency = max_latency.max(lat);
            }
        }
        let ctl_bytes: u64 = inner.control_tx_bytes.iter().sum();
        let ctl_rounds: u64 = inner.control_rounds.iter().sum();
        let useful: u64 = inner.useful_rx.iter().sum();
        let relay: u64 = inner.relay_rx.iter().sum();
        let total = useful + relay;
        PubSubStats {
            published: inner.events.len() as u64,
            expected,
            delivered,
            hit_ratio: if expected == 0 {
                1.0
            } else {
                delivered as f64 / expected as f64
            },
            mean_hops: hops.mean(),
            max_hops,
            useful_msgs: useful,
            relay_msgs: relay,
            overhead_pct: if total == 0 {
                0.0
            } else {
                100.0 * relay as f64 / total as f64
            },
            mean_latency_ticks: latency.mean(),
            max_latency_ticks: max_latency,
            control_bytes_per_round: if ctl_rounds == 0 {
                0.0
            } else {
                ctl_bytes as f64 / ctl_rounds as f64
            },
            control_sent: 0,
            data_sent: 0,
            traffic_by_kind: Vec::new(),
        }
    }

    /// Per-node traffic overhead in percent, for every slot that received at
    /// least `min_msgs` data-plane messages (Figure 5's distribution).
    pub fn per_node_overhead(&self, min_msgs: u64) -> Vec<(NodeIdx, f64)> {
        let inner = self.inner.borrow();
        let n = inner.useful_rx.len().max(inner.relay_rx.len());
        let mut out = Vec::new();
        for i in 0..n {
            let u = inner.useful_rx.get(i).copied().unwrap_or(0);
            let r = inner.relay_rx.get(i).copied().unwrap_or(0);
            let total = u + r;
            if total >= min_msgs.max(1) {
                out.push((NodeIdx(i as u32), 100.0 * r as f64 / total as f64));
            }
        }
        out
    }

    /// Per-topic delivery breakdown over the current window:
    /// `(topic, expected, delivered)`, topics in ascending order. Lets a
    /// harness find the worst-served topics (e.g. split clusters).
    pub fn per_topic_progress(&self) -> Vec<(TopicId, u64, u64)> {
        let inner = self.inner.borrow();
        let mut by_topic: std::collections::BTreeMap<TopicId, (u64, u64)> =
            std::collections::BTreeMap::new();
        for rec in &inner.events {
            let e = by_topic.entry(rec.topic).or_insert((0, 0));
            e.0 += rec.expected.len() as u64;
            e.1 += rec.delivered.len() as u64;
        }
        by_topic
            .into_iter()
            .map(|(t, (exp, del))| (t, exp, del))
            .collect()
    }

    /// Forget all events and traffic (end of a warmup phase, or the start
    /// of a new measurement window in the churn experiment).
    pub fn reset(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.first_id += inner.events.len() as u64;
        inner.events.clear();
        inner.useful_rx.clear();
        inner.relay_rx.clear();
        inner.control_tx_bytes.clear();
        inner.control_rounds.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeIdx {
        NodeIdx(i)
    }

    #[test]
    fn hit_ratio_counts_expected_pairs_only() {
        let m = Monitor::new();
        let e = m.register_event(TopicId(0), SimTime(5), vec![n(1), n(2), n(3)]);
        m.record_delivery(e, n(1), 2, SimTime(9));
        m.record_delivery(e, n(2), 4, SimTime(9));
        m.record_delivery(e, n(9), 1, SimTime(9)); // not expected: ignored
        let s = m.snapshot();
        assert_eq!(s.published, 1);
        assert_eq!(s.expected, 3);
        assert_eq!(s.delivered, 2);
        assert!((s.hit_ratio - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_hops - 3.0).abs() < 1e-12);
        assert_eq!(s.max_hops, 4);
    }

    #[test]
    fn duplicate_deliveries_keep_min_hops() {
        let m = Monitor::new();
        let e = m.register_event(TopicId(0), SimTime(0), vec![n(1)]);
        m.record_delivery(e, n(1), 7, SimTime(9));
        m.record_delivery(e, n(1), 3, SimTime(9));
        m.record_delivery(e, n(1), 9, SimTime(9));
        let s = m.snapshot();
        assert_eq!(s.delivered, 1);
        assert!((s.mean_hops - 3.0).abs() < 1e-12);
    }

    #[test]
    fn expected_set_dedups() {
        let m = Monitor::new();
        let e = m.register_event(TopicId(0), SimTime(0), vec![n(1), n(1), n(2)]);
        assert_eq!(m.event_progress(e), Some((2, 0)));
    }

    #[test]
    fn overhead_is_relay_share() {
        let m = Monitor::new();
        for _ in 0..3 {
            m.record_data_rx(n(0), true);
        }
        m.record_data_rx(n(1), false);
        let s = m.snapshot();
        assert_eq!(s.useful_msgs, 3);
        assert_eq!(s.relay_msgs, 1);
        assert!((s.overhead_pct - 25.0).abs() < 1e-12);
    }

    #[test]
    fn per_node_overhead_distribution() {
        let m = Monitor::new();
        m.record_data_rx(n(0), true);
        m.record_data_rx(n(0), false);
        m.record_data_rx(n(2), false);
        let d = m.per_node_overhead(1);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], (n(0), 50.0));
        assert_eq!(d[1], (n(2), 100.0));
        // Threshold filters low-traffic nodes.
        assert_eq!(m.per_node_overhead(2).len(), 1);
    }

    #[test]
    fn empty_snapshot_is_benign() {
        let s = Monitor::new().snapshot();
        assert_eq!(s.hit_ratio, 1.0);
        assert_eq!(s.overhead_pct, 0.0);
        assert_eq!(s.mean_hops, 0.0);
    }

    #[test]
    fn reset_clears_window() {
        let m = Monitor::new();
        let e = m.register_event(TopicId(0), SimTime(0), vec![n(1)]);
        m.record_delivery(e, n(1), 1, SimTime(9));
        m.record_data_rx(n(1), false);
        m.reset();
        let s = m.snapshot();
        assert_eq!(s.published, 0);
        assert_eq!(s.relay_msgs, 0);
    }

    #[test]
    fn clone_shares_state() {
        let m = Monitor::new();
        let m2 = m.clone();
        m2.register_event(TopicId(1), SimTime(0), vec![n(0)]);
        assert_eq!(m.snapshot().published, 1);
    }
}

#[cfg(test)]
mod kind_traffic_tests {
    use super::*;
    use vitis_sim::trace::MsgTag;

    #[test]
    fn with_kind_traffic_splits_control_and_data() {
        let mut ledger = vitis_sim::trace::TrafficLedger::new();
        for _ in 0..5 {
            ledger.record_send(MsgTag::control("ps_req"));
        }
        for _ in 0..3 {
            ledger.record_send(MsgTag::data("notification"));
        }
        ledger.record_deliver(MsgTag::data("notification"));
        let s = Monitor::new().snapshot().with_kind_traffic(ledger.kinds());
        assert_eq!(s.control_sent, 5);
        assert_eq!(s.data_sent, 3);
        assert_eq!(s.traffic_by_kind.len(), 2);
        let notif = s
            .traffic_by_kind
            .iter()
            .find(|k| k.kind == "notification")
            .unwrap();
        assert_eq!(notif.class, "data");
        assert_eq!((notif.sent, notif.delivered), (3, 1));
    }

    #[test]
    fn with_kind_traffic_is_idempotent() {
        let mut ledger = vitis_sim::trace::TrafficLedger::new();
        ledger.record_send(MsgTag::control("hb"));
        let s = Monitor::new()
            .snapshot()
            .with_kind_traffic(ledger.kinds())
            .with_kind_traffic(ledger.kinds());
        assert_eq!(s.control_sent, 1);
        assert_eq!(s.traffic_by_kind.len(), 1);
    }
}

#[cfg(test)]
mod reset_tests {
    use super::*;

    #[test]
    fn event_ids_stay_unique_across_resets() {
        let m = Monitor::new();
        let a = m.register_event(TopicId(0), SimTime(0), vec![NodeIdx(1)]);
        m.reset();
        let b = m.register_event(TopicId(0), SimTime(1), vec![NodeIdx(1)]);
        assert_ne!(a, b);
        // Deliveries against the pre-reset id are ignored, not misattributed.
        m.record_delivery(a, NodeIdx(1), 1, SimTime(9));
        assert_eq!(m.snapshot().delivered, 0);
        m.record_delivery(b, NodeIdx(1), 1, SimTime(9));
        assert_eq!(m.snapshot().delivered, 1);
    }
}

#[cfg(test)]
mod bandwidth_tests {
    use super::*;

    #[test]
    fn latency_tracks_publish_to_arrival() {
        let m = Monitor::new();
        let e = m.register_event(TopicId(0), SimTime(100), vec![NodeIdx(1), NodeIdx(2)]);
        m.record_delivery(e, NodeIdx(1), 2, SimTime(130));
        m.record_delivery(e, NodeIdx(2), 5, SimTime(160));
        // A later duplicate must not worsen the recorded latency.
        m.record_delivery(e, NodeIdx(1), 9, SimTime(500));
        let s = m.snapshot();
        assert!((s.mean_latency_ticks - 45.0).abs() < 1e-9);
        assert_eq!(s.max_latency_ticks, 60);
        assert!((s.mean_hops - 3.5).abs() < 1e-9);
    }

    #[test]
    fn control_bandwidth_is_bytes_per_round() {
        let m = Monitor::new();
        m.record_control_round(NodeIdx(0));
        m.record_control_tx(NodeIdx(0), 300);
        m.record_control_round(NodeIdx(0));
        m.record_control_tx(NodeIdx(0), 100);
        m.record_control_round(NodeIdx(1));
        let s = m.snapshot();
        assert!((s.control_bytes_per_round - 400.0 / 3.0).abs() < 1e-9);
        m.reset();
        assert_eq!(m.snapshot().control_bytes_per_round, 0.0);
    }
}

#[cfg(test)]
mod per_topic_tests {
    use super::*;

    #[test]
    fn per_topic_progress_groups_and_sorts() {
        let m = Monitor::new();
        let a = m.register_event(TopicId(2), SimTime(0), vec![NodeIdx(1), NodeIdx(2)]);
        let b = m.register_event(TopicId(0), SimTime(0), vec![NodeIdx(3)]);
        let c = m.register_event(TopicId(2), SimTime(1), vec![NodeIdx(4)]);
        m.record_delivery(a, NodeIdx(1), 1, SimTime(2));
        m.record_delivery(b, NodeIdx(3), 1, SimTime(2));
        let _ = c;
        let got = m.per_topic_progress();
        assert_eq!(got, vec![(TopicId(0), 1, 1), (TopicId(2), 3, 1)]);
    }
}
