//! Gateway election (the paper's Algorithm 5).
//!
//! Inside each topic cluster, nodes gossip *proposals* `(gateway, parent,
//! hops)` piggybacked on their profile heartbeats. Every round a node
//! re-derives its proposal for each subscribed topic: it starts from itself
//! and adopts a neighbor's proposal when that proposal's gateway id is
//! ring-closer to `hash(topic)` and still within the hop radius `d`. The
//! node whose proposal converges to itself is a gateway and builds the
//! cluster's relay path. Consensus is *not* required: extra gateways cost
//! some relay traffic but improve robustness and intra-cluster delay.

use crate::topic::TopicId;
use vitis_overlay::id::Id;
use vitis_sim::event::NodeIdx;

/// A gateway proposal as gossiped inside a cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Proposal {
    /// Ring id of the proposed gateway.
    pub gw_id: Id,
    /// Address of the proposed gateway.
    pub gw_addr: NodeIdx,
    /// The neighbor this proposal was adopted from (self for an origin
    /// proposal) — the loop-avoidance parent of Algorithm 5.
    pub parent: NodeIdx,
    /// Cluster-hops from the proposing node to the gateway.
    pub hops: u32,
}

impl Proposal {
    /// The origin proposal: the node proposes itself at distance zero.
    pub fn self_proposal(self_addr: NodeIdx, self_id: Id) -> Proposal {
        Proposal {
            gw_id: self_id,
            gw_addr: self_addr,
            parent: self_addr,
            hops: 0,
        }
    }
}

/// One revision step of Algorithm 5 for a single topic.
///
/// `neighbor_proposals` yields, for each routing-table neighbor that is
/// itself subscribed to `topic`, that neighbor's most recently advertised
/// proposal. `rt_contains` tests routing-table membership for the
/// loop-avoidance check.
///
/// Returns the revised proposal; `revised.gw_addr == self_addr` means this
/// node currently considers itself the gateway and must refresh the relay
/// path.
pub fn revise_proposal<'a, I>(
    self_addr: NodeIdx,
    self_id: Id,
    topic: TopicId,
    d_max: u32,
    neighbor_proposals: I,
    rt_contains: impl Fn(NodeIdx) -> bool,
) -> Proposal
where
    I: IntoIterator<Item = (NodeIdx, &'a Proposal)>,
{
    let target = topic.ring_id();
    let mut prop = Proposal::self_proposal(self_addr, self_id);
    for (nbr, new) in neighbor_proposals {
        // Loop avoidance: never adopt a proposal that was itself adopted
        // from us, and otherwise require the neighbor to be the proposal's
        // origin-adjacent parent or the parent to be outside our table
        // (Algorithm 5 line 7, plus the self-parent guard the pseudocode
        // leaves implicit).
        if new.parent == self_addr {
            continue;
        }
        if new.parent != nbr && rt_contains(new.parent) {
            continue;
        }
        let current_dist = target.ring_distance(prop.gw_id);
        let new_dist = target.ring_distance(new.gw_id);
        let closer = new_dist < current_dist
            || (new_dist == current_dist && new.gw_id.0 < prop.gw_id.0);
        let adopt = (closer && new.hops + 1 < d_max)
            || (new.gw_addr == prop.gw_addr && new.hops + 1 < prop.hops);
        if adopt {
            prop = Proposal {
                gw_id: new.gw_id,
                gw_addr: new.gw_addr,
                parent: nbr,
                hops: new.hops + 1,
            };
        }
    }
    prop
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeIdx {
        NodeIdx(i)
    }

    // Pick a topic and derive ids at controlled ring distances from it.
    fn topic() -> TopicId {
        TopicId(7)
    }

    fn id_at(offset: u64) -> Id {
        Id(topic().ring_id().0.wrapping_add(offset))
    }

    #[test]
    fn isolated_node_proposes_itself() {
        let p = revise_proposal(n(0), id_at(100), topic(), 5, std::iter::empty(), |_| false);
        assert_eq!(p, Proposal::self_proposal(n(0), id_at(100)));
    }

    #[test]
    fn adopts_closer_gateway_within_radius() {
        let better = Proposal {
            gw_id: id_at(10),
            gw_addr: n(5),
            parent: n(5), // origin-adjacent
            hops: 0,
        };
        let p = revise_proposal(
            n(0),
            id_at(100),
            topic(),
            5,
            [(n(5), &better)],
            |_| false,
        );
        assert_eq!(p.gw_addr, n(5));
        assert_eq!(p.parent, n(5));
        assert_eq!(p.hops, 1);
    }

    #[test]
    fn rejects_beyond_hop_radius() {
        let better = Proposal {
            gw_id: id_at(10),
            gw_addr: n(5),
            parent: n(5),
            hops: 4, // hops+1 = 5, not < d = 5
        };
        let p = revise_proposal(n(0), id_at(100), topic(), 5, [(n(5), &better)], |_| false);
        assert_eq!(p.gw_addr, n(0), "must keep self-proposal");
    }

    #[test]
    fn rejects_proposals_parented_on_self() {
        // Neighbor 5 adopted *our* old proposal; taking it back would loop.
        let echo = Proposal {
            gw_id: id_at(10),
            gw_addr: n(9),
            parent: n(0),
            hops: 1,
        };
        let p = revise_proposal(n(0), id_at(100), topic(), 5, [(n(5), &echo)], |_| false);
        assert_eq!(p.gw_addr, n(0));
    }

    #[test]
    fn rejects_third_party_parent_inside_rt() {
        // Neighbor 5 adopted from node 6, and 6 is also our neighbor: we
        // should wait to hear from 6 directly rather than via 5.
        let relayed = Proposal {
            gw_id: id_at(10),
            gw_addr: n(9),
            parent: n(6),
            hops: 1,
        };
        let in_rt = |x: NodeIdx| x == n(6);
        let p = revise_proposal(n(0), id_at(100), topic(), 5, [(n(5), &relayed)], in_rt);
        assert_eq!(p.gw_addr, n(0));
        // …but accept it if 6 is NOT in our table.
        let p = revise_proposal(n(0), id_at(100), topic(), 5, [(n(5), &relayed)], |_| false);
        assert_eq!(p.gw_addr, n(9));
        assert_eq!(p.hops, 2);
    }

    #[test]
    fn same_gateway_shorter_path_wins() {
        // We already point at gw 9 via a long path; a neighbor offers the
        // same gateway closer. Build the initial state by feeding two
        // proposals in sequence: first a 3-hop path, then a 1-hop one.
        let long = Proposal {
            gw_id: id_at(10),
            gw_addr: n(9),
            parent: n(5),
            hops: 3,
        };
        let short = Proposal {
            gw_id: id_at(10),
            gw_addr: n(9),
            parent: n(6),
            hops: 0,
        };
        let p = revise_proposal(
            n(0),
            id_at(100),
            topic(),
            10,
            [(n(5), &long), (n(6), &short)],
            |_| false,
        );
        assert_eq!(p.gw_addr, n(9));
        assert_eq!(p.hops, 1);
        assert_eq!(p.parent, n(6));
    }

    /// Simulate proposal convergence on a path cluster a–b–c–d–e where `a`
    /// has the id closest to the topic: everyone converges to gateway `a`
    /// within diameter rounds.
    #[test]
    fn converges_on_a_path_cluster() {
        let ids = [id_at(1), id_at(50), id_at(90), id_at(200), id_at(300)];
        let addrs: Vec<NodeIdx> = (0..5).map(n).collect();
        let mut props: Vec<Proposal> = (0..5)
            .map(|i| Proposal::self_proposal(addrs[i], ids[i]))
            .collect();
        let neighbors = |i: usize| -> Vec<usize> {
            match i {
                0 => vec![1],
                4 => vec![3],
                k => vec![k - 1, k + 1],
            }
        };
        for _round in 0..5 {
            let snapshot = props.clone();
            for i in 0..5 {
                let nbrs: Vec<(NodeIdx, &Proposal)> = neighbors(i)
                    .into_iter()
                    .map(|j| (addrs[j], &snapshot[j]))
                    .collect();
                let rt = |x: NodeIdx| neighbors(i).iter().any(|&j| addrs[j] == x);
                props[i] = revise_proposal(addrs[i], ids[i], topic(), 10, nbrs, rt);
            }
        }
        for (i, p) in props.iter().enumerate() {
            assert_eq!(p.gw_addr, addrs[0], "node {i} did not converge");
            assert_eq!(p.hops, i as u32);
        }
    }

    /// With a small radius d, far nodes keep their own gateway — the
    /// mechanism that makes gateways-per-cluster scale with diameter.
    #[test]
    fn radius_splits_long_clusters() {
        let ids = [id_at(1), id_at(50), id_at(90), id_at(200), id_at(300)];
        let addrs: Vec<NodeIdx> = (0..5).map(n).collect();
        let mut props: Vec<Proposal> = (0..5)
            .map(|i| Proposal::self_proposal(addrs[i], ids[i]))
            .collect();
        let neighbors = |i: usize| -> Vec<usize> {
            match i {
                0 => vec![1],
                4 => vec![3],
                k => vec![k - 1, k + 1],
            }
        };
        let d = 3; // hops must stay < 3
        for _round in 0..6 {
            let snapshot = props.clone();
            for i in 0..5 {
                let nbrs: Vec<(NodeIdx, &Proposal)> = neighbors(i)
                    .into_iter()
                    .map(|j| (addrs[j], &snapshot[j]))
                    .collect();
                let rt = |x: NodeIdx| neighbors(i).iter().any(|&j| addrs[j] == x);
                props[i] = revise_proposal(addrs[i], ids[i], topic(), d, nbrs, rt);
            }
        }
        // Nodes 0..=2 reach gateway 0 (hops 0,1,2 < 3); nodes 3,4 cannot.
        for (i, p) in props.iter().take(3).enumerate() {
            assert_eq!(p.gw_addr, addrs[0], "node {i}");
        }
        assert_ne!(props[3].gw_addr, addrs[0]);
        assert_ne!(props[4].gw_addr, addrs[0]);
        // At least one extra gateway emerges among the far nodes.
        assert!(props[3].gw_addr == addrs[3] || props[4].gw_addr == addrs[4] || props[3].gw_addr == addrs[4] || props[4].gw_addr == addrs[3]);
    }
}
