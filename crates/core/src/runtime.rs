//! The generic system runtime: one engine–monitor plumbing layer shared
//! by every publish/subscribe system in the suite.
//!
//! The paper evaluates three systems — Vitis, RVR and OPT — under
//! *identical* simulation conditions (§V). [`SystemRuntime`] encodes that
//! guarantee structurally instead of by convention: it owns the engine,
//! the monitor, the workload ground truth, publish scheduling, churn
//! bookkeeping and trace wiring exactly once, and a system is just a
//! [`PubSubProtocol`] adapter supplying what genuinely differs between
//! designs — node construction, overlay structure accessors, loss
//! classification and the structured part of the health probe.
//!
//! ```text
//! Engine<P::Node>  ──rounds/messages──►  per-node protocol state
//!        ▲
//! SystemRuntime<P>  ── publish scheduling, churn, stats, tracing
//!        ▲
//! PubSubProtocol adapters: VitisProtocol │ RvrProtocol │ OptProtocol
//! ```
//!
//! The blanket `impl<P: PubSubProtocol> PubSub for SystemRuntime<P>` is
//! the **only** [`PubSub`] implementation in the workspace; the driver
//! surface cannot drift between systems.

use crate::harness::Workload;
use crate::monitor::{EventId, LossReport, Monitor, PubSubStats};
use crate::system::{cluster_probe, SystemParams};
use crate::topic::{RateTable, Subs, TopicId, TopicSet};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use std::sync::Arc;
use vitis_overlay::entry::Entry;
use vitis_overlay::graph::Graph;
use vitis_overlay::id::Id;
use vitis_overlay::rt::HybridRt;
use vitis_sim::engine::{Engine, EngineConfig};
use vitis_sim::event::NodeIdx;
use vitis_sim::fault::{FaultDriver, FaultedNetwork};
use vitis_sim::network::DynNetworkModel;
use vitis_sim::prelude::StopReason;
use vitis_sim::protocol::{ParallelProtocol, Protocol};
use vitis_sim::rng::{domain, stream_rng};
use vitis_sim::time::{Duration, SimTime};
use vitis_sim::trace::{HealthProbe, TraceEvent, TraceHandle};

/// The uniform driver interface over Vitis, RVR and OPT systems.
///
/// Implemented once, by `SystemRuntime<P>`; the experiment harness,
/// examples and tests drive every system through this surface.
pub trait PubSub {
    /// Advance `n` gossip rounds.
    fn run_rounds(&mut self, n: u64);

    /// Advance by raw simulation ticks (fine-grained churn interleaving).
    fn run_ticks(&mut self, ticks: u64);

    /// Publish one event on `topic` from a random online subscriber.
    /// Returns `None` when no subscriber is online.
    fn publish(&mut self, topic: TopicId) -> Option<EventId>;

    /// Publish one event on a rate-weighted random topic.
    fn publish_weighted(&mut self) -> Option<EventId>;

    /// Metrics since the last reset.
    fn stats(&self) -> PubSubStats;

    /// First-arrival deliveries that came in through the anti-entropy
    /// repair layer rather than the protocol's own dissemination.
    /// Cumulative over the system's lifetime (never reset); zero whenever
    /// repair is disabled.
    fn recovered_deliveries(&self) -> u64 {
        0
    }

    /// Clear the measurement window (end of warmup).
    fn reset_metrics(&mut self);

    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Number of online nodes.
    fn alive_count(&self) -> usize;

    /// Bring a logical node online/offline (churn driver hook). No-op if
    /// already in the requested state.
    fn set_online(&mut self, logical: u32, online: bool);

    /// Mean node degree over online nodes.
    fn mean_degree(&self) -> f64;

    /// Per-node traffic overhead percentages (Figure 5's distribution),
    /// over nodes that received at least `min_msgs` data-plane messages.
    fn per_node_overhead(&self, min_msgs: u64) -> Vec<f64>;

    /// Install a shared trace into the system's engine **and** its
    /// monitor: lifecycle and message events are recorded engine-side,
    /// and per-event forensics records (`pub_event` / `fwd` /
    /// `deliver_event` / `drop_event`) are recorded monitor-side, all
    /// into the same ring buffer.
    fn install_trace(&mut self, trace: TraceHandle);

    /// Classify every missed `(event, subscriber)` pair of the current
    /// window against the system's present structural state (see
    /// [`crate::monitor::LossReason`]). Per-reason counts sum exactly to
    /// `expected - delivered`; when a trace is installed each miss also
    /// emits a `drop_event` record.
    fn loss_report(&self) -> LossReport;

    /// Sample the overlay's structural health (ring consistency, view
    /// staleness, subscriber clustering). All three systems fill what
    /// they can measure; structure-less fields stay `None`.
    fn health_probe(&self) -> HealthProbe;

    /// Deterministic engine-side perf counters (queue high-water mark,
    /// per-phase node activations). Always available; independent of the
    /// wall-clock span profiler.
    fn perf_counters(&self) -> vitis_sim::perf::EngineCounters;

    /// Structural estimate of the live nodes' memory footprint in bytes:
    /// per-node state size plus a protocol-specific heap estimate (see
    /// [`PubSubProtocol::node_heap_bytes`]). An estimate for cross-system
    /// comparison, not an allocator measurement — pair with the
    /// `perf-alloc` feature for the latter.
    fn footprint_estimate(&self) -> u64;

    /// Export a dense structural snapshot of the current overlay: every
    /// online node's per-kind links, relay entries and gateway beliefs
    /// (see [`crate::topo`]). Nodes appear in slot order, so identical
    /// states export identically.
    fn overlay_snapshot(&self) -> crate::topo::OverlaySnapshot;

    /// Route round execution through the engine's deterministic parallel
    /// executor (`true`) or the serial batched drain (`false`, the
    /// default). Fixed-seed results are bit-identical in both modes at
    /// any thread count; the switch trades wall-clock for cores, never
    /// results.
    fn set_parallel_rounds(&mut self, on: bool);

    /// Enable (or, with `None`, disable) the periodic topology sampler:
    /// every `every_rounds` gossip rounds the runtime snapshots the
    /// overlay, computes [`crate::topo::probe`] and records a `topo`
    /// record into the installed trace. Default off; a no-op while no
    /// trace is installed. Sampling only reads protocol state — enabling
    /// it never perturbs the simulation itself.
    fn set_topo_sampling(&mut self, every_rounds: Option<u64>);
}

/// What a publish/subscribe design must supply to run on
/// [`SystemRuntime`]: its node type plus the handful of hooks where the
/// three systems genuinely differ. Everything else — round driving,
/// publish scheduling, churn slot management, stats, tracing — lives in
/// the runtime and is shared verbatim.
pub trait PubSubProtocol: Sized {
    /// The per-node protocol state machine driven by the engine. The
    /// [`ParallelProtocol`] bound lets every system opt into the engine's
    /// deterministic parallel round executor (see
    /// [`SystemRuntime::set_parallel_rounds`]); nodes with no shared sink
    /// satisfy it with `Deferred = ()` no-ops.
    type Node: ParallelProtocol;

    /// Salt of the bootstrap-sampling RNG stream in
    /// [`vitis_sim::rng::domain::WORKLOAD`]. Distinct per system so
    /// side-by-side comparisons from cloned params never share draws.
    const BOOT_SALT: u64;

    /// Derive the protocol's shared state (its config) from the common
    /// construction parameters.
    fn from_params(params: &SystemParams) -> Self;

    /// Construct the node joining as `logical`.
    fn make_node(
        &self,
        logical: u32,
        subs: Subs,
        bootstrap: Vec<Entry<Subs>>,
        rates: &Arc<RateTable>,
        monitor: &Monitor,
    ) -> Self::Node;

    /// `(ring id, subscriptions)` of a node, as advertised in bootstrap
    /// entries handed to joiners.
    fn describe(node: &Self::Node) -> (Id, Subs);

    /// Number of overlay links the node currently holds.
    fn degree(node: &Self::Node) -> usize;

    /// Visit the node's current overlay neighbors (for graph snapshots).
    fn for_each_neighbor(node: &Self::Node, f: impl FnMut(NodeIdx));

    /// The protocol message that starts disseminating `event` when
    /// injected at the publisher.
    fn publish_cmd(event: EventId, topic: TopicId) -> <Self::Node as Protocol>::Msg;

    /// Classify the current window's missed `(event, subscriber)` pairs
    /// against the system's structural state. Implementations call
    /// [`Monitor::attribute_losses`] via `rt.monitor()` with a
    /// system-specific classifier.
    fn loss_report(rt: &SystemRuntime<Self>) -> LossReport;

    /// The structured part of the health probe:
    /// `(ring accuracy, mean view age)`. Systems without that structure
    /// keep the default `(None, None)`.
    fn structure_probe(_rt: &SystemRuntime<Self>) -> (Option<f64>, Option<f64>) {
        (None, None)
    }

    /// Estimated heap bytes held by one node beyond `size_of::<Node>()`.
    /// The default charges a flat per-link cost covering a routing-table
    /// entry (id, address, subscription digest, age); override when a
    /// design keeps materially more per-node heap state.
    fn node_heap_bytes(node: &Self::Node) -> u64 {
        Self::degree(node) as u64 * 96
    }

    /// Export one node's structural state (links, relay entries, gateway
    /// beliefs) for the topology snapshot. `idx` is the node's engine
    /// slot; `&self` gives access to shared config (e.g. the view bound).
    fn node_topo(&self, idx: NodeIdx, node: &Self::Node) -> crate::topo::NodeTopo;
}

/// A complete network of one publish/subscribe design: engine, nodes,
/// workload ground truth and metrics behind the uniform [`PubSub`] API.
///
/// Construct with [`SystemRuntime::new`] (config derived from params via
/// [`PubSubProtocol::from_params`]) or [`SystemRuntime::with_protocol`]
/// (explicit adapter state, e.g. OPT's unbounded-degree variant).
pub struct SystemRuntime<P: PubSubProtocol> {
    pub(crate) engine: Engine<P::Node, DynNetworkModel>,
    pub(crate) monitor: Monitor,
    pub(crate) workload: Workload,
    pub(crate) protocol: P,
    /// Applies the plan's crash/freeze episodes at their exact timestamps
    /// whenever the runtime advances the engine. Link-level episodes
    /// (partition, loss, latency) live inside the network model instead.
    fault_driver: FaultDriver,
    boot_rng: SmallRng,
    bootstrap_contacts: usize,
    /// Periodic topology-sampling interval in rounds; `None` (default)
    /// disables the sampler entirely.
    topo_every: Option<u64>,
    /// Next scheduled topology sample (meaningful only while enabled).
    next_topo: SimTime,
    /// Run rounds through the deterministic parallel executor instead of
    /// the serial drain. Off by default; results are bit-identical either
    /// way (see `vitis_sim::engine::Engine::run_until_parallel`).
    parallel: bool,
}

impl<P: PubSubProtocol> SystemRuntime<P> {
    /// Build and start a network with every node online.
    pub fn new(params: SystemParams) -> Self {
        Self::with_protocol(P::from_params(&params), params)
    }

    /// Build with explicit protocol adapter state (bypasses
    /// [`PubSubProtocol::from_params`]).
    pub fn with_protocol(protocol: P, params: SystemParams) -> Self {
        let n = params.subscriptions.len();
        let monitor = Monitor::new();
        let workload = Workload::new(
            params.subscriptions,
            params.num_topics,
            params.rates,
            params.grace,
            params.seed,
        );
        let network: DynNetworkModel = if params.faults.is_empty() {
            params.network.build()
        } else {
            Box::new(FaultedNetwork::new(
                params.network.build(),
                params.faults.clone(),
            ))
        };
        let engine = Engine::with_network(
            EngineConfig {
                seed: params.seed,
                round_period: params.round_period,
                desynchronize_rounds: true,
            },
            network,
        );
        let boot_rng = stream_rng(params.seed, domain::WORKLOAD, P::BOOT_SALT);
        let mut sys = SystemRuntime {
            engine,
            monitor,
            workload,
            protocol,
            fault_driver: FaultDriver::new(&params.faults),
            boot_rng,
            bootstrap_contacts: params.bootstrap_contacts,
            topo_every: None,
            next_topo: SimTime::default(),
            parallel: false,
        };
        for logical in 0..n as u32 {
            let node = sys.make_node(logical);
            let slot = sys.engine.add_node(node);
            debug_assert_eq!(slot.0, logical);
        }
        sys
    }

    fn make_node(&mut self, logical: u32) -> P::Node {
        let subs = self.workload.subs_of(logical).clone();
        let bootstrap = self.bootstrap_entries();
        self.protocol.make_node(
            logical,
            subs,
            bootstrap,
            self.workload.rates(),
            &self.monitor,
        )
    }

    /// Sample bootstrap contacts among currently online nodes (the
    /// bootstrap-server emulation of Algorithm 1).
    fn bootstrap_entries(&mut self) -> Vec<Entry<Subs>> {
        let mut alive: Vec<NodeIdx> = self.engine.alive_indices();
        alive.shuffle(&mut self.boot_rng);
        alive
            .into_iter()
            .take(self.bootstrap_contacts)
            .map(|slot| {
                let node = self.engine.node(slot).expect("sampled alive node");
                let (id, subs) = P::describe(node);
                Entry::fresh(slot, id, subs)
            })
            .collect()
    }

    /// Route round execution through the engine's deterministic parallel
    /// executor (`true`) or the serial batched drain (`false`, the
    /// default). Fixed-seed runs produce bit-identical traces, stats and
    /// goldens in both modes at any thread count — this switch trades
    /// wall-clock for cores, never results.
    pub fn set_parallel_rounds(&mut self, on: bool) {
        self.parallel = on;
    }

    /// Whether rounds currently run through the parallel executor.
    pub fn parallel_rounds(&self) -> bool {
        self.parallel
    }

    /// The protocol adapter (shared config state).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// The shared monitor (e.g. for custom event registration in tests).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// First-arrival deliveries that came in through the anti-entropy
    /// repair layer rather than the protocol's own dissemination. Zero
    /// whenever repair is disabled.
    pub fn recovered_deliveries(&self) -> u64 {
        self.monitor.recovered_deliveries()
    }

    /// The underlying engine (read access for snapshots).
    pub fn engine(&self) -> &Engine<P::Node, DynNetworkModel> {
        &self.engine
    }

    /// The workload ground truth.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Snapshot the current overlay as an undirected graph (an edge per
    /// overlay link to an online node).
    pub fn overlay_graph(&self) -> Graph {
        let mut g = Graph::new(self.engine.num_slots());
        for (idx, node) in self.engine.alive_nodes() {
            P::for_each_neighbor(node, |peer| {
                if self.engine.is_alive(peer) {
                    g.add_edge(idx.0, peer.0);
                }
            });
        }
        g
    }

    /// The clusters (maximal connected subscriber subgraphs) of `topic`
    /// in the current overlay.
    pub fn topic_clusters(&self, topic: TopicId) -> Vec<Vec<u32>> {
        let g = self.overlay_graph();
        g.components_within(&self.alive_subscribers(topic))
    }

    /// Degrees of all online nodes (Figure 11's distribution).
    pub fn degree_distribution(&self) -> Vec<u64> {
        self.engine
            .alive_nodes()
            .map(|(_, n)| P::degree(n) as u64)
            .collect()
    }

    /// Currently-online subscribers of `topic` (ground truth ∩ engine
    /// liveness) — the population loss classifiers reason about.
    pub fn alive_subscribers(&self, topic: TopicId) -> Vec<u32> {
        self.workload
            .subscribers(topic)
            .iter()
            .copied()
            .filter(|&s| self.engine.is_alive(NodeIdx(s)))
            .collect()
    }

    /// Publish from an explicit node (must be online). Returns the event
    /// id.
    pub fn publish_from(&mut self, publisher: u32, topic: TopicId) -> Option<EventId> {
        let _span = vitis_sim::perf::span("system.publish");
        if !self.engine.is_alive(NodeIdx(publisher)) {
            return None;
        }
        let now = self.engine.now();
        let engine = &self.engine;
        let expected = self
            .workload
            .expected_subscribers(topic, publisher, now, |s| engine.joined_at(NodeIdx(s)));
        let event = self.monitor.register_event(topic, now, expected);
        self.monitor.trace_publish(event, NodeIdx(publisher));
        self.engine
            .inject(NodeIdx(publisher), P::publish_cmd(event, topic));
        Some(event)
    }
}

/// Vitis-specific surface: operations that need the node type's own API
/// (dynamic resubscription, ring diagnostics).
impl SystemRuntime<crate::system::VitisProtocol> {
    /// Replace the subscriptions of an online node at runtime; the change
    /// is reflected both in the delivery ground truth and in the node's
    /// next profile heartbeat.
    pub fn resubscribe(&mut self, logical: u32, new_subs: TopicSet) {
        self.workload.resubscribe(logical, new_subs);
        let subs = self.workload.subs_of(logical).clone();
        if let Some(node) = self.engine.node_mut(NodeIdx(logical)) {
            node.set_subscriptions(subs);
        }
    }

    /// Fraction of online nodes whose successor pointer matches the true
    /// ring (convergence diagnostic).
    pub fn ring_accuracy(&self) -> f64 {
        hybrid_rt_probe(self, |n| n.routing_table()).0
    }
}

/// Ring accuracy and mean view age for systems whose nodes keep a
/// [`HybridRt`] (Vitis and RVR): successor pointers checked against the
/// true ring over online nodes, entry ages averaged over all live table
/// entries. Returns `(ring accuracy, mean view age)`.
pub fn hybrid_rt_probe<P: PubSubProtocol>(
    rt: &SystemRuntime<P>,
    table_of: impl Fn(&P::Node) -> &HybridRt<Subs>,
) -> (f64, Option<f64>) {
    let engine = rt.engine();
    let mut ring: Vec<(Id, Option<Id>)> = Vec::new();
    let (mut age_sum, mut entries) = (0u64, 0u64);
    for (_, node) in engine.alive_nodes() {
        let table = table_of(node);
        ring.push((
            P::describe(node).0,
            table
                .succ
                .as_ref()
                .and_then(|s| engine.is_alive(s.addr).then_some(s.id)),
        ));
        for e in table.iter() {
            age_sum += u64::from(e.age);
            entries += 1;
        }
    }
    (
        vitis_overlay::ring::ring_accuracy(&ring),
        (entries > 0).then(|| age_sum as f64 / entries as f64),
    )
}

/// Sampled-topic cap of the periodic topology sampler (evenly spaced
/// over the subscribed topics; see [`crate::topo::analyze`]).
pub const TOPO_SAMPLE_TOPICS: usize = 64;

impl<P: PubSubProtocol> SystemRuntime<P> {
    /// Advance to `target`, applying scheduled crash/freeze fault actions
    /// and due topology samples at their exact timestamps on the way.
    /// With an empty plan and sampling off this is exactly
    /// `engine.run_until(target)`.
    fn advance_to(&mut self, target: SimTime) {
        loop {
            let next_fault = self.fault_driver.next_time().filter(|&t| t <= target);
            let next_topo = self
                .topo_every
                .map(|_| self.next_topo)
                .filter(|&t| t <= target);
            let Some(stop) = [next_fault, next_topo].into_iter().flatten().min() else {
                break;
            };
            self.run_engine_until(stop);
            if next_fault == Some(stop) {
                self.fault_driver.apply_due(&mut self.engine);
            }
            if next_topo == Some(stop) {
                self.record_topo_sample();
                let every = self.topo_every.expect("sampling enabled");
                self.next_topo = stop + Duration(self.engine.round_period().ticks() * every);
            }
        }
        self.run_engine_until(target);
    }

    /// Drain the engine to `target` through whichever executor is selected.
    fn run_engine_until(&mut self, target: SimTime) {
        if self.parallel {
            self.engine.run_until_parallel(target);
        } else {
            self.engine.run_until(target);
        }
    }

    /// Snapshot every online node's structural state, in slot order.
    fn snapshot_topology(&self) -> crate::topo::OverlaySnapshot {
        crate::topo::OverlaySnapshot {
            now: self.engine.now().0,
            num_slots: self.engine.num_slots(),
            nodes: self
                .engine
                .alive_nodes()
                .map(|(idx, node)| self.protocol.node_topo(idx, node))
                .collect(),
        }
    }

    /// One sampler firing: snapshot, analyze + audit, record a `topo`
    /// trace record. A no-op without an installed trace.
    fn record_topo_sample(&self) {
        let Some(trace) = self.engine.trace_handle() else {
            return;
        };
        let snap = self.snapshot_topology();
        let probe = crate::topo::probe(&snap, TOPO_SAMPLE_TOPICS);
        let now = self.engine.now().0;
        let round = now / self.engine.round_period().ticks().max(1);
        trace
            .borrow_mut()
            .record(TraceEvent::TopoSample { round, now, probe });
    }
}

impl<P: PubSubProtocol> PubSub for SystemRuntime<P> {
    fn run_rounds(&mut self, n: u64) {
        let _span = vitis_sim::perf::span("system.run_rounds");
        let target = self.engine.now() + Duration(self.engine.round_period().ticks() * n);
        self.advance_to(target);
    }

    fn run_ticks(&mut self, ticks: u64) {
        let target = self.engine.now() + Duration(ticks);
        self.advance_to(target);
    }

    fn publish(&mut self, topic: TopicId) -> Option<EventId> {
        let engine = &self.engine;
        let publisher = self
            .workload
            .choose_publisher(topic, |s| engine.is_alive(NodeIdx(s)))?;
        self.publish_from(publisher, topic)
    }

    fn publish_weighted(&mut self) -> Option<EventId> {
        let topic = self.workload.draw_topic();
        self.publish(topic)
    }

    fn stats(&self) -> PubSubStats {
        self.monitor
            .snapshot()
            .with_kind_traffic(&self.engine.kind_traffic())
    }

    fn recovered_deliveries(&self) -> u64 {
        SystemRuntime::recovered_deliveries(self)
    }

    fn reset_metrics(&mut self) {
        self.monitor.reset();
        self.engine.reset_kind_traffic();
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn alive_count(&self) -> usize {
        self.engine.alive_count()
    }

    fn set_online(&mut self, logical: u32, online: bool) {
        let slot = NodeIdx(logical);
        match (self.engine.is_alive(slot), online) {
            (false, true) => {
                let node = self.make_node(logical);
                if slot.index() < self.engine.num_slots() {
                    self.engine.rejoin_node(slot, node);
                } else {
                    let got = self.engine.add_node(node);
                    assert_eq!(got, slot, "logical ids must join in order");
                }
            }
            (true, false) => self.engine.remove_node(slot, StopReason::Crash),
            _ => {}
        }
    }

    fn mean_degree(&self) -> f64 {
        let (sum, count) = self
            .engine
            .alive_nodes()
            .fold((0usize, 0usize), |(s, c), (_, n)| (s + P::degree(n), c + 1));
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    fn per_node_overhead(&self, min_msgs: u64) -> Vec<f64> {
        self.monitor
            .per_node_overhead(min_msgs)
            .into_iter()
            .map(|(_, pct)| pct)
            .collect()
    }

    fn install_trace(&mut self, trace: TraceHandle) {
        self.monitor.set_trace(Some(trace.clone()));
        self.engine.set_trace(trace);
    }

    fn loss_report(&self) -> LossReport {
        P::loss_report(self)
    }

    fn perf_counters(&self) -> vitis_sim::perf::EngineCounters {
        self.engine.perf_counters()
    }

    fn footprint_estimate(&self) -> u64 {
        let fixed = std::mem::size_of::<P::Node>() as u64;
        self.engine
            .alive_nodes()
            .map(|(_, n)| fixed + P::node_heap_bytes(n))
            .sum()
    }

    fn overlay_snapshot(&self) -> crate::topo::OverlaySnapshot {
        self.snapshot_topology()
    }

    fn set_parallel_rounds(&mut self, on: bool) {
        SystemRuntime::set_parallel_rounds(self, on);
    }

    fn set_topo_sampling(&mut self, every_rounds: Option<u64>) {
        self.topo_every = every_rounds;
        if let Some(every) = every_rounds {
            self.next_topo =
                self.engine.now() + Duration(self.engine.round_period().ticks() * every);
        }
    }

    fn health_probe(&self) -> HealthProbe {
        let graph = self.overlay_graph();
        let engine = &self.engine;
        let (clusters, largest) =
            cluster_probe(&graph, &self.workload, |s| engine.is_alive(NodeIdx(s)));
        let (ring_accuracy, mean_view_age) = P::structure_probe(self);
        HealthProbe {
            alive: self.engine.alive_count() as u64,
            mean_degree: self.mean_degree(),
            ring_accuracy,
            mean_view_age,
            clusters: Some(clusters),
            largest_cluster: Some(largest),
        }
    }
}
