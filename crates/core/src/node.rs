//! The Vitis node: the per-peer protocol state machine tying together peer
//! sampling, T-Man neighbor selection (Algorithm 4), profile gossip with
//! gateway election (Algorithms 5–7), relay-path construction and event
//! dissemination.

use crate::config::{SamplingService, VitisConfig};
use crate::gateway::{revise_proposal, Proposal};
use crate::monitor::{EventId, HopPath, Monitor};
use crate::msg::{wire, Notification, ProfileMsg, VitisMsg};
use crate::relay::RelayTable;
use crate::smallmap::SmallMap;
use crate::topic::{RateTable, Subs, TopicId};
use crate::utility::utility;
use std::collections::HashSet;
use std::sync::Arc;
use vitis_overlay::entry::{merge_dedup, Entry};
use vitis_overlay::estimate::SizeEstimator;
use vitis_overlay::id::Id;
use vitis_overlay::peer_sampling::{Cyclon, Newscast, PeerSampling};
use vitis_overlay::routing::next_hop;
use vitis_overlay::rt::{build_exchange_buffer, select_neighbors, HybridRt, RtParams};
use vitis_sim::antientropy::{self, AeConfig, AntiEntropy};
use vitis_sim::event::NodeIdx;
use vitis_sim::prelude::{Context, MsgTag, ParallelProtocol, Protocol, StopReason};
use vitis_sim::rng::mix64;

/// State of a reverse link (a neighbor relationship initiated by the peer).
struct ReverseLink {
    subs: Subs,
    age: u16,
}

/// A neighbor's latest advertised gateway proposals plus the rounds elapsed
/// since the advertising heartbeat. The age only matters when gateway
/// failover is enabled: stale advertisements past the failure-detection
/// threshold are then excluded from elections, so a silent (crashed, frozen
/// or partitioned-away) gateway loses its electorate within `age_threshold`
/// rounds instead of whenever its descriptor finally expires.
struct NbrProposals {
    props: Arc<Vec<(TopicId, Proposal)>>,
    age: u16,
}

/// A Vitis peer. Construct with [`VitisNode::new`] and hand to the engine;
/// the [`crate::system::VitisSystem`] wrapper does this for whole networks.
pub struct VitisNode {
    cfg: Arc<VitisConfig>,
    rates: Arc<RateTable>,
    monitor: Monitor,
    /// Engine address; fixed at `on_start`.
    addr: NodeIdx,
    /// Ring identifier.
    id: Id,
    /// Own subscriptions.
    subs: Subs,
    /// Peer sampling service (Newscast by default, as in the paper's
    /// evaluation; Cyclon by configuration).
    sampling: Box<dyn PeerSampling<Subs> + Send>,
    /// The bounded hybrid routing table.
    rt: HybridRt<Subs>,
    /// Bootstrap contacts consumed at `on_start`.
    bootstrap: Vec<Entry<Subs>>,
    /// Own gateway proposal per subscribed topic (recomputed each round).
    proposals: SmallMap<TopicId, Proposal>,
    /// Latest proposals advertised by each neighbor (routing-table or
    /// reverse), with staleness for the failover path.
    nbr_proposals: SmallMap<NodeIdx, NbrProposals>,
    /// Reverse links: nodes that hold *us* in their routing table, learned
    /// from their heartbeats. Overlay links are connections — flooding and
    /// gateway election must see them from both ends, or weakly-connected
    /// cluster pockets become unreachable.
    reverse: SmallMap<NodeIdx, ReverseLink>,
    /// Relay-path soft state.
    relays: RelayTable,
    /// Events already processed (forwarding dedup).
    seen: HashSet<EventId>,
    /// Events this node published that still await a gateway/relay-holder
    /// acknowledgment. Empty unless `publish_retries > 0`.
    pending_pubs: HashSet<EventId>,
    /// Rounds executed (drives the friend-ablation pseudo-random ranking).
    round: u64,
    /// Ring-density network-size estimator (used when configured).
    size_est: SizeEstimator,
    /// Anti-entropy repair layer (digest exchange + pull recovery).
    /// Default-off: inert unless enabled via [`VitisNode::with_repair`].
    ae: AntiEntropy<Notification>,
}

impl VitisNode {
    /// Create a node with the given ring id, subscriptions and bootstrap
    /// contacts. The engine address is learnt at `on_start`.
    pub fn new(
        id: Id,
        subs: Subs,
        cfg: Arc<VitisConfig>,
        rates: Arc<RateTable>,
        monitor: Monitor,
        bootstrap: Vec<Entry<Subs>>,
    ) -> Self {
        let sampling: Box<dyn PeerSampling<Subs> + Send> = match cfg.sampling_service {
            SamplingService::Newscast => Box::new(Newscast::new(cfg.sampling_view)),
            SamplingService::Cyclon => Box::new(Cyclon::new(cfg.sampling_view, 6)),
        };
        VitisNode {
            cfg,
            rates,
            monitor,
            addr: NodeIdx(u32::MAX),
            id,
            subs,
            sampling,
            rt: HybridRt::new(),
            bootstrap,
            proposals: SmallMap::new(),
            nbr_proposals: SmallMap::new(),
            reverse: SmallMap::new(),
            relays: RelayTable::new(),
            seen: HashSet::new(),
            pending_pubs: HashSet::new(),
            round: 0,
            size_est: SizeEstimator::default(),
            ae: AntiEntropy::new(AeConfig::default()),
        }
    }

    /// Configure the anti-entropy repair layer (builder-style; the
    /// default configuration keeps it off and inert).
    pub fn with_repair(mut self, cfg: AeConfig) -> Self {
        self.ae = AntiEntropy::new(cfg);
        self
    }

    /// The anti-entropy repair state (tests/telemetry).
    pub fn repair(&self) -> &AntiEntropy<Notification> {
        &self.ae
    }

    /// The node's current network-size estimate: the ring-density estimate
    /// when enabled and warm, otherwise the configured `est_n`.
    pub fn estimated_n(&self) -> usize {
        if self.cfg.estimate_network_size {
            // Let the EWMA absorb a few samples before trusting it.
            if self.size_est.samples() >= 8 {
                if let Some(n) = self.size_est.estimate() {
                    return n;
                }
            }
        }
        self.cfg.est_n
    }

    /// This node's ring identifier.
    pub fn ring_id(&self) -> Id {
        self.id
    }

    /// This node's subscription set.
    pub fn subscriptions(&self) -> &Subs {
        &self.subs
    }

    /// The current routing table (for snapshots and tests).
    pub fn routing_table(&self) -> &HybridRt<Subs> {
        &self.rt
    }

    /// The relay soft state (for snapshots and tests).
    pub fn relay_table(&self) -> &RelayTable {
        &self.relays
    }

    /// Number of live reverse links (peers holding us in their tables).
    pub fn reverse_degree(&self) -> usize {
        self.reverse.len()
    }

    /// Whether this node currently believes it is a gateway for `topic`.
    pub fn is_gateway(&self, topic: TopicId) -> bool {
        self.proposals
            .get(&topic)
            .is_some_and(|p| p.gw_addr == self.addr)
    }

    /// The node's current proposal for `topic`, if subscribed.
    pub fn proposal(&self, topic: TopicId) -> Option<&Proposal> {
        self.proposals.get(&topic)
    }

    /// Replace this node's subscriptions (subscribe/unsubscribe API). The
    /// change propagates with the next profile heartbeat.
    pub fn set_subscriptions(&mut self, subs: Subs) {
        self.subs = subs;
        self.proposals.retain(|t, _| self.subs.contains(*t));
    }

    fn self_entry(&self) -> Entry<Subs> {
        Entry::fresh(self.addr, self.id, self.subs.clone())
    }

    fn rt_params(&self) -> RtParams {
        RtParams {
            rt_size: self.cfg.rt_size,
            k_sw: self.cfg.k_sw,
            est_n: self.estimated_n(),
        }
    }

    /// Merge a received T-Man buffer with the current table and sampling
    /// list, then re-run Algorithm 4.
    fn merge_and_select(&mut self, incoming: &[Entry<Subs>], ctx: &mut Context<'_, VitisMsg>) {
        let mut candidates = self.rt.to_vec();
        merge_dedup(&mut candidates, incoming);
        merge_dedup(&mut candidates, self.sampling.sample());
        // Never select descriptors past the failure-detection threshold:
        // copies of a dead node's descriptor keep circulating in exchange
        // buffers (their ages grow in lockstep everywhere), and without this
        // filter they re-enter tables as zombie ring neighbors faster than
        // per-round expiry can purge them.
        candidates.retain(|e| e.age <= self.cfg.age_threshold);
        let keep_sw: Vec<NodeIdx> = self.rt.sw.iter().map(|e| e.addr).collect();
        let keep_friends: Vec<NodeIdx> = self.rt.friends.iter().map(|e| e.addr).collect();
        let rt = if self.cfg.utility_selection {
            let subs = self.subs.clone();
            let rates = self.rates.clone();
            select_neighbors(
                self.addr,
                self.id,
                &self.rt_params(),
                candidates,
                &keep_sw,
                &keep_friends,
                |e| utility(&subs, &e.payload, &rates),
                ctx.rng,
            )
        } else {
            // Ablation: rank friends by a deterministic pseudo-random key
            // instead of Equation 1.
            let salt = self.round ^ (self.addr.0 as u64) << 32;
            select_neighbors(
                self.addr,
                self.id,
                &self.rt_params(),
                candidates,
                &keep_sw,
                &[],
                |e| mix64(e.addr.0 as u64 ^ salt) as f64,
                ctx.rng,
            )
        };
        self.rt = rt;
        let rt = &self.rt;
        let reverse = &self.reverse;
        self.nbr_proposals
            .retain(|addr, _| rt.contains(*addr) || reverse.contains_key(addr));
    }

    /// Recompute the gateway proposal for every subscribed topic from the
    /// neighbors' latest advertisements (Algorithm 5), then refresh the
    /// relay path wherever this node elects itself.
    fn update_profile(&mut self, ctx: &mut Context<'_, VitisMsg>) {
        let subs = self.subs.clone();
        let mut new_props = SmallMap::new();
        for topic in subs.iter() {
            let prop = if self.cfg.gateway_election {
                // Interested neighbors over the *connection* set: our table
                // entries plus reverse links.
                let rt_nbrs = self
                    .rt
                    .iter()
                    .filter(|e| e.payload.contains(topic))
                    .map(|e| e.addr);
                let rev_nbrs = self
                    .reverse
                    .iter()
                    .filter(|(a, l)| l.subs.contains(topic) && !self.rt.contains(**a))
                    .map(|(a, _)| *a);
                // With failover on, advertisements older than the failure-
                // detection threshold have lost their vote: the advertiser
                // has gone silent, so whatever gateway it endorsed may be
                // gone too, and the election re-runs without it.
                let failover = self.cfg.gateway_failover;
                let thr = self.cfg.age_threshold;
                let with_props = rt_nbrs.chain(rev_nbrs).filter_map(|addr| {
                    self.nbr_proposals
                        .get(&addr)
                        .filter(|np| !failover || np.age <= thr)
                        .and_then(|np| np.props.iter().find(|(t, _)| *t == topic))
                        .map(|(_, p)| (addr, p))
                });
                let rt = &self.rt;
                let reverse = &self.reverse;
                revise_proposal(
                    self.addr,
                    self.id,
                    topic,
                    self.cfg.d_max_hops,
                    with_props,
                    |a| rt.contains(a) || reverse.contains_key(&a),
                )
            } else {
                // Ablation: no election — every subscriber acts as its own
                // gateway, Scribe-style.
                Proposal::self_proposal(self.addr, self.id)
            };
            if prop.gw_addr == self.addr {
                self.refresh_relay(topic, ctx);
            }
            new_props.insert(topic, prop);
        }
        self.proposals = new_props;
    }

    /// One lookup step from this node toward `hash(topic)`: install the
    /// upstream link and forward the relay request, or claim the rendezvous
    /// role if no neighbor is closer.
    fn refresh_relay(&mut self, topic: TopicId, ctx: &mut Context<'_, VitisMsg>) {
        match next_hop(self.id, topic.ring_id(), self.rt.route_candidates()) {
            Some(next) => {
                self.relays.set_upstream(topic, next);
                self.monitor
                    .record_control_tx(self.addr, wire::RELAY_REQUEST_BYTES);
                ctx.send(next, VitisMsg::RelayRequest { topic, hops: 1 });
            }
            None => self.relays.mark_rendezvous(topic),
        }
    }

    fn on_relay_request(
        &mut self,
        ctx: &mut Context<'_, VitisMsg>,
        from: NodeIdx,
        topic: TopicId,
        hops: u32,
    ) {
        self.relays.add_downstream(topic, from);
        if hops >= self.cfg.max_lookup_hops {
            return;
        }
        match next_hop(self.id, topic.ring_id(), self.rt.route_candidates()) {
            Some(next) => {
                self.relays.set_upstream(topic, next);
                self.monitor
                    .record_control_tx(self.addr, wire::RELAY_REQUEST_BYTES);
                ctx.send(
                    next,
                    VitisMsg::RelayRequest {
                        topic,
                        hops: hops + 1,
                    },
                );
            }
            None => self.relays.mark_rendezvous(topic),
        }
    }

    /// Forward a notification to every interested routing-table neighbor and
    /// along the topic's relay links, excluding the node it came from.
    fn forward_notification(
        &mut self,
        ctx: &mut Context<'_, VitisMsg>,
        came_from: Option<NodeIdx>,
        notif: Notification,
    ) {
        let mut targets: Vec<NodeIdx> = Vec::new();
        for e in self.rt.iter() {
            if e.payload.contains(notif.topic) && Some(e.addr) != came_from {
                targets.push(e.addr);
            }
        }
        // Links are connections: flood across reverse links too, or weakly
        // connected cluster pockets never hear the event.
        for (&addr, link) in &self.reverse {
            if link.subs.contains(notif.topic)
                && Some(addr) != came_from
                && !targets.contains(&addr)
            {
                targets.push(addr);
            }
        }
        for r in self.relays.fanout(notif.topic, came_from) {
            if !targets.contains(&r) {
                targets.push(r);
            }
        }
        for t in targets {
            self.monitor
                .record_forward(notif.event, self.addr, t, notif.hops, ctx.now);
            ctx.send(t, VitisMsg::Notification(notif.clone()));
        }
    }

    fn on_notification(
        &mut self,
        ctx: &mut Context<'_, VitisMsg>,
        from: NodeIdx,
        notif: Notification,
    ) {
        let interested = self.subs.contains(notif.topic);
        self.monitor.record_data_rx(self.addr, interested);
        // Retry hardening: gateways and relay holders acknowledge copies
        // that came straight from the publisher — including duplicates,
        // since the previous ack (or the retransmission prompting it) may
        // itself have been lost. Must run before the dedup check.
        if self.cfg.publish_retries > 0
            && notif.hops == 1
            && (self.is_gateway(notif.topic) || self.relays.has(notif.topic))
        {
            self.monitor
                .record_control_tx(self.addr, wire::PUB_ACK_BYTES);
            ctx.send(from, VitisMsg::PubAck { event: notif.event });
        }
        if !self.seen.insert(notif.event) {
            return;
        }
        // Extend the causal path with this node once; the delivery record
        // and every forwarded copy share it.
        let path_here = notif.path.extend(self.addr);
        if interested {
            self.monitor.record_delivery_traced(
                notif.event,
                self.addr,
                notif.hops,
                ctx.now,
                &path_here,
            );
        }
        // Repair layer: cache the copy for re-serving to pulling peers
        // (and cancel any pull of our own for it).
        if self.ae.enabled() {
            self.ae.insert(
                notif.event.0,
                notif.topic.0,
                Notification {
                    event: notif.event,
                    topic: notif.topic,
                    hops: notif.hops,
                    path: path_here.clone(),
                },
                self.round,
            );
        }
        // TTL hardening: deliver locally but stop forwarding once the copy
        // has exhausted its hop budget, so traffic trapped by a partition
        // dies out. Disabled (u32::MAX) by default.
        if notif.hops >= self.cfg.max_event_hops {
            return;
        }
        let fwd = Notification {
            hops: notif.hops + 1,
            path: path_here,
            ..notif
        };
        self.forward_notification(ctx, Some(from), fwd);
    }

    /// Notify-style ring repair: a heartbeat arrived from a node we do not
    /// know. If it is ring-closer than our current successor or predecessor
    /// (it heartbeats us, so it very likely considers us a ring neighbor),
    /// adopt it — this keeps ring edges symmetric, so they refresh each
    /// other and lookups converge on a single rendezvous per topic.
    fn consider_ring_candidate(&mut self, from: NodeIdx, id: Id, subs: Subs) {
        if self.rt.contains(from) || id == self.id {
            return;
        }
        let d_cw = self.id.distance_cw(id);
        let adopt_succ = match &self.rt.succ {
            None => true,
            Some(s) => d_cw < self.id.distance_cw(s.id),
        };
        if adopt_succ {
            self.rt.succ = Some(Entry::fresh(from, id, subs));
            return;
        }
        let d_ccw = id.distance_cw(self.id);
        let adopt_pred = match &self.rt.pred {
            None => true,
            Some(p) => d_ccw < p.id.distance_cw(self.id),
        };
        if adopt_pred {
            self.rt.pred = Some(Entry::fresh(from, id, subs));
        }
    }

    /// A repair push arrived: deliver as a distinct `recovered` class and
    /// cache it for onward repair, but never inject it into the normal
    /// flood — recovered copies spread only through further digest
    /// exchanges, so repair traffic stays pull-bounded.
    fn on_recovery(&mut self, ctx: &mut Context<'_, VitisMsg>, notif: Notification) {
        let interested = self.subs.contains(notif.topic);
        self.monitor.record_data_rx(self.addr, interested);
        if !self.seen.insert(notif.event) {
            // Duplicate recovery: another pull (or the flood itself) won
            // the race. The monitor would ignore the re-delivery anyway;
            // just retire any leftover want.
            self.ae.satisfy(notif.event.0);
            return;
        }
        let path_here = notif.path.extend(self.addr);
        if interested {
            self.monitor.record_delivery_recovered(
                notif.event,
                self.addr,
                notif.hops,
                ctx.now,
                &path_here,
            );
        }
        self.ae.insert(
            notif.event.0,
            notif.topic.0,
            Notification {
                event: notif.event,
                topic: notif.topic,
                hops: notif.hops,
                path: path_here,
            },
            self.round,
        );
    }

    fn on_publish(&mut self, ctx: &mut Context<'_, VitisMsg>, event: EventId, topic: TopicId) {
        self.seen.insert(event);
        if self.ae.enabled() {
            // The publisher itself can answer pulls for its own events.
            self.ae.insert(
                event.0,
                topic.0,
                Notification {
                    event,
                    topic,
                    hops: 0,
                    path: HopPath::origin(self.addr),
                },
                self.round,
            );
        }
        let notif = Notification {
            event,
            topic,
            hops: 1,
            path: HopPath::origin(self.addr),
        };
        self.forward_notification(ctx, None, notif);
        if self.cfg.publish_retries > 0 {
            self.pending_pubs.insert(event);
            ctx.timer(
                vitis_sim::time::Duration(self.cfg.publish_ack_timeout),
                VitisMsg::RetryPublish {
                    event,
                    topic,
                    attempt: 1,
                },
            );
        }
    }

    /// A retry timer fired: if the event is still unacknowledged, re-flood
    /// it (the overlay may have re-elected gateways since) and re-arm with
    /// doubled, capped backoff until the retry budget runs out.
    fn on_retry_publish(
        &mut self,
        ctx: &mut Context<'_, VitisMsg>,
        event: EventId,
        topic: TopicId,
        attempt: u32,
    ) {
        if !self.pending_pubs.contains(&event) {
            return;
        }
        let notif = Notification {
            event,
            topic,
            hops: 1,
            path: HopPath::origin(self.addr),
        };
        self.forward_notification(ctx, None, notif);
        if attempt < self.cfg.publish_retries {
            let delay = self
                .cfg
                .publish_ack_timeout
                .checked_shl(attempt)
                .unwrap_or(u64::MAX)
                .min(self.cfg.publish_backoff_cap);
            ctx.timer(
                vitis_sim::time::Duration(delay),
                VitisMsg::RetryPublish {
                    event,
                    topic,
                    attempt: attempt + 1,
                },
            );
        } else {
            // Retry budget exhausted: give up so the set stays bounded.
            self.pending_pubs.remove(&event);
        }
    }
}

/// Parallel-execution support: the node's only shared sink is the
/// evaluation [`Monitor`], whose handler-side writes buffer as
/// [`crate::monitor::MonitorOp`]s while deferred and replay in serial
/// event order on the
/// engine thread.
impl ParallelProtocol for VitisNode {
    type Deferred = Vec<crate::monitor::MonitorOp>;

    fn set_deferred(&mut self, on: bool) {
        self.monitor.set_deferred(on);
    }

    fn take_deferred(&mut self) -> Self::Deferred {
        self.monitor.take_deferred()
    }

    fn apply_deferred(&mut self, ops: Self::Deferred) {
        self.monitor.apply_ops(ops);
    }
}

impl Protocol for VitisNode {
    type Msg = VitisMsg;

    fn classify(msg: &VitisMsg) -> MsgTag {
        match msg {
            VitisMsg::PsReq(_) => MsgTag::control("ps_req"),
            VitisMsg::PsResp(_) => MsgTag::control("ps_resp"),
            VitisMsg::RtReq(_) => MsgTag::control("rt_req"),
            VitisMsg::RtResp(_) => MsgTag::control("rt_resp"),
            VitisMsg::Profile(_) => MsgTag::control("profile"),
            VitisMsg::RelayRequest { .. } => MsgTag::control("relay_req"),
            VitisMsg::Notification(_) => MsgTag::data("notification"),
            VitisMsg::PublishCmd { .. } => MsgTag::data("publish_cmd"),
            VitisMsg::PubAck { .. } => MsgTag::control("pub_ack"),
            VitisMsg::RetryPublish { .. } => MsgTag::control("retry_pub"),
            VitisMsg::AeDigest(_) => MsgTag::control("ae_digest"),
            VitisMsg::AeWant(_) => MsgTag::control("ae_want"),
            VitisMsg::AePush(_) => MsgTag::data("ae_push"),
        }
    }

    fn event_of(msg: &VitisMsg) -> Option<u64> {
        match msg {
            VitisMsg::Notification(n) => Some(n.event.0),
            // A lost recovery push is a lost copy of its event too — the
            // net-drop attribution treats repair and flood alike.
            VitisMsg::AePush(n) => Some(n.event.0),
            _ => None,
        }
    }

    fn on_start(&mut self, ctx: &mut Context<'_, VitisMsg>) {
        self.addr = ctx.self_idx;
        let contacts = std::mem::take(&mut self.bootstrap);
        self.sampling.bootstrap(&contacts, self.addr);
        // Seed the routing table immediately so the first rounds can gossip.
        self.merge_and_select(&contacts, ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, VitisMsg>) {
        self.round += 1;
        self.monitor.record_control_round(self.addr);

        // 1. Peer sampling exchange.
        self.sampling.tick();
        let se = self.self_entry();
        if let Some((partner, buf)) = self.sampling.initiate(&se, ctx.rng) {
            self.monitor
                .record_control_tx(self.addr, wire::buffer_bytes(&buf));
            ctx.send(partner, VitisMsg::PsReq(buf));
        }

        // 2. T-Man exchange (Algorithm 2). Half the exchanges target a ring
        //    neighbor — their buffers contain *their* ring neighbors, which
        //    is what walks the successor/predecessor pointers to the true
        //    ring. A friend-dominated table would otherwise mix almost
        //    exclusively inside its own interest cluster and converge the
        //    ring very slowly. Falls back to a sampled peer while empty.
        let partner = {
            use rand::Rng;
            let ring_pick = if ctx.rng.gen_bool(0.5) {
                match (&self.rt.succ, &self.rt.pred) {
                    (Some(s), Some(p)) => Some(if ctx.rng.gen_bool(0.5) {
                        s.addr
                    } else {
                        p.addr
                    }),
                    (Some(s), None) => Some(s.addr),
                    (None, Some(p)) => Some(p.addr),
                    (None, None) => None,
                }
            } else {
                None
            };
            ring_pick.or_else(|| {
                let addrs = self.rt.addrs();
                if addrs.is_empty() {
                    self.sampling.sample().first().map(|e| e.addr)
                } else {
                    Some(addrs[ctx.rng.gen_range(0..addrs.len())])
                }
            })
        };
        if let Some(partner) = partner {
            let buf = build_exchange_buffer(&self.rt, self.sampling.sample(), &se);
            self.monitor
                .record_control_tx(self.addr, wire::buffer_bytes(&buf));
            ctx.send(partner, VitisMsg::RtReq(buf));
        }

        // Feed the size estimator from the current ring neighborhood.
        if self.cfg.estimate_network_size {
            self.size_est.observe(
                self.id,
                self.rt.succ.as_ref().map(|e| e.id),
                self.rt.pred.as_ref().map(|e| e.id),
            );
        }

        // 3. Failure detection: age and expire stale neighbors (forward and
        //    reverse).
        self.rt.age_all();
        for dead in self.rt.expire(self.cfg.age_threshold) {
            if !self.reverse.contains_key(&dead) {
                self.nbr_proposals.remove(&dead);
            }
            self.sampling.remove(dead);
            self.relays.remove_peer(dead);
        }
        let thr = self.cfg.age_threshold;
        let rt = &self.rt;
        let nbr_proposals = &mut self.nbr_proposals;
        self.reverse.retain(|addr, link| {
            link.age = link.age.saturating_add(1);
            let keep = link.age <= thr;
            if !keep && !rt.contains(*addr) {
                nbr_proposals.remove(addr);
            }
            keep
        });

        // Failover only: remembered proposal advertisements age alongside
        // the neighbors that sent them (reset on each heartbeat).
        if self.cfg.gateway_failover {
            for np in self.nbr_proposals.values_mut() {
                np.age = np.age.saturating_add(1);
            }
        }

        // 4. Relay soft state ages out unless refreshed below.
        self.relays.tick();
        self.relays.expire(self.cfg.relay_ttl);

        // 5. Gateway election + relay refresh (Algorithm 5).
        self.update_profile(ctx);

        // 6. Profile heartbeat to every neighbor (Algorithm 6).
        let pm = ProfileMsg {
            id: self.id,
            subs: self.subs.clone(),
            proposals: Arc::new(
                self.proposals
                    .iter()
                    .map(|(t, p)| (*t, *p))
                    .collect::<Vec<_>>(),
            ),
        };
        let pm_bytes = wire::profile_bytes(&pm);
        for nbr in self.rt.addrs() {
            self.monitor.record_control_tx(self.addr, pm_bytes);
            ctx.send(nbr, VitisMsg::Profile(pm.clone()));
        }

        // 7. Anti-entropy repair: retry outstanding pulls, then gossip a
        //    digest of the recent-event cache to a small random neighbor
        //    sample. Entirely inert — no sends, no RNG draws — unless the
        //    layer is enabled, so default runs stay bit-identical.
        if self.ae.enabled() {
            self.ae.tick(self.round);
            for (target, ids) in self.ae.due_pulls(self.round) {
                self.monitor
                    .record_control_tx(self.addr, ids.len() as u64 * antientropy::WANT_ID_BYTES);
                ctx.send(target, VitisMsg::AeWant(ids));
            }
            if let Some(entries) = self.ae.digest(self.round) {
                // Digest over the connection set: table plus reverse links.
                let mut nbrs = self.rt.addrs();
                for (&a, _) in &self.reverse {
                    if !nbrs.contains(&a) {
                        nbrs.push(a);
                    }
                }
                let bytes = entries.len() as u64 * antientropy::DIGEST_ENTRY_BYTES;
                let entries = Arc::new(entries);
                for t in self.ae.pick_targets(&nbrs, ctx.rng) {
                    self.monitor.record_control_tx(self.addr, bytes);
                    ctx.send(t, VitisMsg::AeDigest(entries.clone()));
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, VitisMsg>, from: NodeIdx, msg: VitisMsg) {
        match msg {
            VitisMsg::PsReq(buf) => {
                let se = self.self_entry();
                let reply = self.sampling.on_request(&se, from, &buf, ctx.rng);
                self.monitor
                    .record_control_tx(self.addr, wire::buffer_bytes(&reply));
                ctx.send(from, VitisMsg::PsResp(reply));
            }
            VitisMsg::PsResp(buf) => {
                self.sampling.on_response(self.addr, &buf);
            }
            VitisMsg::RtReq(buf) => {
                // Algorithm 3: reply with our own buffer first, then merge.
                let se = self.self_entry();
                let reply = build_exchange_buffer(&self.rt, self.sampling.sample(), &se);
                self.monitor
                    .record_control_tx(self.addr, wire::buffer_bytes(&reply));
                ctx.send(from, VitisMsg::RtResp(reply));
                self.merge_and_select(&buf, ctx);
            }
            VitisMsg::RtResp(buf) => {
                self.merge_and_select(&buf, ctx);
            }
            VitisMsg::Profile(pm) => {
                // Algorithm 7: refresh the sender's entry and remember its
                // proposals for the next election step. A sender we do not
                // hold ourselves is a *reverse* neighbor (the connection's
                // other end) — track it for flooding and election, and
                // offer it to the ring-repair check.
                if self.rt.refresh(from, pm.subs.clone()) {
                    self.reverse.remove(&from);
                } else {
                    self.reverse.insert(
                        from,
                        ReverseLink {
                            subs: pm.subs.clone(),
                            age: 0,
                        },
                    );
                    self.consider_ring_candidate(from, pm.id, pm.subs);
                }
                self.nbr_proposals.insert(
                    from,
                    NbrProposals {
                        props: pm.proposals,
                        age: 0,
                    },
                );
            }
            VitisMsg::RelayRequest { topic, hops } => {
                self.on_relay_request(ctx, from, topic, hops);
            }
            VitisMsg::Notification(n) => {
                self.on_notification(ctx, from, n);
            }
            VitisMsg::PublishCmd { event, topic } => {
                self.on_publish(ctx, event, topic);
            }
            VitisMsg::PubAck { event } => {
                self.pending_pubs.remove(&event);
            }
            VitisMsg::RetryPublish {
                event,
                topic,
                attempt,
            } => {
                self.on_retry_publish(ctx, event, topic, attempt);
            }
            VitisMsg::AeDigest(entries) => {
                let subs = self.subs.clone();
                let seen = &self.seen;
                let wants = self.ae.on_digest(
                    from,
                    &entries,
                    self.round,
                    |t| subs.contains(TopicId(t)),
                    |e| seen.contains(&EventId(e)),
                );
                if !wants.is_empty() {
                    self.monitor.record_control_tx(
                        self.addr,
                        wants.len() as u64 * antientropy::WANT_ID_BYTES,
                    );
                    ctx.send(from, VitisMsg::AeWant(wants));
                }
            }
            VitisMsg::AeWant(ids) => {
                for (_, _, cached) in self.ae.serve(&ids) {
                    let push = Notification {
                        hops: cached.hops + 1,
                        ..cached
                    };
                    self.monitor
                        .record_forward(push.event, self.addr, from, push.hops, ctx.now);
                    ctx.send(from, VitisMsg::AePush(push));
                }
            }
            VitisMsg::AePush(notif) => {
                self.on_recovery(ctx, notif);
            }
        }
    }

    fn on_stop(&mut self, _ctx: &mut Context<'_, VitisMsg>, _reason: StopReason) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VitisConfig;
    use vitis_sim::engine::{Engine, EngineConfig};
    use vitis_sim::time::Duration;

    fn build_net(
        n: usize,
        subs_of: impl Fn(usize) -> Vec<u32>,
        topics: usize,
        cfg: VitisConfig,
    ) -> (Engine<VitisNode>, Monitor) {
        let cfg = Arc::new(cfg);
        let rates = Arc::new(crate::topic::RateTable::uniform(topics));
        let monitor = Monitor::new();
        let mut eng = Engine::new(EngineConfig {
            seed: 5,
            round_period: Duration(64),
            desynchronize_rounds: true,
        });
        let mut directory: Vec<Entry<Subs>> = Vec::new();
        for i in 0..n {
            let subs: Subs = Arc::new(crate::topic::TopicSet::from_iter(subs_of(i)));
            let id = Id::of_node(i as u64);
            let boot: Vec<Entry<Subs>> = directory.iter().rev().take(4).cloned().collect();
            let node = VitisNode::new(
                id,
                subs.clone(),
                cfg.clone(),
                rates.clone(),
                monitor.clone(),
                boot,
            );
            let slot = eng.add_node(node);
            directory.push(Entry::fresh(slot, id, subs));
        }
        (eng, monitor)
    }

    fn small_cfg() -> VitisConfig {
        VitisConfig {
            est_n: 64,
            ..VitisConfig::default()
        }
    }

    #[test]
    fn tables_fill_and_stay_bounded() {
        let (mut eng, _) = build_net(64, |i| vec![(i % 4) as u32], 4, small_cfg());
        eng.run_rounds(25);
        for (_, node) in eng.alive_nodes() {
            let rt = node.routing_table();
            assert!(rt.len() <= 15);
            assert!(rt.len() >= 5, "table too empty: {}", rt.len());
            assert!(rt.succ.is_some() && rt.pred.is_some());
        }
    }

    #[test]
    fn every_topic_gets_gateways_and_a_rendezvous() {
        let (mut eng, _) = build_net(64, |i| vec![(i % 4) as u32], 4, small_cfg());
        eng.run_rounds(25);
        for t in 0..4u32 {
            let topic = TopicId(t);
            let gws = eng
                .alive_nodes()
                .filter(|(_, n)| n.is_gateway(topic))
                .count();
            assert!(gws >= 1, "topic {t} has no gateway");
            let rdvs = eng
                .alive_nodes()
                .filter(|(_, n)| {
                    n.relay_table()
                        .get(topic)
                        .is_some_and(|e| e.is_rendezvous())
                })
                .count();
            assert!(rdvs >= 1, "topic {t} has no rendezvous");
        }
    }

    #[test]
    fn subscribers_propose_only_subscribed_topics() {
        let (mut eng, _) = build_net(48, |i| vec![(i % 3) as u32], 3, small_cfg());
        eng.run_rounds(20);
        for (_, node) in eng.alive_nodes() {
            for t in 0..3u32 {
                if node.proposal(TopicId(t)).is_some() {
                    assert!(node.subscriptions().contains(TopicId(t)));
                }
            }
        }
    }

    #[test]
    fn notification_floods_with_reverse_links() {
        let (mut eng, monitor) = build_net(48, |_| vec![0], 1, small_cfg());
        eng.run_rounds(25);
        let topic = TopicId(0);
        let expected: Vec<NodeIdx> = (1..48).map(NodeIdx).collect();
        let e = monitor.register_event(topic, eng.now(), expected);
        eng.inject(NodeIdx(0), VitisMsg::PublishCmd { event: e, topic });
        eng.run_rounds(3);
        let (exp, del) = monitor.event_progress(e).unwrap();
        assert_eq!(exp, 47);
        assert!(del >= 46, "flood covered {del}/{exp}");
        // Reverse links exist somewhere: in-degree is spread over the group.
        let rev: usize = eng.alive_nodes().map(|(_, n)| n.reverse_degree()).sum();
        assert!(rev > 0, "no reverse links learned");
    }

    #[test]
    fn set_subscriptions_updates_proposals() {
        let (mut eng, _) = build_net(32, |_| vec![0, 1], 2, small_cfg());
        eng.run_rounds(15);
        let victim = NodeIdx(3);
        let node = eng.node_mut(victim).unwrap();
        node.set_subscriptions(Arc::new(crate::topic::TopicSet::from_iter([1u32])));
        assert!(node.proposal(TopicId(0)).is_none());
        eng.run_rounds(3);
        let node = eng.node(victim).unwrap();
        assert!(!node.subscriptions().contains(TopicId(0)));
        assert!(node.proposal(TopicId(1)).is_some());
    }

    #[test]
    fn gateway_ablation_marks_every_subscriber() {
        let cfg = VitisConfig {
            gateway_election: false,
            est_n: 64,
            ..VitisConfig::default()
        };
        let (mut eng, _) = build_net(32, |_| vec![0], 1, cfg);
        eng.run_rounds(10);
        for (_, n) in eng.alive_nodes() {
            assert!(n.is_gateway(TopicId(0)), "ablation: everyone is a gateway");
        }
    }

    #[test]
    fn relay_soft_state_expires_without_refresh() {
        let (mut eng, _) = build_net(
            32,
            |i| if i < 16 { vec![0] } else { vec![] },
            1,
            small_cfg(),
        );
        eng.run_rounds(20);
        // Unsubscribe everyone: gateways stop refreshing, relays must decay.
        let idxs = eng.alive_indices();
        for i in idxs {
            let node = eng.node_mut(i).unwrap();
            node.set_subscriptions(Arc::new(crate::topic::TopicSet::new()));
        }
        eng.run_rounds(12);
        let holders = eng
            .alive_nodes()
            .filter(|(_, n)| n.relay_table().has(TopicId(0)))
            .count();
        assert_eq!(holders, 0, "relay state must decay after unsubscribe");
    }
}
