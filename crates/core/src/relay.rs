//! Relay-path soft state.
//!
//! A relay path is the greedy lookup path from a cluster gateway to the
//! topic's rendezvous node. Every node on the path — subscriber or not —
//! installs a [`RelayEntry`]: one *upstream* link pointing toward the
//! rendezvous and any number of *downstream* links pointing back toward the
//! gateways whose lookups passed through. Notifications travel up to the
//! rendezvous and back down every other branch, which is what stitches the
//! disjoint clusters of a topic together.
//!
//! The state is soft: gateways re-issue their lookups every round, each pass
//! refreshes the links it uses, and anything unrefreshed for `ttl` rounds is
//! dropped — this is how the structure heals around churn.

use crate::topic::TopicId;
use crate::smallmap::SmallMap;
use vitis_sim::event::NodeIdx;

/// Per-topic relay state at one node.
#[derive(Clone, Debug, Default)]
pub struct RelayEntry {
    /// Next hop toward the rendezvous, with its freshness age. `None` at the
    /// rendezvous node itself.
    upstream: Option<(NodeIdx, u16)>,
    /// Links back toward gateways, with freshness ages.
    downstream: Vec<(NodeIdx, u16)>,
    /// Whether this node currently believes it is the topic's rendezvous.
    rendezvous: bool,
}

impl RelayEntry {
    /// The upstream next hop, if any.
    pub fn upstream(&self) -> Option<NodeIdx> {
        self.upstream.map(|(n, _)| n)
    }

    /// The downstream links.
    pub fn downstreams(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        self.downstream.iter().map(|&(n, _)| n)
    }

    /// Whether this node is the rendezvous for the topic.
    pub fn is_rendezvous(&self) -> bool {
        self.rendezvous
    }

    /// Freshness age of the upstream link, if one exists.
    pub fn upstream_age(&self) -> Option<u16> {
        self.upstream.map(|(_, age)| age)
    }

    /// The downstream links with their freshness ages.
    pub fn downstream_links(&self) -> impl Iterator<Item = (NodeIdx, u16)> + '_ {
        self.downstream.iter().copied()
    }

    /// Number of downstream links.
    pub fn num_downstreams(&self) -> usize {
        self.downstream.len()
    }
}

/// All relay entries held by one node.
#[derive(Clone, Debug, Default)]
pub struct RelayTable {
    entries: SmallMap<TopicId, RelayEntry>,
}

impl RelayTable {
    /// An empty table.
    pub fn new() -> Self {
        RelayTable::default()
    }

    /// Record a relay request for `topic` arriving from `from` (a gateway
    /// or an earlier path node): installs/refreshes the downstream link.
    pub fn add_downstream(&mut self, topic: TopicId, from: NodeIdx) {
        let e = self.entries.entry_or_default(topic);
        match e.downstream.iter_mut().find(|(n, _)| *n == from) {
            Some(link) => link.1 = 0,
            None => e.downstream.push((from, 0)),
        }
    }

    /// Install/refresh the upstream link of `topic` toward `next`, clearing
    /// any rendezvous claim. If the greedy next hop changed (churn moved the
    /// rendezvous), the old link is replaced.
    pub fn set_upstream(&mut self, topic: TopicId, next: NodeIdx) {
        let e = self.entries.entry_or_default(topic);
        e.upstream = Some((next, 0));
        e.rendezvous = false;
    }

    /// Mark this node as the rendezvous for `topic` (lookup terminated
    /// here): no upstream exists.
    pub fn mark_rendezvous(&mut self, topic: TopicId) {
        let e = self.entries.entry_or_default(topic);
        e.upstream = None;
        e.rendezvous = true;
    }

    /// The entry for `topic`, if any.
    pub fn get(&self, topic: TopicId) -> Option<&RelayEntry> {
        self.entries.get(&topic)
    }

    /// Whether this node holds relay state for `topic`.
    pub fn has(&self, topic: TopicId) -> bool {
        self.entries.contains_key(&topic)
    }

    /// Number of topics with relay state here.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forwarding fan-out for a notification on `topic` arriving from
    /// `from`: the upstream link plus every downstream link, minus the
    /// sender. Empty if this node has no relay state for the topic.
    pub fn fanout(&self, topic: TopicId, from: Option<NodeIdx>) -> Vec<NodeIdx> {
        let Some(e) = self.entries.get(&topic) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(e.downstream.len() + 1);
        if let Some((up, _)) = e.upstream {
            if Some(up) != from {
                out.push(up);
            }
        }
        for &(down, _) in &e.downstream {
            if Some(down) != from && !out.contains(&down) {
                out.push(down);
            }
        }
        out
    }

    /// Age all links by one round.
    pub fn tick(&mut self) {
        for e in self.entries.values_mut() {
            if let Some((_, age)) = &mut e.upstream {
                *age = age.saturating_add(1);
            }
            for (_, age) in &mut e.downstream {
                *age = age.saturating_add(1);
            }
        }
    }

    /// Drop links unrefreshed for more than `ttl` rounds, and entries left
    /// with no links at all. A linkless rendezvous claim is dropped too: the
    /// next lookup that terminates here re-creates it for free.
    pub fn expire(&mut self, ttl: u16) {
        self.entries.retain(|_, e| {
            if e.upstream.is_some_and(|(_, age)| age > ttl) {
                e.upstream = None;
            }
            e.downstream.retain(|&(_, age)| age <= ttl);
            e.upstream.is_some() || !e.downstream.is_empty()
        });
    }

    /// Remove a failed neighbor from every entry.
    pub fn remove_peer(&mut self, peer: NodeIdx) {
        self.entries.retain(|_, e| {
            if e.upstream.is_some_and(|(n, _)| n == peer) {
                e.upstream = None;
            }
            e.downstream.retain(|&(n, _)| n != peer);
            e.upstream.is_some() || !e.downstream.is_empty()
        });
    }

    /// Topics with active relay state (for metrics/tests).
    pub fn topics(&self) -> impl Iterator<Item = TopicId> + '_ {
        self.entries.keys().copied()
    }

    /// Every entry with its topic, in topic order (for telemetry exports).
    pub fn entries(&self) -> impl Iterator<Item = (TopicId, &RelayEntry)> + '_ {
        self.entries.iter().map(|(&t, e)| (t, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeIdx {
        NodeIdx(i)
    }
    const T: TopicId = TopicId(3);

    #[test]
    fn fanout_forwards_everywhere_except_sender() {
        let mut rt = RelayTable::new();
        rt.add_downstream(T, n(1));
        rt.add_downstream(T, n(2));
        rt.set_upstream(T, n(9));
        let f = rt.fanout(T, Some(n(1)));
        assert_eq!(f, vec![n(9), n(2)]);
        let f = rt.fanout(T, Some(n(9)));
        assert_eq!(f, vec![n(1), n(2)]);
        let f = rt.fanout(T, None);
        assert_eq!(f, vec![n(9), n(1), n(2)]);
        assert!(rt.fanout(TopicId(99), None).is_empty());
    }

    #[test]
    fn rendezvous_has_no_upstream() {
        let mut rt = RelayTable::new();
        rt.set_upstream(T, n(9));
        rt.mark_rendezvous(T);
        let e = rt.get(T).unwrap();
        assert!(e.is_rendezvous());
        assert_eq!(e.upstream(), None);
        // Re-routing later clears the rendezvous claim.
        rt.set_upstream(T, n(4));
        assert!(!rt.get(T).unwrap().is_rendezvous());
    }

    #[test]
    fn refresh_resets_ages() {
        let mut rt = RelayTable::new();
        rt.add_downstream(T, n(1));
        rt.tick();
        rt.tick();
        rt.add_downstream(T, n(1)); // refresh
        rt.expire(1);
        assert!(rt.has(T));
        assert_eq!(rt.get(T).unwrap().downstreams().count(), 1);
    }

    #[test]
    fn expiry_drops_stale_links_and_empty_entries() {
        let mut rt = RelayTable::new();
        rt.add_downstream(T, n(1));
        rt.set_upstream(T, n(9));
        for _ in 0..3 {
            rt.tick();
        }
        rt.expire(2);
        assert!(!rt.has(T), "fully stale entry must vanish");
    }

    #[test]
    fn partial_expiry_keeps_fresh_links() {
        let mut rt = RelayTable::new();
        rt.add_downstream(T, n(1));
        for _ in 0..3 {
            rt.tick();
        }
        rt.add_downstream(T, n(2)); // fresh
        rt.expire(2);
        let e = rt.get(T).unwrap();
        assert_eq!(e.downstreams().collect::<Vec<_>>(), vec![n(2)]);
    }

    #[test]
    fn remove_peer_heals_entries() {
        let mut rt = RelayTable::new();
        rt.add_downstream(T, n(1));
        rt.set_upstream(T, n(9));
        rt.remove_peer(n(9));
        assert!(rt.has(T)); // downstream survives
        assert_eq!(rt.get(T).unwrap().upstream(), None);
        rt.remove_peer(n(1));
        assert!(!rt.has(T));
    }

    #[test]
    fn duplicate_downstream_not_added() {
        let mut rt = RelayTable::new();
        rt.add_downstream(T, n(1));
        rt.add_downstream(T, n(1));
        assert_eq!(rt.get(T).unwrap().downstreams().count(), 1);
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn upstream_replacement_resets_target_and_age() {
        let mut rt = RelayTable::new();
        rt.set_upstream(T, n(9));
        rt.tick();
        rt.tick();
        assert_eq!(rt.get(T).unwrap().upstream_age(), Some(2));
        // Churn moved the rendezvous: the greedy next hop changes.
        rt.set_upstream(T, n(4));
        let e = rt.get(T).unwrap();
        assert_eq!(e.upstream(), Some(n(4)));
        assert_eq!(e.upstream_age(), Some(0));
    }

    #[test]
    fn downstream_removal_under_churn_keeps_other_ages() {
        let mut rt = RelayTable::new();
        rt.add_downstream(T, n(1));
        rt.tick();
        rt.add_downstream(T, n(2)); // younger link
        rt.remove_peer(n(1));
        let e = rt.get(T).unwrap();
        assert_eq!(e.downstreams().collect::<Vec<_>>(), vec![n(2)]);
        // Removal must not disturb the surviving link's freshness age.
        assert_eq!(e.downstream_links().collect::<Vec<_>>(), vec![(n(2), 0)]);
        assert_eq!(e.num_downstreams(), 1);
    }

    #[test]
    fn rendezvous_remarking_cycle() {
        let mut rt = RelayTable::new();
        rt.mark_rendezvous(T);
        assert!(rt.get(T).unwrap().is_rendezvous());
        // A joining node takes over the rendezvous position...
        rt.set_upstream(T, n(5));
        let e = rt.get(T).unwrap();
        assert!(!e.is_rendezvous());
        assert_eq!(e.upstream(), Some(n(5)));
        // ...then crashes and the lookup terminates here again.
        rt.mark_rendezvous(T);
        let e = rt.get(T).unwrap();
        assert!(e.is_rendezvous());
        assert_eq!(e.upstream(), None);
    }

    #[test]
    fn crashed_peer_removed_across_topics() {
        const T2: TopicId = TopicId(7);
        let mut rt = RelayTable::new();
        // The crashed node appears as upstream of one topic and downstream
        // of another.
        rt.set_upstream(T, n(3));
        rt.add_downstream(T, n(1));
        rt.add_downstream(T2, n(3));
        rt.mark_rendezvous(T2);
        rt.add_downstream(T2, n(8));
        rt.remove_peer(n(3));
        let e = rt.get(T).unwrap();
        assert_eq!(e.upstream(), None);
        assert_eq!(e.downstreams().collect::<Vec<_>>(), vec![n(1)]);
        let e2 = rt.get(T2).unwrap();
        assert!(e2.is_rendezvous());
        assert_eq!(e2.downstreams().collect::<Vec<_>>(), vec![n(8)]);
        // No entry anywhere still references the crashed node.
        for (_, e) in rt.entries() {
            assert_ne!(e.upstream(), Some(n(3)));
            assert!(e.downstreams().all(|d| d != n(3)));
        }
    }

    #[test]
    fn entries_iterates_in_topic_order() {
        let mut rt = RelayTable::new();
        rt.add_downstream(TopicId(9), n(1));
        rt.add_downstream(TopicId(2), n(1));
        rt.add_downstream(TopicId(5), n(1));
        let order: Vec<TopicId> = rt.entries().map(|(t, _)| t).collect();
        assert_eq!(order, vec![TopicId(2), TopicId(5), TopicId(9)]);
    }
}
