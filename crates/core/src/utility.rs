//! The preference (utility) function of Equation 1.
//!
//! ```text
//!               Σ_{t ∈ subs(i) ∩ subs(j)} rate(t)
//! utility(i,j) = ---------------------------------
//!               Σ_{t ∈ subs(i) ∪ subs(j)} rate(t)
//! ```
//!
//! With uniform rates this is the Jaccard similarity of the subscription
//! sets; skewed rates weight the overlap toward hot topics, which is what
//! makes Vitis adapt its clustering to the publication workload (the α-sweep
//! of Figure 7).

use crate::topic::{RateTable, TopicSet};

/// Pairwise utility of two subscription sets under a rate table. Returns
/// zero when the union has no rate mass (disjoint or all-cold topics).
pub fn utility(a: &TopicSet, b: &TopicSet, rates: &RateTable) -> f64 {
    let (inter, union) = a.weighted_overlap(b, rates);
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicId;

    fn ts(v: &[u32]) -> TopicSet {
        TopicSet::from_iter(v.iter().copied())
    }

    /// The worked example from Section III-A2 of the paper: p = {A,B,C},
    /// q = {C,D}, r = {C,D,E,F,G,H} with uniform rates gives
    /// utility(p,q) = 0.25, utility(p,r) = 0.125, utility(q,r) = 0.33.
    #[test]
    fn paper_worked_example() {
        let rates = RateTable::uniform(8);
        let p = ts(&[0, 1, 2]); // A B C
        let q = ts(&[2, 3]); // C D
        let r = ts(&[2, 3, 4, 5, 6, 7]); // C D E F G H
        assert!((utility(&p, &q, &rates) - 0.25).abs() < 1e-12);
        assert!((utility(&p, &r, &rates) - 0.125).abs() < 1e-12);
        assert!((utility(&q, &r, &rates) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let rates = RateTable::uniform(10);
        let a = ts(&[1, 2, 3]);
        let b = ts(&[3, 4]);
        assert_eq!(utility(&a, &b, &rates), utility(&b, &a, &rates));
    }

    #[test]
    fn identical_sets_have_utility_one() {
        let rates = RateTable::uniform(10);
        let a = ts(&[1, 5, 9]);
        assert!((utility(&a, &a, &rates) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets_have_utility_zero() {
        let rates = RateTable::uniform(10);
        assert_eq!(utility(&ts(&[1, 2]), &ts(&[3, 4]), &rates), 0.0);
        assert_eq!(utility(&ts(&[]), &ts(&[]), &rates), 0.0);
    }

    /// "If the publication rate for topic t goes to zero … t is practically
    /// ignored in the preference function."
    #[test]
    fn rate_zero_topics_are_ignored() {
        let mut rates = vec![1.0; 6];
        rates[5] = 0.0;
        let rates = RateTable::from_rates(rates);
        let a = ts(&[0, 5]);
        let b = ts(&[0, 1]);
        // Topic 5 contributes nothing: inter = 1, union = rate(0)+rate(1) = 2.
        assert!((utility(&a, &b, &rates) - 0.5).abs() < 1e-12);
        // Sharing only a rate-zero topic is worth nothing but its union mass
        // is also zero, so other shared topics dominate.
        let c = ts(&[5]);
        let d = ts(&[5]);
        assert_eq!(utility(&c, &d, &rates), 0.0);
    }

    /// "Nodes will give a high utility to one another if they are interested
    /// in a common topic that has a high rate of events."
    #[test]
    fn hot_shared_topics_raise_utility() {
        let cold = RateTable::uniform(4);
        let mut hot_rates = vec![1.0; 4];
        hot_rates[0] = 100.0;
        let hot = RateTable::from_rates(hot_rates);
        let a = ts(&[0, 1]);
        let b = ts(&[0, 2]);
        assert!(utility(&a, &b, &hot) > utility(&a, &b, &cold));
        let _ = TopicId(0); // keep import used in doc context
    }
}
