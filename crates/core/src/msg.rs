//! The Vitis wire protocol.

use crate::gateway::Proposal;
use crate::monitor::{EventId, HopPath};
use crate::topic::{Subs, TopicId};
use std::sync::Arc;
use vitis_overlay::entry::Entry;

/// A published-event notification as it travels the overlay. The paper
/// separates a small notification from a payload pull over the same path;
/// we model the combined transfer as one data-plane message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Notification {
    /// The event being disseminated.
    pub event: EventId,
    /// Its topic.
    pub topic: TopicId,
    /// Hops taken from the publisher to the receiving node.
    pub hops: u32,
    /// Causal provenance: slots visited by this copy, publisher first.
    /// Forensic metadata only — excluded from wire-size accounting (the
    /// real protocol does not ship it), never consulted for routing.
    pub path: HopPath,
}

/// The periodic profile/heartbeat message (Algorithm 6): the sender's
/// subscriptions plus its current gateway proposals, shared via `Arc` so the
/// per-neighbor fan-out clones are free.
#[derive(Clone, Debug)]
pub struct ProfileMsg {
    /// The sender's ring identifier (lets a receiver that does not know the
    /// sender adopt it as a ring neighbor — the notify-style repair that
    /// keeps successor/predecessor links symmetric).
    pub id: vitis_overlay::id::Id,
    /// The sender's subscription set.
    pub subs: Subs,
    /// The sender's gateway proposal per subscribed topic.
    pub proposals: Arc<Vec<(TopicId, Proposal)>>,
}

/// All messages exchanged by Vitis nodes.
#[derive(Clone, Debug)]
pub enum VitisMsg {
    /// Peer-sampling exchange request (Newscast buffer).
    PsReq(Vec<Entry<Subs>>),
    /// Peer-sampling exchange reply.
    PsResp(Vec<Entry<Subs>>),
    /// T-Man routing-table exchange request (Algorithm 2).
    RtReq(Vec<Entry<Subs>>),
    /// T-Man routing-table exchange reply (Algorithm 3).
    RtResp(Vec<Entry<Subs>>),
    /// Profile heartbeat (Algorithms 6–7).
    Profile(ProfileMsg),
    /// A gateway's greedy lookup toward `hash(topic)`, installing relay
    /// soft state hop by hop.
    RelayRequest {
        /// Topic whose relay path is being built/refreshed.
        topic: TopicId,
        /// Hops taken so far (safety-capped).
        hops: u32,
    },
    /// Data-plane event notification.
    Notification(Notification),
    /// Harness stimulus: this node publishes `event` on `topic` now.
    PublishCmd {
        /// Pre-registered event id.
        event: EventId,
        /// Topic to publish on.
        topic: TopicId,
    },
    /// Acknowledgment from a gateway/relay holder back to the publisher:
    /// the rendezvous infrastructure saw this event. Only emitted when
    /// publisher retries are enabled (`publish_retries > 0`).
    PubAck {
        /// The acknowledged event.
        event: EventId,
    },
    /// Self-addressed retry timer: if `event` is still unacknowledged when
    /// this fires, re-flood it and re-arm with doubled backoff. Never
    /// crosses the network.
    RetryPublish {
        /// The event awaiting acknowledgment.
        event: EventId,
        /// Its topic, for the re-flood.
        topic: TopicId,
        /// Retry attempt number, 1-based; drives the backoff exponent.
        attempt: u32,
    },
    /// Anti-entropy digest (IHAVE): `(event id, topic)` pairs the sender
    /// holds in its repair cache. Shared via `Arc` so the per-target
    /// fan-out clones are free. Only sent when the repair layer is
    /// enabled.
    AeDigest(Arc<Vec<(u64, u32)>>),
    /// Anti-entropy pull request (IWANT): event ids the sender is missing
    /// and asks the receiver to re-serve from its cache.
    AeWant(Vec<u64>),
    /// Anti-entropy recovery push: a cached notification re-served in
    /// answer to an [`VitisMsg::AeWant`]. Data-plane — it carries the
    /// event payload.
    AePush(Notification),
}

/// Approximate serialized sizes, in bytes, for bandwidth accounting: a node
/// descriptor is address (4) + ring id (8) + age (2) = 14 bytes plus 4
/// bytes per subscribed topic in its profile payload; proposals are 24
/// bytes each (topic + gateway id + gateway/parent addresses + hops).
pub mod wire {
    use super::*;

    /// Bytes of one gossip descriptor including its subscription payload.
    pub fn entry_bytes(e: &Entry<Subs>) -> u64 {
        14 + 4 * e.payload.len() as u64
    }

    /// Bytes of a descriptor buffer.
    pub fn buffer_bytes(buf: &[Entry<Subs>]) -> u64 {
        buf.iter().map(entry_bytes).sum()
    }

    /// Bytes of a profile heartbeat.
    pub fn profile_bytes(pm: &ProfileMsg) -> u64 {
        8 + 4 * pm.subs.len() as u64 + 24 * pm.proposals.len() as u64
    }

    /// Bytes of a relay request (topic + hop counter + framing).
    pub const RELAY_REQUEST_BYTES: u64 = 12;

    /// Bytes of a publish acknowledgment (event id + framing).
    pub const PUB_ACK_BYTES: u64 = 12;

    /// Approximate wire size of any Vitis message. `Notification` and
    /// `PublishCmd` are data-plane (the monitor tracks them separately as
    /// message counts); their control framing is 16 bytes.
    pub fn message_bytes(msg: &VitisMsg) -> u64 {
        match msg {
            VitisMsg::PsReq(b) | VitisMsg::PsResp(b) | VitisMsg::RtReq(b) | VitisMsg::RtResp(b) => {
                buffer_bytes(b)
            }
            VitisMsg::Profile(pm) => profile_bytes(pm),
            VitisMsg::RelayRequest { .. } => RELAY_REQUEST_BYTES,
            VitisMsg::PubAck { .. } => PUB_ACK_BYTES,
            // RetryPublish is a self-timer and never crosses the network;
            // its size only matters for totality.
            VitisMsg::RetryPublish { .. } => 0,
            VitisMsg::Notification(_) | VitisMsg::PublishCmd { .. } => 16,
            VitisMsg::AeDigest(entries) => {
                entries.len() as u64 * vitis_sim::antientropy::DIGEST_ENTRY_BYTES
            }
            VitisMsg::AeWant(ids) => ids.len() as u64 * vitis_sim::antientropy::WANT_ID_BYTES,
            // A recovery push is the notification transfer again.
            VitisMsg::AePush(_) => 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::Proposal;
    use crate::topic::TopicSet;
    use vitis_overlay::id::Id;
    use vitis_sim::event::NodeIdx;

    fn entry(n_topics: u32) -> Entry<Subs> {
        Entry::fresh(
            NodeIdx(1),
            Id(5),
            Arc::new(TopicSet::from_iter(0..n_topics)),
        )
    }

    #[test]
    fn wire_sizes_scale_with_contents() {
        assert_eq!(wire::entry_bytes(&entry(0)), 14);
        assert_eq!(wire::entry_bytes(&entry(50)), 14 + 200);
        let buf = vec![entry(10), entry(20)];
        assert_eq!(wire::buffer_bytes(&buf), (14 + 40) + (14 + 80));
        let pm = ProfileMsg {
            id: Id(1),
            subs: Arc::new(TopicSet::from_iter(0..3)),
            proposals: Arc::new(vec![(
                TopicId(0),
                Proposal::self_proposal(NodeIdx(0), Id(0)),
            )]),
        };
        assert_eq!(wire::profile_bytes(&pm), 8 + 12 + 24);
        assert_eq!(
            wire::message_bytes(&VitisMsg::RelayRequest {
                topic: TopicId(1),
                hops: 2
            }),
            wire::RELAY_REQUEST_BYTES
        );
    }
}
