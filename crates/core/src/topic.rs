//! Topics, subscription sets and publication-rate tables.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vitis_overlay::id::Id;

/// A topic identifier, dense from zero within a run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TopicId(pub u32);

impl TopicId {
    /// The topic's rendezvous identifier `hash(t)` on the ring.
    #[inline]
    pub fn ring_id(self) -> Id {
        Id::of_topic(self.0)
    }
}

impl std::fmt::Display for TopicId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A node's subscription set: sorted, de-duplicated topic ids.
///
/// Kept sorted so that membership is a binary search and set operations are
/// linear merges — these run in the innermost loop of friend selection.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopicSet {
    topics: Vec<u32>,
}

impl TopicSet {
    /// The empty set.
    pub fn new() -> Self {
        TopicSet { topics: Vec::new() }
    }

    /// Build from arbitrary ids (sorts and de-duplicates).
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator
    pub fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut topics: Vec<u32> = iter.into_iter().collect();
        topics.sort_unstable();
        topics.dedup();
        TopicSet { topics }
    }

    /// Number of subscriptions.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, t: TopicId) -> bool {
        self.topics.binary_search(&t.0).is_ok()
    }

    /// Add a topic (subscribe). Returns false if already present.
    pub fn insert(&mut self, t: TopicId) -> bool {
        match self.topics.binary_search(&t.0) {
            Ok(_) => false,
            Err(pos) => {
                self.topics.insert(pos, t.0);
                true
            }
        }
    }

    /// Remove a topic (unsubscribe). Returns false if absent.
    pub fn remove(&mut self, t: TopicId) -> bool {
        match self.topics.binary_search(&t.0) {
            Ok(pos) => {
                self.topics.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterate the topics in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = TopicId> + '_ {
        self.topics.iter().map(|&t| TopicId(t))
    }

    /// Size of the intersection with `other` (linear merge).
    pub fn intersection_len(&self, other: &TopicSet) -> usize {
        let mut i = 0;
        let mut j = 0;
        let mut n = 0;
        while i < self.topics.len() && j < other.topics.len() {
            match self.topics[i].cmp(&other.topics[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Rate-weighted intersection and union masses against `other`:
    /// `(Σ_{t ∈ A∩B} rate(t), Σ_{t ∈ A∪B} rate(t))` in one merge pass.
    pub fn weighted_overlap(&self, other: &TopicSet, rates: &RateTable) -> (f64, f64) {
        let mut i = 0;
        let mut j = 0;
        let mut inter = 0.0;
        let mut union = 0.0;
        while i < self.topics.len() && j < other.topics.len() {
            match self.topics[i].cmp(&other.topics[j]) {
                std::cmp::Ordering::Less => {
                    union += rates.rate(TopicId(self.topics[i]));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    union += rates.rate(TopicId(other.topics[j]));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let r = rates.rate(TopicId(self.topics[i]));
                    inter += r;
                    union += r;
                    i += 1;
                    j += 1;
                }
            }
        }
        for &t in &self.topics[i..] {
            union += rates.rate(TopicId(t));
        }
        for &t in &other.topics[j..] {
            union += rates.rate(TopicId(t));
        }
        (inter, union)
    }
}

impl FromIterator<u32> for TopicSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        TopicSet::from_iter(iter)
    }
}

/// Shared, immutable subscription set as carried in gossip descriptors.
pub type Subs = Arc<TopicSet>;

/// Per-topic publication rates, the `rate(t)` of Equation 1. The paper's
/// default is uniform; the α-sweep experiment installs a Zipf profile.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RateTable {
    rates: Vec<f64>,
}

impl RateTable {
    /// Uniform rate 1.0 for `num_topics` topics.
    pub fn uniform(num_topics: usize) -> Self {
        RateTable {
            rates: vec![1.0; num_topics],
        }
    }

    /// Explicit per-topic rates.
    ///
    /// # Panics
    /// Panics if any rate is negative or non-finite.
    pub fn from_rates(rates: Vec<f64>) -> Self {
        assert!(
            rates.iter().all(|r| r.is_finite() && *r >= 0.0),
            "rates must be finite and non-negative"
        );
        RateTable { rates }
    }

    /// Number of topics covered.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// The rate of a topic (0 for unknown topics, which makes them
    /// "practically ignored in the preference function", as the paper puts
    /// it for rate-zero topics).
    #[inline]
    pub fn rate(&self, t: TopicId) -> f64 {
        self.rates.get(t.0 as usize).copied().unwrap_or(0.0)
    }

    /// Total rate mass (used to normalize publish schedules).
    pub fn total(&self) -> f64 {
        self.rates.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[u32]) -> TopicSet {
        TopicSet::from_iter(v.iter().copied())
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let s = ts(&[5, 1, 5, 3]);
        assert_eq!(s.len(), 3);
        let got: Vec<u32> = s.iter().map(|t| t.0).collect();
        assert_eq!(got, vec![1, 3, 5]);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ts(&[2, 4]);
        assert!(s.contains(TopicId(2)));
        assert!(!s.contains(TopicId(3)));
        assert!(s.insert(TopicId(3)));
        assert!(!s.insert(TopicId(3)));
        assert!(s.contains(TopicId(3)));
        assert!(s.remove(TopicId(2)));
        assert!(!s.remove(TopicId(2)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn intersection_len_merges() {
        assert_eq!(ts(&[1, 2, 3]).intersection_len(&ts(&[2, 3, 4])), 2);
        assert_eq!(ts(&[]).intersection_len(&ts(&[1])), 0);
        assert_eq!(ts(&[7]).intersection_len(&ts(&[7])), 1);
    }

    #[test]
    fn weighted_overlap_uniform_matches_counts() {
        let rates = RateTable::uniform(10);
        let (i, u) = ts(&[1, 2, 3]).weighted_overlap(&ts(&[3, 4]), &rates);
        assert!((i - 1.0).abs() < 1e-12);
        assert!((u - 4.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_overlap_respects_rates() {
        let rates = RateTable::from_rates(vec![0.0, 10.0, 1.0]);
        // A = {0,1}, B = {1,2}: inter = rate(1) = 10, union = 0+10+1 = 11.
        let (i, u) = ts(&[0, 1]).weighted_overlap(&ts(&[1, 2]), &rates);
        assert!((i - 10.0).abs() < 1e-12);
        assert!((u - 11.0).abs() < 1e-12);
    }

    #[test]
    fn rate_of_unknown_topic_is_zero() {
        let rates = RateTable::uniform(2);
        assert_eq!(rates.rate(TopicId(5)), 0.0);
        assert_eq!(rates.rate(TopicId(1)), 1.0);
        assert!((rates.total() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rates_rejected() {
        RateTable::from_rates(vec![1.0, -0.5]);
    }

    #[test]
    fn ring_ids_are_stable_and_distinct() {
        assert_eq!(TopicId(3).ring_id(), TopicId(3).ring_id());
        assert_ne!(TopicId(3).ring_id(), TopicId(4).ring_id());
    }
}
