//! Property-based tests for the Vitis core data structures.

use proptest::prelude::*;
use std::collections::BTreeSet;
use vitis::gateway::{revise_proposal, Proposal};
use vitis::monitor::Monitor;
use vitis::relay::RelayTable;
use vitis::topic::{RateTable, TopicId, TopicSet};
use vitis::utility;
use vitis_overlay::id::Id;
use vitis_sim::event::NodeIdx;
use vitis_sim::time::SimTime;

fn ts(v: &[u32]) -> TopicSet {
    TopicSet::from_iter(v.iter().copied())
}

proptest! {
    /// TopicSet behaves like a reference BTreeSet under insert/remove.
    #[test]
    fn topicset_matches_btreeset(ops in proptest::collection::vec((any::<bool>(), 0u32..40), 0..100)) {
        let mut set = TopicSet::new();
        let mut reference = BTreeSet::new();
        for &(insert, t) in &ops {
            if insert {
                prop_assert_eq!(set.insert(TopicId(t)), reference.insert(t));
            } else {
                prop_assert_eq!(set.remove(TopicId(t)), reference.remove(&t));
            }
        }
        prop_assert_eq!(set.len(), reference.len());
        let got: Vec<u32> = set.iter().map(|t| t.0).collect();
        let want: Vec<u32> = reference.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Intersection size via merge equals the reference computation.
    #[test]
    fn intersection_matches_reference(
        a in proptest::collection::vec(0u32..60, 0..40),
        b in proptest::collection::vec(0u32..60, 0..40),
    ) {
        let sa = ts(&a);
        let sb = ts(&b);
        let ra: BTreeSet<u32> = a.iter().copied().collect();
        let rb: BTreeSet<u32> = b.iter().copied().collect();
        prop_assert_eq!(sa.intersection_len(&sb), ra.intersection(&rb).count());
    }

    /// Utility is symmetric, in [0, 1], and 1 only for identical non-empty
    /// rate-positive sets.
    #[test]
    fn utility_bounds_and_symmetry(
        a in proptest::collection::vec(0u32..30, 0..20),
        b in proptest::collection::vec(0u32..30, 0..20),
        rates in proptest::collection::vec(0.0f64..10.0, 30),
    ) {
        let sa = ts(&a);
        let sb = ts(&b);
        let rt = RateTable::from_rates(rates);
        let u = utility(&sa, &sb, &rt);
        prop_assert!((0.0..=1.0).contains(&u));
        prop_assert_eq!(u, utility(&sb, &sa, &rt));
        // Weighted overlap masses are consistent: inter <= union.
        let (i, un) = sa.weighted_overlap(&sb, &rt);
        prop_assert!(i <= un + 1e-12);
    }

    /// Monitor hit ratio is always in [0, 1] and deliveries never exceed
    /// expectations.
    #[test]
    fn monitor_bounds(
        expected in proptest::collection::vec(0u32..30, 0..20),
        deliveries in proptest::collection::vec((0u32..40, 1u32..20), 0..60),
    ) {
        let m = Monitor::new();
        let exp: Vec<NodeIdx> = expected.iter().map(|&i| NodeIdx(i)).collect();
        let e = m.register_event(TopicId(0), SimTime(0), exp);
        for &(node, hops) in &deliveries {
            m.record_delivery(e, NodeIdx(node), hops, SimTime(5));
        }
        let s = m.snapshot();
        prop_assert!(s.delivered <= s.expected);
        prop_assert!((0.0..=1.0).contains(&s.hit_ratio));
        if s.delivered > 0 {
            prop_assert!(s.mean_hops >= 1.0);
            prop_assert!(s.mean_hops <= s.max_hops as f64);
        }
    }

    /// Relay fanout never returns the sender and never duplicates targets.
    #[test]
    fn relay_fanout_excludes_sender(
        downs in proptest::collection::vec(0u32..10, 0..10),
        upstream in proptest::option::of(0u32..10),
        from in proptest::option::of(0u32..10),
    ) {
        let mut rt = RelayTable::new();
        let t = TopicId(1);
        for &d in &downs {
            rt.add_downstream(t, NodeIdx(d));
        }
        if let Some(u) = upstream {
            rt.set_upstream(t, NodeIdx(u));
        }
        let from_idx = from.map(NodeIdx);
        let fan = rt.fanout(t, from_idx);
        if let Some(f) = from_idx {
            prop_assert!(!fan.contains(&f));
        }
        let mut dedup = fan.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), fan.len());
    }

    /// Gateway revision always returns either the self-proposal or one of
    /// the offered ones, with hops within the radius.
    #[test]
    fn revise_proposal_stays_in_offered_set(
        self_id: u64,
        d_max in 1u32..10,
        offers in proptest::collection::vec((1u32..20, any::<u64>(), 0u32..12), 0..10),
    ) {
        let me = NodeIdx(0);
        let topic = TopicId(3);
        // One proposal per distinct neighbor, and a gateway's id is a
        // function of its address — both hold in the real protocol (a
        // neighbor advertises a single proposal; ids are hashes of
        // addresses).
        let proposals: Vec<(NodeIdx, Proposal)> = offers.iter().enumerate()
            .map(|(i, &(nbr, gw_id, hops))| {
                let _ = nbr;
                (NodeIdx(i as u32 + 1), Proposal {
                    gw_id: Id(gw_id),
                    gw_addr: NodeIdx(vitis_sim::rng::mix64(gw_id) as u32),
                    parent: NodeIdx(i as u32 + 1),
                    hops,
                })
            }).collect();
        let refs: Vec<(NodeIdx, &Proposal)> = proposals.iter().map(|(n, p)| (*n, p)).collect();
        let out = revise_proposal(me, Id(self_id), topic, d_max, refs, |_| false);
        if out.gw_addr == me {
            prop_assert_eq!(out.hops, 0);
        } else {
            prop_assert!(out.hops <= d_max);
            prop_assert!(proposals.iter().any(|(_, p)| p.gw_addr == out.gw_addr));
            // Adopted proposals are never ring-farther than self.
            let target = topic.ring_id();
            prop_assert!(target.ring_distance(out.gw_id) <= target.ring_distance(Id(self_id)));
        }
    }
}
