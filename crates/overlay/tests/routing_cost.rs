//! Empirical validation of the Symphony/Kleinberg routing-cost claim the
//! paper's delay bound rests on: greedy routing over a ring with `k`
//! harmonically distributed long links takes `O(log²N / k)` hops
//! (Section III-A1, citing Symphony [27] and Kleinberg [8]).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vitis_overlay::id::Id;
use vitis_overlay::routing::greedy_walk;
use vitis_overlay::smallworld::harmonic_distance;
use vitis_sim::event::NodeIdx;

/// Build a static Symphony-style network: `n` ids uniformly random on the
/// ring, each node linked to its ring successor/predecessor plus `k`
/// harmonic long links; returns mean greedy hops over random lookups.
fn mean_greedy_hops(n: usize, k: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ids: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
    ids.sort_unstable();
    ids.dedup();
    let n = ids.len();

    // succ/pred by sorted order; long links by harmonic draw, snapped to
    // the nearest node clockwise of the drawn distance.
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
    for i in 0..n {
        let succ = (i + 1) % n;
        let pred = (i + n - 1) % n;
        neighbors[i].push(succ as u32);
        neighbors[i].push(pred as u32);
        for _ in 0..k {
            let d = harmonic_distance(n, &mut rng);
            let target = ids[i].wrapping_add(d);
            // First node clockwise of `target`. Long links are undirected
            // connections (Kleinberg's model and TCP reality), so both
            // endpoints can route over them.
            let j = ids.partition_point(|&x| x < target) % n;
            if j != i {
                neighbors[i].push(j as u32);
                neighbors[j].push(i as u32);
            }
        }
    }

    let id_of = |x: NodeIdx| Id(ids[x.0 as usize]);
    let neighbors_of = |x: NodeIdx| -> Vec<(Id, NodeIdx)> {
        neighbors[x.0 as usize]
            .iter()
            .map(|&j| (Id(ids[j as usize]), NodeIdx(j)))
            .collect()
    };

    let lookups = 300;
    let mut total = 0usize;
    for _ in 0..lookups {
        let src = NodeIdx(rng.gen_range(0..n as u32));
        let target = Id(rng.gen());
        let path = greedy_walk(src, target, 10 * n, id_of, neighbors_of)
            .expect("greedy must terminate on a consistent ring");
        total += path.hops();
    }
    total as f64 / lookups as f64
}

/// Routing cost grows polylogarithmically: quadrupling N far less than
/// quadruples the hop count.
#[test]
fn greedy_hops_grow_polylog_with_n() {
    let h256 = mean_greedy_hops(256, 2, 1);
    let h1024 = mean_greedy_hops(1024, 2, 2);
    let h4096 = mean_greedy_hops(4096, 2, 3);
    assert!(h256 < h1024 && h1024 < h4096, "{h256} {h1024} {h4096}");
    // log²(4096)/log²(256) = (12/8)² = 2.25; allow slack but reject linear
    // growth (16x).
    let ratio = h4096 / h256;
    assert!(
        ratio < 4.0,
        "hops grew {ratio:.1}x for 16x nodes ({h256:.1} -> {h4096:.1})"
    );
}

/// More long links cut the hop count roughly proportionally (O(log²N / k)).
#[test]
fn greedy_hops_shrink_with_k() {
    let h1 = mean_greedy_hops(2048, 1, 5);
    let h4 = mean_greedy_hops(2048, 4, 6);
    let h8 = mean_greedy_hops(2048, 8, 7);
    assert!(h4 < h1 && h8 < h4, "{h1} {h4} {h8}");
    assert!(
        h1 / h4 > 1.8,
        "k=4 should cut hops substantially: {h1:.1} vs {h4:.1}"
    );
}

/// Ring-only routing (k = 0) is linear — the baseline the long links beat.
#[test]
fn ring_only_routing_is_linear() {
    let n = 512;
    let ring_only = mean_greedy_hops(n, 0, 9);
    let with_links = mean_greedy_hops(n, 2, 9);
    // Expected ring-only cost is ~n/4 hops.
    assert!(
        ring_only > n as f64 / 8.0,
        "ring-only {ring_only:.1} hops suspiciously low"
    );
    assert!(
        with_links < ring_only / 4.0,
        "long links must dominate: {with_links:.1} vs {ring_only:.1}"
    );
}
