//! Property-based tests for the overlay substrate invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vitis_overlay::prelude::*;
use vitis_sim::event::NodeIdx;

fn entries(ids: &[u64]) -> Vec<Entry<()>> {
    ids.iter()
        .enumerate()
        .map(|(i, &id)| Entry {
            addr: NodeIdx(i as u32),
            id: Id(id),
            age: 0,
            payload: (),
        })
        .collect()
}

proptest! {
    /// Minimal circular distance is symmetric, bounded by half the space,
    /// and zero iff equal.
    #[test]
    fn ring_distance_properties(a: u64, b: u64) {
        let (ia, ib) = (Id(a), Id(b));
        prop_assert_eq!(ia.ring_distance(ib), ib.ring_distance(ia));
        prop_assert!(ia.ring_distance(ib) <= u64::MAX / 2 + 1);
        prop_assert_eq!(ia.ring_distance(ib) == 0, a == b);
    }

    /// Clockwise and counter-clockwise distances add up to the full circle
    /// for distinct points.
    #[test]
    fn cw_ccw_distances_complement(a: u64, b: u64) {
        prop_assume!(a != b);
        let (ia, ib) = (Id(a), Id(b));
        prop_assert_eq!(ia.distance_cw(ib).wrapping_add(ib.distance_cw(ia)), 0);
    }

    /// `closest_to` returns a global minimizer of the ring distance.
    #[test]
    fn closest_to_is_global_min(target: u64, ids in proptest::collection::vec(any::<u64>(), 1..40)) {
        let cands: Vec<Id> = ids.iter().map(|&x| Id(x)).collect();
        let t = Id(target);
        let i = closest_to(t, &cands).unwrap();
        let best = t.ring_distance(cands[i]);
        for c in &cands {
            prop_assert!(best <= t.ring_distance(*c));
        }
    }

    /// Greedy next hop strictly decreases the distance to the target.
    #[test]
    fn next_hop_strictly_improves(self_id: u64, target: u64, ids in proptest::collection::vec(any::<u64>(), 0..30)) {
        let me = Id(self_id);
        let t = Id(target);
        let nbrs: Vec<(Id, NodeIdx)> = ids.iter().enumerate()
            .map(|(i, &x)| (Id(x), NodeIdx(i as u32)))
            .collect();
        if let Some(nxt) = next_hop(me, t, nbrs.iter().copied()) {
            let (nid, _) = nbrs.iter().find(|(_, a)| *a == nxt).unwrap();
            prop_assert!(t.ring_distance(*nid) < t.ring_distance(me));
        }
    }

    /// A view never exceeds its capacity and never contains the owner or
    /// duplicate addresses.
    #[test]
    fn view_capacity_and_dedup(
        cap in 1usize..10,
        batches in proptest::collection::vec(
            proptest::collection::vec((0u32..20, 0u16..8), 0..10), 1..6),
    ) {
        let me = NodeIdx(99);
        let mut v: View<()> = View::new(cap);
        for batch in &batches {
            let es: Vec<Entry<()>> = batch.iter().map(|&(a, age)| Entry {
                addr: NodeIdx(a), id: Id(a as u64), age, payload: (),
            }).collect();
            v.merge(&es, me);
            prop_assert!(v.len() <= cap);
            let mut addrs: Vec<u32> = v.entries().iter().map(|e| e.addr.0).collect();
            addrs.sort_unstable();
            let n = addrs.len();
            addrs.dedup();
            prop_assert_eq!(addrs.len(), n, "duplicate addresses in view");
            prop_assert!(!v.contains(me));
        }
    }

    /// Neighbor selection partitions candidates: bounded size, no
    /// duplicates, no self, and ring slots hold the true extremes.
    #[test]
    fn select_neighbors_invariants(
        self_id: u64,
        ids in proptest::collection::vec(any::<u64>(), 0..40),
        rt_size in 3usize..20,
        k_sw in 0usize..6,
        seed: u64,
    ) {
        let cands = entries(&ids);
        let params = RtParams { rt_size, k_sw, est_n: 1000 };
        let mut rng = SmallRng::seed_from_u64(seed);
        let me = NodeIdx(u32::MAX);
        let rt = select_neighbors(me, Id(self_id), &params, cands.clone(), &[], &[], |_| 0.0, &mut rng);
        prop_assert!(rt.len() <= rt_size);
        prop_assert!(rt.sw.len() <= k_sw);
        prop_assert!(!rt.contains(me));
        let mut addrs = rt.addrs();
        let n = addrs.len();
        addrs.sort();
        addrs.dedup();
        prop_assert_eq!(addrs.len(), n, "duplicate across roles");
        // Successor is the candidate with minimal non-zero cw distance.
        if let Some(s) = &rt.succ {
            let d = Id(self_id).distance_cw(s.id);
            for c in &cands {
                let dc = Id(self_id).distance_cw(c.id);
                if dc != 0 {
                    prop_assert!(d <= dc, "succ not minimal");
                }
            }
        }
    }

    /// Harmonic draws stay in `[1, u64::MAX]` for any network size.
    #[test]
    fn harmonic_distance_bounds(est_n in 2usize..1_000_000, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..32 {
            let d = harmonic_distance(est_n, &mut rng);
            prop_assert!(d >= 1);
        }
    }

    /// Graph components partition the queried subset.
    #[test]
    fn components_partition_subset(
        n in 2usize..30,
        edges in proptest::collection::vec((0u32..30, 0u32..30), 0..60),
        subset in proptest::collection::vec(0u32..30, 0..30),
    ) {
        let edges: Vec<(u32, u32)> = edges.into_iter()
            .filter(|&(a, b)| (a as usize) < n && (b as usize) < n)
            .collect();
        let mut subset: Vec<u32> = subset.into_iter().filter(|&v| (v as usize) < n).collect();
        subset.sort_unstable();
        subset.dedup();
        let g = Graph::from_edges(n, edges);
        let comps = g.components_within(&subset);
        let mut all: Vec<u32> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, subset);
    }
}
