//! A bounded partial view of the network.

use crate::entry::{merge_dedup, Entry};
use rand::Rng;
use vitis_sim::event::NodeIdx;

/// A capacity-bounded set of [`Entry`] descriptors, de-duplicated by
/// address. Eviction keeps the freshest descriptors (Newscast semantics).
#[derive(Clone, Debug)]
pub struct View<P> {
    entries: Vec<Entry<P>>,
    capacity: usize,
}

impl<P: Clone> View<P> {
    /// An empty view with the given capacity.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        View {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// The view's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entries (unordered).
    pub fn entries(&self) -> &[Entry<P>] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the view holds a descriptor of `addr`.
    pub fn contains(&self, addr: NodeIdx) -> bool {
        self.entries.iter().any(|e| e.addr == addr)
    }

    /// Age every descriptor by one round (saturating).
    pub fn age_all(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// Merge `incoming`, drop descriptors of `self_addr`, keep the freshest
    /// `capacity` entries (ties broken by address for determinism).
    pub fn merge(&mut self, incoming: &[Entry<P>], self_addr: NodeIdx) {
        merge_dedup(&mut self.entries, incoming);
        self.entries.retain(|e| e.addr != self_addr);
        if self.entries.len() > self.capacity {
            self.entries
                .sort_by_key(|e| (e.age, e.addr.0));
            self.entries.truncate(self.capacity);
        }
    }

    /// Remove the descriptor of `addr`, if present.
    pub fn remove(&mut self, addr: NodeIdx) {
        self.entries.retain(|e| e.addr != addr);
    }

    /// Remove every descriptor older than `max_age`.
    pub fn expire(&mut self, max_age: u16) {
        self.entries.retain(|e| e.age <= max_age);
    }

    /// A uniformly random entry, if any.
    pub fn random<R: Rng>(&self, rng: &mut R) -> Option<&Entry<P>> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[rng.gen_range(0..self.entries.len())])
        }
    }

    /// The entry with the highest age (Cyclon's exchange-partner choice);
    /// ties broken by address.
    pub fn oldest(&self) -> Option<&Entry<P>> {
        self.entries
            .iter()
            .max_by_key(|e| (e.age, std::cmp::Reverse(e.addr.0)))
    }

    /// Clone out all entries (e.g. to build a gossip buffer).
    pub fn to_vec(&self) -> Vec<Entry<P>> {
        self.entries.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn e(addr: u32, age: u16) -> Entry<()> {
        Entry {
            addr: NodeIdx(addr),
            id: Id(addr as u64),
            age,
            payload: (),
        }
    }

    #[test]
    fn merge_respects_capacity_keeping_freshest() {
        let mut v: View<()> = View::new(3);
        v.merge(&[e(1, 5), e(2, 1), e(3, 3), e(4, 0)], NodeIdx(99));
        assert_eq!(v.len(), 3);
        assert!(v.contains(NodeIdx(4)));
        assert!(v.contains(NodeIdx(2)));
        assert!(v.contains(NodeIdx(3)));
        assert!(!v.contains(NodeIdx(1)));
    }

    #[test]
    fn merge_drops_self() {
        let mut v: View<()> = View::new(4);
        v.merge(&[e(1, 0), e(7, 0)], NodeIdx(7));
        assert_eq!(v.len(), 1);
        assert!(!v.contains(NodeIdx(7)));
    }

    #[test]
    fn aging_and_expiry() {
        let mut v: View<()> = View::new(4);
        v.merge(&[e(1, 0), e(2, 2)], NodeIdx(9));
        v.age_all();
        v.expire(2);
        assert!(v.contains(NodeIdx(1)));
        assert!(!v.contains(NodeIdx(2)));
    }

    #[test]
    fn oldest_prefers_highest_age() {
        let mut v: View<()> = View::new(4);
        v.merge(&[e(1, 1), e(2, 5), e(3, 5)], NodeIdx(9));
        let o = v.oldest().unwrap();
        assert_eq!(o.age, 5);
        assert_eq!(o.addr, NodeIdx(2)); // tie -> lower addr via Reverse key
    }

    #[test]
    fn random_draws_from_view() {
        let mut v: View<()> = View::new(8);
        v.merge(&[e(1, 0), e(2, 0), e(3, 0)], NodeIdx(9));
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(v.random(&mut rng).unwrap().addr);
        }
        assert_eq!(seen.len(), 3);
        let empty: View<()> = View::new(2);
        assert!(empty.random(&mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: View<()> = View::new(0);
    }
}
