//! Node descriptors as exchanged by gossip protocols.
//!
//! An [`Entry`] is what one node knows about another: its address (engine
//! slot), its ring identifier, a gossip age (freshness counter), and a
//! protocol-specific payload (e.g. a subscription profile for Vitis, `()`
//! for the subscription-oblivious RVR baseline).

use crate::id::Id;
use vitis_sim::event::NodeIdx;

/// A descriptor of a remote node carried in gossip messages and views.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry<P> {
    /// The node's engine address.
    pub addr: NodeIdx,
    /// The node's ring identifier.
    pub id: Id,
    /// Gossip age in rounds since this descriptor was created at its
    /// subject. Lower is fresher.
    pub age: u16,
    /// Protocol payload (subscription profile, etc.).
    pub payload: P,
}

impl<P> Entry<P> {
    /// A freshly minted descriptor (age zero).
    pub fn fresh(addr: NodeIdx, id: Id, payload: P) -> Self {
        Entry {
            addr,
            id,
            age: 0,
            payload,
        }
    }

    /// Copy with age reset to zero and a new payload (used when a node
    /// advertises itself).
    pub fn refreshed(&self, payload: P) -> Self {
        Entry {
            addr: self.addr,
            id: self.id,
            age: 0,
            payload,
        }
    }
}

/// Merge `incoming` descriptors into `buf`, de-duplicating by address and
/// keeping the *freshest* (lowest-age) descriptor for each node. `O(n·m)`
/// over small gossip buffers, which beats hashing at these sizes.
pub fn merge_dedup<P: Clone>(buf: &mut Vec<Entry<P>>, incoming: &[Entry<P>]) {
    for e in incoming {
        match buf.iter_mut().find(|b| b.addr == e.addr) {
            Some(existing) => {
                if e.age < existing.age {
                    *existing = e.clone();
                }
            }
            None => buf.push(e.clone()),
        }
    }
}

/// Remove every descriptor of `addr` from `buf` (e.g. drop self-references
/// after a merge).
pub fn remove_addr<P>(buf: &mut Vec<Entry<P>>, addr: NodeIdx) {
    buf.retain(|e| e.addr != addr);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(addr: u32, age: u16) -> Entry<u32> {
        Entry {
            addr: NodeIdx(addr),
            id: Id(addr as u64 * 10),
            age,
            payload: addr,
        }
    }

    #[test]
    fn merge_keeps_freshest_per_addr() {
        let mut buf = vec![e(1, 5), e(2, 0)];
        merge_dedup(&mut buf, &[e(1, 2), e(2, 9), e(3, 1)]);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.iter().find(|x| x.addr == NodeIdx(1)).unwrap().age, 2);
        assert_eq!(buf.iter().find(|x| x.addr == NodeIdx(2)).unwrap().age, 0);
        assert_eq!(buf.iter().find(|x| x.addr == NodeIdx(3)).unwrap().age, 1);
    }

    #[test]
    fn merge_equal_age_keeps_existing() {
        let mut buf = vec![Entry {
            payload: 100u32,
            ..e(1, 3)
        }];
        merge_dedup(&mut buf, &[e(1, 3)]);
        assert_eq!(buf[0].payload, 100);
    }

    #[test]
    fn remove_addr_drops_all_copies() {
        let mut buf = vec![e(1, 0), e(2, 0), e(1, 4)];
        remove_addr(&mut buf, NodeIdx(1));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].addr, NodeIdx(2));
    }

    #[test]
    fn refreshed_resets_age() {
        let x = e(4, 9).refreshed(7);
        assert_eq!(x.age, 0);
        assert_eq!(x.payload, 7);
        assert_eq!(x.addr, NodeIdx(4));
    }
}
