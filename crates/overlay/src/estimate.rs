//! Decentralized network-size estimation from ring density.
//!
//! Symphony estimates the network size `N` from the observation that, with
//! uniformly hashed ids, the arc between a node and its ring neighbors has
//! expected length `space / N`. Each node therefore estimates
//! `N̂ = space / d̂` where `d̂` is its (smoothed) observed neighbor arc,
//! and feeds `N̂` into the harmonic long-link draw. An EWMA over rounds
//! absorbs both the exponential spread of a single arc sample and ring
//! churn.

use crate::id::Id;

/// Exponentially smoothed ring-density size estimator.
#[derive(Clone, Debug)]
pub struct SizeEstimator {
    /// Smoothed arc length (ticks of id space per node).
    smoothed_arc: f64,
    /// Number of samples absorbed.
    samples: u64,
    /// EWMA factor for new samples.
    alpha: f64,
}

impl Default for SizeEstimator {
    fn default() -> Self {
        SizeEstimator::new(0.1)
    }
}

impl SizeEstimator {
    /// Create an estimator with the given EWMA factor `alpha ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        SizeEstimator {
            smoothed_arc: 0.0,
            samples: 0,
            alpha,
        }
    }

    /// Feed one observation of the node's ring neighborhood. Using both
    /// neighbors halves the variance: the sample is the mean of the two
    /// adjacent arcs.
    pub fn observe(&mut self, self_id: Id, succ: Option<Id>, pred: Option<Id>) {
        let mut total = 0.0;
        let mut count = 0.0;
        if let Some(s) = succ {
            total += self_id.distance_cw(s) as f64;
            count += 1.0;
        }
        if let Some(p) = pred {
            total += p.distance_cw(self_id) as f64;
            count += 1.0;
        }
        if count == 0.0 {
            return;
        }
        let sample = total / count;
        if self.samples == 0 {
            self.smoothed_arc = sample;
        } else {
            self.smoothed_arc += self.alpha * (sample - self.smoothed_arc);
        }
        self.samples += 1;
    }

    /// Number of observations absorbed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The current size estimate, or `None` before any observation.
    ///
    /// The arc length of a random ring is exponentially distributed, so a
    /// smoothed-arc reciprocal estimates `N` within a small constant
    /// factor — amply accurate for the harmonic draw, whose behaviour
    /// depends on `ln N`.
    pub fn estimate(&self) -> Option<usize> {
        if self.samples == 0 || self.smoothed_arc <= 0.0 {
            return None;
        }
        let n = (2.0f64.powi(64) / self.smoothed_arc).round();
        Some((n as usize).max(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// On a perfect ring of n uniformly hashed ids, the estimate lands
    /// within a small factor of n after smoothing.
    #[test]
    fn estimates_uniform_ring_sizes() {
        for &n in &[100usize, 1000, 10_000] {
            let mut rng = SmallRng::seed_from_u64(n as u64);
            let mut ids: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
            ids.sort_unstable();
            let mut est = SizeEstimator::new(0.1);
            // Each round, a random node observes its true ring neighbors.
            for _ in 0..400 {
                let i = rng.gen_range(0..n);
                let me = Id(ids[i]);
                let succ = Id(ids[(i + 1) % n]);
                let pred = Id(ids[(i + n - 1) % n]);
                est.observe(me, Some(succ), Some(pred));
            }
            let got = est.estimate().unwrap() as f64;
            let ratio = got / n as f64;
            assert!(
                (0.3..3.5).contains(&ratio),
                "n={n}: estimated {got}, ratio {ratio}"
            );
        }
    }

    #[test]
    fn empty_estimator_returns_none() {
        let est = SizeEstimator::default();
        assert_eq!(est.estimate(), None);
        let mut est = SizeEstimator::default();
        est.observe(Id(5), None, None);
        assert_eq!(est.estimate(), None);
        assert_eq!(est.samples(), 0);
    }

    #[test]
    fn single_neighbor_observation_works() {
        let mut est = SizeEstimator::new(1.0);
        // Arc of 2^60 => N ~ 16.
        est.observe(Id(0), Some(Id(1 << 60)), None);
        let n = est.estimate().unwrap();
        assert_eq!(n, 16);
    }

    #[test]
    fn ewma_smooths_outliers() {
        let mut est = SizeEstimator::new(0.1);
        for _ in 0..50 {
            est.observe(Id(0), Some(Id(1 << 54)), None); // N = 1024
        }
        // One wild outlier barely moves the estimate.
        est.observe(Id(0), Some(Id(1)), None);
        let n = est.estimate().unwrap() as f64;
        assert!((n / 1024.0) < 1.5, "outlier distorted estimate to {n}");
    }
}
