//! Gossip-based peer sampling services.
//!
//! The evaluation uses Newscast as the common sampling layer of all three
//! systems ("*they use the same peer sampling service (Newscast)*"); a
//! Cyclon-style shuffle is provided as a drop-in alternative, as the paper
//! notes any implementation of the service works.
//!
//! These are *passive* state machines: the owning protocol embeds one, calls
//! [`PeerSampling::initiate`] from its round handler, routes the returned
//! buffer through its own message enum, and feeds received buffers back in.

use crate::entry::Entry;
use crate::view::View;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use vitis_sim::event::NodeIdx;

/// Common interface of gossip peer-sampling implementations.
pub trait PeerSampling<P: Clone> {
    /// Advance one gossip round (ages descriptors).
    fn tick(&mut self);

    /// The current sample of known peers — `getSampleNodes()` in the
    /// paper's Algorithm 2.
    fn sample(&self) -> &[Entry<P>];

    /// Seed the view from bootstrap contacts.
    fn bootstrap(&mut self, contacts: &[Entry<P>], self_addr: NodeIdx);

    /// Begin an exchange: pick a partner and build the buffer to send.
    /// Returns `None` while the view is empty.
    fn initiate(&mut self, self_entry: &Entry<P>, rng: &mut SmallRng)
        -> Option<(NodeIdx, Vec<Entry<P>>)>;

    /// Handle an incoming exchange request: return the reply buffer and
    /// merge the received one.
    fn on_request(
        &mut self,
        self_entry: &Entry<P>,
        from: NodeIdx,
        incoming: &[Entry<P>],
        rng: &mut SmallRng,
    ) -> Vec<Entry<P>>;

    /// Handle the reply to an exchange this node initiated.
    fn on_response(&mut self, self_addr: NodeIdx, incoming: &[Entry<P>]);

    /// Drop a peer known to be dead (failure-detector feedback).
    fn remove(&mut self, addr: NodeIdx);
}

/// Newscast: on each exchange, both sides send their whole view plus a fresh
/// self-descriptor, and both keep the freshest `capacity` of the union.
#[derive(Clone, Debug)]
pub struct Newscast<P> {
    view: View<P>,
}

impl<P: Clone> Newscast<P> {
    /// Newscast with a view of `capacity` descriptors.
    pub fn new(capacity: usize) -> Self {
        Newscast {
            view: View::new(capacity),
        }
    }

    fn buffer(&self, self_entry: &Entry<P>) -> Vec<Entry<P>> {
        let mut buf = self.view.to_vec();
        buf.push(self_entry.refreshed(self_entry.payload.clone()));
        buf
    }
}

impl<P: Clone> PeerSampling<P> for Newscast<P> {
    fn tick(&mut self) {
        self.view.age_all();
    }

    fn sample(&self) -> &[Entry<P>] {
        self.view.entries()
    }

    fn bootstrap(&mut self, contacts: &[Entry<P>], self_addr: NodeIdx) {
        self.view.merge(contacts, self_addr);
    }

    fn initiate(
        &mut self,
        self_entry: &Entry<P>,
        rng: &mut SmallRng,
    ) -> Option<(NodeIdx, Vec<Entry<P>>)> {
        let partner = self.view.random(rng)?.addr;
        Some((partner, self.buffer(self_entry)))
    }

    fn on_request(
        &mut self,
        self_entry: &Entry<P>,
        _from: NodeIdx,
        incoming: &[Entry<P>],
        _rng: &mut SmallRng,
    ) -> Vec<Entry<P>> {
        let reply = self.buffer(self_entry);
        self.view.merge(incoming, self_entry.addr);
        reply
    }

    fn on_response(&mut self, self_addr: NodeIdx, incoming: &[Entry<P>]) {
        self.view.merge(incoming, self_addr);
    }

    fn remove(&mut self, addr: NodeIdx) {
        self.view.remove(addr);
    }
}

/// Cyclon-style enhanced shuffle: exchanges a random subset of `shuffle_len`
/// descriptors with the *oldest* neighbor, which is removed from the view
/// (it re-enters if it is still alive and replies elsewhere). Produces more
/// uniform samples and faster dead-link cleanup than Newscast.
#[derive(Clone, Debug)]
pub struct Cyclon<P> {
    view: View<P>,
    shuffle_len: usize,
}

impl<P: Clone> Cyclon<P> {
    /// Cyclon with view `capacity` and per-exchange `shuffle_len`.
    pub fn new(capacity: usize, shuffle_len: usize) -> Self {
        assert!(shuffle_len >= 1);
        Cyclon {
            view: View::new(capacity),
            shuffle_len,
        }
    }

    fn random_subset(&self, n: usize, rng: &mut SmallRng) -> Vec<Entry<P>> {
        let mut all = self.view.to_vec();
        all.shuffle(rng);
        all.truncate(n);
        all
    }
}

impl<P: Clone> PeerSampling<P> for Cyclon<P> {
    fn tick(&mut self) {
        self.view.age_all();
    }

    fn sample(&self) -> &[Entry<P>] {
        self.view.entries()
    }

    fn bootstrap(&mut self, contacts: &[Entry<P>], self_addr: NodeIdx) {
        self.view.merge(contacts, self_addr);
    }

    fn initiate(
        &mut self,
        self_entry: &Entry<P>,
        rng: &mut SmallRng,
    ) -> Option<(NodeIdx, Vec<Entry<P>>)> {
        let partner = self.view.oldest()?.addr;
        self.view.remove(partner);
        let mut buf = self.random_subset(self.shuffle_len.saturating_sub(1), rng);
        buf.push(self_entry.refreshed(self_entry.payload.clone()));
        Some((partner, buf))
    }

    fn on_request(
        &mut self,
        self_entry: &Entry<P>,
        _from: NodeIdx,
        incoming: &[Entry<P>],
        rng: &mut SmallRng,
    ) -> Vec<Entry<P>> {
        let reply = self.random_subset(self.shuffle_len, rng);
        self.view.merge(incoming, self_entry.addr);
        reply
    }

    fn on_response(&mut self, self_addr: NodeIdx, incoming: &[Entry<P>]) {
        self.view.merge(incoming, self_addr);
    }

    fn remove(&mut self, addr: NodeIdx) {
        self.view.remove(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;
    use rand::SeedableRng;

    fn e(addr: u32, age: u16) -> Entry<()> {
        Entry {
            addr: NodeIdx(addr),
            id: Id(addr as u64),
            age,
            payload: (),
        }
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn newscast_exchange_spreads_fresh_self_entries() {
        let mut a: Newscast<()> = Newscast::new(4);
        let mut b: Newscast<()> = Newscast::new(4);
        let ea = e(0, 0);
        let eb = e(1, 0);
        a.bootstrap(std::slice::from_ref(&eb), ea.addr);
        let mut r = rng();
        let (to, buf) = a.initiate(&ea, &mut r).unwrap();
        assert_eq!(to, NodeIdx(1));
        let reply = b.on_request(&eb, ea.addr, &buf, &mut r);
        a.on_response(ea.addr, &reply);
        // b learned a fresh descriptor of a, and a did not store itself.
        assert!(b.sample().iter().any(|x| x.addr == ea.addr && x.age == 0));
        assert!(!a.sample().iter().any(|x| x.addr == ea.addr));
    }

    #[test]
    fn newscast_initiate_needs_nonempty_view() {
        let mut a: Newscast<()> = Newscast::new(4);
        assert!(a.initiate(&e(0, 0), &mut rng()).is_none());
    }

    #[test]
    fn newscast_tick_ages_view() {
        let mut a: Newscast<()> = Newscast::new(4);
        a.bootstrap(&[e(1, 0)], NodeIdx(0));
        a.tick();
        assert_eq!(a.sample()[0].age, 1);
    }

    #[test]
    fn cyclon_contacts_oldest_and_removes_it() {
        let mut c: Cyclon<()> = Cyclon::new(4, 2);
        c.bootstrap(&[e(1, 3), e(2, 7), e(3, 0)], NodeIdx(0));
        let (to, buf) = c.initiate(&e(0, 0), &mut rng()).unwrap();
        assert_eq!(to, NodeIdx(2));
        assert!(!c.sample().iter().any(|x| x.addr == NodeIdx(2)));
        // Buffer contains a fresh self-descriptor.
        assert!(buf.iter().any(|x| x.addr == NodeIdx(0) && x.age == 0));
        assert!(buf.len() <= 2);
    }

    #[test]
    fn cyclon_remove_feedback() {
        let mut c: Cyclon<()> = Cyclon::new(4, 2);
        c.bootstrap(&[e(1, 0)], NodeIdx(0));
        c.remove(NodeIdx(1));
        assert!(c.sample().is_empty());
    }

    /// Both services must converge to fresh, live samples under repeated
    /// exchanges in a tiny fully-simulated loop.
    #[test]
    fn repeated_newscast_keeps_entries_fresh() {
        let n = 8u32;
        let mut svcs: Vec<Newscast<()>> = (0..n).map(|_| Newscast::new(4)).collect();
        let selfs: Vec<Entry<()>> = (0..n).map(|i| e(i, 0)).collect();
        // Ring bootstrap.
        for i in 0..n as usize {
            let next = selfs[(i + 1) % n as usize].clone();
            svcs[i].bootstrap(&[next], NodeIdx(i as u32));
        }
        let mut r = rng();
        for _round in 0..30 {
            for i in 0..n as usize {
                svcs[i].tick();
                if let Some((to, buf)) = {
                    let se = selfs[i].clone();
                    svcs[i].initiate(&se, &mut r)
                } {
                    let se_to = selfs[to.index()].clone();
                    let reply = svcs[to.index()].on_request(&se_to, NodeIdx(i as u32), &buf, &mut r);
                    svcs[i].on_response(NodeIdx(i as u32), &reply);
                }
            }
        }
        // Every view is full and reasonably fresh.
        for (i, s) in svcs.iter().enumerate() {
            assert_eq!(s.sample().len(), 4, "node {i} view not full");
            assert!(
                s.sample().iter().all(|x| x.age < 10),
                "node {i} has stale entries"
            );
        }
    }
}
