//! Generic T-Man topology construction (Jelasity & Babaoglu \[26\]).
//!
//! T-Man grows an arbitrary target topology from a gossip process: each
//! node keeps the `view_size` best-ranked descriptors it has seen, and
//! each round exchanges its view (plus a fresh peer-sampling list and a
//! fresh self-descriptor) with a well-ranked neighbor; both sides keep the
//! best of the union. With a ranking function that prefers ring-adjacent
//! ids this builds a ring; with utility ranking it builds the similarity
//! clusters of Vitis. The Vitis routing table specializes this machinery
//! ([`crate::rt::select_neighbors`]); this module provides the *generic*
//! construct plus convergence tests, so the substrate the paper cites is
//! available on its own.

use crate::entry::{merge_dedup, remove_addr, Entry};
use rand::rngs::SmallRng;
use rand::Rng;
use vitis_sim::event::NodeIdx;

/// A ranking function: smaller is better (distance-like).
pub trait RankFn<P> {
    /// Rank `candidate` from the perspective of `owner`.
    fn rank(&self, owner: &Entry<P>, candidate: &Entry<P>) -> f64;
}

impl<P, F: Fn(&Entry<P>, &Entry<P>) -> f64> RankFn<P> for F {
    fn rank(&self, owner: &Entry<P>, candidate: &Entry<P>) -> f64 {
        self(owner, candidate)
    }
}

/// Generic T-Man node state.
#[derive(Clone, Debug)]
pub struct TMan<P> {
    self_entry: Entry<P>,
    view: Vec<Entry<P>>,
    view_size: usize,
}

impl<P: Clone> TMan<P> {
    /// Create a node with its own descriptor and a target view size.
    pub fn new(self_entry: Entry<P>, view_size: usize) -> Self {
        assert!(view_size > 0);
        TMan {
            self_entry,
            view: Vec::new(),
            view_size,
        }
    }

    /// The node's own descriptor.
    pub fn self_entry(&self) -> &Entry<P> {
        &self.self_entry
    }

    /// Current view, best-ranked first (as of the last selection).
    pub fn view(&self) -> &[Entry<P>] {
        &self.view
    }

    /// Seed the view with bootstrap contacts.
    pub fn bootstrap(&mut self, contacts: &[Entry<P>], rank: &impl RankFn<P>) {
        self.absorb(contacts, rank);
    }

    /// Pick an exchange partner: a random node from the best half of the
    /// view (T-Man's "psi" peer selection compromise between convergence
    /// speed and robustness).
    pub fn select_peer(&self, rng: &mut SmallRng) -> Option<NodeIdx> {
        if self.view.is_empty() {
            return None;
        }
        let half = self.view.len().div_ceil(2);
        Some(self.view[rng.gen_range(0..half)].addr)
    }

    /// The buffer to send in an exchange: view plus fresh self-descriptor,
    /// optionally merged with a peer-sampling list.
    pub fn exchange_buffer(&self, sample: &[Entry<P>]) -> Vec<Entry<P>> {
        let mut buf = self.view.clone();
        merge_dedup(&mut buf, sample);
        let fresh = self.self_entry.refreshed(self.self_entry.payload.clone());
        merge_dedup(&mut buf, std::slice::from_ref(&fresh));
        buf
    }

    /// Merge a received buffer and keep the `view_size` best-ranked
    /// entries.
    pub fn absorb(&mut self, incoming: &[Entry<P>], rank: &impl RankFn<P>) {
        merge_dedup(&mut self.view, incoming);
        remove_addr(&mut self.view, self.self_entry.addr);
        let owner = self.self_entry.clone();
        self.view.sort_by(|a, b| {
            rank.rank(&owner, a)
                .partial_cmp(&rank.rank(&owner, b))
                .expect("ranks must not be NaN")
                .then_with(|| a.addr.cmp(&b.addr))
        });
        self.view.truncate(self.view_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::Id;
    use rand::SeedableRng;

    fn entry(i: u32, id: u64) -> Entry<()> {
        Entry {
            addr: NodeIdx(i),
            id: Id(id),
            age: 0,
            payload: (),
        }
    }

    /// Run a synchronous T-Man gossip over `n` nodes with the given rank
    /// function; returns the final states.
    fn converge(
        n: u32,
        view_size: usize,
        rounds: usize,
        ids: impl Fn(u32) -> u64,
        rank: impl RankFn<()> + Copy,
    ) -> Vec<TMan<()>> {
        let mut nodes: Vec<TMan<()>> = (0..n)
            .map(|i| TMan::new(entry(i, ids(i)), view_size))
            .collect();
        // Bootstrap: a random topology, as in the original T-Man
        // experiments.
        let mut rng = SmallRng::seed_from_u64(7);
        for (i, node) in nodes.iter_mut().enumerate() {
            let contacts: Vec<Entry<()>> = (0..3)
                .map(|_| {
                    let j = rng.gen_range(0..n);
                    entry(j, ids(j))
                })
                .filter(|e| e.addr.0 != i as u32)
                .collect();
            node.bootstrap(&contacts, &rank);
        }
        for _ in 0..rounds {
            for i in 0..n as usize {
                let Some(peer) = nodes[i].select_peer(&mut rng) else {
                    continue;
                };
                // Two uniformly random descriptors stand in for the peer
                // sampling service T-Man runs over (the long-range mixing
                // that keeps gossip from getting stuck in local optima).
                let sample: Vec<Entry<()>> = (0..2)
                    .map(|_| {
                        let j = rng.gen_range(0..n);
                        entry(j, ids(j))
                    })
                    .collect();
                let buf_i = nodes[i].exchange_buffer(&sample);
                let buf_p = nodes[peer.index()].exchange_buffer(&sample);
                nodes[peer.index()].absorb(&buf_i, &rank);
                nodes[i].absorb(&buf_p, &rank);
            }
        }
        nodes
    }

    /// Ring ranking: minimal circular distance. After convergence every
    /// node's two best entries are its true ring neighbors.
    #[test]
    fn converges_to_a_ring() {
        let n = 64u32;
        let step = u64::MAX / n as u64;
        let ids = move |i: u32| i as u64 * step;
        let rank = |o: &Entry<()>, c: &Entry<()>| o.id.ring_distance(c.id) as f64;
        let nodes = converge(n, 4, 20, ids, rank);
        let mut correct = 0;
        for (i, node) in nodes.iter().enumerate() {
            let want_a = ((i as u32) + 1) % n;
            let want_b = ((i as u32) + n - 1) % n;
            let top2: Vec<u32> = node.view().iter().take(2).map(|e| e.addr.0).collect();
            if top2.contains(&want_a) && top2.contains(&want_b) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 >= 0.95 * n as f64,
            "only {correct}/{n} nodes found both ring neighbors"
        );
    }

    /// Line ranking: absolute difference of scalar ids. The extremes of the
    /// line have their single true neighbor on top.
    #[test]
    fn converges_to_a_line() {
        let n = 32u32;
        let ids = |i: u32| i as u64; // scalar positions 0..n
        let rank = |o: &Entry<()>, c: &Entry<()>| (o.id.0 as f64 - c.id.0 as f64).abs();
        let nodes = converge(n, 4, 25, ids, rank);
        for (i, node) in nodes.iter().enumerate() {
            let best = node.view().first().expect("non-empty view");
            let d = (best.id.0 as i64 - i as i64).unsigned_abs();
            assert!(d <= 2, "node {i}: best neighbor at distance {d}");
        }
    }

    #[test]
    fn view_respects_capacity_and_excludes_self() {
        let rank = |o: &Entry<()>, c: &Entry<()>| o.id.ring_distance(c.id) as f64;
        let mut t = TMan::new(entry(0, 0), 3);
        let batch: Vec<Entry<()>> = (0..10).map(|i| entry(i, i as u64 * 100)).collect();
        t.absorb(&batch, &rank);
        assert_eq!(t.view().len(), 3);
        assert!(t.view().iter().all(|e| e.addr != NodeIdx(0)));
        // Best-ranked first: closest ids lead.
        assert_eq!(t.view()[0].addr, NodeIdx(1));
    }

    #[test]
    fn select_peer_prefers_best_half() {
        let rank = |o: &Entry<()>, c: &Entry<()>| o.id.ring_distance(c.id) as f64;
        let mut t = TMan::new(entry(0, 0), 4);
        t.absorb(
            &[entry(1, 10), entry(2, 20), entry(3, 1 << 40), entry(4, 1 << 50)],
            &rank,
        );
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = t.select_peer(&mut rng).unwrap();
            assert!(p == NodeIdx(1) || p == NodeIdx(2), "picked {p}");
        }
    }
}
