//! Ring (successor/predecessor) maintenance helpers.
//!
//! Two routing-table entries are always dedicated to the ring: the nodes
//! with the closest ids clockwise (successor) and counter-clockwise
//! (predecessor) among everything learnt so far. T-Man gossip makes this
//! converge to the true ring quickly, which is what gives lookups a single
//! consistent rendezvous node per topic.

use crate::entry::Entry;
use crate::id::Id;

/// Index of the candidate that is the best successor of `self_id`: the one
/// with the smallest non-zero clockwise distance. Ties (duplicate ids) break
/// by address for determinism.
pub fn find_successor<P>(self_id: Id, candidates: &[Entry<P>]) -> Option<usize> {
    best_by_distance(candidates, |e| self_id.distance_cw(e.id))
}

/// Index of the best predecessor of `self_id`: smallest non-zero
/// counter-clockwise distance.
pub fn find_predecessor<P>(self_id: Id, candidates: &[Entry<P>]) -> Option<usize> {
    best_by_distance(candidates, |e| e.id.distance_cw(self_id))
}

fn best_by_distance<P>(
    candidates: &[Entry<P>],
    dist: impl Fn(&Entry<P>) -> u64,
) -> Option<usize> {
    let mut best: Option<(usize, u64, u32)> = None;
    for (i, e) in candidates.iter().enumerate() {
        let d = dist(e);
        if d == 0 {
            continue; // self or id collision with self
        }
        let key = (d, e.addr.0);
        match best {
            Some((_, bd, ba)) if (bd, ba) <= key => {}
            _ => best = Some((i, d, e.addr.0)),
        }
    }
    best.map(|(i, _, _)| i)
}

/// Measure ring correctness over a snapshot: given each alive node's id and
/// its believed successor id, the fraction of nodes whose successor is the
/// true ring successor. 1.0 means the ring has converged.
pub fn ring_accuracy(nodes: &[(Id, Option<Id>)]) -> f64 {
    if nodes.is_empty() {
        return 1.0;
    }
    let mut ids: Vec<Id> = nodes.iter().map(|&(id, _)| id).collect();
    ids.sort();
    let true_succ = |id: Id| -> Id {
        // Next id in sorted order, wrapping.
        match ids.iter().position(|&x| x == id) {
            Some(i) => ids[(i + 1) % ids.len()],
            None => id,
        }
    };
    let correct = nodes
        .iter()
        .filter(|&&(id, succ)| succ == Some(true_succ(id)))
        .count();
    correct as f64 / nodes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitis_sim::event::NodeIdx;

    fn e(addr: u32, id: u64) -> Entry<()> {
        Entry {
            addr: NodeIdx(addr),
            id: Id(id),
            age: 0,
            payload: (),
        }
    }

    #[test]
    fn successor_is_closest_clockwise() {
        let cands = [e(1, 50), e(2, 120), e(3, 101)];
        assert_eq!(find_successor(Id(100), &cands), Some(2));
        // Wraps: from 120 the successor among {50, 101} is 50.
        let cands2 = [e(1, 50), e(3, 101)];
        assert_eq!(find_successor(Id(120), &cands2), Some(0));
    }

    #[test]
    fn predecessor_is_closest_counterclockwise() {
        let cands = [e(1, 50), e(2, 120), e(3, 99)];
        assert_eq!(find_predecessor(Id(100), &cands), Some(2));
        // Wraps: from 40 the predecessor among {50, 120} is 120.
        let cands2 = [e(1, 50), e(2, 120)];
        assert_eq!(find_predecessor(Id(40), &cands2), Some(1));
    }

    #[test]
    fn self_id_is_skipped() {
        let cands = [e(1, 100), e(2, 101)];
        assert_eq!(find_successor(Id(100), &cands), Some(1));
        assert_eq!(find_predecessor(Id(101), &cands), Some(0));
        assert_eq!(find_successor(Id(7), &[e(1, 7)]), None);
    }

    #[test]
    fn ring_accuracy_full_and_partial() {
        // Perfect ring over ids 10, 20, 30.
        let perfect = vec![
            (Id(10), Some(Id(20))),
            (Id(20), Some(Id(30))),
            (Id(30), Some(Id(10))),
        ];
        assert_eq!(ring_accuracy(&perfect), 1.0);
        let broken = vec![
            (Id(10), Some(Id(30))), // skips 20
            (Id(20), Some(Id(30))),
            (Id(30), None),
        ];
        assert!((ring_accuracy(&broken) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ring_accuracy(&[]), 1.0);
    }
}
