//! Symphony-style navigable small-world link selection.
//!
//! Symphony draws long-range link *distances* from the harmonic density
//! `p(d) ∝ 1/d` over `d ∈ [1/N, 1]` of the unit ring, which Kleinberg showed
//! yields greedy routing in `O(log²N / k)` hops with `k` such links. Vitis
//! keeps the distribution but acquires the links through gossip: each round a
//! node draws a target distance and adopts, from its current candidate
//! buffer, the node whose clockwise distance best matches the draw
//! (`select-sw-neighbor(RANDOM-DISTANCE)` of Algorithm 4).

use crate::entry::Entry;
use crate::id::Id;
use rand::Rng;

/// Draw a clockwise ring distance from the Symphony harmonic distribution,
/// scaled to the `u64` identifier space. `est_n` is the (estimated) network
/// size; draws land in `[space/est_n, space]`.
pub fn harmonic_distance<R: Rng>(est_n: usize, rng: &mut R) -> u64 {
    let n = est_n.max(2) as f64;
    // d_unit = exp((x - 1) * ln N) for x uniform in [0, 1) → density 1/d.
    let x: f64 = rng.gen();
    let d_unit = ((x - 1.0) * n.ln()).exp();
    let space = 2.0f64.powi(64);
    let d = (d_unit * space).round();
    if d >= space {
        u64::MAX
    } else {
        (d as u64).max(1)
    }
}

/// How well a candidate at clockwise distance `cand` matches a target
/// distance `want`: the absolute log-ratio, so "half as far" and "twice as
/// far" are equally bad — appropriate for a scale-free distribution.
#[inline]
fn log_mismatch(want: u64, cand: u64) -> f64 {
    ((cand.max(1) as f64).ln() - (want.max(1) as f64).ln()).abs()
}

/// Pick from `candidates` the best small-world neighbor for `self_id` given
/// a freshly drawn target distance: the candidate whose clockwise distance
/// from `self_id` is closest (in log scale) to the draw. Candidates at
/// distance zero (self) are skipped. Returns the index into `candidates`.
pub fn select_sw_neighbor<P, R: Rng>(
    self_id: Id,
    candidates: &[Entry<P>],
    est_n: usize,
    rng: &mut R,
) -> Option<usize> {
    let want = harmonic_distance(est_n, rng);
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in candidates.iter().enumerate() {
        let d = self_id.distance_cw(c.id);
        if d == 0 {
            continue;
        }
        let m = log_mismatch(want, d);
        if best.is_none_or(|(_, bm)| m < bm) {
            best = Some((i, m));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vitis_sim::event::NodeIdx;

    fn entry(id: u64) -> Entry<()> {
        Entry {
            addr: NodeIdx(id as u32),
            id: Id(id),
            age: 0,
            payload: (),
        }
    }

    #[test]
    fn harmonic_distance_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let d = harmonic_distance(1000, &mut rng);
            assert!(d >= 1);
        }
    }

    #[test]
    fn harmonic_distance_is_log_uniform() {
        // For p(d) ∝ 1/d over [space/N, space], the log of the distance is
        // uniform: each decade of scale should receive a similar share.
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 1 << 20;
        let lo_exp = 64.0 - (n as f64).log2(); // log2 of the minimum draw
        let mut decades = [0u32; 4];
        let samples = 40_000;
        for _ in 0..samples {
            let d = harmonic_distance(n, &mut rng) as f64;
            let pos = (d.log2() - lo_exp) / (64.0 - lo_exp); // 0..1
            let idx = (pos.clamp(0.0, 0.999) * 4.0) as usize;
            decades[idx] += 1;
        }
        for (i, &c) in decades.iter().enumerate() {
            let share = c as f64 / samples as f64;
            assert!(
                (share - 0.25).abs() < 0.03,
                "quartile {i} share {share}, expected ~0.25"
            );
        }
    }

    #[test]
    fn log_mismatch_symmetric_in_ratio() {
        assert!((log_mismatch(100, 200) - log_mismatch(100, 50)).abs() < 1e-12);
        assert_eq!(log_mismatch(64, 64), 0.0);
    }

    #[test]
    fn select_skips_self_and_picks_scale_match() {
        let self_id = Id(0);
        let near = entry(1 << 8);
        let far = entry(1 << 56);
        let me = entry(0);
        let cands = vec![me, near, far];
        let mut rng = SmallRng::seed_from_u64(1);
        let mut picked_near = 0;
        let mut picked_far = 0;
        // Large est_n widens the draw range to [2^4, 2^64] so both the near
        // (2^8) and far (2^56) candidates can win the log-scale match.
        for _ in 0..200 {
            match select_sw_neighbor(self_id, &cands, 1 << 60, &mut rng) {
                Some(1) => picked_near += 1,
                Some(2) => picked_far += 1,
                Some(0) => panic!("picked self"),
                _ => panic!("no pick"),
            }
        }
        // Both scales get picked; draws span the whole range.
        assert!(picked_near > 0 && picked_far > 0);
    }

    #[test]
    fn select_none_when_only_self() {
        let mut rng = SmallRng::seed_from_u64(1);
        let cands = vec![entry(0)];
        assert_eq!(select_sw_neighbor(Id(0), &cands, 100, &mut rng), None);
        assert_eq!(
            select_sw_neighbor::<(), _>(Id(0), &[], 100, &mut rng),
            None
        );
    }
}
