//! Greedy rendezvous routing over the hybrid overlay.
//!
//! A lookup for `hash(t)` moves, hop by hop, to the neighbor whose id
//! minimizes the circular distance to the target; it terminates at the node
//! that is closer than all of its neighbors — with a converged ring, the
//! globally closest node, i.e. the topic's rendezvous node. Any link may be
//! used: ring, small-world, or friend (the paper's relay paths "can include
//! any kinds of links").

use crate::id::Id;
use vitis_sim::event::NodeIdx;

/// Greedy next hop: among `neighbors`, the one strictly ring-closer to
/// `target` than `self_id`; `None` means this node is locally closest (the
/// rendezvous for `target`, once the ring has converged). Ties break by
/// lower raw id then address, for determinism.
pub fn next_hop<I>(self_id: Id, target: Id, neighbors: I) -> Option<NodeIdx>
where
    I: IntoIterator<Item = (Id, NodeIdx)>,
{
    let own = target.ring_distance(self_id);
    let mut best: Option<(u64, u64, NodeIdx)> = None;
    for (id, addr) in neighbors {
        let d = target.ring_distance(id);
        if d >= own {
            continue;
        }
        let key = (d, id.0, addr);
        match best {
            Some((bd, braw, baddr)) if (bd, braw, baddr) <= key => {}
            _ => best = Some(key),
        }
    }
    best.map(|(_, _, addr)| addr)
}

/// Result of a whole-path greedy walk over a static snapshot (used by tests
/// and by the harness to validate lookup consistency outside the engine).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookupPath {
    /// Nodes traversed, starting with the source, ending at the rendezvous.
    pub path: Vec<NodeIdx>,
}

impl LookupPath {
    /// Number of hops (edges) taken.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// The terminal (rendezvous) node.
    pub fn rendezvous(&self) -> NodeIdx {
        *self.path.last().expect("path never empty")
    }
}

/// Walk a greedy lookup over a static neighbor snapshot.
///
/// `neighbors_of(node)` yields `(id, addr)` pairs; `id_of(node)` gives a
/// node's ring id. Gives up (returns `None`) after `max_hops`, which only
/// happens on an inconsistent snapshot (greedy distance is strictly
/// decreasing, so cycles are impossible otherwise).
pub fn greedy_walk(
    source: NodeIdx,
    target: Id,
    max_hops: usize,
    id_of: impl Fn(NodeIdx) -> Id,
    neighbors_of: impl Fn(NodeIdx) -> Vec<(Id, NodeIdx)>,
) -> Option<LookupPath> {
    let mut path = vec![source];
    let mut cur = source;
    for _ in 0..max_hops {
        match next_hop(id_of(cur), target, neighbors_of(cur)) {
            Some(nxt) => {
                path.push(nxt);
                cur = nxt;
            }
            None => return Some(LookupPath { path }),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_hop_picks_strict_improvement_only() {
        let me = Id(100);
        let target = Id(0);
        // Neighbor at 150 is farther, neighbor at 60 closer, 40 closest.
        let hops = vec![
            (Id(150), NodeIdx(1)),
            (Id(60), NodeIdx(2)),
            (Id(40), NodeIdx(3)),
        ];
        assert_eq!(next_hop(me, target, hops), Some(NodeIdx(3)));
        assert_eq!(next_hop(me, target, vec![(Id(150), NodeIdx(1))]), None);
        assert_eq!(next_hop(me, target, vec![]), None);
    }

    #[test]
    fn next_hop_handles_wraparound_targets() {
        let me = Id(10);
        let target = Id(u64::MAX - 2); // just counter-clockwise of 0
        let hops = vec![(Id(5), NodeIdx(1)), (Id(u64::MAX - 100), NodeIdx(2))];
        // distance(me→t) = 13; node1 is at distance 8; node2 at 98.
        assert_eq!(next_hop(me, target, hops), Some(NodeIdx(1)));
    }

    /// Full ring of n nodes with succ/pred links plus one long link each:
    /// greedy walk must reach the globally closest node from everywhere.
    #[test]
    fn greedy_walk_terminates_at_global_closest() {
        let n: u64 = 64;
        let step = u64::MAX / n;
        let id_of = |x: NodeIdx| Id(x.0 as u64 * step);
        let neighbors_of = |x: NodeIdx| {
            let i = x.0 as u64;
            let succ = (i + 1) % n;
            let pred = (i + n - 1) % n;
            let long = (i + n / 2) % n;
            vec![
                (id_of(NodeIdx(succ as u32)), NodeIdx(succ as u32)),
                (id_of(NodeIdx(pred as u32)), NodeIdx(pred as u32)),
                (id_of(NodeIdx(long as u32)), NodeIdx(long as u32)),
            ]
        };
        let target = Id(5 * step + 3); // closest node: index 5
        for src in 0..n as u32 {
            let lp = greedy_walk(NodeIdx(src), target, 200, id_of, neighbors_of)
                .expect("walk must terminate");
            assert_eq!(lp.rendezvous(), NodeIdx(5), "from {src}");
            assert!(lp.hops() <= (n / 4 + 1) as usize);
        }
    }

    #[test]
    fn greedy_walk_zero_hops_when_source_is_rendezvous() {
        let id_of = |_x: NodeIdx| Id(0);
        let neighbors_of = |_x: NodeIdx| vec![];
        let lp = greedy_walk(NodeIdx(7), Id(123), 10, id_of, neighbors_of).unwrap();
        assert_eq!(lp.hops(), 0);
        assert_eq!(lp.rendezvous(), NodeIdx(7));
    }
}
