//! Static graph analysis over overlay snapshots.
//!
//! The experiment harness snapshots the current neighbor relation and uses
//! these utilities to find topic *clusters* (maximal connected subgraphs of
//! the subscribers of a topic — the unit the paper's gateway mechanism works
//! on), measure hop distances, and extract degree distributions.

use std::collections::VecDeque;

/// An undirected graph over dense node indices `0..n` (engine slots).
/// Self-loops and duplicate edges are ignored on insertion.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
}

impl Graph {
    /// An edgeless graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Add the undirected edge `{a, b}` (no-op for self-loops/duplicates).
    pub fn add_edge(&mut self, a: u32, b: u32) {
        if a == b {
            return;
        }
        let (ai, bi) = (a as usize, b as usize);
        assert!(ai < self.adj.len() && bi < self.adj.len(), "vertex out of range");
        if !self.adj[ai].contains(&b) {
            self.adj[ai].push(b);
            self.adj[bi].push(a);
        }
    }

    /// Build from an edge iterator.
    pub fn from_edges<I: IntoIterator<Item = (u32, u32)>>(n: usize, edges: I) -> Self {
        let mut g = Graph::new(n);
        for (a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Degrees of the given vertices (or all vertices if `None`).
    pub fn degrees(&self, subset: Option<&[u32]>) -> Vec<u64> {
        match subset {
            Some(vs) => vs.iter().map(|&v| self.degree(v) as u64).collect(),
            None => (0..self.len() as u32).map(|v| self.degree(v) as u64).collect(),
        }
    }

    /// Maximal connected components of the subgraph induced by `subset` —
    /// exactly the paper's "clusters" when `subset` is the subscriber set of
    /// a topic. Components are returned in discovery order; vertices within
    /// a component in BFS order.
    pub fn components_within(&self, subset: &[u32]) -> Vec<Vec<u32>> {
        let mut in_set = vec![false; self.len()];
        for &v in subset {
            in_set[v as usize] = true;
        }
        let mut seen = vec![false; self.len()];
        let mut comps = Vec::new();
        for &start in subset {
            if seen[start as usize] {
                continue;
            }
            let mut comp = Vec::new();
            let mut q = VecDeque::new();
            seen[start as usize] = true;
            q.push_back(start);
            while let Some(v) = q.pop_front() {
                comp.push(v);
                for &w in self.neighbors(v) {
                    if in_set[w as usize] && !seen[w as usize] {
                        seen[w as usize] = true;
                        q.push_back(w);
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }

    /// BFS hop counts from `src` within the subgraph induced by `subset`
    /// (or the whole graph if `None`). `None` entries are unreachable.
    pub fn bfs_hops(&self, src: u32, subset: Option<&[u32]>) -> Vec<Option<u32>> {
        let mut allowed = vec![subset.is_none(); self.len()];
        if let Some(vs) = subset {
            for &v in vs {
                allowed[v as usize] = true;
            }
        }
        let mut dist = vec![None; self.len()];
        if !allowed[src as usize] {
            return dist;
        }
        let mut q = VecDeque::new();
        dist[src as usize] = Some(0);
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            let d = dist[v as usize].expect("queued vertex has distance");
            for &w in self.neighbors(v) {
                if allowed[w as usize] && dist[w as usize].is_none() {
                    dist[w as usize] = Some(d + 1);
                    q.push_back(w);
                }
            }
        }
        dist
    }

    /// Eccentricity of `src` within `subset`: the maximum finite BFS
    /// distance. A diameter estimate for a component is the eccentricity
    /// from an extremal vertex (double-sweep lower bound).
    pub fn eccentricity_within(&self, src: u32, subset: &[u32]) -> u32 {
        self.bfs_hops(src, Some(subset))
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(0)
    }

    /// Double-sweep diameter lower bound of the component `comp` (exact on
    /// trees, a good estimate on gossip graphs).
    pub fn diameter_estimate(&self, comp: &[u32]) -> u32 {
        let Some(&start) = comp.first() else {
            return 0;
        };
        let d1 = self.bfs_hops(start, Some(comp));
        let far = comp
            .iter()
            .copied()
            .max_by_key(|&v| d1[v as usize].unwrap_or(0))
            .unwrap_or(start);
        self.eccentricity_within(far, comp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn edges_dedup_and_ignore_self_loops() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn components_within_respects_subset() {
        // 0-1-2-3-4 path; subset {0,1,3,4} splits into {0,1} and {3,4}.
        let g = path_graph(5);
        let comps = g.components_within(&[0, 1, 3, 4]);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![3, 4]);
        // Whole set: one component.
        assert_eq!(g.components_within(&[0, 1, 2, 3, 4]).len(), 1);
        assert!(g.components_within(&[]).is_empty());
    }

    #[test]
    fn bfs_hops_whole_graph_and_subset() {
        let g = path_graph(5);
        let d = g.bfs_hops(0, None);
        assert_eq!(d[4], Some(4));
        // Removing vertex 2 disconnects 0 from 4.
        let d = g.bfs_hops(0, Some(&[0, 1, 3, 4]));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[4], None);
        assert_eq!(d[2], None);
    }

    #[test]
    fn bfs_from_outside_subset_is_all_none() {
        let g = path_graph(3);
        let d = g.bfs_hops(1, Some(&[0, 2]));
        assert!(d.iter().all(|x| x.is_none()));
    }

    #[test]
    fn diameter_of_path_is_exact() {
        let g = path_graph(7);
        let comp: Vec<u32> = (0..7).collect();
        assert_eq!(g.diameter_estimate(&comp), 6);
        assert_eq!(g.eccentricity_within(3, &comp), 3);
        assert_eq!(g.diameter_estimate(&[]), 0);
        assert_eq!(g.diameter_estimate(&[2]), 0);
    }

    #[test]
    fn degrees_subset() {
        let g = path_graph(4);
        assert_eq!(g.degrees(None), vec![1, 2, 2, 1]);
        assert_eq!(g.degrees(Some(&[1, 3])), vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "vertex out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }
}
