//! The hybrid routing table and the generic neighbor-selection procedure
//! (the paper's Algorithm 4).
//!
//! A routing table holds, in `rt_size` total entries:
//! * the ring links — one successor and one predecessor (lookup
//!   consistency),
//! * `k_sw` small-world links drawn from the Symphony harmonic distribution
//!   (navigability), and
//! * the remaining entries as *friends*, ranked by a caller-supplied
//!   preference/utility function (similar-subscription clustering).
//!
//! With a utility that is identically zero and `k_sw = rt_size − 2` this
//! degenerates to the structured, subscription-oblivious table used by the
//! RVR baseline — the same code path serves both systems, which is exactly
//! the comparability the paper sets up.

use crate::entry::{merge_dedup, remove_addr, Entry};
use crate::id::Id;
use crate::ring::{find_predecessor, find_successor};
use crate::smallworld::select_sw_neighbor;
use rand::Rng;
use vitis_sim::event::NodeIdx;

/// Sizing parameters for neighbor selection.
#[derive(Clone, Copy, Debug)]
pub struct RtParams {
    /// Total routing-table size (node degree bound).
    pub rt_size: usize,
    /// Number of small-world links beyond the two ring links.
    pub k_sw: usize,
    /// (Estimated) network size, used by the harmonic distance draw.
    pub est_n: usize,
}

impl RtParams {
    /// Number of friend slots implied by the sizing.
    pub fn num_friends(&self) -> usize {
        self.rt_size.saturating_sub(2 + self.k_sw)
    }
}

/// The role a routing-table entry plays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkKind {
    /// Ring successor.
    Successor,
    /// Ring predecessor.
    Predecessor,
    /// Symphony small-world link.
    SmallWorld,
    /// Similarity (preference-function) link.
    Friend,
}

impl LinkKind {
    /// Stable lowercase label, used by telemetry exports.
    pub fn as_str(self) -> &'static str {
        match self {
            LinkKind::Successor => "succ",
            LinkKind::Predecessor => "pred",
            LinkKind::SmallWorld => "sw",
            LinkKind::Friend => "friend",
        }
    }
}

/// A bounded hybrid routing table.
#[derive(Clone, Debug, Default)]
pub struct HybridRt<P> {
    /// Ring successor (closest id clockwise).
    pub succ: Option<Entry<P>>,
    /// Ring predecessor (closest id counter-clockwise).
    pub pred: Option<Entry<P>>,
    /// Small-world links.
    pub sw: Vec<Entry<P>>,
    /// Friend (similarity) links.
    pub friends: Vec<Entry<P>>,
}

impl<P: Clone> HybridRt<P> {
    /// An empty table.
    pub fn new() -> Self {
        HybridRt {
            succ: None,
            pred: None,
            sw: Vec::new(),
            friends: Vec::new(),
        }
    }

    /// All entries with their link kind.
    pub fn iter_kinds(&self) -> impl Iterator<Item = (LinkKind, &Entry<P>)> {
        self.succ
            .iter()
            .map(|e| (LinkKind::Successor, e))
            .chain(self.pred.iter().map(|e| (LinkKind::Predecessor, e)))
            .chain(self.sw.iter().map(|e| (LinkKind::SmallWorld, e)))
            .chain(self.friends.iter().map(|e| (LinkKind::Friend, e)))
    }

    /// All entries, in successor/predecessor/sw/friend order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<P>> {
        self.iter_kinds().map(|(_, e)| e)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.succ.is_some() as usize
            + self.pred.is_some() as usize
            + self.sw.len()
            + self.friends.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries of one [`LinkKind`].
    pub fn count_kind(&self, kind: LinkKind) -> usize {
        match kind {
            LinkKind::Successor => self.succ.is_some() as usize,
            LinkKind::Predecessor => self.pred.is_some() as usize,
            LinkKind::SmallWorld => self.sw.len(),
            LinkKind::Friend => self.friends.len(),
        }
    }

    /// Age of the stalest entry, if the table is non-empty.
    pub fn max_age(&self) -> Option<u16> {
        self.iter().map(|e| e.age).max()
    }

    /// Whether `addr` appears anywhere in the table.
    pub fn contains(&self, addr: NodeIdx) -> bool {
        self.iter().any(|e| e.addr == addr)
    }

    /// `(id, addr)` pairs of every neighbor, for greedy routing.
    pub fn route_candidates(&self) -> Vec<(Id, NodeIdx)> {
        self.iter().map(|e| (e.id, e.addr)).collect()
    }

    /// Addresses of every neighbor.
    pub fn addrs(&self) -> Vec<NodeIdx> {
        self.iter().map(|e| e.addr).collect()
    }

    /// Clone all entries into a gossip buffer.
    pub fn to_vec(&self) -> Vec<Entry<P>> {
        self.iter().cloned().collect()
    }

    /// Age every entry by one round.
    pub fn age_all(&mut self) {
        for e in self
            .succ
            .iter_mut()
            .chain(self.pred.iter_mut())
            .chain(self.sw.iter_mut())
            .chain(self.friends.iter_mut())
        {
            e.age = e.age.saturating_add(1);
        }
    }

    /// Drop entries older than `max_age`; returns the removed addresses
    /// (the failure-detector expiry of Algorithm 6).
    pub fn expire(&mut self, max_age: u16) -> Vec<NodeIdx> {
        let mut removed = Vec::new();
        let mut check_opt = |slot: &mut Option<Entry<P>>| {
            if slot.as_ref().is_some_and(|e| e.age > max_age) {
                removed.push(slot.take().expect("checked above").addr);
            }
        };
        check_opt(&mut self.succ);
        check_opt(&mut self.pred);
        for list in [&mut self.sw, &mut self.friends] {
            list.retain(|e| {
                let keep = e.age <= max_age;
                if !keep {
                    removed.push(e.addr);
                }
                keep
            });
        }
        removed
    }

    /// Reset the age of `addr` to zero and replace its payload (receipt of
    /// a heartbeat/profile message, Algorithm 7). Returns true if present.
    pub fn refresh(&mut self, addr: NodeIdx, payload: P) -> bool {
        let mut found = false;
        for e in self
            .succ
            .iter_mut()
            .chain(self.pred.iter_mut())
            .chain(self.sw.iter_mut())
            .chain(self.friends.iter_mut())
        {
            if e.addr == addr {
                e.age = 0;
                e.payload = payload.clone();
                found = true;
            }
        }
        found
    }

    /// Remove `addr` from every slot it occupies.
    pub fn remove(&mut self, addr: NodeIdx) {
        if self.succ.as_ref().is_some_and(|e| e.addr == addr) {
            self.succ = None;
        }
        if self.pred.as_ref().is_some_and(|e| e.addr == addr) {
            self.pred = None;
        }
        self.sw.retain(|e| e.addr != addr);
        self.friends.retain(|e| e.addr != addr);
    }
}

/// The generic `selectNeighbors` of Algorithm 4: given the merged candidate
/// buffer (own RT ∪ peer's buffer ∪ fresh peer-sampling list), pick the new
/// routing table — successor, predecessor, `k_sw` small-world links by
/// harmonic draw, and the highest-utility remainder as friends.
///
/// `keep_sw` lists the addresses of the node's *current* small-world links:
/// following Symphony, established long-range links are kept while alive and
/// re-drawn only to fill vacant slots, which keeps the navigable structure
/// (and the relay paths built over it) stable between rounds. Pass `&[]` to
/// re-draw every slot.
///
/// `keep_friends` lists the current friend links: they win utility *ties*
/// against new candidates, so equal-utility clusters keep stable edges
/// instead of reshuffling every exchange (which would transiently fragment
/// clusters mid-dissemination). Strictly better candidates still replace
/// them. Pass `&[]` for stateless selection.
///
/// `utility` ranks friend candidates (higher is better); remaining ties
/// break randomly — deterministic tie-breaking would make every member of
/// an equal-utility group pick the same top-N friends, starving the rest of
/// in-links. Candidates equal to `self_addr`/`self_id` are ignored.
#[allow(clippy::too_many_arguments)] // the selection inputs are irreducible
pub fn select_neighbors<P: Clone, R: Rng>(
    self_addr: NodeIdx,
    self_id: Id,
    params: &RtParams,
    mut candidates: Vec<Entry<P>>,
    keep_sw: &[NodeIdx],
    keep_friends: &[NodeIdx],
    utility: impl Fn(&Entry<P>) -> f64,
    rng: &mut R,
) -> HybridRt<P> {
    remove_addr(&mut candidates, self_addr);
    let mut rt = HybridRt::new();

    if let Some(i) = find_successor(self_id, &candidates) {
        rt.succ = Some(candidates.swap_remove(i));
    }
    if let Some(i) = find_predecessor(self_id, &candidates) {
        rt.pred = Some(candidates.swap_remove(i));
    }
    // The sw quota can never overflow the table: ring links take priority.
    let sw_budget = params.k_sw.min(params.rt_size.saturating_sub(rt.len()));
    for &addr in keep_sw {
        if rt.sw.len() >= sw_budget {
            break;
        }
        if let Some(i) = candidates.iter().position(|e| e.addr == addr) {
            rt.sw.push(candidates.swap_remove(i));
        }
    }
    while rt.sw.len() < sw_budget {
        match select_sw_neighbor(self_id, &candidates, params.est_n, rng) {
            Some(i) => rt.sw.push(candidates.swap_remove(i)),
            None => break,
        }
    }

    let n_friends = params.num_friends();
    if n_friends > 0 && !candidates.is_empty() {
        // Rank by utility; current friends win ties (stability); remaining
        // ties break randomly (in-link diversity).
        let mut ranked: Vec<(f64, bool, u64, usize)> = candidates
            .iter()
            .enumerate()
            .map(|(i, e)| {
                (
                    utility(e),
                    !keep_friends.contains(&e.addr),
                    rng.gen::<u64>(),
                    i,
                )
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .expect("utility must not be NaN")
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        });
        ranked.truncate(n_friends);
        let keep: Vec<usize> = ranked.into_iter().map(|(_, _, _, i)| i).collect();
        let mut taken: Vec<Entry<P>> = Vec::with_capacity(keep.len());
        for (i, e) in candidates.into_iter().enumerate() {
            if keep.contains(&i) {
                taken.push(e);
            }
        }
        rt.friends = taken;
    }
    rt
}

/// Build the T-Man exchange buffer (Algorithm 2, lines 3–4): the fresh
/// peer-sampling list merged with the current routing table and a fresh
/// self-descriptor.
pub fn build_exchange_buffer<P: Clone>(
    rt: &HybridRt<P>,
    sample: &[Entry<P>],
    self_entry: &Entry<P>,
) -> Vec<Entry<P>> {
    let mut buf = rt.to_vec();
    merge_dedup(&mut buf, sample);
    let fresh = self_entry.refreshed(self_entry.payload.clone());
    merge_dedup(&mut buf, std::slice::from_ref(&fresh));
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn e(addr: u32, id: u64, util: f64) -> Entry<f64> {
        Entry {
            addr: NodeIdx(addr),
            id: Id(id),
            age: 0,
            payload: util,
        }
    }

    fn params(rt_size: usize, k_sw: usize) -> RtParams {
        RtParams {
            rt_size,
            k_sw,
            est_n: 64,
        }
    }

    #[test]
    fn num_friends_saturates() {
        assert_eq!(params(15, 1).num_friends(), 12);
        assert_eq!(params(3, 5).num_friends(), 0);
    }

    #[test]
    fn selection_partitions_candidates() {
        let self_id = Id(1000);
        let cands: Vec<Entry<f64>> = (0..20)
            .map(|i| e(i, (i as u64 + 1) * 500, i as f64))
            .collect();
        let mut rng = SmallRng::seed_from_u64(2);
        let rt = select_neighbors(NodeIdx(99), self_id, &params(8, 2), cands, &[], &[], |x| x.payload, &mut rng);
        // succ = id 1500 (addr 2), pred = id 500 (addr 0).
        assert_eq!(rt.succ.as_ref().unwrap().id, Id(1500));
        assert_eq!(rt.pred.as_ref().unwrap().id, Id(500));
        assert_eq!(rt.sw.len(), 2);
        assert_eq!(rt.friends.len(), 4);
        assert_eq!(rt.len(), 8);
        // No duplicates across roles.
        let mut addrs = rt.addrs();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 8);
        // Friends are the top-utility leftovers.
        let min_friend_util = rt
            .friends
            .iter()
            .map(|f| f.payload)
            .fold(f64::INFINITY, f64::min);
        assert!(min_friend_util > 10.0, "friends = {:?}", rt.friends);
    }

    #[test]
    fn selection_excludes_self() {
        let mut rng = SmallRng::seed_from_u64(2);
        let cands = vec![e(7, 70, 1.0), e(1, 10, 1.0)];
        let rt = select_neighbors(NodeIdx(7), Id(70), &params(4, 0), cands, &[], &[], |x| x.payload, &mut rng);
        assert!(!rt.contains(NodeIdx(7)));
        // The self-descriptor is dropped, so only node 1 remains; it fills
        // the successor slot and nothing is left for the predecessor.
        assert_eq!(rt.len(), 1);
        assert_eq!(rt.succ.as_ref().unwrap().addr, NodeIdx(1));
    }

    #[test]
    fn zero_utility_and_full_sw_is_structured_table() {
        let mut rng = SmallRng::seed_from_u64(5);
        let cands: Vec<Entry<f64>> = (0..30).map(|i| e(i, (i as u64) << 40, 0.0)).collect();
        let rt = select_neighbors(NodeIdx(99), Id(123), &params(8, 6), cands, &[], &[], |_| 0.0, &mut rng);
        assert!(rt.friends.is_empty());
        assert_eq!(rt.sw.len(), 6);
        assert!(rt.succ.is_some() && rt.pred.is_some());
    }

    #[test]
    fn aging_refresh_expire_cycle() {
        let mut rng = SmallRng::seed_from_u64(5);
        let cands: Vec<Entry<f64>> = (0..6).map(|i| e(i, (i as u64 + 1) * 100, 1.0)).collect();
        let mut rt =
            select_neighbors(NodeIdx(99), Id(250), &params(6, 1), cands, &[], &[], |x| x.payload, &mut rng);
        let n0 = rt.len();
        for _ in 0..3 {
            rt.age_all();
        }
        // Refresh one neighbor; expire the rest at max_age 2.
        let keep = rt.addrs()[0];
        assert!(rt.refresh(keep, 9.0));
        let removed = rt.expire(2);
        assert_eq!(removed.len(), n0 - 1);
        assert_eq!(rt.len(), 1);
        assert!(rt.contains(keep));
        assert!(!rt.refresh(NodeIdx(1234), 0.0));
    }

    #[test]
    fn per_kind_counts_and_max_age() {
        let mut rt: HybridRt<f64> = HybridRt::new();
        assert_eq!(rt.max_age(), None);
        rt.succ = Some(e(1, 10, 0.0));
        rt.sw.push(e(2, 20, 0.0));
        rt.sw.push(e(3, 30, 0.0));
        rt.friends.push(e(4, 40, 0.0));
        assert_eq!(rt.count_kind(LinkKind::Successor), 1);
        assert_eq!(rt.count_kind(LinkKind::Predecessor), 0);
        assert_eq!(rt.count_kind(LinkKind::SmallWorld), 2);
        assert_eq!(rt.count_kind(LinkKind::Friend), 1);
        assert_eq!(rt.max_age(), Some(0));
        rt.age_all();
        rt.sw[1].age = 7;
        assert_eq!(rt.max_age(), Some(7));
        assert_eq!(LinkKind::SmallWorld.as_str(), "sw");
        assert_eq!(LinkKind::Friend.as_str(), "friend");
    }

    #[test]
    fn remove_clears_all_roles() {
        let mut rt: HybridRt<f64> = HybridRt::new();
        rt.succ = Some(e(1, 10, 0.0));
        rt.pred = Some(e(1, 10, 0.0));
        rt.sw.push(e(2, 20, 0.0));
        rt.friends.push(e(1, 10, 0.0));
        rt.remove(NodeIdx(1));
        assert_eq!(rt.len(), 1);
        assert!(rt.contains(NodeIdx(2)));
    }

    #[test]
    fn exchange_buffer_contains_fresh_self() {
        let rt: HybridRt<f64> = HybridRt {
            succ: Some(e(1, 10, 0.0)),
            pred: None,
            sw: vec![],
            friends: vec![e(2, 20, 0.0)],
        };
        let sample = vec![e(3, 30, 0.0), e(1, 10, 0.0)];
        let me = e(9, 90, 5.0);
        let buf = build_exchange_buffer(&rt, &sample, &me);
        assert_eq!(buf.len(), 4); // 1, 2, 3, self
        let self_e = buf.iter().find(|x| x.addr == NodeIdx(9)).unwrap();
        assert_eq!(self_e.age, 0);
        assert_eq!(self_e.payload, 5.0);
    }
}
