//! # vitis-overlay
//!
//! The gossip overlay substrate shared by Vitis and its baselines:
//!
//! * a circular 64-bit [`id::Id`] space shared by node and topic ids,
//! * bounded partial [`view::View`]s of [`entry::Entry`] descriptors,
//! * gossip [`peer_sampling`] services (Newscast and Cyclon),
//! * Symphony-style [`smallworld`] link selection and [`ring`] maintenance,
//! * generic [`tman`] topology construction and the T-Man-driven
//!   [`rt::HybridRt`] routing table with the paper's Algorithm 4 neighbor
//!   selection,
//! * greedy rendezvous [`routing`], and
//! * static [`graph`] analysis (topic clusters, hop counts, degrees).

#![warn(missing_docs)]

pub mod entry;
pub mod estimate;
pub mod graph;
pub mod id;
pub mod peer_sampling;
pub mod ring;
pub mod routing;
pub mod rt;
pub mod smallworld;
pub mod tman;
pub mod view;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::entry::{merge_dedup, remove_addr, Entry};
    pub use crate::estimate::SizeEstimator;
    pub use crate::graph::Graph;
    pub use crate::id::{closest_to, Id};
    pub use crate::peer_sampling::{Cyclon, Newscast, PeerSampling};
    pub use crate::ring::{find_predecessor, find_successor, ring_accuracy};
    pub use crate::routing::{greedy_walk, next_hop, LookupPath};
    pub use crate::rt::{build_exchange_buffer, select_neighbors, HybridRt, LinkKind, RtParams};
    pub use crate::smallworld::{harmonic_distance, select_sw_neighbor};
    pub use crate::tman::{RankFn, TMan};
    pub use crate::view::View;
}
