//! Property-based tests for the simulator substrate.

use proptest::prelude::*;
use vitis_sim::churn::{ChurnEvent, ChurnKind, ChurnTrace};
use vitis_sim::metrics::{Histogram, Summary};
use vitis_sim::rng::{derive_seed, mix64};
use vitis_sim::stats::{ccdf, frequency, percentile, Zipf};
use vitis_sim::time::SimTime;

proptest! {
    /// Summary mean/min/max always bracket correctly and match a naive
    /// computation.
    #[test]
    fn summary_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = Summary::new();
        s.record_all(xs.iter().copied());
        let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - naive_mean).abs() < 1e-6 * (1.0 + naive_mean.abs()));
        prop_assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        prop_assert!(s.min() <= s.mean() && s.mean() <= s.max());
        prop_assert!(s.variance() >= 0.0);
    }

    /// Merging two summaries equals one pass over the concatenation.
    #[test]
    fn summary_merge_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 0..100),
        ys in proptest::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut a = Summary::new();
        a.record_all(xs.iter().copied());
        let mut b = Summary::new();
        b.record_all(ys.iter().copied());
        a.merge(&b);
        let mut whole = Summary::new();
        whole.record_all(xs.iter().chain(ys.iter()).copied());
        prop_assert_eq!(a.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
        }
    }

    /// Histograms conserve observations.
    #[test]
    fn histogram_conserves_mass(
        bins in 1usize..20,
        upper in 1.0f64..1e4,
        xs in proptest::collection::vec(-10.0f64..2e4, 0..100),
    ) {
        let mut h = Histogram::new(bins, upper);
        for &x in &xs {
            h.record(x);
        }
        let total: u64 = (0..=bins).map(|i| h.count(i)).sum();
        prop_assert_eq!(total, xs.len() as u64);
        let frac: f64 = (0..=bins).map(|i| h.fraction(i)).sum();
        if !xs.is_empty() {
            prop_assert!((frac - 1.0).abs() < 1e-9);
        }
    }

    /// Percentiles are monotone in `p` and bounded by the extremes.
    #[test]
    fn percentile_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&xs, lo);
        let b = percentile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        prop_assert!(percentile(&xs, 0.0) <= a + 1e-9);
        prop_assert!(b <= percentile(&xs, 100.0) + 1e-9);
    }

    /// CCDF starts at 1 for the minimum and is strictly decreasing.
    #[test]
    fn ccdf_shape(xs in proptest::collection::vec(0u64..1000, 1..100)) {
        let c = ccdf(&xs);
        prop_assert!((c[0].1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 > w[1].1);
        }
    }

    /// Frequency table counts sum to the number of observations.
    #[test]
    fn frequency_conserves(xs in proptest::collection::vec(0u64..50, 0..200)) {
        let f = frequency(&xs);
        prop_assert_eq!(f.iter().map(|&(_, c)| c).sum::<u64>(), xs.len() as u64);
        for w in f.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    /// Zipf PMF is a probability distribution and sampling hits the support.
    #[test]
    fn zipf_is_distribution(n in 1u64..500, s in 0.0f64..4.0, u in 0.0f64..1.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        let draw = z.sample_from_uniform(u);
        prop_assert!((1..=n).contains(&draw));
    }

    /// Seed derivation is injective-ish across domains/indices (no collisions
    /// in small ranges) and stable.
    #[test]
    fn derive_seed_stable_and_spread(master: u64, d1 in 0u64..8, d2 in 0u64..8, i1 in 0u64..64, i2 in 0u64..64) {
        prop_assert_eq!(derive_seed(master, d1, i1), derive_seed(master, d1, i1));
        if (d1, i1) != (d2, i2) {
            prop_assert_ne!(derive_seed(master, d1, i1), derive_seed(master, d2, i2));
        }
        let _ = mix64(master);
    }

    /// Any alternating join/leave sequence forms a valid trace, and
    /// `online_at` equals a naive replay.
    #[test]
    fn churn_trace_online_matches_replay(
        spec in proptest::collection::vec((0u32..10, 1u64..1000, 1u64..1000), 0..20),
        probe in 0u64..2500,
    ) {
        // Build alternating sessions per node from (node, start-gap, len).
        let mut events = Vec::new();
        let mut clock = [0u64; 10];
        for &(node, gap, len) in &spec {
            let start = clock[node as usize] + gap;
            let end = start + len;
            events.push(ChurnEvent { time: SimTime(start), node, kind: ChurnKind::Join });
            events.push(ChurnEvent { time: SimTime(end), node, kind: ChurnKind::Leave });
            clock[node as usize] = end + 1;
        }
        let trace = ChurnTrace::new(events.clone()).unwrap();
        // Naive replay.
        let mut online = [false; 10];
        let mut sorted = events.clone();
        sorted.sort_by_key(|e| e.time);
        for e in &sorted {
            if e.time.0 <= probe {
                online[e.node as usize] = e.kind == ChurnKind::Join;
            }
        }
        let expect = online.iter().filter(|&&b| b).count();
        prop_assert_eq!(trace.online_at(SimTime(probe)), expect);
    }
}
