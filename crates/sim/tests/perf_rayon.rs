//! The span profiler under parallel sweep workers: every worker thread
//! keeps its own span stack, and the per-path aggregate merged into the
//! global registry must be exact — the same counts as a sequential run,
//! regardless of scheduling.

use rayon::prelude::*;
use vitis_sim::perf;

#[test]
fn span_aggregation_is_deterministic_by_label_under_rayon() {
    perf::set_enabled(true);
    perf::reset_spans();

    const POINTS: usize = 64;
    const INNER: usize = 5;
    let results: Vec<u64> = (0..POINTS as u64)
        .into_par_iter()
        .map(|i| {
            let _sweep = perf::span("sweep_point");
            let mut acc = i;
            for _ in 0..INNER {
                let _step = perf::span("simulate");
                // Deterministic busy work standing in for one run.
                for k in 0..500u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
            }
            {
                let _collect = perf::span("collect");
                acc ^= acc >> 33;
            }
            acc
        })
        .collect();
    assert_eq!(results.len(), POINTS);

    perf::set_enabled(false);
    let spans = perf::take_spans();
    let stat = |path: &str| {
        spans
            .iter()
            .find(|(p, _)| p == path)
            .unwrap_or_else(|| panic!("missing span path {path:?}"))
            .1
    };

    // Counts are exact no matter how Rayon scheduled the points.
    assert_eq!(stat("sweep_point").count, POINTS as u64);
    assert_eq!(stat("sweep_point;simulate").count, (POINTS * INNER) as u64);
    assert_eq!(stat("sweep_point;collect").count, POINTS as u64);
    // Only the three folded paths exist — no cross-thread path bleed.
    assert_eq!(spans.len(), 3);
    // Parent totals dominate child totals; self + children ≈ total.
    let parent = stat("sweep_point");
    let children = stat("sweep_point;simulate").total_ns + stat("sweep_point;collect").total_ns;
    assert!(parent.total_ns >= children);
    assert!(parent.self_ns <= parent.total_ns);

    // A second identical sweep merges into a drained registry with the
    // same counts: aggregation is a pure function of the label structure.
    perf::set_enabled(true);
    let again: Vec<u64> = (0..POINTS as u64)
        .into_par_iter()
        .map(|i| {
            let _sweep = perf::span("sweep_point");
            for _ in 0..INNER {
                let _step = perf::span("simulate");
            }
            let _collect = perf::span("collect");
            i
        })
        .collect();
    perf::set_enabled(false);
    assert_eq!(again.len(), POINTS);
    let spans2 = perf::take_spans();
    let counts: Vec<(String, u64)> = spans2.iter().map(|(p, s)| (p.clone(), s.count)).collect();
    assert_eq!(
        counts,
        vec![
            ("sweep_point".to_string(), POINTS as u64),
            ("sweep_point;collect".to_string(), POINTS as u64),
            ("sweep_point;simulate".to_string(), (POINTS * INNER) as u64),
        ]
    );
}
