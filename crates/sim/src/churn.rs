//! Churn schedules and the driver that applies them to an engine.
//!
//! A churn *trace* is a time-ordered list of join/leave events over logical
//! node identities. The driver maps logical identities to engine slots,
//! constructs fresh protocol state through a caller-provided factory at each
//! (re-)join, and interleaves trace application with simulation progress.

use crate::engine::Engine;
use crate::event::NodeIdx;
use crate::network::NetworkModel;
use crate::protocol::{Protocol, StopReason};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// The direction of a churn event.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ChurnKind {
    /// The node comes online.
    Join,
    /// The node goes offline. The driver applies this as a crash (no goodbye
    /// protocol), matching measurement traces where departures are silent.
    Leave,
}

/// One entry of a churn trace over *logical* node ids (dense `0..n`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the event takes effect.
    pub time: SimTime,
    /// Logical node identity, dense from zero.
    pub node: u32,
    /// Join or leave.
    pub kind: ChurnKind,
}

/// A validated, time-sorted churn trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(from = "RawChurnTrace")]
pub struct ChurnTrace {
    events: Vec<ChurnEvent>,
    num_logical: u32,
    /// `prefix_online[i]` = nodes online after applying `events[..i]`.
    /// Derived, not serialized; rebuilt on deserialization.
    #[serde(skip)]
    prefix_online: Vec<u32>,
}

/// Serialized form of [`ChurnTrace`] (the derived cache is rebuilt on load,
/// keeping the on-disk format identical to earlier versions).
#[derive(Deserialize)]
struct RawChurnTrace {
    events: Vec<ChurnEvent>,
    num_logical: u32,
}

impl From<RawChurnTrace> for ChurnTrace {
    fn from(raw: RawChurnTrace) -> Self {
        ChurnTrace {
            prefix_online: prefix_online_counts(&raw.events),
            events: raw.events,
            num_logical: raw.num_logical,
        }
    }
}

/// Running online population after each event prefix. Valid traces strictly
/// alternate join/leave per node, so each event is exactly ±1.
fn prefix_online_counts(events: &[ChurnEvent]) -> Vec<u32> {
    let mut counts = Vec::with_capacity(events.len() + 1);
    let mut online = 0u32;
    counts.push(online);
    for e in events {
        match e.kind {
            ChurnKind::Join => online += 1,
            ChurnKind::Leave => online = online.saturating_sub(1),
        }
        counts.push(online);
    }
    counts
}

/// Errors detected while validating a churn trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChurnTraceError {
    /// A node joined while already online (event index).
    DoubleJoin(usize),
    /// A node left while offline (event index).
    LeaveWhileOffline(usize),
}

impl std::fmt::Display for ChurnTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnTraceError::DoubleJoin(i) => write!(f, "event {i}: join while already online"),
            ChurnTraceError::LeaveWhileOffline(i) => write!(f, "event {i}: leave while offline"),
        }
    }
}

impl std::error::Error for ChurnTraceError {}

impl ChurnTrace {
    /// Build a trace from events; sorts by time (stable) and validates that
    /// each logical node strictly alternates join/leave starting with join.
    pub fn new(mut events: Vec<ChurnEvent>) -> Result<Self, ChurnTraceError> {
        events.sort_by_key(|e| e.time);
        let num_logical = events.iter().map(|e| e.node + 1).max().unwrap_or(0);
        let mut online = vec![false; num_logical as usize];
        for (i, e) in events.iter().enumerate() {
            let st = &mut online[e.node as usize];
            match e.kind {
                ChurnKind::Join if *st => return Err(ChurnTraceError::DoubleJoin(i)),
                ChurnKind::Leave if !*st => return Err(ChurnTraceError::LeaveWhileOffline(i)),
                ChurnKind::Join => *st = true,
                ChurnKind::Leave => *st = false,
            }
        }
        Ok(ChurnTrace {
            prefix_online: prefix_online_counts(&events),
            events,
            num_logical,
        })
    }

    /// The validated events, sorted by time.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of distinct logical nodes referenced.
    pub fn num_logical_nodes(&self) -> u32 {
        self.num_logical
    }

    /// Time of the last event, or zero for an empty trace.
    pub fn horizon(&self) -> SimTime {
        self.events.last().map(|e| e.time).unwrap_or(SimTime::ZERO)
    }

    /// Number of nodes online at time `t` (after applying all events ≤ `t`).
    ///
    /// `O(log n)`: a binary search over the time-sorted events into a
    /// precomputed prefix-population table, so per-round sampling over large
    /// Skype traces stays linear overall instead of quadratic.
    pub fn online_at(&self, t: SimTime) -> usize {
        let idx = self.events.partition_point(|e| e.time <= t);
        self.prefix_online.get(idx).copied().unwrap_or(0) as usize
    }
}

/// Applies a [`ChurnTrace`] to an engine, constructing protocol state on each
/// join via the factory and crash-removing on each leave.
pub struct ChurnDriver {
    trace: ChurnTrace,
    cursor: usize,
    /// logical node -> engine slot (assigned at first join).
    slot_of: Vec<Option<NodeIdx>>,
}

impl ChurnDriver {
    /// Wrap a trace for application.
    pub fn new(trace: ChurnTrace) -> Self {
        let n = trace.num_logical_nodes() as usize;
        ChurnDriver {
            trace,
            cursor: 0,
            slot_of: vec![None; n],
        }
    }

    /// The engine slot currently (or last) used by a logical node.
    pub fn slot_of(&self, logical: u32) -> Option<NodeIdx> {
        self.slot_of.get(logical as usize).copied().flatten()
    }

    /// Whether every trace event has been applied.
    pub fn finished(&self) -> bool {
        self.cursor >= self.trace.events().len()
    }

    /// Time of the next unapplied event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.trace.events().get(self.cursor).map(|e| e.time)
    }

    /// Advance the engine to `until`, applying every trace event on the way
    /// at its exact timestamp. `factory(logical, slot_hint)` builds protocol
    /// state for a join; `slot_hint` is the previously used slot for re-joins.
    pub fn run_until<P, N, F>(&mut self, eng: &mut Engine<P, N>, until: SimTime, mut factory: F)
    where
        P: Protocol,
        N: NetworkModel,
        F: FnMut(u32, Option<NodeIdx>) -> P,
    {
        loop {
            let next = self.trace.events().get(self.cursor).copied();
            match next {
                Some(e) if e.time <= until => {
                    eng.run_until(e.time);
                    self.apply(eng, e, &mut factory);
                    self.cursor += 1;
                }
                _ => break,
            }
        }
        eng.run_until(until);
    }

    fn apply<P, N, F>(&mut self, eng: &mut Engine<P, N>, e: ChurnEvent, factory: &mut F)
    where
        P: Protocol,
        N: NetworkModel,
        F: FnMut(u32, Option<NodeIdx>) -> P,
    {
        match e.kind {
            ChurnKind::Join => {
                let prev = self.slot_of[e.node as usize];
                let proto = factory(e.node, prev);
                match prev {
                    Some(slot) => eng.rejoin_node(slot, proto),
                    None => {
                        let slot = eng.add_node(proto);
                        self.slot_of[e.node as usize] = Some(slot);
                    }
                }
            }
            ChurnKind::Leave => {
                if let Some(slot) = self.slot_of[e.node as usize] {
                    eng.remove_node(slot, StopReason::Crash);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::protocol::Context;
    use crate::time::Duration;

    fn ev(t: u64, n: u32, kind: ChurnKind) -> ChurnEvent {
        ChurnEvent {
            time: SimTime(t),
            node: n,
            kind,
        }
    }

    #[test]
    fn trace_sorts_and_validates() {
        let tr = ChurnTrace::new(vec![
            ev(10, 0, ChurnKind::Leave),
            ev(1, 0, ChurnKind::Join),
            ev(5, 1, ChurnKind::Join),
        ])
        .unwrap();
        assert_eq!(tr.events()[0].time, SimTime(1));
        assert_eq!(tr.num_logical_nodes(), 2);
        assert_eq!(tr.horizon(), SimTime(10));
    }

    #[test]
    fn trace_rejects_double_join() {
        let err = ChurnTrace::new(vec![ev(1, 0, ChurnKind::Join), ev(2, 0, ChurnKind::Join)])
            .unwrap_err();
        assert_eq!(err, ChurnTraceError::DoubleJoin(1));
    }

    #[test]
    fn trace_rejects_leave_while_offline() {
        let err = ChurnTrace::new(vec![ev(1, 0, ChurnKind::Leave)]).unwrap_err();
        assert_eq!(err, ChurnTraceError::LeaveWhileOffline(0));
    }

    #[test]
    fn online_at_tracks_population() {
        let tr = ChurnTrace::new(vec![
            ev(1, 0, ChurnKind::Join),
            ev(2, 1, ChurnKind::Join),
            ev(5, 0, ChurnKind::Leave),
            ev(9, 0, ChurnKind::Join),
        ])
        .unwrap();
        assert_eq!(tr.online_at(SimTime(0)), 0);
        assert_eq!(tr.online_at(SimTime(2)), 2);
        assert_eq!(tr.online_at(SimTime(6)), 1);
        assert_eq!(tr.online_at(SimTime(10)), 2);
    }

    struct Nop;
    impl Protocol for Nop {
        type Msg = ();
        fn on_start(&mut self, _: &mut Context<'_, ()>) {}
        fn on_round(&mut self, _: &mut Context<'_, ()>) {}
        fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeIdx, _: ()) {}
    }

    #[test]
    fn driver_applies_trace_and_reuses_slots() {
        let tr = ChurnTrace::new(vec![
            ev(10, 0, ChurnKind::Join),
            ev(20, 1, ChurnKind::Join),
            ev(30, 0, ChurnKind::Leave),
            ev(40, 0, ChurnKind::Join),
        ])
        .unwrap();
        let mut eng: Engine<Nop> = Engine::new(EngineConfig {
            seed: 3,
            round_period: Duration(8),
            desynchronize_rounds: true,
        });
        let mut drv = ChurnDriver::new(tr);
        let mut joins = 0;
        drv.run_until(&mut eng, SimTime(25), |_, _| {
            joins += 1;
            Nop
        });
        assert_eq!(joins, 2);
        assert_eq!(eng.alive_count(), 2);
        let slot0 = drv.slot_of(0).unwrap();
        drv.run_until(&mut eng, SimTime(100), |_, prev| {
            joins += 1;
            assert_eq!(prev, Some(slot0));
            Nop
        });
        assert_eq!(joins, 3);
        assert!(drv.finished());
        assert_eq!(eng.alive_count(), 2);
        assert_eq!(eng.num_slots(), 2, "rejoin must reuse the slot");
        assert_eq!(eng.now(), SimTime(100));
    }
}
