//! The discrete-event queue.
//!
//! A binary min-heap ordered by `(time, sequence)`. The monotonically
//! increasing sequence number makes event ordering fully deterministic even
//! when many events share a timestamp: ties are broken by insertion order.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies a node *slot* in the engine. Slots are stable for the lifetime
/// of a simulation: a node that leaves and re-joins re-uses its slot with a
/// bumped incarnation number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    /// The slot index as a usize, for indexing engine-internal vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An event scheduled for execution at a point in simulated time.
#[derive(Debug)]
pub(crate) struct Scheduled<E> {
    pub time: SimTime,
    pub seq: u64,
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic event queue: pops events in `(time, insertion order)`.
pub(crate) struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pop the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), "b");
        q.push(SimTime(1), "a");
        q.push(SimTime(9), "c");
        assert_eq!(q.pop(), Some((SimTime(1), "a")));
        assert_eq!(q.pop(), Some((SimTime(5), "b")));
        assert_eq!(q.pop(), Some((SimTime(9), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(7), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(3), 0);
        assert_eq!(q.pop(), Some((SimTime(3), 0)));
        q.push(SimTime(4), 2);
        assert_eq!(q.pop(), Some((SimTime(4), 2)));
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(8), ());
        q.push(SimTime(2), ());
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.len(), 2);
    }
}
