//! The discrete-event scheduler.
//!
//! Two queue implementations live here:
//!
//! * `EventQueue` — the production scheduler: a bucketed **calendar queue**
//!   with a ring of one-tick buckets plus an overflow list for far-future
//!   events. Pops are O(1) amortized, and a whole timestamp's worth of
//!   events can be drained in one dense pass (`EventQueue::pop_batch`),
//!   which is what lets the engine execute gossip rounds batch-wise instead
//!   of one heap pop per message.
//! * `HeapQueue` — the original binary min-heap, retained as the reference
//!   implementation for differential tests (the CI smoke job asserts both
//!   schedulers produce identical event orderings on a randomized trace).
//!
//! Both pop events in `(time, insertion order)`: a monotonically increasing
//! sequence number makes ordering fully deterministic even when many events
//! share a timestamp.
//!
//! # Scheduling contract (calendar queue)
//!
//! The calendar queue exploits the engine's monotonic clock: events may only
//! be scheduled at or after the timestamp of the last popped event (the
//! *floor*). The discrete-event loop guarantees this — a handler running at
//! time `t` schedules at `t + latency` with `latency >= 0` — and the queue
//! `debug_assert`s it.
//!
//! # Invariants
//!
//! * **Bucket purity** — every non-empty bucket holds events of exactly one
//!   absolute tick. A bucket at index `i` can only be filled with time `T`
//!   where `T ≡ i (mod RING)` and `T ∈ [floor, floor + RING)`; there is
//!   exactly one such `T` for a given floor, and events at `T - RING` are
//!   impossible because they would predate the floor.
//! * **Seq order within a bucket** — bucket vectors are append-only in
//!   sequence order. Overflow events are redistributed *eagerly* whenever
//!   the floor advances: an overflow event at time `T` was pushed while
//!   `floor ≤ T - RING`, whereas any direct bucket push at `T` requires
//!   `floor > T - RING`; redistribution happens at the exact pop where the
//!   floor first crosses `T - RING`, so it lands in the (necessarily empty)
//!   bucket before any direct push at `T` and FIFO order equals seq order.

use crate::time::SimTime;
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifies a node *slot* in the engine. Slots are stable for the lifetime
/// of a simulation: a node that leaves and re-joins re-uses its slot with a
/// bumped incarnation number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    /// The slot index as a usize, for indexing engine-internal vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An event scheduled for execution at a point in simulated time.
#[derive(Debug)]
pub(crate) struct Scheduled<E> {
    pub time: SimTime,
    pub seq: u64,
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Number of one-tick buckets in the calendar ring. With the default
/// 64-tick round period this covers 16 rounds of lookahead; anything
/// farther (long timers, retry backoffs) goes to the overflow list and is
/// redistributed as the clock approaches.
const RING: usize = 1024;

/// Deterministic calendar-queue scheduler: pops events in
/// `(time, insertion order)`, with dense per-timestamp batch draining.
///
/// See the module docs for the scheduling contract and invariants.
pub(crate) struct EventQueue<E> {
    /// `RING` one-tick buckets; `buckets[t % RING]` holds the events at
    /// absolute tick `t` for `t ∈ [floor, floor + RING)`, in seq order.
    buckets: Vec<Vec<(u64, E)>>,
    /// Absolute tick stored in each bucket (valid while non-empty).
    bucket_time: Vec<u64>,
    /// Events scheduled at or beyond `floor + RING` at push time, in seq
    /// order. Redistributed into the ring when the floor advances.
    overflow: Vec<Scheduled<E>>,
    /// Minimum timestamp in `overflow` (`u64::MAX` when empty).
    overflow_min: u64,
    /// Timestamp of the last popped event; no live event is earlier.
    floor: u64,
    /// Ring offsets `[0, hint)` from the floor are known empty — a scan
    /// cursor so repeated peeks don't rescan; lowered by pushes.
    hint: Cell<u64>,
    len: usize,
    next_seq: u64,
    batches_popped: u64,
    overflow_pushes: u64,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..RING).map(|_| Vec::new()).collect(),
            bucket_time: vec![0; RING],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            floor: 0,
            hint: Cell::new(0),
            len: 0,
            next_seq: 0,
            batches_popped: 0,
            overflow_pushes: 0,
        }
    }

    /// Schedule `event` at `time`. `time` must be at or after the last
    /// popped timestamp (debug-asserted; clamped in release builds).
    pub fn push(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time.0 >= self.floor,
            "push at t={} below scheduler floor {}",
            time.0,
            self.floor
        );
        let t = time.0.max(self.floor);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if t - self.floor >= RING as u64 {
            self.overflow_pushes += 1;
            self.overflow_min = self.overflow_min.min(t);
            self.overflow.push(Scheduled {
                time: SimTime(t),
                seq,
                event,
            });
        } else {
            let off = t - self.floor;
            if off < self.hint.get() {
                self.hint.set(off);
            }
            let i = (t % RING as u64) as usize;
            debug_assert!(
                self.buckets[i].is_empty() || self.bucket_time[i] == t,
                "bucket purity violated: bucket {} holds t={}, pushing t={}",
                i,
                self.bucket_time[i],
                t
            );
            self.bucket_time[i] = t;
            self.buckets[i].push((seq, event));
        }
    }

    /// Timestamp of the earliest pending event, if any. Does not advance
    /// the floor — the engine may still push earlier events after peeking.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(t) = self.scan_ring() {
            return Some(SimTime(t));
        }
        // Ring empty: the earliest live event is in the overflow list.
        debug_assert!(self.overflow_min != u64::MAX);
        Some(SimTime(self.overflow_min))
    }

    /// First non-empty tick in `[floor, floor + RING)`, advancing the
    /// scan-cursor hint past known-empty offsets.
    fn scan_ring(&self) -> Option<u64> {
        let mut off = self.hint.get();
        while off < RING as u64 {
            let i = ((self.floor + off) % RING as u64) as usize;
            if !self.buckets[i].is_empty() {
                self.hint.set(off);
                debug_assert_eq!(self.bucket_time[i], self.floor + off);
                return Some(self.floor + off);
            }
            off += 1;
        }
        self.hint.set(RING as u64);
        None
    }

    /// Advance the floor to `t` and eagerly pull every overflow event whose
    /// time now falls inside the ring window into its bucket.
    fn advance_floor(&mut self, t: u64) {
        debug_assert!(t >= self.floor);
        if t == self.floor {
            return;
        }
        self.floor = t;
        self.hint.set(0);
        if self.overflow_min < self.floor + RING as u64 {
            self.redistribute();
        }
    }

    fn redistribute(&mut self) {
        let horizon = self.floor + RING as u64;
        let drained = std::mem::take(&mut self.overflow);
        let mut min = u64::MAX;
        for s in drained {
            let t = s.time.0;
            if t < horizon {
                let i = (t % RING as u64) as usize;
                debug_assert!(
                    self.buckets[i].is_empty() || self.bucket_time[i] == t,
                    "bucket purity violated during redistribution"
                );
                self.bucket_time[i] = t;
                self.buckets[i].push((s.seq, s.event));
            } else {
                min = min.min(t);
                self.overflow.push(s);
            }
        }
        self.overflow_min = min;
    }

    /// Pop the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let t = self.peek_time()?.0;
        self.advance_floor(t);
        let i = (t % RING as u64) as usize;
        debug_assert!(!self.buckets[i].is_empty() && self.bucket_time[i] == t);
        let (_, event) = self.buckets[i].remove(0);
        self.len -= 1;
        Some((SimTime(t), event))
    }

    /// Drain *all* events at the earliest pending timestamp into `out`
    /// (in insertion order) and return that timestamp. Events pushed at the
    /// same timestamp while the batch is being processed form the next
    /// batch — exactly the order a one-at-a-time heap would produce.
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let t = self.peek_time()?.0;
        self.advance_floor(t);
        let i = (t % RING as u64) as usize;
        debug_assert!(!self.buckets[i].is_empty() && self.bucket_time[i] == t);
        self.len -= self.buckets[i].len();
        out.extend(self.buckets[i].drain(..).map(|(_, e)| e));
        self.batches_popped += 1;
        Some(SimTime(t))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How many batch drains ([`EventQueue::pop_batch`]) have run.
    /// Deterministic: a fixed-seed run always produces the same count.
    pub fn batches_popped(&self) -> u64 {
        self.batches_popped
    }

    /// How many pushes landed beyond the ring horizon and went to the
    /// overflow list. Deterministic.
    pub fn overflow_pushes(&self) -> u64 {
        self.overflow_pushes
    }
}

/// The original binary min-heap scheduler, kept as the reference
/// implementation: unlike the calendar queue it accepts pushes at any
/// timestamp. Differential tests assert both produce identical orderings
/// under the engine's monotonic scheduling contract.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) struct HeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

#[cfg_attr(not(test), allow(dead_code))]
impl<E> HeapQueue<E> {
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pop the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Drain all events at the earliest pending timestamp, mirroring
    /// [`EventQueue::pop_batch`].
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let t = self.peek_time()?;
        while self.peek_time() == Some(t) {
            out.push(self.pop().expect("peeked event vanished").1);
        }
        Some(t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), "b");
        q.push(SimTime(1), "a");
        q.push(SimTime(9), "c");
        assert_eq!(q.pop(), Some((SimTime(1), "a")));
        assert_eq!(q.pop(), Some((SimTime(5), "b")));
        assert_eq!(q.pop(), Some((SimTime(9), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(7), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(3), 0);
        assert_eq!(q.pop(), Some((SimTime(3), 0)));
        q.push(SimTime(4), 2);
        assert_eq!(q.pop(), Some((SimTime(4), 2)));
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(8), ());
        q.push(SimTime(2), ());
        assert_eq!(q.peek_time(), Some(SimTime(2)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_drains_one_timestamp_in_push_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(4), "x");
        q.push(SimTime(2), "a");
        q.push(SimTime(2), "b");
        q.push(SimTime(2), "c");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), Some(SimTime(2)));
        assert_eq!(out, vec!["a", "b", "c"]);
        out.clear();
        // Same-tick pushes during batch processing form the next batch.
        q.push(SimTime(2), "late");
        assert_eq!(q.pop_batch(&mut out), Some(SimTime(2)));
        assert_eq!(out, vec!["late"]);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some(SimTime(4)));
        assert_eq!(out, vec!["x"]);
        assert!(q.is_empty());
        assert_eq!(q.batches_popped(), 3);
    }

    #[test]
    fn far_future_events_wrap_past_the_ring_horizon() {
        // Events beyond floor + RING go to overflow and must come back out
        // in global (time, seq) order, including times that alias the same
        // bucket index across ring epochs.
        let r = RING as u64;
        let mut q = EventQueue::new();
        q.push(SimTime(5), "near");
        q.push(SimTime(5 + r), "one-epoch"); // same bucket index as "near"
        q.push(SimTime(5 + 3 * r), "three-epochs");
        q.push(SimTime(2 * r + 1), "mid");
        assert_eq!(q.overflow_pushes(), 3);
        assert_eq!(q.pop(), Some((SimTime(5), "near")));
        assert_eq!(q.pop(), Some((SimTime(5 + r), "one-epoch")));
        assert_eq!(q.pop(), Some((SimTime(2 * r + 1), "mid")));
        // Push more while the far event is still in overflow.
        q.push(SimTime(2 * r + 2), "after-mid");
        assert_eq!(q.pop(), Some((SimTime(2 * r + 2), "after-mid")));
        assert_eq!(q.pop(), Some((SimTime(5 + 3 * r), "three-epochs")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_redistribution_preserves_insertion_order() {
        // An overflow event and a direct push at the same timestamp: the
        // overflow event was scheduled first (smaller seq) and must pop
        // first even though it spent time parked in the overflow list.
        let r = RING as u64;
        let target = 2 * r; // far future at push time
        let mut q = EventQueue::new();
        q.push(SimTime(1), "a");
        q.push(SimTime(target), "parked"); // overflow (seq 1)
        assert_eq!(q.pop(), Some((SimTime(1), "a")));
        // Walk the floor forward until `target` is inside the ring window.
        q.push(SimTime(target - r + 10), "step");
        assert_eq!(q.pop(), Some((SimTime(target - r + 10), "step")));
        // Now floor = target - r + 10 > target - RING: "parked" has been
        // redistributed. A direct push at the same tick must pop after it.
        q.push(SimTime(target), "direct");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), Some(SimTime(target)));
        assert_eq!(out, vec!["parked", "direct"]);
    }

    #[test]
    fn len_counts_ring_and_overflow() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), 0u32);
        q.push(SimTime(RING as u64 * 5), 1);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    /// Deterministic xorshift for the differential trace below.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    /// The CI smoke check: the calendar queue and the reference heap must
    /// produce bit-identical `(time, event)` sequences on a randomized
    /// push/pop trace that respects the engine's monotonic contract,
    /// including far-future pushes that exercise the overflow path.
    #[test]
    fn calendar_and_heap_schedulers_agree_on_random_trace() {
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut rng = Lcg(0x5eed_cafe);
        let mut clock = 0u64; // last popped time = scheduling floor
        let mut next_id = 0u64;
        let mut cal_out: Vec<(u64, u64)> = Vec::new();
        let mut heap_out: Vec<(u64, u64)> = Vec::new();
        let mut cal_batch = Vec::new();
        let mut heap_batch = Vec::new();

        for step in 0..5000 {
            let op = rng.next() % 10;
            if op < 6 {
                // Push 1..=3 events at clock + delta, delta spanning the
                // ring (0..3*RING) so overflow and wraparound are hit.
                for _ in 0..=(rng.next() % 3) {
                    let delta = rng.next() % (3 * RING as u64);
                    let t = SimTime(clock + delta);
                    cal.push(t, next_id);
                    heap.push(t, next_id);
                    next_id += 1;
                }
            } else if op < 8 {
                // Single pop.
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "pop diverged at step {step}");
                if let Some((t, id)) = a {
                    clock = t.0;
                    cal_out.push((t.0, id));
                    heap_out.push((t.0, id));
                }
            } else {
                // Batch drain of one timestamp.
                cal_batch.clear();
                heap_batch.clear();
                let ta = cal.pop_batch(&mut cal_batch);
                let tb = heap.pop_batch(&mut heap_batch);
                assert_eq!(ta, tb, "batch time diverged at step {step}");
                assert_eq!(cal_batch, heap_batch, "batch diverged at step {step}");
                if let Some(t) = ta {
                    clock = t.0;
                    cal_out.extend(cal_batch.iter().map(|&id| (t.0, id)));
                    heap_out.extend(heap_batch.iter().map(|&id| (t.0, id)));
                }
            }
            assert_eq!(cal.len(), heap.len(), "len diverged at step {step}");
        }
        // Drain both fully.
        loop {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(a, b, "drain diverged");
            match a {
                Some((t, id)) => cal_out.push((t.0, id)),
                None => break,
            }
        }
        assert!(cal.is_empty() && heap.is_empty());
        // The combined sequence is sorted by (time, insertion order).
        for w in cal_out.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated");
        }
        assert_eq!(cal_out.len(), next_id as usize);
        assert!(cal.overflow_pushes() > 0, "trace never exercised overflow");
        let _ = heap_out;
    }
}
