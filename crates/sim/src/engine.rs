//! The deterministic discrete-event engine.
//!
//! The engine owns all node states, a single event queue, and the network
//! model. It is single-threaded by design: determinism and debuggability of
//! protocol logic trump parallel execution here (parameter-sweep parallelism
//! lives one level up, across independent engine instances — see the
//! experiment harness, which runs sweep points on Rayon).
//!
//! Gossip protocols are *cycle-driven* on top of the event queue: each alive
//! node receives a `RoundTick` every `round_period` ticks, desynchronized by
//! a per-node phase drawn at join time, exactly like PeerSim's event-driven
//! mode running a periodic protocol.

use crate::event::{EventQueue, NodeIdx};
use crate::network::{ConstantLatency, NetworkModel};
use crate::protocol::{Context, Effect, ParallelProtocol, Protocol, StopReason};
use crate::rng;
use crate::time::{Duration, SimTime};
use crate::trace::{KindTraffic, MsgTag, TraceEvent, TraceHandle, TrafficLedger};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Engine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Master seed; every RNG stream in the run derives from it.
    pub seed: u64,
    /// Gossip round period in ticks. Each node ticks once per period.
    pub round_period: Duration,
    /// If true, each node's tick phase is drawn uniformly in `[0, period)`;
    /// if false, all nodes tick in lock-step (useful in unit tests).
    pub desynchronize_rounds: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0xC0FFEE,
            round_period: Duration(64),
            desynchronize_rounds: true,
        }
    }
}

/// Per-slot bookkeeping.
struct Slot<P: Protocol> {
    proto: Option<P>,
    rng: SmallRng,
    incarnation: u32,
    joined_at: SimTime,
    /// Messages handed to the network by this node (control + data).
    sent: u64,
    /// Messages delivered to this node.
    received: u64,
    /// Frozen: alive but silent (fault injection). A frozen node executes
    /// no rounds and receives nothing; its pending ticks keep rescheduling
    /// so it resumes when thawed.
    frozen: bool,
}

enum Ev<M> {
    Deliver {
        to: NodeIdx,
        from: NodeIdx,
        msg: M,
    },
    /// Periodic gossip tick. The incarnation guard discards ticks scheduled
    /// for a previous life of the slot.
    RoundTick {
        node: NodeIdx,
        incarnation: u32,
    },
}

/// Aggregate message-count statistics for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total messages handed to the network.
    pub messages_sent: u64,
    /// Total messages delivered (sent minus lost minus addressed-to-dead).
    pub messages_delivered: u64,
    /// Messages that arrived at a slot with no alive node.
    pub messages_to_dead: u64,
    /// Messages the network model dropped in transit (loss, partitions).
    pub messages_lost: u64,
    /// Messages suppressed because the destination was frozen.
    pub messages_suppressed: u64,
    /// Round ticks executed.
    pub rounds_executed: u64,
}

/// The simulation engine. `P` is the per-node protocol, `N` the network
/// model (constant one-tick latency by default).
pub struct Engine<P: Protocol, N: NetworkModel = ConstantLatency> {
    cfg: EngineConfig,
    network: N,
    slots: Vec<Slot<P>>,
    queue: EventQueue<Ev<P::Msg>>,
    now: SimTime,
    engine_rng: SmallRng,
    stats: EngineStats,
    counters: crate::perf::EngineCounters,
    effects_buf: Vec<Effect<P::Msg>>,
    ledger: TrafficLedger,
    trace: Option<TraceHandle>,
    /// `(event id, destination slot)` of event-bearing messages the network
    /// dropped or freeze suppressed since the last traffic-window reset
    /// (see [`Protocol::event_of`]). Feeds network-loss attribution.
    net_drops: Vec<(u64, u32)>,
    /// Events popped in the current batch but not yet handled. Added to the
    /// queue length when updating the depth high-water mark, so batch
    /// draining reports the same `queue_hwm` a one-pop-at-a-time loop would.
    pending_virtual: u64,
    /// Reusable scratch buffer for batch draining.
    batch_buf: Vec<Ev<P::Msg>>,
}

impl<P: Protocol> Engine<P, ConstantLatency> {
    /// Engine with the default constant one-tick latency network.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine::with_network(cfg, ConstantLatency::default())
    }
}

impl<P: Protocol, N: NetworkModel> Engine<P, N> {
    /// Engine with an explicit network model.
    pub fn with_network(cfg: EngineConfig, network: N) -> Self {
        let engine_rng = rng::stream_rng(cfg.seed, rng::domain::ENGINE, 0);
        Engine {
            cfg,
            network,
            slots: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            engine_rng,
            stats: EngineStats::default(),
            counters: crate::perf::EngineCounters::default(),
            effects_buf: Vec::new(),
            ledger: TrafficLedger::new(),
            trace: None,
            net_drops: Vec::new(),
            pending_virtual: 0,
            batch_buf: Vec::new(),
        }
    }

    /// Install a shared trace; the engine records lifecycle and message
    /// events into it from now on.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Stop recording into the installed trace, if any.
    pub fn clear_trace(&mut self) {
        self.trace = None;
    }

    /// A clone of the installed trace handle, if any.
    pub fn trace_handle(&self) -> Option<TraceHandle> {
        self.trace.clone()
    }

    /// Per-message-kind sent/delivered counters since the last
    /// [`Engine::reset_kind_traffic`], as classified by
    /// [`Protocol::classify`].
    pub fn kind_traffic(&self) -> Vec<KindTraffic> {
        self.ledger.kinds().to_vec()
    }

    /// `(control, data)` messages sent since the last window reset.
    pub fn sent_by_class(&self) -> (u64, u64) {
        self.ledger.sent_by_class()
    }

    /// Zero the per-kind traffic counters (start of a measurement
    /// window). Aggregate [`EngineStats`] are unaffected. Also clears the
    /// per-window network-drop record.
    pub fn reset_kind_traffic(&mut self) {
        self.ledger.reset();
        self.net_drops.clear();
    }

    /// `(event id, destination slot)` pairs of event-bearing messages lost
    /// to the network (or freeze suppression) since the last window reset.
    /// Ordered by drop time; a pair may repeat if several copies addressed
    /// to the same node were dropped.
    pub fn network_event_drops(&self) -> &[(u64, u32)] {
        &self.net_drops
    }

    #[inline]
    fn trace_record(&self, ev: TraceEvent) {
        if let Some(t) = &self.trace {
            t.borrow_mut().record(ev);
        }
    }

    #[inline]
    fn trace_message(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.trace {
            let mut t = t.borrow_mut();
            if t.record_messages() {
                t.record(make());
            }
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured gossip round period.
    #[inline]
    pub fn round_period(&self) -> Duration {
        self.cfg.round_period
    }

    /// The master seed of this run.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// Aggregate message statistics.
    #[inline]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Cumulative performance counters (queue-depth high-water mark,
    /// per-kind protocol activations, scheduler batch/overflow counts).
    /// Deterministic — unlike wall-clock spans, these are safe to embed in
    /// reproducible artifacts.
    #[inline]
    pub fn perf_counters(&self) -> crate::perf::EngineCounters {
        let mut c = self.counters;
        c.sched_batches = self.queue.batches_popped();
        c.sched_overflow = self.queue.overflow_pushes();
        c
    }

    /// Push an event and keep the queue-depth high-water mark current.
    /// `pending_virtual` counts batch-popped-but-unhandled events so the
    /// mark matches what a one-pop-at-a-time scheduler would report.
    #[inline]
    fn push_event(&mut self, at: SimTime, ev: Ev<P::Msg>) {
        self.queue.push(at, ev);
        let depth = self.queue.len() as u64 + self.pending_virtual;
        if depth > self.counters.queue_hwm {
            self.counters.queue_hwm = depth;
        }
    }

    /// Number of pending events in the queue (ticks + in-flight messages).
    #[inline]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the event queue is fully drained (only possible when no node
    /// is alive, since alive nodes keep a pending round tick).
    #[inline]
    pub fn queue_is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of slots ever created (alive or dead).
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently alive nodes.
    pub fn alive_count(&self) -> usize {
        self.slots.iter().filter(|s| s.proto.is_some()).count()
    }

    /// Whether the node in `idx` is alive.
    #[inline]
    pub fn is_alive(&self, idx: NodeIdx) -> bool {
        self.slots
            .get(idx.index())
            .is_some_and(|s| s.proto.is_some())
    }

    /// Time at which the current incarnation of `idx` joined.
    pub fn joined_at(&self, idx: NodeIdx) -> Option<SimTime> {
        let s = self.slots.get(idx.index())?;
        s.proto.as_ref().map(|_| s.joined_at)
    }

    /// Shared access to a node's protocol state, if alive.
    pub fn node(&self, idx: NodeIdx) -> Option<&P> {
        self.slots.get(idx.index()).and_then(|s| s.proto.as_ref())
    }

    /// Exclusive access to a node's protocol state, if alive.
    ///
    /// Intended for experiment harnesses injecting stimuli (e.g. a publish
    /// call) outside the message flow; protocol logic itself should stay
    /// inside handlers.
    pub fn node_mut(&mut self, idx: NodeIdx) -> Option<&mut P> {
        self.slots
            .get_mut(idx.index())
            .and_then(|s| s.proto.as_mut())
    }

    /// Iterate over `(idx, &state)` of all alive nodes, in slot order.
    pub fn alive_nodes(&self) -> impl Iterator<Item = (NodeIdx, &P)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.proto.as_ref().map(|p| (NodeIdx(i as u32), p)))
    }

    /// Indices of all alive nodes, in slot order.
    pub fn alive_indices(&self) -> Vec<NodeIdx> {
        self.alive_nodes().map(|(i, _)| i).collect()
    }

    /// Per-node (sent, received) message counters for the slot's lifetime.
    pub fn slot_traffic(&self, idx: NodeIdx) -> (u64, u64) {
        let s = &self.slots[idx.index()];
        (s.sent, s.received)
    }

    /// Inject a message into `to` from outside the protocol flow — harness
    /// stimuli such as a publish command. Delivered one tick from now with
    /// `from == to`, like a self-timer.
    pub fn inject(&mut self, to: NodeIdx, msg: P::Msg) {
        self.push_event(
            self.now + Duration(1),
            Ev::Deliver {
                to,
                from: to,
                msg,
            },
        );
    }

    /// Add a new node in a fresh slot; runs `on_start` immediately and
    /// schedules its round ticks. Returns the slot index.
    pub fn add_node(&mut self, proto: P) -> NodeIdx {
        let idx = NodeIdx(self.slots.len() as u32);
        let node_rng = rng::node_rng(self.cfg.seed, idx.0, 0);
        self.slots.push(Slot {
            proto: Some(proto),
            rng: node_rng,
            incarnation: 0,
            joined_at: self.now,
            sent: 0,
            received: 0,
            frozen: false,
        });
        self.trace_record(TraceEvent::Join {
            now: self.now.0,
            node: idx.0,
            rejoin: false,
        });
        self.start_node(idx);
        idx
    }

    /// Re-join a node into a previously vacated slot with fresh state.
    ///
    /// # Panics
    /// Panics if the slot is still alive.
    pub fn rejoin_node(&mut self, idx: NodeIdx, proto: P) {
        let slot = &mut self.slots[idx.index()];
        assert!(slot.proto.is_none(), "rejoin into alive slot {idx}");
        slot.incarnation += 1;
        slot.rng = rng::node_rng(self.cfg.seed, idx.0, slot.incarnation);
        slot.proto = Some(proto);
        slot.joined_at = self.now;
        slot.frozen = false;
        self.trace_record(TraceEvent::Join {
            now: self.now.0,
            node: idx.0,
            rejoin: true,
        });
        self.start_node(idx);
    }

    fn start_node(&mut self, idx: NodeIdx) {
        self.dispatch(idx, DispatchKind::Start);
        let phase = if self.cfg.desynchronize_rounds {
            Duration(self.engine_rng.gen_range(1..=self.cfg.round_period.ticks()))
        } else {
            self.cfg.round_period
        };
        let inc = self.slots[idx.index()].incarnation;
        self.push_event(
            self.now + phase,
            Ev::RoundTick {
                node: idx,
                incarnation: inc,
            },
        );
    }

    /// Freeze or thaw the node in `idx` (fault injection: alive but
    /// silent). While frozen the node executes no rounds and receives no
    /// messages — inbound deliveries are suppressed and counted, and its
    /// round ticks keep rescheduling so it resumes where it left off when
    /// thawed. No-op on dead or out-of-range slots (the flag clears on
    /// rejoin anyway).
    pub fn set_frozen(&mut self, idx: NodeIdx, frozen: bool) {
        if let Some(slot) = self.slots.get_mut(idx.index()) {
            if slot.proto.is_some() {
                slot.frozen = frozen;
            }
        }
    }

    /// Whether the node in `idx` is alive and currently frozen.
    pub fn is_frozen(&self, idx: NodeIdx) -> bool {
        self.slots
            .get(idx.index())
            .is_some_and(|s| s.proto.is_some() && s.frozen)
    }

    /// Stop the node in `idx`. With [`StopReason::Leave`] the protocol's
    /// `on_stop` effects (goodbye messages) are applied; with
    /// [`StopReason::Crash`] they are discarded.
    pub fn remove_node(&mut self, idx: NodeIdx, reason: StopReason) {
        if !self.is_alive(idx) {
            return;
        }
        self.trace_record(TraceEvent::Leave {
            now: self.now.0,
            node: idx.0,
            crash: reason == StopReason::Crash,
        });
        self.dispatch(idx, DispatchKind::Stop(reason));
        self.slots[idx.index()].proto = None;
    }

    /// Run the simulation until simulated time `t` (inclusive of events at
    /// `t`), then set the clock to `t`.
    ///
    /// Events are drained in dense per-timestamp batches from the calendar
    /// queue (one bucket grab per distinct tick instead of one heap pop per
    /// event); handling order is identical to a one-at-a-time loop.
    pub fn run_until(&mut self, t: SimTime) {
        let _span = crate::perf::span("engine.run_until");
        let mut batch = std::mem::take(&mut self.batch_buf);
        while let Some(et) = self.queue.peek_time() {
            if et > t {
                break;
            }
            batch.clear();
            let time = self.queue.pop_batch(&mut batch).expect("peeked event vanished");
            debug_assert!(time >= self.now, "event queue went backwards");
            self.now = time;
            self.pending_virtual = batch.len() as u64;
            for ev in batch.drain(..) {
                self.pending_virtual -= 1;
                self.handle_event(ev);
            }
        }
        self.batch_buf = batch;
        self.now = t;
    }

    /// Advance the clock by `d` ticks, executing everything due.
    pub fn run_for(&mut self, d: Duration) {
        self.run_until(self.now + d);
    }

    /// Advance by `n` gossip round periods.
    pub fn run_rounds(&mut self, n: u64) {
        for _ in 0..n {
            self.run_for(self.cfg.round_period);
        }
    }

    /// Drain every pending event regardless of timestamp (the clock follows
    /// the last executed event). Useful to let a dissemination cascade
    /// complete; be sure protocols are quiescent (ticks keep the queue
    /// non-empty, so this caps at `max_events`).
    pub fn drain(&mut self, max_events: u64) {
        for _ in 0..max_events {
            match self.queue.pop() {
                Some((time, ev)) => {
                    self.now = time;
                    self.handle_event(ev);
                }
                None => break,
            }
        }
    }

    fn handle_event(&mut self, ev: Ev<P::Msg>) {
        match ev {
            Ev::Deliver { to, from, msg } => {
                let alive = self
                    .slots
                    .get(to.index())
                    .is_some_and(|s| s.proto.is_some());
                if alive && self.slots[to.index()].frozen {
                    // Frozen destination: the message is lost as if the
                    // node's link went dark (alive but silent).
                    self.stats.messages_suppressed += 1;
                    self.record_net_drop(from, to, &msg);
                } else if alive {
                    self.slots[to.index()].received += 1;
                    self.stats.messages_delivered += 1;
                    let tag = P::classify(&msg);
                    self.ledger.record_deliver(tag);
                    self.trace_message(|| TraceEvent::MsgDeliver {
                        now: self.now.0,
                        from: from.0,
                        to: to.0,
                        kind: std::borrow::Cow::Borrowed(tag.kind),
                        class: tag.class,
                    });
                    self.dispatch(to, DispatchKind::Message { from, msg });
                } else {
                    self.stats.messages_to_dead += 1;
                }
            }
            Ev::RoundTick { node, incarnation } => {
                let alive = self
                    .slots
                    .get(node.index())
                    .is_some_and(|s| s.proto.is_some() && s.incarnation == incarnation);
                if alive {
                    if !self.slots[node.index()].frozen {
                        self.stats.rounds_executed += 1;
                        self.dispatch(node, DispatchKind::Round);
                    }
                    // Frozen nodes skip the round but keep the tick chain
                    // alive so they resume when thawed.
                    self.push_event(
                        self.now + self.cfg.round_period,
                        Ev::RoundTick { node, incarnation },
                    );
                }
            }
        }
    }

    /// Account for a message lost in transit (network drop or freeze
    /// suppression): remember its event id for loss attribution and emit a
    /// `net_drop` trace record.
    fn record_net_drop(&mut self, from: NodeIdx, to: NodeIdx, msg: &P::Msg) {
        let event = P::event_of(msg);
        if let Some(ev) = event {
            self.net_drops.push((ev, to.0));
        }
        let tag = P::classify(msg);
        self.trace_message(|| TraceEvent::NetDrop {
            now: self.now.0,
            from: from.0,
            to: to.0,
            kind: std::borrow::Cow::Borrowed(tag.kind),
            event,
        });
    }

    fn dispatch(&mut self, idx: NodeIdx, kind: DispatchKind<P::Msg>) {
        // Take the protocol out of its slot so we can hand out `&mut` to both
        // the protocol and the slot RNG without aliasing.
        let mut proto = match self.slots[idx.index()].proto.take() {
            Some(p) => p,
            None => return,
        };
        match &kind {
            DispatchKind::Start => self.counters.activations_start += 1,
            DispatchKind::Round => self.counters.activations_round += 1,
            DispatchKind::Message { .. } => self.counters.activations_message += 1,
            DispatchKind::Stop(_) => self.counters.activations_stop += 1,
        }
        let discard_effects = matches!(kind, DispatchKind::Stop(StopReason::Crash));
        let mut effects = std::mem::take(&mut self.effects_buf);
        effects.clear();
        let sent;
        {
            let slot = &mut self.slots[idx.index()];
            let mut ctx = Context::new(idx, self.now, &mut slot.rng, &mut effects);
            match kind {
                DispatchKind::Start => proto.on_start(&mut ctx),
                DispatchKind::Round => proto.on_round(&mut ctx),
                DispatchKind::Message { from, msg } => proto.on_message(&mut ctx, from, msg),
                DispatchKind::Stop(reason) => proto.on_stop(&mut ctx, reason),
            }
            sent = ctx.sent;
        }
        self.slots[idx.index()].proto = Some(proto);
        if discard_effects {
            effects.clear();
        } else {
            self.slots[idx.index()].sent += sent;
            self.apply_effects(idx, &mut effects);
        }
        self.effects_buf = effects;
    }

    /// Apply the buffered effects of one handler run on node `idx`:
    /// accounting, tracing, network latency draws and event pushes, in
    /// effect order. Shared by serial dispatch and the parallel merge.
    fn apply_effects(&mut self, idx: NodeIdx, effects: &mut Vec<Effect<P::Msg>>) {
        for eff in effects.drain(..) {
            match eff {
                Effect::Send { to, msg } => {
                    self.stats.messages_sent += 1;
                    let tag = P::classify(&msg);
                    self.ledger.record_send(tag);
                    self.trace_message(|| TraceEvent::MsgSend {
                        now: self.now.0,
                        from: idx.0,
                        to: to.0,
                        kind: std::borrow::Cow::Borrowed(tag.kind),
                        class: tag.class,
                    });
                    if let Some(lat) =
                        self.network.latency(self.now, idx, to, &mut self.engine_rng)
                    {
                        self.push_event(
                            self.now + lat,
                            Ev::Deliver {
                                to,
                                from: idx,
                                msg,
                            },
                        );
                    } else {
                        self.stats.messages_lost += 1;
                        self.record_net_drop(idx, to, &msg);
                    }
                }
                Effect::TimerMsg { delay, msg } => {
                    self.push_event(
                        self.now + delay,
                        Ev::Deliver {
                            to: idx,
                            from: idx,
                            msg,
                        },
                    );
                }
            }
        }
    }
}

impl<P: ParallelProtocol, N: NetworkModel> Engine<P, N> {
    /// Like [`Engine::run_until`], but executes each timestamp batch's
    /// protocol handlers in parallel across node slots. Bit-identical to
    /// serial execution at any thread count (including 1):
    ///
    /// 1. **Pre-pass (serial)** — each popped event is classified against
    ///    slot state exactly as [`Engine::run_until`] would (dead, frozen,
    ///    stale incarnation, runnable). Runnable events are grouped by
    ///    destination node in first-occurrence order; each group checks the
    ///    node's protocol state and private RNG out of its slot. Valid
    ///    because nothing inside batch handling changes aliveness, freeze
    ///    flags or incarnations — those only move via external engine calls.
    /// 2. **Workers (parallel)** — each group runs its node's handlers in
    ///    event order with the node's own RNG, buffering effects per event
    ///    and deferring shared-sink writes (see
    ///    [`ParallelProtocol::set_deferred`]). No worker touches the
    ///    engine RNG, the queue, the trace or the ledger.
    /// 3. **Merge (serial)** — effects, stats, trace records, deferred
    ///    shared-sink operations, network latency draws (engine RNG) and
    ///    event pushes are applied in exact original event order, so every
    ///    downstream consumer sees the same byte stream as serial mode.
    pub fn run_until_parallel(&mut self, t: SimTime) {
        let _span = crate::perf::span("engine.run_until_parallel");
        let mut batch = std::mem::take(&mut self.batch_buf);
        let mut group_of = vec![u32::MAX; self.slots.len()];
        let mut actions: Vec<Action> = Vec::new();
        while let Some(et) = self.queue.peek_time() {
            if et > t {
                break;
            }
            batch.clear();
            let time = self.queue.pop_batch(&mut batch).expect("peeked event vanished");
            debug_assert!(time >= self.now, "event queue went backwards");
            self.now = time;
            self.process_batch_parallel(&mut batch, &mut actions, &mut group_of);
        }
        self.batch_buf = batch;
        self.now = t;
    }

    fn process_batch_parallel(
        &mut self,
        batch: &mut Vec<Ev<P::Msg>>,
        actions: &mut Vec<Action>,
        group_of: &mut [u32],
    ) {
        self.pending_virtual = batch.len() as u64;
        actions.clear();
        let mut groups: Vec<NodeGroup<P>> = Vec::new();

        // Pre-pass: classify in event order, group runnable work per node.
        // A node already checked out into a work group has `proto == None`
        // in its slot, so aliveness checks must treat grouped as alive.
        for ev in batch.drain(..) {
            match ev {
                Ev::Deliver { to, from, msg } => {
                    let grouped =
                        group_of.get(to.index()).is_some_and(|&g| g != u32::MAX);
                    let alive = grouped
                        || self
                            .slots
                            .get(to.index())
                            .is_some_and(|s| s.proto.is_some());
                    if alive && self.slots[to.index()].frozen {
                        actions.push(Action::NetSuppressed {
                            from,
                            to,
                            event: P::event_of(&msg),
                            tag: P::classify(&msg),
                        });
                    } else if alive {
                        let tag = P::classify(&msg);
                        let g = Self::group_for(&mut groups, group_of, &mut self.slots, to);
                        groups[g as usize].items.push(WorkItem::Deliver { from, msg });
                        actions.push(Action::WorkDeliver {
                            group: g,
                            from,
                            to,
                            tag,
                        });
                    } else {
                        actions.push(Action::ToDead);
                    }
                }
                Ev::RoundTick { node, incarnation } => {
                    let grouped =
                        group_of.get(node.index()).is_some_and(|&g| g != u32::MAX);
                    let alive = self.slots.get(node.index()).is_some_and(|s| {
                        (grouped || s.proto.is_some()) && s.incarnation == incarnation
                    });
                    if !alive {
                        actions.push(Action::StaleTick);
                    } else if self.slots[node.index()].frozen {
                        actions.push(Action::FrozenTick { node, incarnation });
                    } else {
                        let g = Self::group_for(&mut groups, group_of, &mut self.slots, node);
                        groups[g as usize].items.push(WorkItem::Round);
                        actions.push(Action::WorkRound {
                            group: g,
                            node,
                            incarnation,
                        });
                    }
                }
            }
        }

        // Workers: run each node's handlers. Group order is preserved by
        // the parallel collect; falling back to a plain sequential map when
        // parallelism can't help keeps the code path semantics identical.
        let now = self.now;
        let mut results: Vec<GroupResult<P>> =
            if groups.len() >= 2 && rayon::current_num_threads() > 1 {
                use rayon::prelude::*;
                groups
                    .into_par_iter()
                    .map(|g| run_node_group(now, g))
                    .collect()
            } else {
                groups.into_iter().map(|g| run_node_group(now, g)).collect()
            };

        // Merge: replay every side effect in original event order.
        for action in actions.drain(..) {
            self.pending_virtual -= 1;
            match action {
                Action::ToDead => self.stats.messages_to_dead += 1,
                Action::NetSuppressed {
                    from,
                    to,
                    event,
                    tag,
                } => {
                    self.stats.messages_suppressed += 1;
                    if let Some(ev) = event {
                        self.net_drops.push((ev, to.0));
                    }
                    self.trace_message(|| TraceEvent::NetDrop {
                        now: self.now.0,
                        from: from.0,
                        to: to.0,
                        kind: std::borrow::Cow::Borrowed(tag.kind),
                        event,
                    });
                }
                Action::StaleTick => {}
                Action::FrozenTick { node, incarnation } => {
                    self.push_event(
                        self.now + self.cfg.round_period,
                        Ev::RoundTick { node, incarnation },
                    );
                }
                Action::WorkDeliver {
                    group,
                    from,
                    to,
                    tag,
                } => {
                    self.slots[to.index()].received += 1;
                    self.stats.messages_delivered += 1;
                    self.ledger.record_deliver(tag);
                    self.trace_message(|| TraceEvent::MsgDeliver {
                        now: self.now.0,
                        from: from.0,
                        to: to.0,
                        kind: std::borrow::Cow::Borrowed(tag.kind),
                        class: tag.class,
                    });
                    self.counters.activations_message += 1;
                    let r = &mut results[group as usize];
                    let oc = r.outcomes.pop().expect("missing worker outcome");
                    r.proto.apply_deferred(oc.ops);
                    self.slots[to.index()].sent += oc.sent;
                    let mut effects = oc.effects;
                    self.apply_effects(to, &mut effects);
                }
                Action::WorkRound {
                    group,
                    node,
                    incarnation,
                } => {
                    self.stats.rounds_executed += 1;
                    self.counters.activations_round += 1;
                    let r = &mut results[group as usize];
                    let oc = r.outcomes.pop().expect("missing worker outcome");
                    r.proto.apply_deferred(oc.ops);
                    self.slots[node.index()].sent += oc.sent;
                    let mut effects = oc.effects;
                    self.apply_effects(node, &mut effects);
                    self.push_event(
                        self.now + self.cfg.round_period,
                        Ev::RoundTick { node, incarnation },
                    );
                }
            }
        }

        // Return node state and RNGs to the slots.
        for r in results {
            debug_assert!(r.outcomes.is_empty(), "unconsumed worker outcomes");
            let slot = &mut self.slots[r.idx.index()];
            slot.proto = Some(r.proto);
            slot.rng = r.rng;
            group_of[r.idx.index()] = u32::MAX;
        }
        debug_assert_eq!(self.pending_virtual, 0);
    }

    /// Index of the work group for `idx`, checking the node's state out of
    /// its slot on first occurrence.
    fn group_for(
        groups: &mut Vec<NodeGroup<P>>,
        group_of: &mut [u32],
        slots: &mut [Slot<P>],
        idx: NodeIdx,
    ) -> u32 {
        let slot = idx.index();
        if group_of[slot] != u32::MAX {
            return group_of[slot];
        }
        let g = groups.len() as u32;
        group_of[slot] = g;
        let s = &mut slots[slot];
        let proto = s.proto.take().expect("grouped a dead node");
        let rng = std::mem::replace(&mut s.rng, SmallRng::seed_from_u64(0));
        groups.push(NodeGroup {
            idx,
            proto,
            rng,
            items: Vec::new(),
        });
        g
    }
}

/// One batch event's classification, recorded by the parallel pre-pass and
/// consumed by the merge in original event order.
enum Action {
    /// Delivery to a dead slot.
    ToDead,
    /// Delivery suppressed by the destination's freeze flag.
    NetSuppressed {
        from: NodeIdx,
        to: NodeIdx,
        event: Option<u64>,
        tag: MsgTag,
    },
    /// Round tick for a previous incarnation of the slot.
    StaleTick,
    /// Round tick on a frozen node: reschedule only.
    FrozenTick { node: NodeIdx, incarnation: u32 },
    /// Runnable delivery, handled by work group `group`.
    WorkDeliver {
        group: u32,
        from: NodeIdx,
        to: NodeIdx,
        tag: MsgTag,
    },
    /// Runnable round tick, handled by work group `group`.
    WorkRound {
        group: u32,
        node: NodeIdx,
        incarnation: u32,
    },
}

/// A node's slice of one timestamp batch: its state, its RNG, and its
/// events in batch order.
struct NodeGroup<P: ParallelProtocol> {
    idx: NodeIdx,
    proto: P,
    rng: SmallRng,
    items: Vec<WorkItem<P::Msg>>,
}

enum WorkItem<M> {
    Deliver { from: NodeIdx, msg: M },
    Round,
}

/// Captured output of one handler run: its effects, its send count, and
/// its deferred shared-sink operations.
struct ItemOutcome<M, D> {
    effects: Vec<Effect<M>>,
    sent: u64,
    ops: D,
}

struct GroupResult<P: ParallelProtocol> {
    idx: NodeIdx,
    proto: P,
    rng: SmallRng,
    /// Reversed, so `pop()` yields outcomes in batch order.
    outcomes: Vec<ItemOutcome<P::Msg, P::Deferred>>,
}

/// Worker body: run one node's handlers for the batch, in event order,
/// against the node's own RNG. Engine-global state is untouched; all
/// output is captured for the ordered merge.
fn run_node_group<P: ParallelProtocol>(now: SimTime, g: NodeGroup<P>) -> GroupResult<P> {
    let NodeGroup {
        idx,
        mut proto,
        mut rng,
        items,
    } = g;
    proto.set_deferred(true);
    let mut outcomes = Vec::with_capacity(items.len());
    for item in items {
        let mut effects = Vec::new();
        let sent;
        {
            let mut ctx = Context::new(idx, now, &mut rng, &mut effects);
            match item {
                WorkItem::Deliver { from, msg } => proto.on_message(&mut ctx, from, msg),
                WorkItem::Round => proto.on_round(&mut ctx),
            }
            sent = ctx.sent;
        }
        outcomes.push(ItemOutcome {
            effects,
            sent,
            ops: proto.take_deferred(),
        });
    }
    proto.set_deferred(false);
    outcomes.reverse();
    GroupResult {
        idx,
        proto,
        rng,
        outcomes,
    }
}

enum DispatchKind<M> {
    Start,
    Round,
    Message { from: NodeIdx, msg: M },
    Stop(StopReason),
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong test protocol: node 0 sends `Ping(k)` to node 1 each round;
    /// node 1 replies `Pong(k+1)`.
    struct PingPong {
        peer: Option<NodeIdx>,
        last_seen: u32,
        rounds: u32,
    }

    #[derive(Clone)]
    enum PpMsg {
        Ping(u32),
        Pong(u32),
    }

    impl Protocol for PingPong {
        type Msg = PpMsg;
        fn on_start(&mut self, _ctx: &mut Context<'_, PpMsg>) {}
        fn on_round(&mut self, ctx: &mut Context<'_, PpMsg>) {
            self.rounds += 1;
            if let Some(peer) = self.peer {
                ctx.send(peer, PpMsg::Ping(self.rounds));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, PpMsg>, from: NodeIdx, msg: PpMsg) {
            match msg {
                PpMsg::Ping(k) => ctx.send(from, PpMsg::Pong(k + 1)),
                PpMsg::Pong(k) => self.last_seen = k,
            }
        }
    }

    fn pp(peer: Option<NodeIdx>) -> PingPong {
        PingPong {
            peer,
            last_seen: 0,
            rounds: 0,
        }
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            seed: 1,
            round_period: Duration(16),
            desynchronize_rounds: true,
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut eng = Engine::new(cfg());
        let b = NodeIdx(1);
        let a = eng.add_node(pp(Some(b)));
        let b2 = eng.add_node(pp(None));
        assert_eq!(b, b2);
        eng.run_rounds(5);
        let pa = eng.node(a).unwrap();
        assert!(pa.rounds >= 4, "rounds = {}", pa.rounds);
        assert!(pa.last_seen >= 2, "last_seen = {}", pa.last_seen);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut eng = Engine::new(cfg());
            let b = NodeIdx(1);
            let a = eng.add_node(pp(Some(b)));
            eng.add_node(pp(Some(a)));
            eng.run_rounds(10);
            (
                eng.stats(),
                eng.node(a).unwrap().last_seen,
                eng.node(b).unwrap().last_seen,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lockstep_mode_ticks_every_node_once_per_period() {
        let mut eng = Engine::new(EngineConfig {
            seed: 1,
            round_period: Duration(16),
            desynchronize_rounds: false,
        });
        let a = eng.add_node(pp(None));
        let b = eng.add_node(pp(None));
        eng.run_for(Duration(16 * 4));
        assert_eq!(eng.node(a).unwrap().rounds, 4);
        assert_eq!(eng.node(b).unwrap().rounds, 4);
    }

    #[test]
    fn desynchronized_phases_vary_across_seeds() {
        // With many nodes, the set of first-period tick counts must differ
        // between seeds (each phase is an independent uniform draw).
        let run = |seed| {
            let mut eng = Engine::new(EngineConfig { seed, ..cfg() });
            for _ in 0..64 {
                eng.add_node(pp(None));
            }
            eng.run_for(Duration(8));
            eng.alive_nodes()
                .map(|(_, p)| p.rounds)
                .collect::<Vec<_>>()
        };
        assert_ne!(run(1), run(999));
    }

    #[test]
    fn messages_to_removed_nodes_are_dropped() {
        let mut eng = Engine::new(cfg());
        let b = NodeIdx(1);
        let a = eng.add_node(pp(Some(b)));
        eng.add_node(pp(None));
        eng.remove_node(b, StopReason::Crash);
        assert!(!eng.is_alive(b));
        eng.run_rounds(3);
        assert!(eng.stats().messages_to_dead > 0);
        assert_eq!(eng.node(a).unwrap().last_seen, 0);
    }

    #[test]
    fn rejoin_bumps_incarnation_and_restarts_ticks() {
        let mut eng = Engine::new(cfg());
        let b = NodeIdx(1);
        let a = eng.add_node(pp(Some(b)));
        eng.add_node(pp(Some(a)));
        eng.run_rounds(2);
        eng.remove_node(b, StopReason::Leave);
        eng.run_rounds(2);
        eng.rejoin_node(b, pp(Some(a)));
        eng.run_rounds(3);
        assert!(eng.node(b).unwrap().rounds >= 2);
        assert_eq!(eng.alive_count(), 2);
    }

    #[test]
    #[should_panic(expected = "rejoin into alive slot")]
    fn rejoin_alive_slot_panics() {
        let mut eng = Engine::new(cfg());
        let a = eng.add_node(pp(None));
        eng.rejoin_node(a, pp(None));
    }

    #[test]
    fn timers_deliver_to_self() {
        struct T {
            fired: bool,
        }
        #[derive(Clone)]
        struct Tick;
        impl Protocol for T {
            type Msg = Tick;
            fn on_start(&mut self, ctx: &mut Context<'_, Tick>) {
                ctx.timer(Duration(5), Tick);
            }
            fn on_round(&mut self, _: &mut Context<'_, Tick>) {}
            fn on_message(&mut self, _: &mut Context<'_, Tick>, from: NodeIdx, _: Tick) {
                assert_eq!(from, NodeIdx(0));
                self.fired = true;
            }
        }
        let mut eng: Engine<T> = Engine::new(cfg());
        let a = eng.add_node(T { fired: false });
        eng.run_for(Duration(6));
        assert!(eng.node(a).unwrap().fired);
    }

    #[test]
    fn crash_discards_on_stop_effects() {
        struct Goodbye {
            peer: Option<NodeIdx>,
            got: u32,
        }
        #[derive(Clone)]
        struct Bye;
        impl Protocol for Goodbye {
            type Msg = Bye;
            fn on_start(&mut self, _: &mut Context<'_, Bye>) {}
            fn on_round(&mut self, _: &mut Context<'_, Bye>) {}
            fn on_message(&mut self, _: &mut Context<'_, Bye>, _: NodeIdx, _: Bye) {
                self.got += 1;
            }
            fn on_stop(&mut self, ctx: &mut Context<'_, Bye>, _: StopReason) {
                if let Some(p) = self.peer {
                    ctx.send(p, Bye);
                }
            }
        }
        let mut eng: Engine<Goodbye> = Engine::new(cfg());
        let a = eng.add_node(Goodbye { peer: None, got: 0 });
        let b = eng.add_node(Goodbye {
            peer: Some(a),
            got: 0,
        });
        let c = eng.add_node(Goodbye {
            peer: Some(a),
            got: 0,
        });
        eng.remove_node(b, StopReason::Crash);
        eng.remove_node(c, StopReason::Leave);
        eng.run_for(Duration(4));
        // Only the graceful leaver's goodbye arrives.
        assert_eq!(eng.node(a).unwrap().got, 1);
    }

    #[test]
    fn run_until_sets_clock_even_without_events() {
        let mut eng: Engine<PingPong> = Engine::new(cfg());
        eng.run_until(SimTime(1000));
        assert_eq!(eng.now(), SimTime(1000));
    }

    #[test]
    fn kind_traffic_follows_classify() {
        use crate::trace::{MsgTag, TrafficClass};
        struct Tagged {
            peer: Option<NodeIdx>,
        }
        impl Protocol for Tagged {
            type Msg = PpMsg;
            fn on_start(&mut self, _: &mut Context<'_, PpMsg>) {}
            fn on_round(&mut self, ctx: &mut Context<'_, PpMsg>) {
                if let Some(p) = self.peer {
                    ctx.send(p, PpMsg::Ping(0));
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, PpMsg>, from: NodeIdx, msg: PpMsg) {
                if let PpMsg::Ping(k) = msg {
                    ctx.send(from, PpMsg::Pong(k));
                }
            }
            fn classify(msg: &PpMsg) -> MsgTag {
                match msg {
                    PpMsg::Ping(_) => MsgTag::control("ping"),
                    PpMsg::Pong(_) => MsgTag::data("pong"),
                }
            }
        }
        let mut eng: Engine<Tagged> = Engine::new(cfg());
        let b = NodeIdx(1);
        eng.add_node(Tagged { peer: Some(b) });
        eng.add_node(Tagged { peer: None });
        eng.run_rounds(4);
        let kinds = eng.kind_traffic();
        let ping = kinds.iter().find(|k| k.kind == "ping").expect("pings");
        let pong = kinds.iter().find(|k| k.kind == "pong").expect("pongs");
        assert_eq!(ping.class, TrafficClass::Control);
        assert_eq!(pong.class, TrafficClass::Data);
        assert!(ping.sent >= 3);
        assert_eq!(ping.sent, pong.sent, "each ping triggers one pong");
        let total: u64 = kinds.iter().map(|k| k.sent).sum();
        assert_eq!(total, eng.stats().messages_sent);
        let (control, data) = eng.sent_by_class();
        assert_eq!(control, ping.sent);
        assert_eq!(data, pong.sent);
        eng.reset_kind_traffic();
        assert!(eng.kind_traffic().iter().all(|k| k.sent == 0 && k.delivered == 0));
    }

    #[test]
    fn trace_records_lifecycle_and_messages() {
        use crate::trace::{Trace, TraceEvent};
        let mut eng = Engine::new(cfg());
        let trace = Trace::shared(4096);
        eng.set_trace(trace.clone());
        let b = NodeIdx(1);
        let a = eng.add_node(pp(Some(b)));
        eng.add_node(pp(Some(a)));
        eng.run_rounds(3);
        eng.remove_node(b, StopReason::Crash);
        eng.rejoin_node(b, pp(None));
        let t = trace.borrow();
        let mut joins = 0;
        let mut rejoins = 0;
        let mut leaves = 0;
        let mut sends = 0;
        let mut delivers = 0;
        for ev in t.events() {
            match ev {
                TraceEvent::Join { rejoin: false, .. } => joins += 1,
                TraceEvent::Join { rejoin: true, .. } => rejoins += 1,
                TraceEvent::Leave { crash, .. } => {
                    assert!(crash);
                    leaves += 1;
                }
                TraceEvent::MsgSend { .. } => sends += 1,
                TraceEvent::MsgDeliver { .. } => delivers += 1,
                _ => {}
            }
        }
        assert_eq!(joins, 2);
        assert_eq!(rejoins, 1);
        assert_eq!(leaves, 1);
        assert!(sends > 0);
        assert!(delivers > 0 && delivers <= sends);
    }

    #[test]
    fn trace_message_recording_can_be_disabled() {
        use crate::trace::{Trace, TraceEvent};
        let mut eng = Engine::new(cfg());
        let trace = Trace::shared(4096);
        trace.borrow_mut().set_record_messages(false);
        eng.set_trace(trace.clone());
        let b = NodeIdx(1);
        eng.add_node(pp(Some(b)));
        eng.add_node(pp(None));
        eng.run_rounds(3);
        let t = trace.borrow();
        assert!(t
            .events()
            .all(|e| !matches!(e, TraceEvent::MsgSend { .. } | TraceEvent::MsgDeliver { .. })));
        assert!(t.events().any(|e| matches!(e, TraceEvent::Join { .. })));
    }

    #[test]
    fn perf_counters_match_hand_computed_values() {
        // Lockstep mode so round counts are exact: two nodes, node 0
        // pings node 1 every round, node 1 pongs back.
        let mut eng = Engine::new(EngineConfig {
            seed: 1,
            round_period: Duration(16),
            desynchronize_rounds: false,
        });
        let b = NodeIdx(1);
        eng.add_node(pp(Some(b)));
        eng.add_node(pp(None));
        // 2 starts so far; no rounds, no messages.
        let c = eng.perf_counters();
        assert_eq!(c.activations_start, 2);
        assert_eq!(c.activations_round, 0);
        assert_eq!(c.activations_message, 0);
        // Both round ticks are pending: high-water mark is 2.
        assert_eq!(c.queue_hwm, 2);

        eng.run_rounds(4);
        let c = eng.perf_counters();
        // 4 rounds × 2 nodes. Messages travel one tick, so the 4th
        // round's ping (and its pong) are still in flight when the clock
        // stops: 3 pings + 3 pongs delivered.
        assert_eq!(c.activations_round, 8);
        assert_eq!(c.activations_message, eng.stats().messages_delivered);
        assert_eq!(c.activations_message, 6);
        assert_eq!(c.activations_stop, 0);
        assert_eq!(c.total_activations(), 2 + 8 + 6);
        // Two ticks plus at most one in-flight ping and one pong.
        assert!(c.queue_hwm >= 3 && c.queue_hwm <= 4, "hwm {}", c.queue_hwm);

        eng.remove_node(b, StopReason::Leave);
        assert_eq!(eng.perf_counters().activations_stop, 1);
    }

    #[test]
    fn perf_counters_are_deterministic() {
        let run = || {
            let mut eng = Engine::new(cfg());
            let b = NodeIdx(1);
            let a = eng.add_node(pp(Some(b)));
            eng.add_node(pp(Some(a)));
            eng.run_rounds(10);
            eng.perf_counters()
        };
        assert_eq!(run(), run());
    }

    impl ParallelProtocol for PingPong {
        type Deferred = ();
        fn set_deferred(&mut self, _on: bool) {}
        fn take_deferred(&mut self) -> Self::Deferred {}
        fn apply_deferred(&mut self, _ops: Self::Deferred) {}
    }

    /// Drive a churn-and-freeze scenario through either executor and
    /// return every observable output: stats, perf counters, per-node
    /// protocol state and the full trace byte stream.
    fn executor_scenario(parallel: bool) -> (EngineStats, crate::perf::EngineCounters, Vec<(u32, u32)>, String) {
        use crate::network::UniformLatency;
        use crate::trace::Trace;
        let mut eng = Engine::with_network(cfg(), UniformLatency { min: 1, max: 5 });
        let trace = Trace::shared(1 << 14);
        eng.set_trace(trace.clone());
        let a = eng.add_node(pp(Some(NodeIdx(1))));
        let b = eng.add_node(pp(Some(a)));
        for _ in 0..4 {
            eng.add_node(pp(Some(a)));
        }
        let step = Duration(16);
        for i in 0..12 {
            let t = eng.now() + step;
            if parallel {
                eng.run_until_parallel(t);
            } else {
                eng.run_until(t);
            }
            // Freeze the busiest receiver (suppressed deliveries + frozen
            // ticks), crash it (to-dead + stale ticks), then rejoin it.
            if i == 3 {
                eng.set_frozen(b, true);
            }
            if i == 6 {
                eng.set_frozen(b, false);
                eng.remove_node(b, StopReason::Crash);
            }
            if i == 8 {
                eng.rejoin_node(b, pp(Some(a)));
            }
        }
        let states = eng
            .alive_nodes()
            .map(|(_, p)| (p.rounds, p.last_seen))
            .collect();
        let jsonl = trace.borrow().to_jsonl();
        (eng.stats(), eng.perf_counters(), states, jsonl)
    }

    #[test]
    fn parallel_executor_is_bit_identical_to_serial() {
        let serial = executor_scenario(false);
        let parallel = executor_scenario(true);
        assert_eq!(serial.0, parallel.0, "engine stats diverged");
        assert_eq!(serial.1, parallel.1, "perf counters diverged");
        assert_eq!(serial.2, parallel.2, "node states diverged");
        assert_eq!(serial.3, parallel.3, "trace streams diverged");
        // The scenario must actually exercise the tricky arms.
        assert!(serial.0.messages_suppressed > 0, "no suppressed deliveries");
        assert!(serial.0.messages_to_dead > 0, "no to-dead deliveries");
    }

    #[test]
    fn frozen_ticks_survive_far_future_rescheduling() {
        // A round period longer than the calendar ring (1024 ticks) makes
        // every tick reschedule — including a frozen node's keep-alive
        // tick — land in the overflow list; the freeze flag must still
        // suppress rounds and thawing must resume them.
        let mut eng = Engine::new(EngineConfig {
            seed: 3,
            round_period: Duration(1500),
            desynchronize_rounds: false,
        });
        let a = eng.add_node(pp(None));
        let b = eng.add_node(pp(None));
        eng.set_frozen(b, true);
        eng.run_for(Duration(1500 * 4));
        assert_eq!(eng.node(a).unwrap().rounds, 4);
        assert_eq!(eng.node(b).unwrap().rounds, 0);
        assert!(
            eng.perf_counters().sched_overflow > 0,
            "long-period ticks must exercise the overflow path"
        );
        eng.set_frozen(b, false);
        eng.run_for(Duration(1500 * 2));
        assert_eq!(eng.node(b).unwrap().rounds, 2, "thawed node resumes ticking");
    }

    #[test]
    fn parallel_executor_ignores_thread_count() {
        // RAYON_NUM_THREADS only affects worker scheduling, never output;
        // exercise the sequential fallback (0 groups, 1 group) and the
        // threaded path in one scenario run per call.
        let x = executor_scenario(true);
        let y = executor_scenario(true);
        assert_eq!(x, y);
    }

    #[test]
    fn alive_iteration_skips_dead_slots() {
        let mut eng = Engine::new(cfg());
        let a = eng.add_node(pp(None));
        let b = eng.add_node(pp(None));
        let c = eng.add_node(pp(None));
        eng.remove_node(b, StopReason::Leave);
        let alive = eng.alive_indices();
        assert_eq!(alive, vec![a, c]);
        assert_eq!(eng.alive_count(), 2);
        assert_eq!(eng.num_slots(), 3);
    }
}
