//! Deterministic fault injection: scheduled network and node failures.
//!
//! A [`FaultPlan`] is a validated, time-sorted schedule of *episodes*. Two
//! mechanisms apply it:
//!
//! * [`FaultedNetwork`] wraps any [`NetworkModel`] and applies the
//!   **transit** episodes — [`FaultEpisode::Partition`],
//!   [`FaultEpisode::LossBurst`] and [`FaultEpisode::LatencySpike`] — per
//!   message, keyed on the send-time clock the engine threads into every
//!   latency call.
//! * [`FaultDriver`] applies the **node** episodes —
//!   [`FaultEpisode::CorrelatedCrash`] and [`FaultEpisode::Freeze`] — by
//!   stepping the engine to each action's exact timestamp, exactly like
//!   [`crate::churn::ChurnDriver`] does for churn traces (the two compose:
//!   interleave their `next_time()` cursors, or use the driver's
//!   [`FaultDriver::apply_due`] after any engine step).
//!
//! Determinism: an empty plan consumes no randomness and delegates every
//! call unchanged, so a faulted run with no episodes is bit-identical to an
//! unfaulted one. Active loss bursts draw exactly one RNG value per
//! in-scope message; partitions and latency spikes consume none.

use crate::engine::Engine;
use crate::event::NodeIdx;
use crate::network::NetworkModel;
use crate::protocol::{Protocol, StopReason};
use crate::time::{Duration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A half-open interval of simulated time: active for `start <= t < end`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Span {
    /// First tick the episode is active.
    pub start: SimTime,
    /// First tick the episode is no longer active.
    pub end: SimTime,
}

impl Span {
    /// Construct from raw tick bounds.
    pub const fn new(start: u64, end: u64) -> Self {
        Span {
            start: SimTime(start),
            end: SimTime(end),
        }
    }

    /// Whether `t` falls inside the span.
    #[inline]
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Which messages a loss burst affects.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LossScope {
    /// Every message in the network.
    All,
    /// Messages whose sender *or* receiver is one of these slots.
    Nodes(Vec<u32>),
}

/// One scheduled fault. Node lists refer to engine slots
/// (`NodeIdx.0`); they are sorted and deduplicated during plan validation.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum FaultEpisode {
    /// Network partition: while active, messages crossing group boundaries
    /// are dropped. Slots not listed in any group form one implicit "rest"
    /// group — so a single group isolates it from everyone else.
    Partition {
        /// Disjoint groups of slots that can only talk internally.
        groups: Vec<Vec<u32>>,
        /// When the partition holds.
        span: Span,
    },
    /// While active, each in-scope message is independently dropped with
    /// probability `prob` (on top of whatever the inner model drops).
    LossBurst {
        /// Per-message drop probability in `[0, 1]`.
        prob: f64,
        /// When the burst is active.
        span: Span,
        /// Which messages it affects.
        scope: LossScope,
    },
    /// While active, every delivered message's latency is multiplied by
    /// `factor` (ceiling-rounded to whole ticks).
    LatencySpike {
        /// Multiplier, `>= 1`.
        factor: f64,
        /// When the spike is active.
        span: Span,
    },
    /// The listed nodes are alive but completely silent while active: they
    /// execute no rounds and all messages to them are suppressed. They
    /// resume (same state, same slot) at `span.end`.
    Freeze {
        /// Slots to freeze.
        nodes: Vec<u32>,
        /// When they are frozen.
        span: Span,
    },
    /// The listed nodes crash simultaneously at `at` (no goodbye protocol).
    /// Idempotent against churn: a node already offline is skipped.
    CorrelatedCrash {
        /// Slots to crash.
        nodes: Vec<u32>,
        /// When they crash.
        at: SimTime,
    },
}

impl FaultEpisode {
    /// When the episode starts taking effect.
    pub fn start(&self) -> SimTime {
        match self {
            FaultEpisode::Partition { span, .. }
            | FaultEpisode::LossBurst { span, .. }
            | FaultEpisode::LatencySpike { span, .. }
            | FaultEpisode::Freeze { span, .. } => span.start,
            FaultEpisode::CorrelatedCrash { at, .. } => *at,
        }
    }

    /// When the episode's last effect ends (crashes are instantaneous).
    pub fn end(&self) -> SimTime {
        match self {
            FaultEpisode::Partition { span, .. }
            | FaultEpisode::LossBurst { span, .. }
            | FaultEpisode::LatencySpike { span, .. }
            | FaultEpisode::Freeze { span, .. } => span.end,
            FaultEpisode::CorrelatedCrash { at, .. } => *at,
        }
    }
}

/// Validation errors for a [`FaultPlan`]; the index is the episode's
/// position in the input vector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultPlanError {
    /// A span with `start >= end`.
    EmptySpan(usize),
    /// A loss probability outside `[0, 1]`.
    InvalidProb(usize),
    /// A latency factor below 1 or non-finite.
    InvalidFactor(usize),
    /// An episode with an empty node list (or a partition with an empty
    /// group or no groups).
    NoNodes(usize),
    /// A partition listing the same slot in two groups.
    OverlappingGroups(usize),
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::EmptySpan(i) => write!(f, "episode {i}: span start >= end"),
            FaultPlanError::InvalidProb(i) => write!(f, "episode {i}: prob outside [0, 1]"),
            FaultPlanError::InvalidFactor(i) => {
                write!(f, "episode {i}: latency factor must be finite and >= 1")
            }
            FaultPlanError::NoNodes(i) => write!(f, "episode {i}: empty node list or group"),
            FaultPlanError::OverlappingGroups(i) => {
                write!(f, "episode {i}: partition groups overlap")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A validated fault schedule, sorted by episode start time.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "Vec<FaultEpisode>", into = "Vec<FaultEpisode>")]
pub struct FaultPlan {
    episodes: Vec<FaultEpisode>,
}

impl TryFrom<Vec<FaultEpisode>> for FaultPlan {
    type Error = FaultPlanError;
    fn try_from(episodes: Vec<FaultEpisode>) -> Result<Self, FaultPlanError> {
        FaultPlan::new(episodes)
    }
}

impl From<FaultPlan> for Vec<FaultEpisode> {
    fn from(plan: FaultPlan) -> Self {
        plan.episodes
    }
}

impl FaultPlan {
    /// A plan with no episodes (the fault-free identity).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Validate and normalize a schedule: node lists are sorted and
    /// deduplicated, episodes sorted by start time (stable, so same-start
    /// episodes keep their given order).
    pub fn new(mut episodes: Vec<FaultEpisode>) -> Result<Self, FaultPlanError> {
        for (i, ep) in episodes.iter_mut().enumerate() {
            match ep {
                FaultEpisode::Partition { groups, span } => {
                    if span.start >= span.end {
                        return Err(FaultPlanError::EmptySpan(i));
                    }
                    if groups.is_empty() || groups.iter().any(|g| g.is_empty()) {
                        return Err(FaultPlanError::NoNodes(i));
                    }
                    let mut total = 0usize;
                    let mut all: Vec<u32> = Vec::new();
                    for g in groups.iter_mut() {
                        g.sort_unstable();
                        g.dedup();
                        total += g.len();
                        all.extend_from_slice(g);
                    }
                    all.sort_unstable();
                    all.dedup();
                    if all.len() != total {
                        return Err(FaultPlanError::OverlappingGroups(i));
                    }
                }
                FaultEpisode::LossBurst { prob, span, scope } => {
                    if span.start >= span.end {
                        return Err(FaultPlanError::EmptySpan(i));
                    }
                    if !(0.0..=1.0).contains(prob) {
                        return Err(FaultPlanError::InvalidProb(i));
                    }
                    if let LossScope::Nodes(nodes) = scope {
                        if nodes.is_empty() {
                            return Err(FaultPlanError::NoNodes(i));
                        }
                        nodes.sort_unstable();
                        nodes.dedup();
                    }
                }
                FaultEpisode::LatencySpike { factor, span } => {
                    if span.start >= span.end {
                        return Err(FaultPlanError::EmptySpan(i));
                    }
                    if !factor.is_finite() || *factor < 1.0 {
                        return Err(FaultPlanError::InvalidFactor(i));
                    }
                }
                FaultEpisode::Freeze { nodes, span } => {
                    if span.start >= span.end {
                        return Err(FaultPlanError::EmptySpan(i));
                    }
                    if nodes.is_empty() {
                        return Err(FaultPlanError::NoNodes(i));
                    }
                    nodes.sort_unstable();
                    nodes.dedup();
                }
                FaultEpisode::CorrelatedCrash { nodes, .. } => {
                    if nodes.is_empty() {
                        return Err(FaultPlanError::NoNodes(i));
                    }
                    nodes.sort_unstable();
                    nodes.dedup();
                }
            }
        }
        episodes.sort_by_key(|e| e.start());
        Ok(FaultPlan { episodes })
    }

    /// The validated episodes, sorted by start time.
    pub fn episodes(&self) -> &[FaultEpisode] {
        &self.episodes
    }

    /// Whether the plan has no episodes.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// The latest instant at which any episode still has an effect.
    pub fn horizon(&self) -> SimTime {
        self.episodes
            .iter()
            .map(|e| e.end())
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// Partition group of a slot: its group index, or `usize::MAX` for the
/// implicit rest-group of unlisted slots.
fn partition_group(groups: &[Vec<u32>], node: u32) -> usize {
    for (g, members) in groups.iter().enumerate() {
        if members.binary_search(&node).is_ok() {
            return g;
        }
    }
    usize::MAX
}

fn in_scope(scope: &LossScope, from: NodeIdx, to: NodeIdx) -> bool {
    match scope {
        LossScope::All => true,
        LossScope::Nodes(nodes) => {
            nodes.binary_search(&from.0).is_ok() || nodes.binary_search(&to.0).is_ok()
        }
    }
}

/// Wraps a network model with the transit episodes of a [`FaultPlan`].
///
/// Per message, in plan order: an active partition that separates sender
/// and receiver drops it (no randomness); each active in-scope loss burst
/// draws one uniform value and may drop it; active latency spikes multiply
/// the inner model's latency. With no active episode the call is an exact
/// pass-through.
#[derive(Clone, Debug)]
pub struct FaultedNetwork<M> {
    /// The fault-free model underneath.
    pub inner: M,
    /// The schedule to apply.
    pub plan: FaultPlan,
}

impl<M: NetworkModel> FaultedNetwork<M> {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: M, plan: FaultPlan) -> Self {
        FaultedNetwork { inner, plan }
    }
}

impl<M: NetworkModel> NetworkModel for FaultedNetwork<M> {
    fn latency(
        &self,
        now: SimTime,
        from: NodeIdx,
        to: NodeIdx,
        rng: &mut SmallRng,
    ) -> Option<Duration> {
        let mut factor = 1.0f64;
        for ep in self.plan.episodes() {
            match ep {
                FaultEpisode::Partition { groups, span }
                    if span.contains(now)
                        && partition_group(groups, from.0) != partition_group(groups, to.0) =>
                {
                    return None;
                }
                FaultEpisode::LossBurst { prob, span, scope }
                    if span.contains(now)
                        && in_scope(scope, from, to)
                        && rng.gen::<f64>() < *prob =>
                {
                    return None;
                }
                FaultEpisode::LatencySpike { factor: f, span } if span.contains(now) => {
                    factor *= f;
                }
                _ => {}
            }
        }
        let lat = self.inner.latency(now, from, to, rng)?;
        if factor > 1.0 {
            Some(Duration((lat.ticks() as f64 * factor).ceil() as u64))
        } else {
            Some(lat)
        }
    }
}

/// One engine-side action derived from the plan's node episodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NodeAction {
    Crash(u32),
    FreezeStart(u32),
    FreezeEnd(u32),
}

/// Applies the node episodes ([`FaultEpisode::CorrelatedCrash`],
/// [`FaultEpisode::Freeze`]) of a plan to an engine at their exact
/// timestamps. Mirrors [`crate::churn::ChurnDriver`]'s cursor interface so
/// the two can be interleaved by stepping to whichever `next_time()` comes
/// first (crashes are idempotent against churn-driven leaves: an offline
/// slot is skipped).
pub struct FaultDriver {
    actions: Vec<(SimTime, NodeAction)>,
    cursor: usize,
}

impl FaultDriver {
    /// Extract the node actions of `plan`, time-sorted (stable: same-time
    /// actions apply in plan order, freeze-starts before their own end).
    pub fn new(plan: &FaultPlan) -> Self {
        let mut actions: Vec<(SimTime, NodeAction)> = Vec::new();
        for ep in plan.episodes() {
            match ep {
                FaultEpisode::Freeze { nodes, span } => {
                    for &n in nodes {
                        actions.push((span.start, NodeAction::FreezeStart(n)));
                        actions.push((span.end, NodeAction::FreezeEnd(n)));
                    }
                }
                FaultEpisode::CorrelatedCrash { nodes, at } => {
                    for &n in nodes {
                        actions.push((*at, NodeAction::Crash(n)));
                    }
                }
                _ => {}
            }
        }
        actions.sort_by_key(|(t, _)| *t);
        FaultDriver { actions, cursor: 0 }
    }

    /// Whether every node action has been applied.
    pub fn finished(&self) -> bool {
        self.cursor >= self.actions.len()
    }

    /// Time of the next unapplied action.
    pub fn next_time(&self) -> Option<SimTime> {
        self.actions.get(self.cursor).map(|(t, _)| *t)
    }

    /// Apply every action with `time <= eng.now()` without advancing the
    /// clock — for composing with other drivers that already stepped the
    /// engine.
    pub fn apply_due<P: Protocol, N: NetworkModel>(&mut self, eng: &mut Engine<P, N>) {
        while let Some(&(t, action)) = self.actions.get(self.cursor) {
            if t > eng.now() {
                break;
            }
            Self::apply(eng, action);
            self.cursor += 1;
        }
    }

    /// Advance the engine to `until`, applying every node action on the way
    /// at its exact timestamp.
    pub fn run_until<P: Protocol, N: NetworkModel>(
        &mut self,
        eng: &mut Engine<P, N>,
        until: SimTime,
    ) {
        while let Some(&(t, action)) = self.actions.get(self.cursor) {
            if t > until {
                break;
            }
            eng.run_until(t);
            Self::apply(eng, action);
            self.cursor += 1;
        }
        eng.run_until(until);
    }

    fn apply<P: Protocol, N: NetworkModel>(eng: &mut Engine<P, N>, action: NodeAction) {
        match action {
            // remove_node/set_frozen are no-ops on dead or unknown slots,
            // which makes crash-vs-churn races safe by construction.
            NodeAction::Crash(n) => {
                if (n as usize) < eng.num_slots() {
                    eng.remove_node(NodeIdx(n), StopReason::Crash);
                }
            }
            NodeAction::FreezeStart(n) => eng.set_frozen(NodeIdx(n), true),
            NodeAction::FreezeEnd(n) => eng.set_frozen(NodeIdx(n), false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::network::ConstantLatency;
    use crate::protocol::Context;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    fn base() -> ConstantLatency {
        ConstantLatency(Duration(2))
    }

    #[test]
    fn empty_plan_is_exact_passthrough() {
        let net = FaultedNetwork::new(base(), FaultPlan::empty());
        let mut r1 = rng();
        let mut r2 = rng();
        for t in 0..50 {
            assert_eq!(
                net.latency(SimTime(t), NodeIdx(0), NodeIdx(1), &mut r1),
                base().latency(SimTime(t), NodeIdx(0), NodeIdx(1), &mut r2),
            );
        }
        // No randomness consumed: streams still aligned.
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn plan_validates_and_sorts() {
        let plan = FaultPlan::new(vec![
            FaultEpisode::Freeze {
                nodes: vec![3, 1, 3],
                span: Span::new(50, 60),
            },
            FaultEpisode::CorrelatedCrash {
                nodes: vec![2],
                at: SimTime(10),
            },
        ])
        .unwrap();
        assert_eq!(plan.episodes()[0].start(), SimTime(10));
        match &plan.episodes()[1] {
            FaultEpisode::Freeze { nodes, .. } => assert_eq!(nodes, &vec![1, 3]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(plan.horizon(), SimTime(60));
    }

    #[test]
    fn plan_rejects_invalid_episodes() {
        let bad_span = FaultPlan::new(vec![FaultEpisode::LatencySpike {
            factor: 2.0,
            span: Span::new(5, 5),
        }]);
        assert_eq!(bad_span.unwrap_err(), FaultPlanError::EmptySpan(0));
        let bad_prob = FaultPlan::new(vec![FaultEpisode::LossBurst {
            prob: 1.5,
            span: Span::new(0, 10),
            scope: LossScope::All,
        }]);
        assert_eq!(bad_prob.unwrap_err(), FaultPlanError::InvalidProb(0));
        let bad_factor = FaultPlan::new(vec![FaultEpisode::LatencySpike {
            factor: 0.5,
            span: Span::new(0, 10),
        }]);
        assert_eq!(bad_factor.unwrap_err(), FaultPlanError::InvalidFactor(0));
        let overlap = FaultPlan::new(vec![FaultEpisode::Partition {
            groups: vec![vec![1, 2], vec![2, 3]],
            span: Span::new(0, 10),
        }]);
        assert_eq!(overlap.unwrap_err(), FaultPlanError::OverlappingGroups(0));
        let empty = FaultPlan::new(vec![FaultEpisode::CorrelatedCrash {
            nodes: vec![],
            at: SimTime(1),
        }]);
        assert_eq!(empty.unwrap_err(), FaultPlanError::NoNodes(0));
    }

    #[test]
    fn partition_cuts_cross_group_traffic_only_while_active() {
        let plan = FaultPlan::new(vec![FaultEpisode::Partition {
            groups: vec![vec![0, 1], vec![2]],
            span: Span::new(10, 20),
        }])
        .unwrap();
        let net = FaultedNetwork::new(base(), plan);
        let mut r = rng();
        // Inside the span: cross-group drops, intra-group passes, and the
        // implicit rest-group (slot 9) is cut from both listed groups.
        assert!(net.latency(SimTime(15), NodeIdx(0), NodeIdx(2), &mut r).is_none());
        assert!(net.latency(SimTime(15), NodeIdx(0), NodeIdx(1), &mut r).is_some());
        assert!(net.latency(SimTime(15), NodeIdx(9), NodeIdx(0), &mut r).is_none());
        // Outside the span: everything passes.
        assert!(net.latency(SimTime(9), NodeIdx(0), NodeIdx(2), &mut r).is_some());
        assert!(net.latency(SimTime(20), NodeIdx(0), NodeIdx(2), &mut r).is_some());
    }

    #[test]
    fn loss_burst_drops_at_rate_within_scope() {
        let plan = FaultPlan::new(vec![FaultEpisode::LossBurst {
            prob: 0.5,
            span: Span::new(0, 100),
            scope: LossScope::Nodes(vec![7]),
        }])
        .unwrap();
        let net = FaultedNetwork::new(base(), plan);
        let mut r = rng();
        let n = 10_000;
        let dropped = (0..n)
            .filter(|_| net.latency(SimTime(5), NodeIdx(7), NodeIdx(1), &mut r).is_none())
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.03, "rate = {rate}");
        // Out-of-scope traffic is untouched (and consumes no randomness).
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..100 {
            assert!(net.latency(SimTime(5), NodeIdx(1), NodeIdx(2), &mut r1).is_some());
        }
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn latency_spike_scales_inner_latency() {
        let plan = FaultPlan::new(vec![FaultEpisode::LatencySpike {
            factor: 3.0,
            span: Span::new(10, 20),
        }])
        .unwrap();
        let net = FaultedNetwork::new(base(), plan);
        let mut r = rng();
        assert_eq!(
            net.latency(SimTime(15), NodeIdx(0), NodeIdx(1), &mut r),
            Some(Duration(6))
        );
        assert_eq!(
            net.latency(SimTime(25), NodeIdx(0), NodeIdx(1), &mut r),
            Some(Duration(2))
        );
    }

    struct Nop;
    impl Protocol for Nop {
        type Msg = ();
        fn on_start(&mut self, _: &mut Context<'_, ()>) {}
        fn on_round(&mut self, _: &mut Context<'_, ()>) {}
        fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeIdx, _: ()) {}
    }

    fn engine() -> Engine<Nop> {
        Engine::new(EngineConfig {
            seed: 9,
            round_period: Duration(8),
            desynchronize_rounds: true,
        })
    }

    #[test]
    fn driver_applies_crash_and_freeze_at_exact_times() {
        let plan = FaultPlan::new(vec![
            FaultEpisode::CorrelatedCrash {
                nodes: vec![0, 1],
                at: SimTime(30),
            },
            FaultEpisode::Freeze {
                nodes: vec![2],
                span: Span::new(10, 40),
            },
        ])
        .unwrap();
        let mut eng = engine();
        for _ in 0..3 {
            eng.add_node(Nop);
        }
        let mut drv = FaultDriver::new(&plan);
        assert_eq!(drv.next_time(), Some(SimTime(10)));
        drv.run_until(&mut eng, SimTime(20));
        assert!(eng.is_frozen(NodeIdx(2)));
        assert_eq!(eng.alive_count(), 3);
        drv.run_until(&mut eng, SimTime(35));
        assert!(!eng.is_alive(NodeIdx(0)));
        assert!(!eng.is_alive(NodeIdx(1)));
        assert!(eng.is_frozen(NodeIdx(2)));
        drv.run_until(&mut eng, SimTime(100));
        assert!(drv.finished());
        assert!(!eng.is_frozen(NodeIdx(2)));
        assert!(eng.is_alive(NodeIdx(2)));
    }

    #[test]
    fn crash_of_already_offline_slot_is_skipped() {
        let plan = FaultPlan::new(vec![FaultEpisode::CorrelatedCrash {
            nodes: vec![0, 5],
            at: SimTime(10),
        }])
        .unwrap();
        let mut eng = engine();
        let a = eng.add_node(Nop);
        eng.remove_node(a, StopReason::Crash);
        let mut drv = FaultDriver::new(&plan);
        // Slot 0 already offline, slot 5 never existed: both are no-ops.
        drv.run_until(&mut eng, SimTime(50));
        assert!(drv.finished());
        assert_eq!(eng.alive_count(), 0);
    }

    #[test]
    fn apply_due_composes_without_advancing_clock() {
        let plan = FaultPlan::new(vec![FaultEpisode::Freeze {
            nodes: vec![0],
            span: Span::new(5, 15),
        }])
        .unwrap();
        let mut eng = engine();
        eng.add_node(Nop);
        let mut drv = FaultDriver::new(&plan);
        eng.run_until(SimTime(7));
        drv.apply_due(&mut eng);
        assert!(eng.is_frozen(NodeIdx(0)));
        assert_eq!(eng.now(), SimTime(7));
        eng.run_until(SimTime(15));
        drv.apply_due(&mut eng);
        assert!(!eng.is_frozen(NodeIdx(0)));
        assert!(drv.finished());
    }

    #[test]
    fn frozen_node_receives_nothing_and_skips_rounds() {
        struct Chat {
            peer: Option<NodeIdx>,
            rounds: u32,
            got: u32,
        }
        #[derive(Clone)]
        struct Hi;
        impl Protocol for Chat {
            type Msg = Hi;
            fn on_start(&mut self, _: &mut Context<'_, Hi>) {}
            fn on_round(&mut self, ctx: &mut Context<'_, Hi>) {
                self.rounds += 1;
                if let Some(p) = self.peer {
                    ctx.send(p, Hi);
                }
            }
            fn on_message(&mut self, _: &mut Context<'_, Hi>, _: NodeIdx, _: Hi) {
                self.got += 1;
            }
        }
        let mut eng: Engine<Chat> = Engine::new(EngineConfig {
            seed: 4,
            round_period: Duration(8),
            desynchronize_rounds: false,
        });
        let b = NodeIdx(1);
        eng.add_node(Chat {
            peer: Some(b),
            rounds: 0,
            got: 0,
        });
        eng.add_node(Chat {
            peer: None,
            rounds: 0,
            got: 0,
        });
        eng.run_rounds(3);
        let before = (eng.node(b).unwrap().rounds, eng.node(b).unwrap().got);
        eng.set_frozen(b, true);
        eng.run_rounds(3);
        let during = (eng.node(b).unwrap().rounds, eng.node(b).unwrap().got);
        assert_eq!(before, during, "frozen node must not progress");
        assert!(eng.stats().messages_suppressed > 0);
        eng.set_frozen(b, false);
        eng.run_rounds(3);
        let after = eng.node(b).unwrap();
        assert!(after.rounds > during.0, "thawed node resumes rounds");
        assert!(after.got > during.1, "thawed node receives again");
    }

    #[test]
    fn plan_conversion_boundary_validates() {
        // The serde surface goes through TryFrom/Into — exercise it
        // directly: a round trip reproduces the plan, invalid input fails.
        let plan = FaultPlan::try_from(vec![
            FaultEpisode::Partition {
                groups: vec![vec![0, 1], vec![2, 3]],
                span: Span::new(10, 20),
            },
            FaultEpisode::LossBurst {
                prob: 0.3,
                span: Span::new(5, 25),
                scope: LossScope::All,
            },
        ])
        .unwrap();
        let raw: Vec<FaultEpisode> = plan.clone().into();
        assert_eq!(FaultPlan::try_from(raw).unwrap(), plan);
        let bad = vec![FaultEpisode::LossBurst {
            prob: 7.0,
            span: Span::new(0, 1),
            scope: LossScope::All,
        }];
        assert!(FaultPlan::try_from(bad).is_err());
    }

    /// Interleave a churn driver and a fault driver on one engine: apply
    /// whichever fires next, churn first on ties (the runtime convention).
    fn drive_both(
        eng: &mut Engine<Nop>,
        churn: &mut crate::churn::ChurnDriver,
        fault: &mut FaultDriver,
        until: SimTime,
    ) {
        loop {
            let next = [churn.next_time(), fault.next_time()]
                .into_iter()
                .flatten()
                .min();
            match next {
                Some(t) if t <= until => {
                    churn.run_until(eng, t, |_, _| Nop);
                    fault.apply_due(eng);
                }
                _ => break,
            }
        }
        churn.run_until(eng, until, |_, _| Nop);
        fault.apply_due(eng);
    }

    /// A correlated crash kills a node whose churn `Leave` is still pending:
    /// the later leave must find the slot already dead and no-op, leaving
    /// both drivers finished and the population consistent.
    #[test]
    fn correlated_crash_with_pending_churn_leave_is_idempotent() {
        use crate::churn::{ChurnDriver, ChurnEvent, ChurnKind, ChurnTrace};
        let ev = |t: u64, node: u32, kind: ChurnKind| ChurnEvent {
            time: SimTime(t),
            node,
            kind,
        };
        let trace = ChurnTrace::new(vec![
            ev(0, 0, ChurnKind::Join),
            ev(0, 1, ChurnKind::Join),
            ev(0, 2, ChurnKind::Join),
            ev(50, 0, ChurnKind::Leave),
        ])
        .unwrap();
        let plan = FaultPlan::new(vec![FaultEpisode::CorrelatedCrash {
            nodes: vec![0, 1],
            at: SimTime(30),
        }])
        .unwrap();
        let mut eng = engine();
        let mut churn = ChurnDriver::new(trace);
        let mut fault = FaultDriver::new(&plan);
        drive_both(&mut eng, &mut churn, &mut fault, SimTime(40));
        assert!(!eng.is_alive(NodeIdx(0)), "crashed before its leave");
        assert!(!eng.is_alive(NodeIdx(1)));
        assert_eq!(eng.alive_count(), 1);
        // The pending leave at t=50 lands on the already-dead slot.
        drive_both(&mut eng, &mut churn, &mut fault, SimTime(100));
        assert!(fault.finished());
        assert_eq!(eng.alive_count(), 1);
        assert!(eng.is_alive(NodeIdx(2)));
    }

    /// A node leaves and rejoins on the same tick while a freeze episode
    /// spans it, and an unrelated node joins on that tick too. The rejoin
    /// lands in the same slot with the frozen flag cleared (a fresh
    /// incarnation is a new process), and the episode-end thaw is a no-op.
    #[test]
    fn same_tick_churn_under_an_active_freeze() {
        use crate::churn::{ChurnDriver, ChurnEvent, ChurnKind, ChurnTrace};
        let ev = |t: u64, node: u32, kind: ChurnKind| ChurnEvent {
            time: SimTime(t),
            node,
            kind,
        };
        let trace = ChurnTrace::new(vec![
            ev(0, 0, ChurnKind::Join),
            ev(20, 0, ChurnKind::Leave),
            ev(20, 0, ChurnKind::Join),
            ev(20, 1, ChurnKind::Join),
        ])
        .unwrap();
        let plan = FaultPlan::new(vec![FaultEpisode::Freeze {
            nodes: vec![0],
            span: Span::new(10, 40),
        }])
        .unwrap();
        let mut eng = engine();
        let mut churn = ChurnDriver::new(trace);
        let mut fault = FaultDriver::new(&plan);
        drive_both(&mut eng, &mut churn, &mut fault, SimTime(15));
        assert!(eng.is_frozen(NodeIdx(0)), "freeze active before the churn");
        drive_both(&mut eng, &mut churn, &mut fault, SimTime(25));
        assert!(eng.is_alive(NodeIdx(0)), "rejoined into its old slot");
        assert!(
            !eng.is_frozen(NodeIdx(0)),
            "rejoin clears the frozen flag: the new incarnation is a new process"
        );
        assert!(eng.is_alive(NodeIdx(1)), "same-tick join of another node");
        drive_both(&mut eng, &mut churn, &mut fault, SimTime(100));
        assert!(fault.finished());
        assert_eq!(eng.alive_count(), 2);
        assert!(!eng.is_frozen(NodeIdx(0)));
    }
}
