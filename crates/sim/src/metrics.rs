//! Measurement primitives: counters, sample summaries, fixed-bin histograms
//! and time series.
//!
//! These are intentionally simple, allocation-light containers; the
//! evaluation-metric *semantics* (hit ratio, traffic overhead, propagation
//! delay) live with the protocols that define them.

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Streaming summary of a sample: count, mean, variance (Welford), min, max.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record all items of an iterator.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.record(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram over `[0, upper)` with `bins` equal-width bins plus an
/// overflow bin. Used e.g. for the per-node traffic-overhead distribution
/// of Figure 5 (percent values, 0–100).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    upper: f64,
    total: u64,
}

impl Histogram {
    /// Create a histogram over `[0, upper)` with `bins` bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `upper <= 0`.
    pub fn new(bins: usize, upper: f64) -> Self {
        assert!(bins > 0 && upper > 0.0);
        Histogram {
            counts: vec![0; bins + 1], // last bin = overflow
            upper,
            total: 0,
        }
    }

    /// Record one observation (negative values clamp to the first bin).
    pub fn record(&mut self, x: f64) {
        let bins = self.counts.len() - 1;
        let idx = if x < 0.0 {
            0
        } else if x >= self.upper {
            bins
        } else {
            ((x / self.upper) * bins as f64) as usize
        };
        self.counts[idx.min(bins)] += 1;
        self.total += 1;
    }

    /// Number of bins (excluding overflow).
    pub fn num_bins(&self) -> usize {
        self.counts.len() - 1
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw count of bin `i` (use `num_bins()` as the overflow index).
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Fraction of observations in bin `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Lower edge of bin `i`.
    pub fn bin_lower(&self, i: usize) -> f64 {
        self.upper * i as f64 / self.num_bins() as f64
    }

    /// `(bin_lower, fraction)` pairs for all bins including overflow.
    pub fn fractions(&self) -> Vec<(f64, f64)> {
        (0..self.counts.len())
            .map(|i| (self.bin_lower(i), self.fraction(i)))
            .collect()
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) of the recorded sample by
    /// linear interpolation within the first bin whose cumulative count
    /// reaches `q · total`.
    ///
    /// Returns `NaN` for an empty histogram. Quantiles that land in the
    /// overflow bin return `upper` (the histogram cannot see beyond its
    /// range); `q` outside `[0, 1]` is clamped.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total as f64;
        let bins = self.num_bins();
        let width = self.upper / bins as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c;
            if next as f64 >= target && c > 0 {
                if i == bins {
                    return self.upper; // overflow bin: values are >= upper
                }
                let within = (target - cum as f64) / c as f64;
                return self.bin_lower(i) + width * within.clamp(0.0, 1.0);
            }
            cum = next;
        }
        self.upper
    }
}

/// A `(time, value)` series, e.g. hit ratio sampled every hour of a churn
/// experiment (Figure 12).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a point; `t` is a raw tick count (or any monotone x-value).
    pub fn push(&mut self, t: u64, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(pt, _)| pt <= t),
            "time series must be appended in order"
        );
        self.points.push((t, v));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_matches_closed_form() {
        let mut s = Summary::new();
        s.record_all([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance of this classic sample is 4.0; unbiased is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        whole.record_all(xs.iter().copied());
        let mut left = Summary::new();
        left.record_all(xs[..37].iter().copied());
        let mut right = Summary::new();
        right.record_all(xs[37..].iter().copied());
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn summary_single_sample_has_zero_variance() {
        let mut s = Summary::new();
        s.record(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn summary_merge_with_empty_is_identity_both_ways() {
        let mut filled = Summary::new();
        filled.record_all([1.0, 2.0, 3.0]);
        let snapshot = filled;
        filled.merge(&Summary::new());
        assert_eq!(filled.count(), snapshot.count());
        assert_eq!(filled.mean(), snapshot.mean());
        assert_eq!(filled.variance(), snapshot.variance());

        let mut empty = Summary::new();
        empty.merge(&snapshot);
        assert_eq!(empty.count(), 3);
        assert_eq!(empty.mean(), 2.0);
        assert_eq!(empty.min(), 1.0);
        assert_eq!(empty.max(), 3.0);
    }

    #[test]
    fn summary_empty_max_is_nan_and_std_dev_zero() {
        let s = Summary::new();
        assert!(s.max().is_nan());
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(10, 100.0);
        h.record(0.0); // bin 0
        h.record(9.99); // bin 0
        h.record(10.0); // bin 1
        h.record(99.9); // bin 9
        h.record(100.0); // overflow
        h.record(-1.0); // clamps to bin 0
        assert_eq!(h.count(0), 3);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.count(10), 1);
        assert_eq!(h.total(), 6);
        assert!((h.fraction(0) - 0.5).abs() < 1e-12);
        assert_eq!(h.bin_lower(1), 10.0);
    }

    #[test]
    fn histogram_exact_upper_bound_counts_as_overflow() {
        let mut h = Histogram::new(4, 8.0);
        h.record(8.0); // exactly the upper bound -> overflow bin
        h.record(7.999_999); // just below -> last regular bin
        assert_eq!(h.count(h.num_bins()), 1);
        assert_eq!(h.count(3), 1);
        // The bin edges cover [0, upper) exactly.
        assert_eq!(h.bin_lower(0), 0.0);
        assert_eq!(h.bin_lower(4), 8.0);
    }

    #[test]
    fn percentile_empty_is_nan() {
        let h = Histogram::new(10, 100.0);
        assert!(h.percentile(0.5).is_nan());
        assert!(h.percentile(0.0).is_nan());
        assert!(h.percentile(1.0).is_nan());
    }

    #[test]
    fn percentile_interpolates_within_bins() {
        let mut h = Histogram::new(10, 100.0);
        // 100 uniform samples at bin centers: 0.5, 1.5, ..., 99.5.
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        // Each bin holds 10 samples; the median lands mid-histogram.
        let p50 = h.percentile(0.5);
        assert!((p50 - 50.0).abs() < 10.0, "p50 was {p50}");
        let p90 = h.percentile(0.9);
        assert!((p90 - 90.0).abs() < 10.0, "p90 was {p90}");
        // Quantiles are monotone in q.
        assert!(h.percentile(0.25) <= h.percentile(0.75));
        // Out-of-range q clamps instead of panicking.
        assert!(h.percentile(-0.5) <= h.percentile(1.5));
    }

    #[test]
    fn percentile_overflow_bin_saturates_at_upper() {
        let mut h = Histogram::new(4, 8.0);
        h.record(100.0); // overflow
        h.record(200.0); // overflow
        assert_eq!(h.percentile(0.5), 8.0);
        assert_eq!(h.percentile(1.0), 8.0);
        // Mixed: one in-range sample, one overflow — p25 stays in range.
        let mut m = Histogram::new(4, 8.0);
        m.record(1.0);
        m.record(100.0);
        assert!(m.percentile(0.25) < 8.0);
        assert_eq!(m.percentile(1.0), 8.0);
    }

    #[test]
    fn percentile_single_bin_sample() {
        let mut h = Histogram::new(10, 100.0);
        h.record(35.0);
        let p = h.percentile(0.5);
        // The lone sample's bin is [30, 40).
        assert!((30.0..40.0).contains(&p), "p50 was {p}");
    }

    #[test]
    fn histogram_empty_fractions_are_zero() {
        let h = Histogram::new(3, 1.0);
        assert_eq!(h.total(), 0);
        for i in 0..=h.num_bins() {
            assert_eq!(h.fraction(i), 0.0);
        }
        assert!(h.fractions().iter().all(|&(_, f)| f == 0.0));
    }

    #[test]
    fn time_series_basics() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(0, 1.0);
        ts.push(10, 3.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.points()[1], (10, 3.0));
        assert!((ts.mean() - 2.0).abs() < 1e-12);
    }
}
