//! The network model: per-message latency and loss.
//!
//! The paper's evaluation counts hops rather than wall-clock delay, so the
//! default model is a constant one-tick latency. Jittered and lossy models
//! are provided for robustness experiments and tests, and
//! [`crate::fault::FaultedNetwork`] wraps any model with a time-driven
//! fault schedule — which is why every model receives the current
//! [`SimTime`] per call.

use crate::event::NodeIdx;
use crate::time::{Duration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;

/// Decides, per message, how long delivery takes and whether the message is
/// dropped. Implementations must be deterministic given the RNG stream and
/// the simulated clock.
pub trait NetworkModel {
    /// Latency for a message sent at `now` from `from` to `to`, or `None`
    /// if the message is lost in transit.
    fn latency(
        &self,
        now: SimTime,
        from: NodeIdx,
        to: NodeIdx,
        rng: &mut SmallRng,
    ) -> Option<Duration>;
}

/// Every message takes exactly `latency` ticks; nothing is lost.
#[derive(Clone, Copy, Debug)]
pub struct ConstantLatency(pub Duration);

impl Default for ConstantLatency {
    fn default() -> Self {
        ConstantLatency(Duration(1))
    }
}

impl NetworkModel for ConstantLatency {
    #[inline]
    fn latency(&self, _: SimTime, _: NodeIdx, _: NodeIdx, _: &mut SmallRng) -> Option<Duration> {
        Some(self.0)
    }
}

/// Latency drawn uniformly from `[min, max]` ticks; nothing is lost.
#[derive(Clone, Copy, Debug)]
pub struct UniformLatency {
    /// Inclusive lower bound, in ticks.
    pub min: u64,
    /// Inclusive upper bound, in ticks.
    pub max: u64,
}

impl NetworkModel for UniformLatency {
    #[inline]
    fn latency(
        &self,
        _: SimTime,
        _: NodeIdx,
        _: NodeIdx,
        rng: &mut SmallRng,
    ) -> Option<Duration> {
        debug_assert!(self.min <= self.max);
        Some(Duration(rng.gen_range(self.min..=self.max)))
    }
}

/// Wraps another model and drops each message independently with probability
/// `loss`.
#[derive(Clone, Copy, Debug)]
pub struct Lossy<M> {
    /// The underlying latency model for delivered messages.
    pub inner: M,
    /// Per-message independent drop probability in `[0, 1]`.
    pub loss: f64,
}

impl<M: NetworkModel> NetworkModel for Lossy<M> {
    #[inline]
    fn latency(
        &self,
        now: SimTime,
        from: NodeIdx,
        to: NodeIdx,
        rng: &mut SmallRng,
    ) -> Option<Duration> {
        if rng.gen::<f64>() < self.loss {
            None
        } else {
            self.inner.latency(now, from, to, rng)
        }
    }
}

/// A boxed, dynamically dispatched network model, for configs assembled at
/// runtime (the experiment harness picks models from CLI flags).
pub type DynNetworkModel = Box<dyn NetworkModel>;

impl NetworkModel for DynNetworkModel {
    #[inline]
    fn latency(
        &self,
        now: SimTime,
        from: NodeIdx,
        to: NodeIdx,
        rng: &mut SmallRng,
    ) -> Option<Duration> {
        (**self).latency(now, from, to, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    const T0: SimTime = SimTime(0);

    #[test]
    fn constant_latency_is_constant() {
        let m = ConstantLatency(Duration(3));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(
                m.latency(T0, NodeIdx(0), NodeIdx(1), &mut r),
                Some(Duration(3))
            );
        }
    }

    #[test]
    fn uniform_latency_stays_in_bounds() {
        let m = UniformLatency { min: 2, max: 6 };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.latency(T0, NodeIdx(0), NodeIdx(1), &mut r).unwrap();
            assert!((2..=6).contains(&d.ticks()));
        }
    }

    #[test]
    fn lossy_drops_roughly_at_rate() {
        let m = Lossy {
            inner: ConstantLatency::default(),
            loss: 0.25,
        };
        let mut r = rng();
        let n = 10_000;
        let dropped = (0..n)
            .filter(|_| m.latency(T0, NodeIdx(0), NodeIdx(1), &mut r).is_none())
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn lossy_zero_never_drops() {
        let m = Lossy {
            inner: ConstantLatency::default(),
            loss: 0.0,
        };
        let mut r = rng();
        for _ in 0..100 {
            assert!(m.latency(T0, NodeIdx(0), NodeIdx(1), &mut r).is_some());
        }
    }

    #[test]
    fn dyn_model_dispatches() {
        let m: DynNetworkModel = Box::new(ConstantLatency(Duration(9)));
        let mut r = rng();
        assert_eq!(
            m.latency(T0, NodeIdx(0), NodeIdx(1), &mut r),
            Some(Duration(9))
        );
    }
}
