//! The protocol interface: what a node implementation must provide and what
//! it may ask the engine to do.
//!
//! A protocol is a per-node state machine driven by three kinds of input:
//! periodic round ticks (the gossip heartbeat), incoming messages, and
//! lifecycle transitions. All outputs go through [`Context`], which buffers
//! *effects* (sends, timers) that the engine applies after the handler
//! returns — this keeps handlers pure with respect to the rest of the
//! network and makes runs reproducible.

use crate::event::NodeIdx;
use crate::time::{Duration, SimTime};
use crate::trace::MsgTag;
use rand::rngs::SmallRng;

/// Why a node is being stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// Graceful departure: the node knows it is leaving (protocols may send
    /// goodbye messages from `on_stop`).
    Leave,
    /// Crash failure: the node vanishes without executing `on_stop` logic
    /// (the engine still calls `on_stop` so protocols can release external
    /// resources, but any emitted sends are discarded).
    Crash,
}

/// A per-node protocol implementation.
///
/// The engine owns one value of this type per alive node. Handlers receive a
/// [`Context`] carrying the node's identity, the simulated clock, the node's
/// private RNG stream and the effect buffer.
pub trait Protocol: Sized {
    /// The message type exchanged between nodes of this protocol.
    type Msg: Clone;

    /// Called once when the node is started (joined). Typical use: contact
    /// bootstrap nodes, initialize views.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called on every periodic round tick (period set per-node at join).
    fn on_round(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeIdx, msg: Self::Msg);

    /// Called when the node stops. For [`StopReason::Crash`], any sends
    /// emitted here are discarded by the engine.
    fn on_stop(&mut self, _ctx: &mut Context<'_, Self::Msg>, _reason: StopReason) {}

    /// Classify a message for traffic accounting and tracing: a stable
    /// kind name plus its control/data plane. An associated function (no
    /// `&self`) so the engine can tag messages without touching node
    /// state. The default lumps everything under one control-plane kind;
    /// protocols override it to get the per-kind breakdown surfaced in
    /// the engine's traffic ledger and trace output.
    fn classify(_msg: &Self::Msg) -> MsgTag {
        MsgTag::control("msg")
    }

    /// The published-event id a data-plane message carries, if any. Like
    /// [`Protocol::classify`], an associated function used by the engine —
    /// here to attribute messages lost in transit (network drops, freeze
    /// suppression) to the event they carried, feeding `net_drop` trace
    /// records and network-loss attribution. The default says "no event";
    /// protocols whose messages carry event notifications should override.
    fn event_of(_msg: &Self::Msg) -> Option<u64> {
        None
    }
}

/// A protocol that can run under the engine's deterministic parallel round
/// executor ([`crate::engine::Engine::run_until_parallel`]).
///
/// The parallel executor moves each node's state (and private RNG) into a
/// worker, runs its handlers for the current timestamp there, then merges
/// all side effects back on the engine thread in exact serial event order —
/// so results are bit-identical to serial execution at any thread count.
///
/// Handlers themselves stay pure (all engine-visible output goes through
/// [`Context`] effects), but protocols that write to a *shared* sink from
/// inside handlers — e.g. a delivery monitor shared by every node — would
/// race and record in nondeterministic order. The `Deferred` mechanism fixes
/// that: while `set_deferred(true)` is active, the protocol must buffer all
/// shared-sink writes locally instead of applying them; the engine collects
/// the buffer after *each* handler via `take_deferred` and replays it with
/// `apply_deferred` during the ordered merge. Protocols with no shared sink
/// use `Deferred = ()` and no-op implementations.
pub trait ParallelProtocol: Protocol<Msg: Send> + Send {
    /// Buffered shared-sink operations captured from one handler run.
    type Deferred: Send + Default;

    /// Enter or leave deferred mode. While on, shared-sink writes must be
    /// buffered, not applied.
    fn set_deferred(&mut self, on: bool);

    /// Take the operations buffered since the last call (or since entering
    /// deferred mode).
    fn take_deferred(&mut self) -> Self::Deferred;

    /// Apply previously buffered operations to the shared sink. Called on
    /// the engine thread, in serial event order.
    fn apply_deferred(&mut self, ops: Self::Deferred);
}

/// An output requested by a protocol handler, applied by the engine after the
/// handler returns.
#[derive(Debug)]
pub(crate) enum Effect<M> {
    /// Send `msg` to `to` through the network model.
    Send { to: NodeIdx, msg: M },
    /// Fire `on_message` on *this* node after `delay` with `msg` (a
    /// self-timer carrying its payload; `from` will be the node itself).
    TimerMsg { delay: Duration, msg: M },
}

/// Handler-side view of the engine: identity, clock, RNG and effect buffer.
pub struct Context<'a, M> {
    /// The node this handler runs on.
    pub self_idx: NodeIdx,
    /// Current simulated time.
    pub now: SimTime,
    /// The node's private, deterministic RNG stream.
    pub rng: &'a mut SmallRng,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
    /// Messages sent by the handler, counted for control/data accounting.
    pub(crate) sent: u64,
}

impl<'a, M> Context<'a, M> {
    pub(crate) fn new(
        self_idx: NodeIdx,
        now: SimTime,
        rng: &'a mut SmallRng,
        effects: &'a mut Vec<Effect<M>>,
    ) -> Self {
        Context {
            self_idx,
            now,
            rng,
            effects,
            sent: 0,
        }
    }

    /// Send `msg` to node `to`. Delivery latency and loss follow the engine's
    /// network model. Sending to a dead or never-existing slot silently drops
    /// the message at delivery time, exactly like a datagram to a gone peer.
    pub fn send(&mut self, to: NodeIdx, msg: M) {
        self.sent += 1;
        self.effects.push(Effect::Send { to, msg });
    }

    /// Deliver `msg` back to this node after `delay` ticks (self-timer with
    /// payload). `on_message` will be invoked with `from == self_idx`.
    pub fn timer(&mut self, delay: Duration, msg: M) {
        self.effects.push(Effect::TimerMsg { delay, msg });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn context_buffers_effects_in_order() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut effects: Vec<Effect<u32>> = Vec::new();
        let mut ctx = Context::new(NodeIdx(3), SimTime(10), &mut rng, &mut effects);
        ctx.send(NodeIdx(1), 100);
        ctx.timer(Duration(5), 200);
        ctx.send(NodeIdx(2), 300);
        assert_eq!(ctx.sent, 2);
        assert_eq!(effects.len(), 3);
        match &effects[0] {
            Effect::Send { to, msg } => {
                assert_eq!(*to, NodeIdx(1));
                assert_eq!(*msg, 100);
            }
            _ => panic!("expected send"),
        }
        match &effects[1] {
            Effect::TimerMsg { delay, msg } => {
                assert_eq!(*delay, Duration(5));
                assert_eq!(*msg, 200);
            }
            _ => panic!("expected timer"),
        }
    }
}
