//! Protocol-generic anti-entropy repair: digest exchange (IHAVE) with
//! pull-based recovery (IWANT), in the lazy-push style of Plumtree and
//! GossipSub's gossip layer.
//!
//! Every node keeps a bounded, TTL-aged cache of recently seen events
//! (message id + topic + an opaque payload the owning protocol can
//! re-serve). Each round it gossips a compact digest of cached event ids
//! to a small random sample of its overlay neighbors; a receiver that
//! spots an id it subscribes to but never received answers with a pull
//! request, and the advertiser re-serves the payload from its cache.
//! Pulls retry with per-attempt backoff against rotating advertisers and
//! give up after a capped number of attempts, so repair traffic cannot
//! storm while a partition keeps every pull unanswerable.
//!
//! The state machine is deliberately transport-free: it never sends
//! messages itself. The owning protocol drives it from `on_round` /
//! `on_message` and maps its outputs onto protocol-specific message
//! variants, which keeps all randomness on the node's own deterministic
//! RNG stream and makes the layer safe under the engine's parallel round
//! executor. With `enabled = false` (the default) every entry point is an
//! inert no-op that consumes no randomness, so fixed-seed runs are
//! bit-identical to a build without the layer.

use crate::event::NodeIdx;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Nominal wire bytes of one digest entry (event id 8 + topic 4), for the
/// owning protocol's control-plane bandwidth accounting.
pub const DIGEST_ENTRY_BYTES: u64 = 12;

/// Nominal wire bytes of one pulled event id.
pub const WANT_ID_BYTES: u64 = 8;

/// Configuration of the anti-entropy layer. Default-off: the zero-cost
/// configuration changes no observable behavior of the owning protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AeConfig {
    /// Master switch. Off by default; when off, every call is a no-op.
    pub enabled: bool,
    /// Rounds a cached event stays servable before aging out.
    pub cache_rounds: u16,
    /// Maximum cached events; the oldest entries evict first.
    pub cache_events: usize,
    /// Neighbors sampled per digest round.
    pub digest_fanout: usize,
    /// Rounds between digest emissions (1 = every round).
    pub digest_every: u16,
    /// Maximum entries per digest (the newest cached events win).
    pub digest_entries: usize,
    /// Pull attempts per missing event before giving up.
    pub pull_retries: u32,
    /// Base backoff between pull attempts, in rounds (doubles per
    /// attempt, capped).
    pub backoff_rounds: u16,
}

impl Default for AeConfig {
    fn default() -> Self {
        AeConfig {
            enabled: false,
            cache_rounds: 30,
            cache_events: 512,
            digest_fanout: 2,
            digest_every: 1,
            digest_entries: 64,
            pull_retries: 3,
            backoff_rounds: 2,
        }
    }
}

impl AeConfig {
    /// The default parameters with the layer switched on.
    pub fn on() -> Self {
        AeConfig {
            enabled: true,
            ..AeConfig::default()
        }
    }
}

/// One cached event, re-servable to pulling peers.
#[derive(Clone, Debug)]
struct Cached<P> {
    topic: u32,
    /// Round the entry was cached in (drives TTL aging).
    born: u64,
    payload: P,
}

/// One missing event this node is trying to pull.
#[derive(Clone, Debug)]
struct Want {
    /// Peers that advertised the event, in discovery order; retries
    /// rotate through them so a dead or overloaded advertiser is not
    /// re-asked forever.
    advertisers: Vec<NodeIdx>,
    /// Pull attempts issued so far.
    attempts: u32,
    /// Round the next attempt is due.
    due: u64,
}

/// Process-wide count of pulls abandoned after exhausting their retry
/// budget. Aggregated across every node of every system in the process —
/// purely observational (never read by protocol logic), so it cannot
/// perturb determinism.
static EXHAUSTED_PULLS: AtomicU64 = AtomicU64::new(0);

/// Count `n` freshly exhausted pulls; `true` exactly when this call moved
/// the process total away from zero — the caller's cue to emit the
/// once-per-process warning (same rate-limit discipline as the trace
/// ring-buffer overflow warning).
fn note_exhausted(n: u64) -> bool {
    n > 0 && EXHAUSTED_PULLS.fetch_add(n, Ordering::Relaxed) == 0
}

/// `Some(total abandoned pulls)` when any pull in this process exhausted
/// its retry budget — the exit-summary hook for harnesses.
pub fn exhausted_pull_status() -> Option<u64> {
    let n = EXHAUSTED_PULLS.load(Ordering::Relaxed);
    (n > 0).then_some(n)
}

/// Per-node anti-entropy state machine. `P` is the protocol's re-servable
/// payload (typically its notification message body).
#[derive(Clone, Debug)]
pub struct AntiEntropy<P> {
    cfg: AeConfig,
    /// Recently seen events, ascending by event id.
    cache: Vec<(u64, Cached<P>)>,
    /// Outstanding pulls, ascending by event id.
    wants: Vec<(u64, Want)>,
    /// Pulls this node abandoned after `pull_retries` attempts.
    exhausted: u64,
}

impl<P: Clone> AntiEntropy<P> {
    /// A fresh state machine.
    pub fn new(cfg: AeConfig) -> Self {
        AntiEntropy {
            cfg,
            cache: Vec::new(),
            wants: Vec::new(),
            exhausted: 0,
        }
    }

    /// Whether the layer is active.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configuration.
    pub fn config(&self) -> &AeConfig {
        &self.cfg
    }

    /// Record that this node now holds `event` (seen via normal
    /// dissemination, publish, or recovery): cache the payload for
    /// re-serving and drop any outstanding pull for it. Evicts the oldest
    /// entry when the cache is full.
    pub fn insert(&mut self, event: u64, topic: u32, payload: P, round: u64) {
        if !self.cfg.enabled {
            return;
        }
        self.satisfy(event);
        let Err(pos) = self.cache.binary_search_by_key(&event, |(e, _)| *e) else {
            return;
        };
        self.cache.insert(
            pos,
            (
                event,
                Cached {
                    topic,
                    born: round,
                    payload,
                },
            ),
        );
        if self.cache.len() > self.cfg.cache_events {
            // Evict the oldest entry (lowest born round, then lowest id —
            // both deterministic).
            let victim = self
                .cache
                .iter()
                .enumerate()
                .min_by_key(|(_, (e, c))| (c.born, *e))
                .map(|(i, _)| i)
                .expect("cache non-empty");
            self.cache.remove(victim);
        }
    }

    /// Whether `event` is currently cached.
    pub fn holds(&self, event: u64) -> bool {
        self.cache.binary_search_by_key(&event, |(e, _)| *e).is_ok()
    }

    /// Drop any outstanding pull for `event` (it arrived some other way).
    pub fn satisfy(&mut self, event: u64) {
        if let Ok(pos) = self.wants.binary_search_by_key(&event, |(e, _)| *e) {
            self.wants.remove(pos);
        }
    }

    /// Round upkeep: age out cache entries past their TTL.
    pub fn tick(&mut self, round: u64) {
        if !self.cfg.enabled {
            return;
        }
        let ttl = self.cfg.cache_rounds as u64;
        self.cache
            .retain(|(_, c)| round.saturating_sub(c.born) <= ttl);
    }

    /// The digest to gossip this round: `(event, topic)` pairs for the
    /// newest cached events (ascending by id), or `None` when the layer
    /// is off, the cache is empty, or this round is off-cadence.
    pub fn digest(&self, round: u64) -> Option<Vec<(u64, u32)>> {
        if !self.cfg.enabled || self.cache.is_empty() {
            return None;
        }
        let every = self.cfg.digest_every.max(1) as u64;
        if round % every != 0 {
            return None;
        }
        let skip = self.cache.len().saturating_sub(self.cfg.digest_entries);
        Some(
            self.cache[skip..]
                .iter()
                .map(|(e, c)| (*e, c.topic))
                .collect(),
        )
    }

    /// Sample up to `digest_fanout` distinct digest targets from
    /// `neighbors` (a deterministic partial shuffle on the caller's RNG
    /// stream). Call only when [`AntiEntropy::digest`] returned work, so
    /// a disabled or idle layer consumes no randomness.
    pub fn pick_targets(&self, neighbors: &[NodeIdx], rng: &mut impl Rng) -> Vec<NodeIdx> {
        let mut pool: Vec<NodeIdx> = neighbors.to_vec();
        let k = self.cfg.digest_fanout.min(pool.len());
        for i in 0..k {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// Process a digest from `from`: every advertised event whose topic
    /// passes `interested` and that `have` does not know becomes (or
    /// refreshes) a want. Returns the ids to pull from `from` right now —
    /// only freshly discovered gaps; known wants just gain an advertiser
    /// for later retries.
    pub fn on_digest(
        &mut self,
        from: NodeIdx,
        entries: &[(u64, u32)],
        round: u64,
        mut interested: impl FnMut(u32) -> bool,
        mut have: impl FnMut(u64) -> bool,
    ) -> Vec<u64> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        let mut fresh = Vec::new();
        for &(event, topic) in entries {
            if !interested(topic) || have(event) || self.holds(event) {
                continue;
            }
            match self.wants.binary_search_by_key(&event, |(e, _)| *e) {
                Ok(pos) => {
                    let w = &mut self.wants[pos].1;
                    if !w.advertisers.contains(&from) {
                        w.advertisers.push(from);
                    }
                }
                Err(pos) => {
                    self.wants.insert(
                        pos,
                        (
                            event,
                            Want {
                                advertisers: vec![from],
                                attempts: 1,
                                due: round + self.backoff(1),
                            },
                        ),
                    );
                    fresh.push(event);
                }
            }
        }
        fresh
    }

    /// Backoff before the attempt *after* number `attempts`: base doubles
    /// per attempt, capped at 32×.
    fn backoff(&self, attempts: u32) -> u64 {
        let sh = attempts.saturating_sub(1).min(5);
        (self.cfg.backoff_rounds.max(1) as u64) << sh
    }

    /// Pull retries due this round, grouped per target peer (ascending by
    /// peer). Each due want re-asks the next advertiser in rotation;
    /// wants that exhausted their retry budget are dropped and counted —
    /// the first exhaustion in the whole process emits a rate-limited
    /// warning (totals available via [`exhausted_pull_status`]).
    pub fn due_pulls(&mut self, round: u64) -> Vec<(NodeIdx, Vec<u64>)> {
        if !self.cfg.enabled || self.wants.is_empty() {
            return Vec::new();
        }
        let retries = self.cfg.pull_retries;
        let mut asks: Vec<(NodeIdx, Vec<u64>)> = Vec::new();
        let mut dropped = 0u64;
        let cfg = self.cfg.clone();
        self.wants.retain_mut(|(event, w)| {
            if w.due > round {
                return true;
            }
            if w.attempts >= retries {
                dropped += 1;
                return false;
            }
            let target = w.advertisers[w.attempts as usize % w.advertisers.len()];
            w.attempts += 1;
            let sh = w.attempts.saturating_sub(1).min(5);
            w.due = round + ((cfg.backoff_rounds.max(1) as u64) << sh);
            match asks.binary_search_by_key(&target, |(t, _)| *t) {
                Ok(i) => asks[i].1.push(*event),
                Err(i) => asks.insert(i, (target, vec![*event])),
            }
            true
        });
        if dropped > 0 {
            self.exhausted += dropped;
            if note_exhausted(dropped) {
                eprintln!(
                    "warning: anti-entropy pull retries exhausted (an advertised event was \
                     never recovered); further exhaustions are counted silently — totals in \
                     the exit summary"
                );
            }
        }
        asks
    }

    /// Serve a pull request: `(event, topic, payload)` for every id still
    /// cached. Aged-out or never-held ids are silently absent — the
    /// puller's retry/backoff path handles the gap.
    pub fn serve(&self, ids: &[u64]) -> Vec<(u64, u32, P)> {
        ids.iter()
            .filter_map(|&id| {
                self.cache
                    .binary_search_by_key(&id, |(e, _)| *e)
                    .ok()
                    .map(|pos| {
                        let (e, c) = &self.cache[pos];
                        (*e, c.topic, c.payload.clone())
                    })
            })
            .collect()
    }

    /// Cached events (tests/telemetry).
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// Outstanding pulls (tests/telemetry).
    pub fn pending(&self) -> usize {
        self.wants.len()
    }

    /// Pulls this node abandoned after exhausting their retry budget.
    pub fn exhausted(&self) -> u64 {
        self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn on() -> AeConfig {
        AeConfig::on()
    }

    fn n(i: u32) -> NodeIdx {
        NodeIdx(i)
    }

    #[test]
    fn disabled_layer_is_inert() {
        let mut ae: AntiEntropy<&str> = AntiEntropy::new(AeConfig::default());
        ae.insert(1, 0, "x", 1);
        assert_eq!(ae.cached(), 0);
        assert_eq!(ae.digest(2), None);
        assert!(ae
            .on_digest(n(1), &[(1, 0)], 2, |_| true, |_| false)
            .is_empty());
        assert!(ae.due_pulls(10).is_empty());
    }

    #[test]
    fn cache_ages_out_and_pull_after_expiry_serves_nothing() {
        let cfg = AeConfig {
            cache_rounds: 3,
            ..on()
        };
        let mut ae: AntiEntropy<&str> = AntiEntropy::new(cfg);
        ae.insert(7, 2, "payload", 10);
        assert_eq!(ae.serve(&[7]).len(), 1);
        ae.tick(13);
        assert_eq!(ae.serve(&[7]).len(), 1, "at TTL boundary still served");
        ae.tick(14);
        assert!(ae.serve(&[7]).is_empty(), "aged-out entry no longer served");
        assert_eq!(ae.cached(), 0);
    }

    #[test]
    fn cache_capacity_evicts_oldest_first() {
        let cfg = AeConfig {
            cache_events: 2,
            ..on()
        };
        let mut ae: AntiEntropy<u8> = AntiEntropy::new(cfg);
        ae.insert(1, 0, 1, 1);
        ae.insert(2, 0, 2, 2);
        ae.insert(3, 0, 3, 3);
        assert_eq!(ae.cached(), 2);
        assert!(!ae.holds(1), "oldest entry evicted");
        assert!(ae.holds(2) && ae.holds(3));
    }

    #[test]
    fn digest_carries_newest_entries_on_cadence() {
        let cfg = AeConfig {
            digest_entries: 2,
            digest_every: 2,
            ..on()
        };
        let mut ae: AntiEntropy<u8> = AntiEntropy::new(cfg);
        for e in 1..=4 {
            ae.insert(e, e as u32 * 10, 0, e);
        }
        assert_eq!(ae.digest(3), None, "off-cadence round");
        assert_eq!(ae.digest(4), Some(vec![(3, 30), (4, 40)]));
    }

    #[test]
    fn on_digest_requests_only_interesting_gaps() {
        let mut ae: AntiEntropy<u8> = AntiEntropy::new(on());
        ae.insert(5, 0, 0, 1); // already cached
        let fresh = ae.on_digest(
            n(9),
            &[(1, 0), (2, 99), (3, 0), (5, 0)],
            4,
            |t| t != 99, // not interested in topic 99
            |e| e == 3,  // already have event 3
        );
        assert_eq!(fresh, vec![1]);
        assert_eq!(ae.pending(), 1);
        // A second digest for a known want adds an advertiser, no re-ask.
        let again = ae.on_digest(n(11), &[(1, 0)], 5, |_| true, |_| false);
        assert!(again.is_empty());
        assert_eq!(ae.pending(), 1);
    }

    #[test]
    fn retries_rotate_advertisers_and_back_off() {
        let cfg = AeConfig {
            pull_retries: 3,
            backoff_rounds: 2,
            ..on()
        };
        let mut ae: AntiEntropy<u8> = AntiEntropy::new(cfg);
        ae.on_digest(n(1), &[(42, 0)], 0, |_| true, |_| false);
        ae.on_digest(n(2), &[(42, 0)], 0, |_| true, |_| false);
        // First retry due at round 2, asks the second advertiser.
        assert!(ae.due_pulls(1).is_empty(), "not due yet");
        let asks = ae.due_pulls(2);
        assert_eq!(asks, vec![(n(2), vec![42])]);
        // Second retry backs off twice as far and rotates back.
        assert!(ae.due_pulls(4).is_empty());
        assert_eq!(ae.due_pulls(6), vec![(n(1), vec![42])]);
        // Budget (3 attempts) spent: the next due pass abandons the want.
        let before = EXHAUSTED_PULLS.load(Ordering::Relaxed);
        assert!(ae.due_pulls(100).is_empty());
        assert_eq!(ae.pending(), 0);
        assert_eq!(ae.exhausted(), 1);
        assert_eq!(EXHAUSTED_PULLS.load(Ordering::Relaxed), before + 1);
        assert!(exhausted_pull_status().is_some());
    }

    #[test]
    fn due_pulls_group_per_target_in_ascending_order() {
        let mut ae: AntiEntropy<u8> = AntiEntropy::new(AeConfig {
            backoff_rounds: 1,
            ..on()
        });
        ae.on_digest(n(5), &[(10, 0)], 0, |_| true, |_| false);
        ae.on_digest(n(3), &[(11, 0)], 0, |_| true, |_| false);
        ae.on_digest(n(5), &[(12, 0)], 0, |_| true, |_| false);
        let asks = ae.due_pulls(1);
        assert_eq!(asks, vec![(n(3), vec![11]), (n(5), vec![10, 12])]);
    }

    #[test]
    fn normal_arrival_satisfies_an_outstanding_want() {
        let mut ae: AntiEntropy<u8> = AntiEntropy::new(on());
        ae.on_digest(n(1), &[(8, 0)], 0, |_| true, |_| false);
        assert_eq!(ae.pending(), 1);
        ae.insert(8, 0, 0, 1); // the flood got there after all
        assert_eq!(ae.pending(), 0);
        assert!(ae.holds(8));
    }

    #[test]
    fn target_sampling_is_deterministic_and_bounded() {
        let ae: AntiEntropy<u8> = AntiEntropy::new(AeConfig {
            digest_fanout: 2,
            ..on()
        });
        let nbrs: Vec<NodeIdx> = (0..10).map(NodeIdx).collect();
        let pick = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            ae.pick_targets(&nbrs, &mut rng)
        };
        assert_eq!(pick(7), pick(7), "same stream, same sample");
        assert_eq!(pick(7).len(), 2);
        let mut one = pick(7);
        one.dedup();
        assert_eq!(one.len(), 2, "targets are distinct");
        assert_eq!(
            ae.pick_targets(&nbrs[..1], &mut SmallRng::seed_from_u64(1))
                .len(),
            1
        );
        assert!(ae
            .pick_targets(&[], &mut SmallRng::seed_from_u64(1))
            .is_empty());
    }
}
