//! Structured run tracing: typed events in a bounded ring buffer with
//! JSONL export, plus the per-message-kind traffic ledger the engine keeps.
//!
//! A [`Trace`] records what *happened* during a run — round boundaries,
//! node lifecycle (join/leave/churn), message sends and deliveries tagged
//! by protocol message kind, per-round overlay health probes and
//! convergence samples — as typed [`TraceEvent`] values. The buffer is a
//! fixed-capacity ring: recording never allocates once the ring is full,
//! the newest events win, and the number of evicted events is counted so
//! truncation is visible rather than silent.
//!
//! Export is newline-delimited JSON (JSONL), one flat object per event;
//! [`parse_event`] parses a line back into a [`TraceEvent`] so traces
//! round-trip without any external serialization dependency. Malformed
//! lines yield a typed [`ParseError`] rather than a panic. The schema is
//! documented in `docs/METRICS.md` at the repository root.
//!
//! Beyond transport-level events, the trace carries **delivery forensics**:
//! per-published-event causal records ([`TraceEvent::PubEvent`],
//! [`TraceEvent::Fwd`], [`TraceEvent::DeliverEvent`]) plus loss
//! attributions ([`TraceEvent::DropEvent`]) emitted at window close, so an
//! offline analyzer can reconstruct each event's dissemination tree and
//! explain every missed delivery.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Which plane a message belongs to: protocol maintenance (gossip,
/// heartbeats, lookups) or event dissemination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Overlay-maintenance traffic: peer sampling, T-Man exchanges,
    /// heartbeats, relay/tree construction.
    Control,
    /// Event-dissemination traffic (notifications and publish stimuli).
    Data,
}

impl TrafficClass {
    /// Stable lowercase name used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            TrafficClass::Control => "control",
            TrafficClass::Data => "data",
        }
    }

    /// Inverse of [`TrafficClass::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "control" => Some(TrafficClass::Control),
            "data" => Some(TrafficClass::Data),
            _ => None,
        }
    }
}

/// The tag a protocol assigns to one of its message variants via
/// [`crate::protocol::Protocol::classify`]: a stable kind name plus the
/// traffic class. Kind names are `&'static str` so tagging is
/// allocation-free on the send/deliver hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgTag {
    /// Stable snake_case message-kind name (e.g. `"rt_req"`).
    pub kind: &'static str,
    /// Control or data plane.
    pub class: TrafficClass,
}

impl MsgTag {
    /// A control-plane tag.
    pub const fn control(kind: &'static str) -> Self {
        MsgTag {
            kind,
            class: TrafficClass::Control,
        }
    }

    /// A data-plane tag.
    pub const fn data(kind: &'static str) -> Self {
        MsgTag {
            kind,
            class: TrafficClass::Data,
        }
    }
}

/// Send/deliver counters for one message kind over the current
/// measurement window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KindTraffic {
    /// The message-kind name.
    pub kind: &'static str,
    /// Control or data plane.
    pub class: TrafficClass,
    /// Messages of this kind handed to the network.
    pub sent: u64,
    /// Messages of this kind delivered to an alive node (includes
    /// self-timers and harness injections, mirroring the engine's
    /// aggregate delivered counter).
    pub delivered: u64,
}

/// The engine's per-message-kind traffic ledger. A handful of kinds per
/// protocol means a linear scan beats any map; counters reset with the
/// measurement window while the kind list persists.
#[derive(Clone, Debug, Default)]
pub struct TrafficLedger {
    kinds: Vec<KindTraffic>,
}

impl TrafficLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        TrafficLedger::default()
    }

    fn slot(&mut self, tag: MsgTag) -> &mut KindTraffic {
        if let Some(i) = self.kinds.iter().position(|k| k.kind == tag.kind) {
            return &mut self.kinds[i];
        }
        self.kinds.push(KindTraffic {
            kind: tag.kind,
            class: tag.class,
            sent: 0,
            delivered: 0,
        });
        self.kinds.last_mut().expect("just pushed")
    }

    /// Count one send of a `tag`-classified message.
    pub fn record_send(&mut self, tag: MsgTag) {
        self.slot(tag).sent += 1;
    }

    /// Count one delivery of a `tag`-classified message.
    pub fn record_deliver(&mut self, tag: MsgTag) {
        self.slot(tag).delivered += 1;
    }

    /// The per-kind counters, in first-seen order.
    pub fn kinds(&self) -> &[KindTraffic] {
        &self.kinds
    }

    /// `(control, data)` messages sent over the window.
    pub fn sent_by_class(&self) -> (u64, u64) {
        self.kinds.iter().fold((0, 0), |(c, d), k| match k.class {
            TrafficClass::Control => (c + k.sent, d),
            TrafficClass::Data => (c, d + k.sent),
        })
    }

    /// Zero all counters, keeping the kind list (window reset).
    pub fn reset(&mut self) {
        for k in &mut self.kinds {
            k.sent = 0;
            k.delivered = 0;
        }
    }
}

/// One overlay health sample, filled by a system-level probe (the engine
/// itself is protocol-agnostic). Fields a system cannot measure stay
/// `None` and export as JSON `null`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HealthProbe {
    /// Online nodes at probe time.
    pub alive: u64,
    /// Mean routing-table (or link-set) size over online nodes.
    pub mean_degree: f64,
    /// Fraction of online nodes whose successor pointer matches the true
    /// ring (`None` for ring-less overlays).
    pub ring_accuracy: Option<f64>,
    /// Mean gossip age over routing-table descriptors (staleness of the
    /// view; `None` where ages are not tracked).
    pub mean_view_age: Option<f64>,
    /// Connected subscriber components summed over the sampled topics.
    pub clusters: Option<u64>,
    /// Size of the largest sampled cluster.
    pub largest_cluster: Option<u64>,
}

/// One structural overlay-topology sample, filled by a system-level
/// snapshot analysis (see the core crate's `topo` module). Fields a
/// system cannot measure stay `None` and export as JSON `null`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TopoProbe {
    /// Online nodes in the snapshot.
    pub nodes: u64,
    /// Directed overlay links between online nodes.
    pub links: u64,
    /// Topics included in the per-topic connectivity analysis.
    pub sampled_topics: u64,
    /// Subscriber components over overlay links, summed over sampled
    /// topics (the fragmentation the relay layer must stitch).
    pub components: u64,
    /// Subscriber components once relay-path edges are added; equals
    /// `sampled_topics` when every topic is fully stitched.
    pub stitched_components: u64,
    /// Mean fraction of a topic's subscribers inside its largest
    /// stitched component (1.0 = perfect connectivity).
    pub largest_component_frac: f64,
    /// Topics with two or more rendezvous claimants.
    pub rendezvous_conflicts: u64,
    /// Topics holding relay state but no rendezvous claimant.
    pub headless_topics: u64,
    /// Relay links referencing nodes absent from the snapshot.
    pub dead_links: u64,
    /// Mean relay-path hop count over sampled upstream chains divided by
    /// the overlay-graph BFS distance (`None` when nothing was sampled).
    pub mean_relay_stretch: Option<f64>,
    /// Largest number of topics any single node serves as gateway for.
    pub max_gateway_load: u64,
    /// Mean gossip age over routing-table links (`None` where ages are
    /// not tracked).
    pub mean_view_age: Option<f64>,
    /// Invariant-audit violations found in the snapshot.
    pub violations: u64,
}

/// A typed trace record. Engine-emitted variants (`Join`, `Leave`,
/// `MsgSend`, `MsgDeliver`) carry node slots and simulated time in raw
/// ticks; harness-emitted variants add round boundaries, convergence
/// samples, health probes and wall-clock phase timings.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A gossip-round boundary observed by the measurement harness.
    Round {
        /// Measured round number (1-based within the window).
        round: u64,
        /// Simulated time in ticks.
        now: u64,
        /// Online nodes.
        alive: u64,
    },
    /// A node came online (fresh join or churn rejoin).
    Join {
        /// Simulated time in ticks.
        now: u64,
        /// Engine slot of the node.
        node: u32,
        /// True when re-entering a previously vacated slot.
        rejoin: bool,
    },
    /// A node went offline.
    Leave {
        /// Simulated time in ticks.
        now: u64,
        /// Engine slot of the node.
        node: u32,
        /// True for a crash (no goodbye effects), false for a graceful
        /// leave.
        crash: bool,
    },
    /// A protocol message was handed to the network.
    MsgSend {
        /// Simulated time in ticks.
        now: u64,
        /// Sender slot.
        from: u32,
        /// Destination slot.
        to: u32,
        /// Protocol message kind (from [`MsgTag`]).
        kind: Cow<'static, str>,
        /// Control or data plane.
        class: TrafficClass,
    },
    /// A message was delivered to an alive node (includes self-timers
    /// and harness injections).
    MsgDeliver {
        /// Simulated time in ticks.
        now: u64,
        /// Sender slot (the receiver itself for timers/injections).
        from: u32,
        /// Receiver slot.
        to: u32,
        /// Protocol message kind.
        kind: Cow<'static, str>,
        /// Control or data plane.
        class: TrafficClass,
    },
    /// A per-round overlay health probe.
    Health {
        /// Simulated time in ticks.
        now: u64,
        /// The probe sample.
        probe: HealthProbe,
    },
    /// A per-round convergence sample of the paper's headline metrics.
    Sample {
        /// Measured round number (1-based within the window).
        round: u64,
        /// Simulated time in ticks.
        now: u64,
        /// Hit ratio so far in the window.
        hit_ratio: f64,
        /// Traffic overhead (relay share) so far, in percent.
        overhead_pct: f64,
        /// Deliveries achieved so far.
        delivered: u64,
        /// Deliveries expected so far.
        expected: u64,
    },
    /// Wall-clock duration of one harness phase (build / warmup /
    /// measure / drain).
    Phase {
        /// Phase name.
        name: Cow<'static, str>,
        /// Wall-clock milliseconds.
        wall_ms: f64,
    },
    /// Forensics: an event was published — the root of its delivery tree.
    PubEvent {
        /// Simulated time in ticks.
        now: u64,
        /// Monitor-assigned event id.
        event: u64,
        /// Topic the event was published under.
        topic: u64,
        /// Engine slot of the publisher.
        node: u32,
        /// Expected `(event, subscriber)` deliveries for this event.
        expected: u64,
    },
    /// Forensics: one dissemination forward of an event between nodes.
    Fwd {
        /// Simulated time in ticks (send time).
        now: u64,
        /// Monitor-assigned event id.
        event: u64,
        /// Forwarding node's engine slot.
        from: u32,
        /// Destination engine slot.
        to: u32,
        /// Hop count the notification carries on this edge (1 = first
        /// hop out of the publisher).
        hop: u32,
    },
    /// Forensics: an interested subscriber received an event for the
    /// first time.
    DeliverEvent {
        /// Simulated time in ticks (arrival).
        now: u64,
        /// Monitor-assigned event id.
        event: u64,
        /// Subscriber's engine slot.
        node: u32,
        /// Hops travelled by the first copy to arrive.
        hops: u32,
        /// Publish-to-arrival latency in ticks.
        latency: u64,
        /// The causal hop path, `>`-joined engine slots from publisher to
        /// subscriber (e.g. `"0>5>12"`); empty when provenance was not
        /// carried.
        path: String,
        /// `true` when the copy arrived via the anti-entropy repair layer
        /// (a digest-triggered pull) rather than normal dissemination.
        /// Serialized only when set, so repair-free traces are
        /// byte-identical to those of builds without the field.
        recovered: bool,
    },
    /// A message was lost in transit: the network model dropped it
    /// (loss, partition) or freeze suppression swallowed it. Distinct from
    /// [`TraceEvent::DropEvent`], which records a *missed delivery* after
    /// attribution — one lost copy does not imply a miss (another copy may
    /// still arrive), so these are never counted against the
    /// expected-minus-delivered balance.
    NetDrop {
        /// Simulated time in ticks (send time).
        now: u64,
        /// Sender slot.
        from: u32,
        /// Destination slot.
        to: u32,
        /// Protocol message kind.
        kind: Cow<'static, str>,
        /// The published event the message carried, if any (see
        /// [`crate::protocol::Protocol::event_of`]).
        event: Option<u64>,
    },
    /// Forensics: a missed `(event, subscriber)` pair, classified at
    /// window close by the loss-attribution pass.
    DropEvent {
        /// Simulated time of the attribution pass in ticks.
        now: u64,
        /// Monitor-assigned event id.
        event: u64,
        /// The subscriber that never received the event.
        node: u32,
        /// Stable snake_case drop-reason name (e.g. `"no_gateway"`).
        reason: Cow<'static, str>,
    },
    /// A periodic structural overlay-topology sample (see [`TopoProbe`]).
    TopoSample {
        /// Measured round number at sample time (0 when unknown).
        round: u64,
        /// Simulated time in ticks.
        now: u64,
        /// The topology sample.
        probe: TopoProbe,
    },
    /// Reconvergence outcome of one resilience run: how long after the
    /// fault healed the system took to re-enter its pre-fault
    /// hit-ratio band — or an explicit unrecovered marker (`rounds:
    /// null`) when it never did within the observation horizon. Written
    /// by the `resilience` sweep instead of a sentinel value.
    Reconv {
        /// System label (e.g. `"vitis"`).
        system: Cow<'static, str>,
        /// Partition severity as a percentage of nodes cut off.
        severity_pct: u32,
        /// Whether the anti-entropy repair layer was enabled.
        repair: bool,
        /// Rounds from heal to reconvergence; `None` = never reconverged.
        rounds: Option<u64>,
    },
    /// Ring-buffer accounting for a run's trace, written by the export
    /// harness so truncation is detectable offline.
    TraceMeta {
        /// Ring capacity in events.
        capacity: u64,
        /// Events ever recorded (retained + evicted).
        recorded: u64,
        /// Events evicted by the ring bound; `> 0` means the file is
        /// truncated to the newest `capacity` events.
        evicted: u64,
    },
}

/// Shared handle to a [`Trace`]; the engine and the harness both record
/// into the same buffer.
///
/// Backed by `Arc<Mutex>` so traced protocol state can cross worker
/// threads under the engine's parallel round executor; all recording
/// still happens on the engine thread (workers defer shared-sink writes),
/// so the lock is uncontended. The `borrow`/`borrow_mut` method names are
/// kept from the earlier single-threaded `Rc<RefCell>` handle.
#[derive(Clone, Debug)]
pub struct TraceHandle(Arc<Mutex<Trace>>);

impl TraceHandle {
    /// Lock the trace for reading.
    pub fn borrow(&self) -> std::sync::MutexGuard<'_, Trace> {
        self.0.lock().expect("trace lock poisoned")
    }

    /// Lock the trace for writing.
    pub fn borrow_mut(&self) -> std::sync::MutexGuard<'_, Trace> {
        self.0.lock().expect("trace lock poisoned")
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct Trace {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    evicted: u64,
    total: u64,
    record_messages: bool,
}

impl Trace {
    /// A trace keeping at most `capacity` events (the newest win).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            buf: VecDeque::with_capacity(capacity),
            cap: capacity,
            evicted: 0,
            total: 0,
            record_messages: true,
        }
    }

    /// A shared handle around a fresh trace (what systems install into
    /// their engine).
    pub fn shared(capacity: usize) -> TraceHandle {
        TraceHandle(Arc::new(Mutex::new(Trace::new(capacity))))
    }

    /// Whether per-message events are recorded (on by default). Round,
    /// lifecycle, health, sample and phase events are always recorded.
    pub fn record_messages(&self) -> bool {
        self.record_messages
    }

    /// Enable or disable per-message events (they dominate volume on
    /// large runs).
    pub fn set_record_messages(&mut self, on: bool) {
        self.record_messages = on;
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev);
        self.total += 1;
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted by the ring bound (truncation indicator).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events ever recorded (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Drop all retained events and reset the counters.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.evicted = 0;
        self.total = 0;
    }

    /// Stream the retained events as JSONL into `w`, one event per line.
    ///
    /// Unlike [`Trace::to_jsonl`] this never materializes the whole dump:
    /// one line buffer is reused across events, so exporting a large ring
    /// directly to a file costs O(longest line) memory instead of
    /// O(total dump).
    pub fn write_jsonl<W: std::io::Write + ?Sized>(&self, w: &mut W) -> std::io::Result<()> {
        let mut line = String::with_capacity(160);
        for ev in &self.buf {
            line.clear();
            write_event(&mut line, ev);
            line.push('\n');
            w.write_all(line.as_bytes())?;
        }
        Ok(())
    }

    /// Render the retained events as one JSONL string (a thin buffered
    /// wrapper over [`Trace::write_jsonl`]; prefer that for large traces).
    pub fn to_jsonl(&self) -> String {
        let mut out = Vec::with_capacity(self.buf.len() * 96);
        self.write_jsonl(&mut out)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("trace JSONL is valid UTF-8")
    }
}

/// Append `s` to `out` as a JSON string literal (quoted and escaped).
/// Public so downstream JSONL writers share the trace's escaping rules.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number; non-finite values become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null"); // NaN/inf are not valid JSON numbers
    }
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

/// Append the single-line JSON rendering of `ev` to `out` (no trailing
/// newline).
pub fn write_event(out: &mut String, ev: &TraceEvent) {
    match ev {
        TraceEvent::Round { round, now, alive } => {
            let _ = write!(
                out,
                "{{\"type\":\"round\",\"round\":{round},\"now\":{now},\"alive\":{alive}}}"
            );
        }
        TraceEvent::Join { now, node, rejoin } => {
            let _ = write!(
                out,
                "{{\"type\":\"join\",\"now\":{now},\"node\":{node},\"rejoin\":{rejoin}}}"
            );
        }
        TraceEvent::Leave { now, node, crash } => {
            let _ = write!(
                out,
                "{{\"type\":\"leave\",\"now\":{now},\"node\":{node},\"crash\":{crash}}}"
            );
        }
        TraceEvent::MsgSend {
            now,
            from,
            to,
            kind,
            class,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"msg_send\",\"now\":{now},\"from\":{from},\"to\":{to},\"kind\":"
            );
            push_json_str(out, kind);
            let _ = write!(out, ",\"class\":\"{}\"}}", class.as_str());
        }
        TraceEvent::MsgDeliver {
            now,
            from,
            to,
            kind,
            class,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"msg_deliver\",\"now\":{now},\"from\":{from},\"to\":{to},\"kind\":"
            );
            push_json_str(out, kind);
            let _ = write!(out, ",\"class\":\"{}\"}}", class.as_str());
        }
        TraceEvent::Health { now, probe } => {
            let _ = write!(
                out,
                "{{\"type\":\"health\",\"now\":{now},\"alive\":{},\"mean_degree\":",
                probe.alive
            );
            push_f64(out, probe.mean_degree);
            out.push_str(",\"ring_accuracy\":");
            push_opt_f64(out, probe.ring_accuracy);
            out.push_str(",\"mean_view_age\":");
            push_opt_f64(out, probe.mean_view_age);
            out.push_str(",\"clusters\":");
            push_opt_u64(out, probe.clusters);
            out.push_str(",\"largest_cluster\":");
            push_opt_u64(out, probe.largest_cluster);
            out.push('}');
        }
        TraceEvent::Sample {
            round,
            now,
            hit_ratio,
            overhead_pct,
            delivered,
            expected,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"sample\",\"round\":{round},\"now\":{now},\"hit_ratio\":"
            );
            push_f64(out, *hit_ratio);
            out.push_str(",\"overhead_pct\":");
            push_f64(out, *overhead_pct);
            let _ = write!(out, ",\"delivered\":{delivered},\"expected\":{expected}}}");
        }
        TraceEvent::Phase { name, wall_ms } => {
            out.push_str("{\"type\":\"phase\",\"name\":");
            push_json_str(out, name);
            out.push_str(",\"wall_ms\":");
            push_f64(out, *wall_ms);
            out.push('}');
        }
        TraceEvent::PubEvent {
            now,
            event,
            topic,
            node,
            expected,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"pub_event\",\"now\":{now},\"event\":{event},\"topic\":{topic},\"node\":{node},\"expected\":{expected}}}"
            );
        }
        TraceEvent::Fwd {
            now,
            event,
            from,
            to,
            hop,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"fwd\",\"now\":{now},\"event\":{event},\"from\":{from},\"to\":{to},\"hop\":{hop}}}"
            );
        }
        TraceEvent::DeliverEvent {
            now,
            event,
            node,
            hops,
            latency,
            path,
            recovered,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"deliver_event\",\"now\":{now},\"event\":{event},\"node\":{node},\"hops\":{hops},\"latency\":{latency},\"path\":"
            );
            push_json_str(out, path);
            // Emitted only when set: repair-free traces keep their exact
            // historical bytes.
            if *recovered {
                out.push_str(",\"recovered\":true");
            }
            out.push('}');
        }
        TraceEvent::Reconv {
            system,
            severity_pct,
            repair,
            rounds,
        } => {
            let _ = write!(out, "{{\"type\":\"reconv\",\"system\":");
            push_json_str(out, system);
            let _ = write!(
                out,
                ",\"severity_pct\":{severity_pct},\"repair\":{repair},\"rounds\":"
            );
            push_opt_u64(out, *rounds);
            out.push('}');
        }
        TraceEvent::NetDrop {
            now,
            from,
            to,
            kind,
            event,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"net_drop\",\"now\":{now},\"from\":{from},\"to\":{to},\"kind\":"
            );
            push_json_str(out, kind);
            out.push_str(",\"event\":");
            push_opt_u64(out, *event);
            out.push('}');
        }
        TraceEvent::DropEvent {
            now,
            event,
            node,
            reason,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"drop_event\",\"now\":{now},\"event\":{event},\"node\":{node},\"reason\":"
            );
            push_json_str(out, reason);
            out.push('}');
        }
        TraceEvent::TopoSample { round, now, probe } => {
            let _ = write!(
                out,
                "{{\"type\":\"topo\",\"round\":{round},\"now\":{now},\"nodes\":{},\"links\":{},\"sampled_topics\":{},\"components\":{},\"stitched_components\":{},\"largest_component_frac\":",
                probe.nodes,
                probe.links,
                probe.sampled_topics,
                probe.components,
                probe.stitched_components,
            );
            push_f64(out, probe.largest_component_frac);
            let _ = write!(
                out,
                ",\"rendezvous_conflicts\":{},\"headless_topics\":{},\"dead_links\":{},\"mean_relay_stretch\":",
                probe.rendezvous_conflicts, probe.headless_topics, probe.dead_links,
            );
            push_opt_f64(out, probe.mean_relay_stretch);
            let _ = write!(
                out,
                ",\"max_gateway_load\":{},\"mean_view_age\":",
                probe.max_gateway_load
            );
            push_opt_f64(out, probe.mean_view_age);
            let _ = write!(out, ",\"violations\":{}}}", probe.violations);
        }
        TraceEvent::TraceMeta {
            capacity,
            recorded,
            evicted,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"trace_meta\",\"capacity\":{capacity},\"recorded\":{recorded},\"evicted\":{evicted}}}"
            );
        }
    }
}

/// The JSON rendering of one event (convenience over [`write_event`]).
pub fn event_to_json(ev: &TraceEvent) -> String {
    let mut s = String::new();
    write_event(&mut s, ev);
    s
}

/// A parsed flat JSON value (trace records never nest).
#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

/// Parse a single flat JSON object: `{"key": value, ...}` with string,
/// number, boolean or null values. Sufficient for every record this
/// module writes; not a general JSON parser.
fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut cs = line.trim().char_indices().peekable();
    let s = line.trim();
    let mut out = Vec::new();
    let skip_ws = |cs: &mut std::iter::Peekable<std::str::CharIndices<'_>>| {
        while cs.peek().is_some_and(|&(_, c)| c.is_whitespace()) {
            cs.next();
        }
    };
    let parse_string = |cs: &mut std::iter::Peekable<std::str::CharIndices<'_>>| -> Option<String> {
        match cs.next() {
            Some((_, '"')) => {}
            _ => return None,
        }
        let mut v = String::new();
        loop {
            match cs.next()? {
                (_, '"') => return Some(v),
                (_, '\\') => match cs.next()?.1 {
                    '"' => v.push('"'),
                    '\\' => v.push('\\'),
                    'n' => v.push('\n'),
                    't' => v.push('\t'),
                    'r' => v.push('\r'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + cs.next()?.1.to_digit(16)?;
                        }
                        v.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                (_, c) => v.push(c),
            }
        }
    };

    skip_ws(&mut cs);
    match cs.next() {
        Some((_, '{')) => {}
        _ => return None,
    }
    skip_ws(&mut cs);
    if cs.peek().is_some_and(|&(_, c)| c == '}') {
        cs.next();
        return Some(out);
    }
    loop {
        skip_ws(&mut cs);
        let key = parse_string(&mut cs)?;
        skip_ws(&mut cs);
        match cs.next() {
            Some((_, ':')) => {}
            _ => return None,
        }
        skip_ws(&mut cs);
        let val = match cs.peek()? {
            (_, '"') => JsonValue::Str(parse_string(&mut cs)?),
            &(i, c) if c == 't' || c == 'f' || c == 'n' => {
                let rest = &s[i..];
                if rest.starts_with("true") {
                    for _ in 0..4 {
                        cs.next();
                    }
                    JsonValue::Bool(true)
                } else if rest.starts_with("false") {
                    for _ in 0..5 {
                        cs.next();
                    }
                    JsonValue::Bool(false)
                } else if rest.starts_with("null") {
                    for _ in 0..4 {
                        cs.next();
                    }
                    JsonValue::Null
                } else {
                    return None;
                }
            }
            &(i, _) => {
                let mut end = s.len();
                while let Some(&(j, c)) = cs.peek() {
                    if c == ',' || c == '}' || c.is_whitespace() {
                        end = j;
                        break;
                    }
                    cs.next();
                }
                JsonValue::Num(s[i..end].parse().ok()?)
            }
        };
        out.push((key, val));
        skip_ws(&mut cs);
        match cs.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => return Some(out),
            _ => return None,
        }
    }
}

fn get<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Why a trace line failed to parse. Carried by [`parse_event`] /
/// [`parse_stamped`] so offline tools can report *which* line is broken
/// and *how* instead of silently skipping it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The line is not a flat JSON object (trace records never nest).
    NotJson,
    /// The object carries no string `"type"` field.
    MissingType,
    /// The `"type"` value names no known record type.
    UnknownType(String),
    /// A required field of the record type is absent.
    MissingField(&'static str),
    /// A field is present but has the wrong JSON type or an out-of-range
    /// value (e.g. non-numeric `now`).
    BadValue(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::NotJson => write!(f, "line is not a flat JSON object"),
            ParseError::MissingType => write!(f, "record has no string \"type\" field"),
            ParseError::UnknownType(t) => write!(f, "unknown record type {t:?}"),
            ParseError::MissingField(k) => write!(f, "missing required field {k:?}"),
            ParseError::BadValue(k) => write!(f, "invalid value for field {k:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn req<'a>(
    fields: &'a [(String, JsonValue)],
    key: &'static str,
) -> Result<&'a JsonValue, ParseError> {
    get(fields, key).ok_or(ParseError::MissingField(key))
}

fn req_u64(fields: &[(String, JsonValue)], key: &'static str) -> Result<u64, ParseError> {
    match req(fields, key)? {
        JsonValue::Num(n) if *n >= 0.0 => Ok(*n as u64),
        _ => Err(ParseError::BadValue(key)),
    }
}

fn req_u32(fields: &[(String, JsonValue)], key: &'static str) -> Result<u32, ParseError> {
    req_u64(fields, key).map(|v| v as u32)
}

fn req_f64(fields: &[(String, JsonValue)], key: &'static str) -> Result<f64, ParseError> {
    match req(fields, key)? {
        JsonValue::Num(n) => Ok(*n),
        JsonValue::Null => Ok(f64::NAN), // non-finite floats export as null
        _ => Err(ParseError::BadValue(key)),
    }
}

fn req_bool(fields: &[(String, JsonValue)], key: &'static str) -> Result<bool, ParseError> {
    match req(fields, key)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(ParseError::BadValue(key)),
    }
}

fn req_str<'a>(
    fields: &'a [(String, JsonValue)],
    key: &'static str,
) -> Result<&'a str, ParseError> {
    match req(fields, key)? {
        JsonValue::Str(s) => Ok(s),
        _ => Err(ParseError::BadValue(key)),
    }
}

fn req_opt_f64(
    fields: &[(String, JsonValue)],
    key: &'static str,
) -> Result<Option<f64>, ParseError> {
    match req(fields, key)? {
        JsonValue::Num(n) => Ok(Some(*n)),
        JsonValue::Null => Ok(None),
        _ => Err(ParseError::BadValue(key)),
    }
}

/// An optional boolean field: absent parses as `false` (fields emitted
/// only when set, like `deliver_event.recovered`).
fn opt_bool(fields: &[(String, JsonValue)], key: &'static str) -> Result<bool, ParseError> {
    match get(fields, key) {
        None => Ok(false),
        Some(JsonValue::Bool(b)) => Ok(*b),
        Some(_) => Err(ParseError::BadValue(key)),
    }
}

fn req_opt_u64(
    fields: &[(String, JsonValue)],
    key: &'static str,
) -> Result<Option<u64>, ParseError> {
    match req(fields, key)? {
        JsonValue::Num(n) if *n >= 0.0 => Ok(Some(*n as u64)),
        JsonValue::Null => Ok(None),
        _ => Err(ParseError::BadValue(key)),
    }
}

fn event_from_fields(fields: &[(String, JsonValue)]) -> Result<TraceEvent, ParseError> {
    let ty = match get(fields, "type") {
        Some(JsonValue::Str(s)) => s.as_str(),
        Some(_) => return Err(ParseError::BadValue("type")),
        None => return Err(ParseError::MissingType),
    };
    let tag = |key: &'static str| -> Result<(Cow<'static, str>, TrafficClass), ParseError> {
        Ok((
            Cow::Owned(req_str(fields, key)?.to_string()),
            TrafficClass::parse(req_str(fields, "class")?).ok_or(ParseError::BadValue("class"))?,
        ))
    };
    match ty {
        "round" => Ok(TraceEvent::Round {
            round: req_u64(fields, "round")?,
            now: req_u64(fields, "now")?,
            alive: req_u64(fields, "alive")?,
        }),
        "join" => Ok(TraceEvent::Join {
            now: req_u64(fields, "now")?,
            node: req_u32(fields, "node")?,
            rejoin: req_bool(fields, "rejoin")?,
        }),
        "leave" => Ok(TraceEvent::Leave {
            now: req_u64(fields, "now")?,
            node: req_u32(fields, "node")?,
            crash: req_bool(fields, "crash")?,
        }),
        "msg_send" => {
            let (kind, class) = tag("kind")?;
            Ok(TraceEvent::MsgSend {
                now: req_u64(fields, "now")?,
                from: req_u32(fields, "from")?,
                to: req_u32(fields, "to")?,
                kind,
                class,
            })
        }
        "msg_deliver" => {
            let (kind, class) = tag("kind")?;
            Ok(TraceEvent::MsgDeliver {
                now: req_u64(fields, "now")?,
                from: req_u32(fields, "from")?,
                to: req_u32(fields, "to")?,
                kind,
                class,
            })
        }
        "health" => Ok(TraceEvent::Health {
            now: req_u64(fields, "now")?,
            probe: HealthProbe {
                alive: req_u64(fields, "alive")?,
                mean_degree: req_f64(fields, "mean_degree")?,
                ring_accuracy: req_opt_f64(fields, "ring_accuracy")?,
                mean_view_age: req_opt_f64(fields, "mean_view_age")?,
                clusters: req_opt_u64(fields, "clusters")?,
                largest_cluster: req_opt_u64(fields, "largest_cluster")?,
            },
        }),
        "sample" => Ok(TraceEvent::Sample {
            round: req_u64(fields, "round")?,
            now: req_u64(fields, "now")?,
            hit_ratio: req_f64(fields, "hit_ratio")?,
            overhead_pct: req_f64(fields, "overhead_pct")?,
            delivered: req_u64(fields, "delivered")?,
            expected: req_u64(fields, "expected")?,
        }),
        "phase" => Ok(TraceEvent::Phase {
            name: Cow::Owned(req_str(fields, "name")?.to_string()),
            wall_ms: req_f64(fields, "wall_ms")?,
        }),
        "pub_event" => Ok(TraceEvent::PubEvent {
            now: req_u64(fields, "now")?,
            event: req_u64(fields, "event")?,
            topic: req_u64(fields, "topic")?,
            node: req_u32(fields, "node")?,
            expected: req_u64(fields, "expected")?,
        }),
        "fwd" => Ok(TraceEvent::Fwd {
            now: req_u64(fields, "now")?,
            event: req_u64(fields, "event")?,
            from: req_u32(fields, "from")?,
            to: req_u32(fields, "to")?,
            hop: req_u32(fields, "hop")?,
        }),
        "deliver_event" => Ok(TraceEvent::DeliverEvent {
            now: req_u64(fields, "now")?,
            event: req_u64(fields, "event")?,
            node: req_u32(fields, "node")?,
            hops: req_u32(fields, "hops")?,
            latency: req_u64(fields, "latency")?,
            path: req_str(fields, "path")?.to_string(),
            recovered: opt_bool(fields, "recovered")?,
        }),
        "reconv" => Ok(TraceEvent::Reconv {
            system: Cow::Owned(req_str(fields, "system")?.to_string()),
            severity_pct: req_u32(fields, "severity_pct")?,
            repair: req_bool(fields, "repair")?,
            rounds: req_opt_u64(fields, "rounds")?,
        }),
        "net_drop" => Ok(TraceEvent::NetDrop {
            now: req_u64(fields, "now")?,
            from: req_u32(fields, "from")?,
            to: req_u32(fields, "to")?,
            kind: Cow::Owned(req_str(fields, "kind")?.to_string()),
            event: req_opt_u64(fields, "event")?,
        }),
        "drop_event" => Ok(TraceEvent::DropEvent {
            now: req_u64(fields, "now")?,
            event: req_u64(fields, "event")?,
            node: req_u32(fields, "node")?,
            reason: Cow::Owned(req_str(fields, "reason")?.to_string()),
        }),
        "topo" => Ok(TraceEvent::TopoSample {
            round: req_u64(fields, "round")?,
            now: req_u64(fields, "now")?,
            probe: TopoProbe {
                nodes: req_u64(fields, "nodes")?,
                links: req_u64(fields, "links")?,
                sampled_topics: req_u64(fields, "sampled_topics")?,
                components: req_u64(fields, "components")?,
                stitched_components: req_u64(fields, "stitched_components")?,
                largest_component_frac: req_f64(fields, "largest_component_frac")?,
                rendezvous_conflicts: req_u64(fields, "rendezvous_conflicts")?,
                headless_topics: req_u64(fields, "headless_topics")?,
                dead_links: req_u64(fields, "dead_links")?,
                mean_relay_stretch: req_opt_f64(fields, "mean_relay_stretch")?,
                max_gateway_load: req_u64(fields, "max_gateway_load")?,
                mean_view_age: req_opt_f64(fields, "mean_view_age")?,
                violations: req_u64(fields, "violations")?,
            },
        }),
        "trace_meta" => Ok(TraceEvent::TraceMeta {
            capacity: req_u64(fields, "capacity")?,
            recorded: req_u64(fields, "recorded")?,
            evicted: req_u64(fields, "evicted")?,
        }),
        other => Err(ParseError::UnknownType(other.to_string())),
    }
}

/// Parse one JSONL line written by [`write_event`] back into a
/// [`TraceEvent`]. Extra fields (e.g. the `"run"` tag added by the
/// experiment harness) are ignored; malformed lines yield a typed
/// [`ParseError`] instead of a panic.
pub fn parse_event(line: &str) -> Result<TraceEvent, ParseError> {
    let fields = parse_flat_object(line).ok_or(ParseError::NotJson)?;
    event_from_fields(&fields)
}

/// Like [`parse_event`] but also returns the `"run"` stamp the experiment
/// harness prefixes to exported lines (`None` for unstamped traces). The
/// offline analyzer uses the stamp to group a multi-run file.
pub fn parse_stamped(line: &str) -> Result<(Option<String>, TraceEvent), ParseError> {
    let fields = parse_flat_object(line).ok_or(ParseError::NotJson)?;
    let run = match get(&fields, "run") {
        Some(JsonValue::Str(s)) => Some(s.clone()),
        _ => None,
    };
    Ok((run, event_from_fields(&fields)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Round {
                round: 3,
                now: 192,
                alive: 400,
            },
            TraceEvent::Join {
                now: 0,
                node: 17,
                rejoin: false,
            },
            TraceEvent::Leave {
                now: 900,
                node: 3,
                crash: true,
            },
            TraceEvent::MsgSend {
                now: 12,
                from: 1,
                to: 9,
                kind: Cow::Borrowed("rt_req"),
                class: TrafficClass::Control,
            },
            TraceEvent::MsgDeliver {
                now: 13,
                from: 1,
                to: 9,
                kind: Cow::Borrowed("notification"),
                class: TrafficClass::Data,
            },
            TraceEvent::Health {
                now: 192,
                probe: HealthProbe {
                    alive: 400,
                    mean_degree: 14.25,
                    ring_accuracy: Some(0.9825),
                    mean_view_age: Some(1.5),
                    clusters: Some(3),
                    largest_cluster: Some(120),
                },
            },
            TraceEvent::Health {
                now: 200,
                probe: HealthProbe {
                    alive: 10,
                    mean_degree: 2.0,
                    ring_accuracy: None,
                    mean_view_age: None,
                    clusters: None,
                    largest_cluster: None,
                },
            },
            TraceEvent::Sample {
                round: 4,
                now: 256,
                hit_ratio: 0.96875,
                overhead_pct: 12.5,
                delivered: 31,
                expected: 32,
            },
            TraceEvent::Phase {
                name: Cow::Borrowed("warmup"),
                wall_ms: 1523.75,
            },
            TraceEvent::PubEvent {
                now: 300,
                event: 7,
                topic: 42,
                node: 11,
                expected: 58,
            },
            TraceEvent::Fwd {
                now: 301,
                event: 7,
                from: 11,
                to: 29,
                hop: 1,
            },
            TraceEvent::DeliverEvent {
                now: 330,
                event: 7,
                node: 29,
                hops: 2,
                latency: 30,
                path: "11>5>29".to_string(),
                recovered: false,
            },
            TraceEvent::DeliverEvent {
                now: 340,
                event: 7,
                node: 31,
                hops: 3,
                latency: 40,
                path: "11>5>31".to_string(),
                recovered: true,
            },
            TraceEvent::Reconv {
                system: Cow::Borrowed("vitis"),
                severity_pct: 25,
                repair: true,
                rounds: Some(9),
            },
            TraceEvent::Reconv {
                system: Cow::Borrowed("rvr"),
                severity_pct: 50,
                repair: false,
                rounds: None,
            },
            TraceEvent::NetDrop {
                now: 305,
                from: 11,
                to: 88,
                kind: Cow::Borrowed("notification"),
                event: Some(7),
            },
            TraceEvent::NetDrop {
                now: 306,
                from: 2,
                to: 3,
                kind: Cow::Borrowed("ps_req"),
                event: None,
            },
            TraceEvent::DropEvent {
                now: 900,
                event: 7,
                node: 88,
                reason: Cow::Borrowed("no_gateway"),
            },
            TraceEvent::TopoSample {
                round: 6,
                now: 384,
                probe: TopoProbe {
                    nodes: 400,
                    links: 5600,
                    sampled_topics: 32,
                    components: 41,
                    stitched_components: 32,
                    largest_component_frac: 0.96875,
                    rendezvous_conflicts: 1,
                    headless_topics: 0,
                    dead_links: 2,
                    mean_relay_stretch: Some(1.25),
                    max_gateway_load: 5,
                    mean_view_age: Some(1.5),
                    violations: 3,
                },
            },
            TraceEvent::TopoSample {
                round: 0,
                now: 400,
                probe: TopoProbe {
                    nodes: 10,
                    links: 40,
                    sampled_topics: 0,
                    components: 0,
                    stitched_components: 0,
                    largest_component_frac: 0.0,
                    rendezvous_conflicts: 0,
                    headless_topics: 0,
                    dead_links: 0,
                    mean_relay_stretch: None,
                    max_gateway_load: 0,
                    mean_view_age: None,
                    violations: 0,
                },
            },
            TraceEvent::TraceMeta {
                capacity: 65536,
                recorded: 812344,
                evicted: 746808,
            },
        ]
    }

    #[test]
    fn every_record_type_round_trips() {
        for ev in sample_events() {
            let line = event_to_json(&ev);
            let back =
                parse_event(&line).unwrap_or_else(|e| panic!("parse failed for {line}: {e}"));
            assert_eq!(back, ev, "round trip mismatch for {line}");
        }
    }

    #[test]
    fn parser_ignores_extra_fields() {
        let line = r#"{"run":"fig6/vitis","type":"round","round":1,"now":64,"alive":10}"#;
        assert_eq!(
            parse_event(line),
            Ok(TraceEvent::Round {
                round: 1,
                now: 64,
                alive: 10
            })
        );
    }

    #[test]
    fn parse_stamped_extracts_the_run_id() {
        let line = r#"{"run":"fig6/vitis-low#3","type":"round","round":1,"now":64,"alive":10}"#;
        let (run, ev) = parse_stamped(line).unwrap();
        assert_eq!(run.as_deref(), Some("fig6/vitis-low#3"));
        assert!(matches!(ev, TraceEvent::Round { round: 1, .. }));
        // Unstamped lines parse with no run id.
        let (run, _) = parse_stamped(r#"{"type":"round","round":1,"now":64,"alive":10}"#).unwrap();
        assert_eq!(run, None);
        // Errors propagate.
        assert_eq!(parse_stamped("nope"), Err(ParseError::NotJson));
    }

    #[test]
    fn parser_rejects_malformed_input_with_typed_errors() {
        assert_eq!(parse_event(""), Err(ParseError::NotJson));
        assert_eq!(parse_event("{"), Err(ParseError::NotJson));
        assert_eq!(parse_event("not json at all"), Err(ParseError::NotJson));
        // Unknown record type.
        assert_eq!(
            parse_event("{\"type\":\"nope\"}"),
            Err(ParseError::UnknownType("nope".to_string()))
        );
        // No type field at all.
        assert_eq!(parse_event("{\"now\":3}"), Err(ParseError::MissingType));
        assert_eq!(
            parse_event("{\"type\":7}"),
            Err(ParseError::BadValue("type"))
        );
        // Missing required field.
        assert_eq!(
            parse_event("{\"type\":\"round\"}"),
            Err(ParseError::MissingField("round"))
        );
        assert_eq!(
            parse_event(r#"{"type":"round","round":1,"alive":2}"#),
            Err(ParseError::MissingField("now"))
        );
        // Non-numeric `now`.
        assert_eq!(
            parse_event(r#"{"type":"round","round":1,"now":"soon","alive":2}"#),
            Err(ParseError::BadValue("now"))
        );
        // Errors render as human-readable messages.
        assert!(ParseError::BadValue("now").to_string().contains("now"));
        assert!(ParseError::UnknownType("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let ev = TraceEvent::Phase {
            name: Cow::Owned("we\"ird\\ph\nase\u{1}".to_string()),
            wall_ms: 1.0,
        };
        let line = event_to_json(&ev);
        assert_eq!(parse_event(&line), Ok(ev));
    }

    #[test]
    fn ring_buffer_keeps_newest_and_counts_evictions() {
        let mut t = Trace::new(3);
        for round in 0..5 {
            t.record(TraceEvent::Round {
                round,
                now: round * 64,
                alive: 1,
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.evicted(), 2);
        assert_eq!(t.total_recorded(), 5);
        let rounds: Vec<u64> = t
            .events()
            .map(|e| match e {
                TraceEvent::Round { round, .. } => *round,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rounds, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_export_is_one_valid_line_per_event() {
        let mut t = Trace::new(16);
        for ev in sample_events() {
            t.record(ev);
        }
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), t.len());
        for (line, ev) in lines.iter().zip(t.events()) {
            assert_eq!(parse_event(line).as_ref(), Ok(ev));
        }
    }

    #[test]
    fn write_jsonl_streams_exactly_what_to_jsonl_renders() {
        let mut t = Trace::new(16);
        for ev in sample_events() {
            t.record(ev);
        }
        let mut streamed = Vec::new();
        t.write_jsonl(&mut streamed).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), t.to_jsonl());
        // Write errors propagate instead of panicking.
        struct Full;
        impl std::io::Write for Full {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert!(t.write_jsonl(&mut Full).is_err());
    }

    #[test]
    fn ledger_accumulates_and_resets_by_window() {
        let mut l = TrafficLedger::new();
        l.record_send(MsgTag::control("ps_req"));
        l.record_send(MsgTag::control("ps_req"));
        l.record_deliver(MsgTag::control("ps_req"));
        l.record_send(MsgTag::data("notification"));
        assert_eq!(l.kinds().len(), 2);
        assert_eq!(l.sent_by_class(), (2, 1));
        let ps = l.kinds().iter().find(|k| k.kind == "ps_req").unwrap();
        assert_eq!((ps.sent, ps.delivered), (2, 1));
        l.reset();
        assert_eq!(l.sent_by_class(), (0, 0));
        // Kind list survives the window reset.
        assert_eq!(l.kinds().len(), 2);
    }

    #[test]
    fn non_finite_floats_export_as_null() {
        let ev = TraceEvent::Sample {
            round: 1,
            now: 1,
            hit_ratio: f64::NAN,
            overhead_pct: f64::INFINITY,
            delivered: 0,
            expected: 0,
        };
        let line = event_to_json(&ev);
        assert!(line.contains("\"hit_ratio\":null"));
        assert!(line.contains("\"overhead_pct\":null"));
        // Still parseable; NaN comes back for null numeric fields.
        let back = parse_event(&line).unwrap();
        match back {
            TraceEvent::Sample { hit_ratio, .. } => assert!(hit_ratio.is_nan()),
            _ => panic!("wrong variant"),
        }
    }
}
