//! Structured run tracing: typed events in a bounded ring buffer with
//! JSONL export, plus the per-message-kind traffic ledger the engine keeps.
//!
//! A [`Trace`] records what *happened* during a run — round boundaries,
//! node lifecycle (join/leave/churn), message sends and deliveries tagged
//! by protocol message kind, per-round overlay health probes and
//! convergence samples — as typed [`TraceEvent`] values. The buffer is a
//! fixed-capacity ring: recording never allocates once the ring is full,
//! the newest events win, and the number of evicted events is counted so
//! truncation is visible rather than silent.
//!
//! Export is newline-delimited JSON (JSONL), one flat object per event;
//! [`parse_event`] parses a line back into a [`TraceEvent`] so traces
//! round-trip without any external serialization dependency. The schema is
//! documented in `docs/METRICS.md` at the repository root.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

/// Which plane a message belongs to: protocol maintenance (gossip,
/// heartbeats, lookups) or event dissemination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Overlay-maintenance traffic: peer sampling, T-Man exchanges,
    /// heartbeats, relay/tree construction.
    Control,
    /// Event-dissemination traffic (notifications and publish stimuli).
    Data,
}

impl TrafficClass {
    /// Stable lowercase name used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            TrafficClass::Control => "control",
            TrafficClass::Data => "data",
        }
    }

    /// Inverse of [`TrafficClass::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "control" => Some(TrafficClass::Control),
            "data" => Some(TrafficClass::Data),
            _ => None,
        }
    }
}

/// The tag a protocol assigns to one of its message variants via
/// [`crate::protocol::Protocol::classify`]: a stable kind name plus the
/// traffic class. Kind names are `&'static str` so tagging is
/// allocation-free on the send/deliver hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgTag {
    /// Stable snake_case message-kind name (e.g. `"rt_req"`).
    pub kind: &'static str,
    /// Control or data plane.
    pub class: TrafficClass,
}

impl MsgTag {
    /// A control-plane tag.
    pub const fn control(kind: &'static str) -> Self {
        MsgTag {
            kind,
            class: TrafficClass::Control,
        }
    }

    /// A data-plane tag.
    pub const fn data(kind: &'static str) -> Self {
        MsgTag {
            kind,
            class: TrafficClass::Data,
        }
    }
}

/// Send/deliver counters for one message kind over the current
/// measurement window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KindTraffic {
    /// The message-kind name.
    pub kind: &'static str,
    /// Control or data plane.
    pub class: TrafficClass,
    /// Messages of this kind handed to the network.
    pub sent: u64,
    /// Messages of this kind delivered to an alive node (includes
    /// self-timers and harness injections, mirroring the engine's
    /// aggregate delivered counter).
    pub delivered: u64,
}

/// The engine's per-message-kind traffic ledger. A handful of kinds per
/// protocol means a linear scan beats any map; counters reset with the
/// measurement window while the kind list persists.
#[derive(Clone, Debug, Default)]
pub struct TrafficLedger {
    kinds: Vec<KindTraffic>,
}

impl TrafficLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        TrafficLedger::default()
    }

    fn slot(&mut self, tag: MsgTag) -> &mut KindTraffic {
        if let Some(i) = self.kinds.iter().position(|k| k.kind == tag.kind) {
            return &mut self.kinds[i];
        }
        self.kinds.push(KindTraffic {
            kind: tag.kind,
            class: tag.class,
            sent: 0,
            delivered: 0,
        });
        self.kinds.last_mut().expect("just pushed")
    }

    /// Count one send of a `tag`-classified message.
    pub fn record_send(&mut self, tag: MsgTag) {
        self.slot(tag).sent += 1;
    }

    /// Count one delivery of a `tag`-classified message.
    pub fn record_deliver(&mut self, tag: MsgTag) {
        self.slot(tag).delivered += 1;
    }

    /// The per-kind counters, in first-seen order.
    pub fn kinds(&self) -> &[KindTraffic] {
        &self.kinds
    }

    /// `(control, data)` messages sent over the window.
    pub fn sent_by_class(&self) -> (u64, u64) {
        self.kinds.iter().fold((0, 0), |(c, d), k| match k.class {
            TrafficClass::Control => (c + k.sent, d),
            TrafficClass::Data => (c, d + k.sent),
        })
    }

    /// Zero all counters, keeping the kind list (window reset).
    pub fn reset(&mut self) {
        for k in &mut self.kinds {
            k.sent = 0;
            k.delivered = 0;
        }
    }
}

/// One overlay health sample, filled by a system-level probe (the engine
/// itself is protocol-agnostic). Fields a system cannot measure stay
/// `None` and export as JSON `null`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HealthProbe {
    /// Online nodes at probe time.
    pub alive: u64,
    /// Mean routing-table (or link-set) size over online nodes.
    pub mean_degree: f64,
    /// Fraction of online nodes whose successor pointer matches the true
    /// ring (`None` for ring-less overlays).
    pub ring_accuracy: Option<f64>,
    /// Mean gossip age over routing-table descriptors (staleness of the
    /// view; `None` where ages are not tracked).
    pub mean_view_age: Option<f64>,
    /// Connected subscriber components summed over the sampled topics.
    pub clusters: Option<u64>,
    /// Size of the largest sampled cluster.
    pub largest_cluster: Option<u64>,
}

/// A typed trace record. Engine-emitted variants (`Join`, `Leave`,
/// `MsgSend`, `MsgDeliver`) carry node slots and simulated time in raw
/// ticks; harness-emitted variants add round boundaries, convergence
/// samples, health probes and wall-clock phase timings.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A gossip-round boundary observed by the measurement harness.
    Round {
        /// Measured round number (1-based within the window).
        round: u64,
        /// Simulated time in ticks.
        now: u64,
        /// Online nodes.
        alive: u64,
    },
    /// A node came online (fresh join or churn rejoin).
    Join {
        /// Simulated time in ticks.
        now: u64,
        /// Engine slot of the node.
        node: u32,
        /// True when re-entering a previously vacated slot.
        rejoin: bool,
    },
    /// A node went offline.
    Leave {
        /// Simulated time in ticks.
        now: u64,
        /// Engine slot of the node.
        node: u32,
        /// True for a crash (no goodbye effects), false for a graceful
        /// leave.
        crash: bool,
    },
    /// A protocol message was handed to the network.
    MsgSend {
        /// Simulated time in ticks.
        now: u64,
        /// Sender slot.
        from: u32,
        /// Destination slot.
        to: u32,
        /// Protocol message kind (from [`MsgTag`]).
        kind: Cow<'static, str>,
        /// Control or data plane.
        class: TrafficClass,
    },
    /// A message was delivered to an alive node (includes self-timers
    /// and harness injections).
    MsgDeliver {
        /// Simulated time in ticks.
        now: u64,
        /// Sender slot (the receiver itself for timers/injections).
        from: u32,
        /// Receiver slot.
        to: u32,
        /// Protocol message kind.
        kind: Cow<'static, str>,
        /// Control or data plane.
        class: TrafficClass,
    },
    /// A per-round overlay health probe.
    Health {
        /// Simulated time in ticks.
        now: u64,
        /// The probe sample.
        probe: HealthProbe,
    },
    /// A per-round convergence sample of the paper's headline metrics.
    Sample {
        /// Measured round number (1-based within the window).
        round: u64,
        /// Simulated time in ticks.
        now: u64,
        /// Hit ratio so far in the window.
        hit_ratio: f64,
        /// Traffic overhead (relay share) so far, in percent.
        overhead_pct: f64,
        /// Deliveries achieved so far.
        delivered: u64,
        /// Deliveries expected so far.
        expected: u64,
    },
    /// Wall-clock duration of one harness phase (build / warmup /
    /// measure / drain).
    Phase {
        /// Phase name.
        name: Cow<'static, str>,
        /// Wall-clock milliseconds.
        wall_ms: f64,
    },
}

/// Shared handle to a [`Trace`]; the engine and the harness both record
/// into the same buffer. The engine is single-threaded, so `Rc<RefCell>`
/// suffices.
pub type TraceHandle = Rc<RefCell<Trace>>;

/// A bounded ring buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct Trace {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    evicted: u64,
    total: u64,
    record_messages: bool,
}

impl Trace {
    /// A trace keeping at most `capacity` events (the newest win).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            buf: VecDeque::with_capacity(capacity),
            cap: capacity,
            evicted: 0,
            total: 0,
            record_messages: true,
        }
    }

    /// A shared handle around a fresh trace (what systems install into
    /// their engine).
    pub fn shared(capacity: usize) -> TraceHandle {
        Rc::new(RefCell::new(Trace::new(capacity)))
    }

    /// Whether per-message events are recorded (on by default). Round,
    /// lifecycle, health, sample and phase events are always recorded.
    pub fn record_messages(&self) -> bool {
        self.record_messages
    }

    /// Enable or disable per-message events (they dominate volume on
    /// large runs).
    pub fn set_record_messages(&mut self, on: bool) {
        self.record_messages = on;
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev);
        self.total += 1;
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted by the ring bound (truncation indicator).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events ever recorded (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Drop all retained events and reset the counters.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.evicted = 0;
        self.total = 0;
    }

    /// Render the retained events as JSONL, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.buf {
            write_event(&mut out, ev);
            out.push('\n');
        }
        out
    }
}

/// Append `s` to `out` as a JSON string literal (quoted and escaped).
/// Public so downstream JSONL writers share the trace's escaping rules.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number; non-finite values become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null"); // NaN/inf are not valid JSON numbers
    }
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

/// Append the single-line JSON rendering of `ev` to `out` (no trailing
/// newline).
pub fn write_event(out: &mut String, ev: &TraceEvent) {
    match ev {
        TraceEvent::Round { round, now, alive } => {
            let _ = write!(
                out,
                "{{\"type\":\"round\",\"round\":{round},\"now\":{now},\"alive\":{alive}}}"
            );
        }
        TraceEvent::Join { now, node, rejoin } => {
            let _ = write!(
                out,
                "{{\"type\":\"join\",\"now\":{now},\"node\":{node},\"rejoin\":{rejoin}}}"
            );
        }
        TraceEvent::Leave { now, node, crash } => {
            let _ = write!(
                out,
                "{{\"type\":\"leave\",\"now\":{now},\"node\":{node},\"crash\":{crash}}}"
            );
        }
        TraceEvent::MsgSend {
            now,
            from,
            to,
            kind,
            class,
        } => {
            let _ = write!(out, "{{\"type\":\"msg_send\",\"now\":{now},\"from\":{from},\"to\":{to},\"kind\":");
            push_json_str(out, kind);
            let _ = write!(out, ",\"class\":\"{}\"}}", class.as_str());
        }
        TraceEvent::MsgDeliver {
            now,
            from,
            to,
            kind,
            class,
        } => {
            let _ = write!(out, "{{\"type\":\"msg_deliver\",\"now\":{now},\"from\":{from},\"to\":{to},\"kind\":");
            push_json_str(out, kind);
            let _ = write!(out, ",\"class\":\"{}\"}}", class.as_str());
        }
        TraceEvent::Health { now, probe } => {
            let _ = write!(
                out,
                "{{\"type\":\"health\",\"now\":{now},\"alive\":{},\"mean_degree\":",
                probe.alive
            );
            push_f64(out, probe.mean_degree);
            out.push_str(",\"ring_accuracy\":");
            push_opt_f64(out, probe.ring_accuracy);
            out.push_str(",\"mean_view_age\":");
            push_opt_f64(out, probe.mean_view_age);
            out.push_str(",\"clusters\":");
            push_opt_u64(out, probe.clusters);
            out.push_str(",\"largest_cluster\":");
            push_opt_u64(out, probe.largest_cluster);
            out.push('}');
        }
        TraceEvent::Sample {
            round,
            now,
            hit_ratio,
            overhead_pct,
            delivered,
            expected,
        } => {
            let _ = write!(
                out,
                "{{\"type\":\"sample\",\"round\":{round},\"now\":{now},\"hit_ratio\":"
            );
            push_f64(out, *hit_ratio);
            out.push_str(",\"overhead_pct\":");
            push_f64(out, *overhead_pct);
            let _ = write!(out, ",\"delivered\":{delivered},\"expected\":{expected}}}");
        }
        TraceEvent::Phase { name, wall_ms } => {
            out.push_str("{\"type\":\"phase\",\"name\":");
            push_json_str(out, name);
            out.push_str(",\"wall_ms\":");
            push_f64(out, *wall_ms);
            out.push('}');
        }
    }
}

/// The JSON rendering of one event (convenience over [`write_event`]).
pub fn event_to_json(ev: &TraceEvent) -> String {
    let mut s = String::new();
    write_event(&mut s, ev);
    s
}

/// A parsed flat JSON value (trace records never nest).
#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

/// Parse a single flat JSON object: `{"key": value, ...}` with string,
/// number, boolean or null values. Sufficient for every record this
/// module writes; not a general JSON parser.
fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut cs = line.trim().char_indices().peekable();
    let s = line.trim();
    let mut out = Vec::new();
    let skip_ws = |cs: &mut std::iter::Peekable<std::str::CharIndices<'_>>| {
        while cs.peek().is_some_and(|&(_, c)| c.is_whitespace()) {
            cs.next();
        }
    };
    let parse_string = |cs: &mut std::iter::Peekable<std::str::CharIndices<'_>>| -> Option<String> {
        match cs.next() {
            Some((_, '"')) => {}
            _ => return None,
        }
        let mut v = String::new();
        loop {
            match cs.next()? {
                (_, '"') => return Some(v),
                (_, '\\') => match cs.next()?.1 {
                    '"' => v.push('"'),
                    '\\' => v.push('\\'),
                    'n' => v.push('\n'),
                    't' => v.push('\t'),
                    'r' => v.push('\r'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + cs.next()?.1.to_digit(16)?;
                        }
                        v.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                (_, c) => v.push(c),
            }
        }
    };

    skip_ws(&mut cs);
    match cs.next() {
        Some((_, '{')) => {}
        _ => return None,
    }
    skip_ws(&mut cs);
    if cs.peek().is_some_and(|&(_, c)| c == '}') {
        cs.next();
        return Some(out);
    }
    loop {
        skip_ws(&mut cs);
        let key = parse_string(&mut cs)?;
        skip_ws(&mut cs);
        match cs.next() {
            Some((_, ':')) => {}
            _ => return None,
        }
        skip_ws(&mut cs);
        let val = match cs.peek()? {
            (_, '"') => JsonValue::Str(parse_string(&mut cs)?),
            &(i, c) if c == 't' || c == 'f' || c == 'n' => {
                let rest = &s[i..];
                if rest.starts_with("true") {
                    for _ in 0..4 {
                        cs.next();
                    }
                    JsonValue::Bool(true)
                } else if rest.starts_with("false") {
                    for _ in 0..5 {
                        cs.next();
                    }
                    JsonValue::Bool(false)
                } else if rest.starts_with("null") {
                    for _ in 0..4 {
                        cs.next();
                    }
                    JsonValue::Null
                } else {
                    return None;
                }
            }
            &(i, _) => {
                let mut end = s.len();
                while let Some(&(j, c)) = cs.peek() {
                    if c == ',' || c == '}' || c.is_whitespace() {
                        end = j;
                        break;
                    }
                    cs.next();
                }
                JsonValue::Num(s[i..end].parse().ok()?)
            }
        };
        out.push((key, val));
        skip_ws(&mut cs);
        match cs.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => return Some(out),
            _ => return None,
        }
    }
}

fn get<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(fields: &[(String, JsonValue)], key: &str) -> Option<u64> {
    match get(fields, key)? {
        JsonValue::Num(n) if *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

fn get_u32(fields: &[(String, JsonValue)], key: &str) -> Option<u32> {
    get_u64(fields, key).map(|v| v as u32)
}

fn get_f64(fields: &[(String, JsonValue)], key: &str) -> Option<f64> {
    match get(fields, key)? {
        JsonValue::Num(n) => Some(*n),
        JsonValue::Null => Some(f64::NAN),
        _ => None,
    }
}

fn get_bool(fields: &[(String, JsonValue)], key: &str) -> Option<bool> {
    match get(fields, key)? {
        JsonValue::Bool(b) => Some(*b),
        _ => None,
    }
}

fn get_str<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a str> {
    match get(fields, key)? {
        JsonValue::Str(s) => Some(s),
        _ => None,
    }
}

fn get_opt_f64(fields: &[(String, JsonValue)], key: &str) -> Option<Option<f64>> {
    match get(fields, key)? {
        JsonValue::Num(n) => Some(Some(*n)),
        JsonValue::Null => Some(None),
        _ => None,
    }
}

fn get_opt_u64(fields: &[(String, JsonValue)], key: &str) -> Option<Option<u64>> {
    match get(fields, key)? {
        JsonValue::Num(n) if *n >= 0.0 => Some(Some(*n as u64)),
        JsonValue::Null => Some(None),
        _ => None,
    }
}

/// Parse one JSONL line written by [`write_event`] back into a
/// [`TraceEvent`]. Returns `None` on malformed input or an unknown
/// record type. Extra fields (e.g. a `"run"` tag added by the experiment
/// harness) are ignored.
pub fn parse_event(line: &str) -> Option<TraceEvent> {
    let fields = parse_flat_object(line)?;
    let tag = |key: &str| -> Option<(Cow<'static, str>, TrafficClass)> {
        Some((
            Cow::Owned(get_str(&fields, key)?.to_string()),
            TrafficClass::parse(get_str(&fields, "class")?)?,
        ))
    };
    match get_str(&fields, "type")? {
        "round" => Some(TraceEvent::Round {
            round: get_u64(&fields, "round")?,
            now: get_u64(&fields, "now")?,
            alive: get_u64(&fields, "alive")?,
        }),
        "join" => Some(TraceEvent::Join {
            now: get_u64(&fields, "now")?,
            node: get_u32(&fields, "node")?,
            rejoin: get_bool(&fields, "rejoin")?,
        }),
        "leave" => Some(TraceEvent::Leave {
            now: get_u64(&fields, "now")?,
            node: get_u32(&fields, "node")?,
            crash: get_bool(&fields, "crash")?,
        }),
        "msg_send" => {
            let (kind, class) = tag("kind")?;
            Some(TraceEvent::MsgSend {
                now: get_u64(&fields, "now")?,
                from: get_u32(&fields, "from")?,
                to: get_u32(&fields, "to")?,
                kind,
                class,
            })
        }
        "msg_deliver" => {
            let (kind, class) = tag("kind")?;
            Some(TraceEvent::MsgDeliver {
                now: get_u64(&fields, "now")?,
                from: get_u32(&fields, "from")?,
                to: get_u32(&fields, "to")?,
                kind,
                class,
            })
        }
        "health" => Some(TraceEvent::Health {
            now: get_u64(&fields, "now")?,
            probe: HealthProbe {
                alive: get_u64(&fields, "alive")?,
                mean_degree: get_f64(&fields, "mean_degree")?,
                ring_accuracy: get_opt_f64(&fields, "ring_accuracy")?,
                mean_view_age: get_opt_f64(&fields, "mean_view_age")?,
                clusters: get_opt_u64(&fields, "clusters")?,
                largest_cluster: get_opt_u64(&fields, "largest_cluster")?,
            },
        }),
        "sample" => Some(TraceEvent::Sample {
            round: get_u64(&fields, "round")?,
            now: get_u64(&fields, "now")?,
            hit_ratio: get_f64(&fields, "hit_ratio")?,
            overhead_pct: get_f64(&fields, "overhead_pct")?,
            delivered: get_u64(&fields, "delivered")?,
            expected: get_u64(&fields, "expected")?,
        }),
        "phase" => Some(TraceEvent::Phase {
            name: Cow::Owned(get_str(&fields, "name")?.to_string()),
            wall_ms: get_f64(&fields, "wall_ms")?,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Round {
                round: 3,
                now: 192,
                alive: 400,
            },
            TraceEvent::Join {
                now: 0,
                node: 17,
                rejoin: false,
            },
            TraceEvent::Leave {
                now: 900,
                node: 3,
                crash: true,
            },
            TraceEvent::MsgSend {
                now: 12,
                from: 1,
                to: 9,
                kind: Cow::Borrowed("rt_req"),
                class: TrafficClass::Control,
            },
            TraceEvent::MsgDeliver {
                now: 13,
                from: 1,
                to: 9,
                kind: Cow::Borrowed("notification"),
                class: TrafficClass::Data,
            },
            TraceEvent::Health {
                now: 192,
                probe: HealthProbe {
                    alive: 400,
                    mean_degree: 14.25,
                    ring_accuracy: Some(0.9825),
                    mean_view_age: Some(1.5),
                    clusters: Some(3),
                    largest_cluster: Some(120),
                },
            },
            TraceEvent::Health {
                now: 200,
                probe: HealthProbe {
                    alive: 10,
                    mean_degree: 2.0,
                    ring_accuracy: None,
                    mean_view_age: None,
                    clusters: None,
                    largest_cluster: None,
                },
            },
            TraceEvent::Sample {
                round: 4,
                now: 256,
                hit_ratio: 0.96875,
                overhead_pct: 12.5,
                delivered: 31,
                expected: 32,
            },
            TraceEvent::Phase {
                name: Cow::Borrowed("warmup"),
                wall_ms: 1523.75,
            },
        ]
    }

    #[test]
    fn every_record_type_round_trips() {
        for ev in sample_events() {
            let line = event_to_json(&ev);
            let back = parse_event(&line)
                .unwrap_or_else(|| panic!("parse failed for {line}"));
            assert_eq!(back, ev, "round trip mismatch for {line}");
        }
    }

    #[test]
    fn parser_ignores_extra_fields() {
        let line = r#"{"run":"fig6/vitis","type":"round","round":1,"now":64,"alive":10}"#;
        assert_eq!(
            parse_event(line),
            Some(TraceEvent::Round {
                round: 1,
                now: 64,
                alive: 10
            })
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert_eq!(parse_event(""), None);
        assert_eq!(parse_event("{"), None);
        assert_eq!(parse_event("{\"type\":\"nope\"}"), None);
        assert_eq!(parse_event("{\"type\":\"round\"}"), None); // missing fields
        assert_eq!(parse_event("not json at all"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let ev = TraceEvent::Phase {
            name: Cow::Owned("we\"ird\\ph\nase\u{1}".to_string()),
            wall_ms: 1.0,
        };
        let line = event_to_json(&ev);
        assert_eq!(parse_event(&line), Some(ev));
    }

    #[test]
    fn ring_buffer_keeps_newest_and_counts_evictions() {
        let mut t = Trace::new(3);
        for round in 0..5 {
            t.record(TraceEvent::Round {
                round,
                now: round * 64,
                alive: 1,
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.evicted(), 2);
        assert_eq!(t.total_recorded(), 5);
        let rounds: Vec<u64> = t
            .events()
            .map(|e| match e {
                TraceEvent::Round { round, .. } => *round,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rounds, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_export_is_one_valid_line_per_event() {
        let mut t = Trace::new(16);
        for ev in sample_events() {
            t.record(ev);
        }
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), t.len());
        for (line, ev) in lines.iter().zip(t.events()) {
            assert_eq!(parse_event(line).as_ref(), Some(ev));
        }
    }

    #[test]
    fn ledger_accumulates_and_resets_by_window() {
        let mut l = TrafficLedger::new();
        l.record_send(MsgTag::control("ps_req"));
        l.record_send(MsgTag::control("ps_req"));
        l.record_deliver(MsgTag::control("ps_req"));
        l.record_send(MsgTag::data("notification"));
        assert_eq!(l.kinds().len(), 2);
        assert_eq!(l.sent_by_class(), (2, 1));
        let ps = l.kinds().iter().find(|k| k.kind == "ps_req").unwrap();
        assert_eq!((ps.sent, ps.delivered), (2, 1));
        l.reset();
        assert_eq!(l.sent_by_class(), (0, 0));
        // Kind list survives the window reset.
        assert_eq!(l.kinds().len(), 2);
    }

    #[test]
    fn non_finite_floats_export_as_null() {
        let ev = TraceEvent::Sample {
            round: 1,
            now: 1,
            hit_ratio: f64::NAN,
            overhead_pct: f64::INFINITY,
            delivered: 0,
            expected: 0,
        };
        let line = event_to_json(&ev);
        assert!(line.contains("\"hit_ratio\":null"));
        assert!(line.contains("\"overhead_pct\":null"));
        // Still parseable; NaN comes back for null numeric fields.
        let back = parse_event(&line).unwrap();
        match back {
            TraceEvent::Sample { hit_ratio, .. } => assert!(hit_ratio.is_nan()),
            _ => panic!("wrong variant"),
        }
    }
}
