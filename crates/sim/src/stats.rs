//! Statistical helpers used by workload generators and the experiment
//! harness: percentiles, CCDFs, discrete power-law sampling and the
//! maximum-likelihood power-law exponent estimator used to regenerate the
//! Twitter degree analysis (Figure 8's "alpha = 1.65" fit).

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The `p`-th percentile (0–100) using linear interpolation between order
/// statistics (NIST R-7). Returns NaN for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = rank - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Empirical complementary CDF: for each distinct value `x` (ascending),
/// the fraction of observations `>= x`. Useful for log-log degree plots.
pub fn ccdf(xs: &[u64]) -> Vec<(u64, f64)> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut v = xs.to_vec();
    v.sort_unstable();
    let n = v.len() as f64;
    let mut out = Vec::new();
    let mut i = 0;
    while i < v.len() {
        let x = v[i];
        out.push((x, (v.len() - i) as f64 / n));
        while i < v.len() && v[i] == x {
            i += 1;
        }
    }
    out
}

/// Frequency table: `(value, count)` for each distinct value, ascending.
/// This is the raw series of the paper's Figure 8 (degree vs frequency).
pub fn frequency(xs: &[u64]) -> Vec<(u64, u64)> {
    let mut v = xs.to_vec();
    v.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for x in v {
        match out.last_mut() {
            Some((vx, c)) if *vx == x => *c += 1,
            _ => out.push((x, 1)),
        }
    }
    out
}

/// Continuous-approximation MLE for the exponent of a power law
/// `p(x) ∝ x^(−α)` for `x ≥ x_min`:
///
/// `α̂ = 1 + n / Σ ln(x_i / (x_min − ½))`
///
/// (Clauset–Shalizi–Newman discrete correction). Observations below `x_min`
/// are ignored. Returns `None` if fewer than two observations qualify.
pub fn powerlaw_mle(xs: &[u64], x_min: u64) -> Option<f64> {
    debug_assert!(x_min >= 1);
    let denom_shift = x_min as f64 - 0.5;
    let mut n = 0u64;
    let mut sum_ln = 0.0;
    for &x in xs {
        if x >= x_min {
            n += 1;
            sum_ln += (x as f64 / denom_shift).ln();
        }
    }
    if n < 2 || sum_ln <= 0.0 {
        None
    } else {
        Some(1.0 + n as f64 / sum_ln)
    }
}

/// Generalized harmonic number `H_{n,s} = Σ_{k=1..n} k^(−s)`, the
/// normalization constant of a Zipf distribution.
pub fn harmonic(n: u64, s: f64) -> f64 {
    (1..=n).map(|k| (k as f64).powf(-s)).sum()
}

/// A discrete bounded power-law (Zipf) distribution over ranks `1..=n` with
/// exponent `s`: `P(k) = k^(−s) / H_{n,s}`. Sampling is done by inverse
/// transform over the precomputed CDF (O(log n) per draw).
///
/// This is the distribution used for per-topic publication rates in the
/// α-sweep experiment (Figure 7).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf distribution over `1..=n` with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let h = harmonic(n, s);
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s) / h;
            cdf.push(acc);
        }
        // Guard against floating point drift at the top end.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: u64) -> f64 {
        let i = (k - 1) as usize;
        let prev = if i == 0 { 0.0 } else { self.cdf[i - 1] };
        self.cdf[i] - prev
    }

    /// Draw a rank in `1..=n` from a uniform `u ∈ [0,1)`.
    pub fn sample_from_uniform(&self, u: f64) -> u64 {
        let i = self.cdf.partition_point(|&c| c <= u);
        (i.min(self.cdf.len() - 1) + 1) as u64
    }

    /// Draw a rank using the provided RNG.
    pub fn sample<R: rand::Rng>(&self, rng: &mut R) -> u64 {
        self.sample_from_uniform(rng.gen::<f64>())
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mean_and_percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn ccdf_is_monotone_and_starts_at_one() {
        let xs = [1u64, 1, 2, 5, 5, 5];
        let c = ccdf(&xs);
        assert_eq!(c[0], (1, 1.0));
        assert_eq!(c.last().unwrap().0, 5);
        assert!((c.last().unwrap().1 - 0.5).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[0].1 > w[1].1);
        }
    }

    #[test]
    fn frequency_counts_distinct_values() {
        assert_eq!(frequency(&[3, 1, 3, 3, 2]), vec![(1, 1), (2, 1), (3, 3)]);
        assert!(frequency(&[]).is_empty());
    }

    #[test]
    fn powerlaw_mle_recovers_exponent() {
        // Draw from a Zipf with s = 1.65 over a wide support and check the
        // estimator lands near the true exponent.
        // Estimate above x_min = 5: the discrete-correction MLE is biased at
        // x_min = 1 and the bounded support truncates the extreme tail.
        let z = Zipf::new(1_000_000, 1.65);
        let mut rng = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100_000).map(|_| z.sample(&mut rng)).collect();
        let alpha = powerlaw_mle(&xs, 5).unwrap();
        assert!(
            (alpha - 1.65).abs() < 0.1,
            "estimated alpha = {alpha}, expected ~1.65"
        );
    }

    #[test]
    fn powerlaw_mle_requires_enough_data() {
        assert_eq!(powerlaw_mle(&[], 1), None);
        assert_eq!(powerlaw_mle(&[5], 1), None);
        assert_eq!(powerlaw_mle(&[1, 1, 1], 2), None);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(1000, 0.8);
        let total: f64 = (1..=1000).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(100, 2.0);
        assert!(z.pmf(1) > 10.0 * z.pmf(10));
        let mut rng = SmallRng::seed_from_u64(7);
        let draws: Vec<u64> = (0..10_000).map(|_| z.sample(&mut rng)).collect();
        let ones = draws.iter().filter(|&&d| d == 1).count() as f64 / draws.len() as f64;
        assert!((ones - z.pmf(1)).abs() < 0.02);
    }

    #[test]
    fn zipf_sample_from_uniform_edges() {
        let z = Zipf::new(10, 1.0);
        assert_eq!(z.sample_from_uniform(0.0), 1);
        assert_eq!(z.sample_from_uniform(0.999_999_999), 10);
    }

    #[test]
    fn harmonic_known_values() {
        assert!((harmonic(1, 1.0) - 1.0).abs() < 1e-12);
        assert!((harmonic(2, 1.0) - 1.5).abs() < 1e-12);
        assert!((harmonic(4, 0.0) - 4.0).abs() < 1e-12);
    }
}
