//! # vitis-sim
//!
//! A deterministic discrete-event / cycle-driven peer-to-peer network
//! simulator — the PeerSim-equivalent substrate for the Vitis
//! publish/subscribe reproduction.
//!
//! The engine is fully deterministic: a run is a pure function of
//! `(protocol code, configuration, master seed)`. Protocols are per-node
//! state machines implementing [`protocol::Protocol`]; they exchange
//! messages through a pluggable [`network::NetworkModel`] and receive
//! periodic, per-node-desynchronized round ticks — PeerSim's event-driven
//! mode running periodic (gossip) protocols. Events are scheduled by a
//! calendar-queue scheduler ([`event`]) and drained in dense per-timestamp
//! batches; protocols implementing [`protocol::ParallelProtocol`] can opt
//! into [`engine::Engine::run_until_parallel`], which fans each batch out
//! across worker threads and merges effects deterministically — output is
//! bit-identical to serial execution at any thread count.
//!
//! ```
//! use vitis_sim::prelude::*;
//!
//! struct Counter(u32);
//! impl Protocol for Counter {
//!     type Msg = ();
//!     fn on_start(&mut self, _: &mut Context<'_, ()>) {}
//!     fn on_round(&mut self, _: &mut Context<'_, ()>) { self.0 += 1; }
//!     fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeIdx, _: ()) {}
//! }
//!
//! let mut eng: Engine<Counter> = Engine::new(EngineConfig::default());
//! let a = eng.add_node(Counter(0));
//! eng.run_rounds(10);
//! assert!(eng.node(a).unwrap().0 >= 9);
//! ```

#![warn(missing_docs)]

pub mod antientropy;
pub mod churn;
pub mod engine;
pub mod event;
pub mod fault;
pub mod metrics;
pub mod network;
pub mod perf;
pub mod protocol;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

/// Convenience re-exports for protocol implementations and harnesses.
pub mod prelude {
    pub use crate::antientropy::{AeConfig, AntiEntropy};
    pub use crate::churn::{ChurnDriver, ChurnEvent, ChurnKind, ChurnTrace};
    pub use crate::engine::{Engine, EngineConfig, EngineStats};
    pub use crate::event::NodeIdx;
    pub use crate::fault::{
        FaultDriver, FaultEpisode, FaultPlan, FaultPlanError, FaultedNetwork, LossScope, Span,
    };
    pub use crate::metrics::{Counter, Histogram, Summary, TimeSeries};
    pub use crate::network::{ConstantLatency, Lossy, NetworkModel, UniformLatency};
    pub use crate::perf::{EngineCounters, MemSnapshot, SpanStat};
    pub use crate::protocol::{Context, ParallelProtocol, Protocol, StopReason};
    pub use crate::time::{Duration, SimTime};
    pub use crate::trace::{
        HealthProbe, KindTraffic, MsgTag, Trace, TraceEvent, TraceHandle, TrafficClass,
    };
}
