//! Low-overhead performance telemetry: nested wall-clock spans, engine
//! activity counters and allocator-level memory accounting.
//!
//! This module answers "where does simulator *time and memory* go" — the
//! complement of [`crate::trace`], which records what the *protocols* did.
//! Three layers, each independently usable:
//!
//! * **Spans** — [`span`] opens a named, nested wall-clock span on a
//!   thread-local stack; dropping the returned guard closes it. Spans
//!   aggregate per *folded path* (`"measure;run_rounds;engine.run_until"`)
//!   into count/total/min/max/self-time, merged across threads (Rayon
//!   sweep workers) into a process-global registry drained by
//!   [`take_spans`]. Disabled (the default) a span is one relaxed atomic
//!   load — no clock read, no allocation.
//! * **Engine counters** — [`EngineCounters`], filled by
//!   [`crate::engine::Engine`] unconditionally (plain integer adds on
//!   paths that already mutate engine state): queue-depth high-water mark
//!   and per-kind node activations. Deterministic, so harnesses may put
//!   them in reproducible artifacts.
//! * **Memory** — a counting [`GlobalAlloc`] wrapper ([`CountingAlloc`])
//!   registered as the global allocator only under the `perf-alloc`
//!   feature, reporting live/peak bytes and allocation counts via
//!   [`mem_snapshot`]; plus structural footprint *estimates* computed by
//!   the runtime layer without any allocator hook.
//!
//! Wall-clock never feeds simulation state: enabling or disabling any
//! layer here leaves fixed-seed runs bit-identical (the golden tests
//! assert this). Export helpers render spans as flat JSONL records and as
//! flamegraph-compatible folded lines (`path self_ns`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Span profiler
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

static GLOBAL_SPANS: LazyLock<Mutex<HashMap<String, SpanStat>>> =
    LazyLock::new(|| Mutex::new(HashMap::new()));

/// Turn the span profiler on or off process-wide (the CLI's `--perf-out`
/// flag). Off by default; while off, [`span`] is a no-op.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the span profiler is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Aggregated statistics of one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds, children included.
    pub total_ns: u64,
    /// Shortest single occurrence in nanoseconds.
    pub min_ns: u64,
    /// Longest single occurrence in nanoseconds.
    pub max_ns: u64,
    /// Nanoseconds spent in this span *excluding* child spans (the value
    /// flamegraphs want).
    pub self_ns: u64,
}

impl SpanStat {
    fn record(&mut self, elapsed_ns: u64, self_ns: u64) {
        if self.count == 0 || elapsed_ns < self.min_ns {
            self.min_ns = elapsed_ns;
        }
        if elapsed_ns > self.max_ns {
            self.max_ns = elapsed_ns;
        }
        self.count += 1;
        self.total_ns += elapsed_ns;
        self.self_ns += self_ns;
    }

    fn merge(&mut self, other: &SpanStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min_ns < self.min_ns {
            self.min_ns = other.min_ns;
        }
        if other.max_ns > self.max_ns {
            self.max_ns = other.max_ns;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
    }
}

struct Frame {
    path: String,
    start: Instant,
    child_ns: u64,
}

struct ThreadSpans {
    stack: Vec<Frame>,
    agg: HashMap<String, SpanStat>,
}

thread_local! {
    static THREAD_SPANS: RefCell<ThreadSpans> = RefCell::new(ThreadSpans {
        stack: Vec::new(),
        agg: HashMap::new(),
    });
}

/// Closes its span when dropped. Hold it in a `let _guard = ...` binding
/// for the extent of the measured region.
#[must_use = "a span closes when its guard drops; bind it to a variable"]
pub struct SpanGuard {
    armed: bool,
}

/// Open a named span nested under the calling thread's innermost open
/// span. Aggregation is keyed by the `;`-joined path of labels, so the
/// same label under different parents is tracked separately. No-op (one
/// atomic load) while the profiler is disabled.
pub fn span(label: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: false };
    }
    THREAD_SPANS.with(|t| {
        let mut t = t.borrow_mut();
        let path = match t.stack.last() {
            Some(parent) => {
                let mut p = String::with_capacity(parent.path.len() + 1 + label.len());
                p.push_str(&parent.path);
                p.push(';');
                p.push_str(label);
                p
            }
            None => label.to_string(),
        };
        t.stack.push(Frame {
            path,
            start: Instant::now(),
            child_ns: 0,
        });
    });
    SpanGuard { armed: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        THREAD_SPANS.with(|t| {
            let mut t = t.borrow_mut();
            let Some(frame) = t.stack.pop() else { return };
            let elapsed = frame.start.elapsed().as_nanos() as u64;
            let self_ns = elapsed.saturating_sub(frame.child_ns);
            if let Some(parent) = t.stack.last_mut() {
                parent.child_ns += elapsed;
            }
            t.agg.entry(frame.path).or_default().record(elapsed, self_ns);
            // The thread-local aggregate publishes to the global registry
            // whenever the stack unwinds to its root, so short-lived sweep
            // workers never strand their samples.
            if t.stack.is_empty() {
                publish(&mut t.agg);
            }
        });
    }
}

fn publish(agg: &mut HashMap<String, SpanStat>) {
    if agg.is_empty() {
        return;
    }
    let mut global = GLOBAL_SPANS.lock().expect("perf span registry poisoned");
    for (path, stat) in agg.drain() {
        global.entry(path).or_default().merge(&stat);
    }
}

/// Drain the global span registry: every `(folded path, stats)` pair
/// recorded since the last call, sorted by path. The calling thread's
/// pending aggregate is published first; other threads publish whenever
/// their span stack unwinds to its root.
pub fn take_spans() -> Vec<(String, SpanStat)> {
    THREAD_SPANS.with(|t| publish(&mut t.borrow_mut().agg));
    let mut out: Vec<(String, SpanStat)> = GLOBAL_SPANS
        .lock()
        .expect("perf span registry poisoned")
        .drain()
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Discard all recorded spans (global registry plus the calling thread's
/// pending aggregate).
pub fn reset_spans() {
    THREAD_SPANS.with(|t| t.borrow_mut().agg.clear());
    GLOBAL_SPANS
        .lock()
        .expect("perf span registry poisoned")
        .clear();
}

/// Render one span as a flat JSONL perf record (schema:
/// `docs/METRICS.md` §9).
pub fn span_jsonl_line(path: &str, s: &SpanStat) -> String {
    let mut o = String::with_capacity(128);
    o.push_str("{\"type\":\"span\",\"path\":");
    crate::trace::push_json_str(&mut o, path);
    let _ = write!(
        o,
        ",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"self_ns\":{}}}",
        s.count, s.total_ns, s.min_ns, s.max_ns, s.self_ns
    );
    o
}

/// Render one span as a flamegraph folded-stack line: the `;`-joined
/// path, a space, and the span's **self** nanoseconds (so parent and
/// child time is never double-counted when collapsed).
pub fn folded_line(path: &str, s: &SpanStat) -> String {
    format!("{path} {}", s.self_ns)
}

// ---------------------------------------------------------------------------
// Engine counters
// ---------------------------------------------------------------------------

/// Always-on activity counters kept by [`crate::engine::Engine`]:
/// deterministic integers safe to embed in reproducible artifacts.
///
/// Messages queued/delivered per round are derived from these plus
/// [`crate::engine::EngineStats`] (`messages_sent / rounds_executed`
/// etc.); the high-water mark and activation split are what the stats
/// alone cannot reconstruct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Highest number of pending events ever observed in the event queue
    /// (after a push) — the engine's instantaneous memory/latency
    /// pressure.
    pub queue_hwm: u64,
    /// `on_start` activations (node joins and rejoins).
    pub activations_start: u64,
    /// `on_round` activations (gossip rounds actually executed).
    pub activations_round: u64,
    /// `on_message` activations (messages dispatched into a protocol).
    pub activations_message: u64,
    /// `on_stop` activations (leaves and crashes).
    pub activations_stop: u64,
    /// Dense batch drains executed by the calendar-queue scheduler (one
    /// per distinct timestamp with pending events). `total_activations /
    /// sched_batches` approximates events handled per scheduler pass.
    pub sched_batches: u64,
    /// Events pushed beyond the calendar ring's horizon into the overflow
    /// list (long timers, far-future retries). High values relative to
    /// total events indicate the ring is undersized for the workload.
    pub sched_overflow: u64,
}

impl EngineCounters {
    /// Total protocol activations of any kind.
    pub fn total_activations(&self) -> u64 {
        self.activations_start
            + self.activations_round
            + self.activations_message
            + self.activations_stop
    }
}

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------

static MEM_LIVE: AtomicU64 = AtomicU64::new(0);
static MEM_PEAK: AtomicU64 = AtomicU64::new(0);
static MEM_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts live bytes, peak bytes and
/// allocation calls into process-global atomics.
///
/// Registered as the `#[global_allocator]` only when the `perf-alloc`
/// feature is enabled, so default builds pay nothing; [`mem_snapshot`]
/// reports whether counting was compiled in.
pub struct CountingAlloc;

#[inline]
fn note_alloc(size: usize) {
    MEM_ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = MEM_LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    MEM_PEAK.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn note_dealloc(size: usize) {
    MEM_LIVE.fetch_sub(size as u64, Ordering::Relaxed);
}

// SAFETY: delegates every operation to `System`, only adding relaxed
// atomic accounting; the layout contracts are forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

#[cfg(feature = "perf-alloc")]
#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

/// A point-in-time view of the counting allocator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Whether the counting allocator is compiled in (`perf-alloc`
    /// feature); all fields are zero when it is not.
    pub counting: bool,
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// Highest `live_bytes` observed since process start or the last
    /// [`reset_mem_peak`].
    pub peak_bytes: u64,
    /// Allocation calls (alloc/alloc_zeroed, plus one per realloc).
    pub allocations: u64,
}

/// Read the allocator counters. Zeroes (with `counting == false`) unless
/// built with the `perf-alloc` feature.
pub fn mem_snapshot() -> MemSnapshot {
    MemSnapshot {
        counting: cfg!(feature = "perf-alloc"),
        live_bytes: MEM_LIVE.load(Ordering::Relaxed),
        peak_bytes: MEM_PEAK.load(Ordering::Relaxed),
        allocations: MEM_ALLOCS.load(Ordering::Relaxed),
    }
}

/// Restart peak tracking from the current live size, so per-phase peak
/// attribution (e.g. one sweep point at a time) is possible.
pub fn reset_mem_peak() {
    MEM_PEAK.store(MEM_LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Render a memory snapshot as a flat JSONL perf record.
pub fn mem_jsonl_line(m: &MemSnapshot) -> String {
    format!(
        "{{\"type\":\"mem\",\"counting\":{},\"live_bytes\":{},\"peak_bytes\":{},\"allocations\":{}}}",
        m.counting, m.live_bytes, m.peak_bytes, m.allocations
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Span tests share the process-global ENABLED flag and registry, so
    /// they serialize on one lock instead of clobbering each other.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset_spans();
        {
            let _a = span("outer");
            let _b = span("inner");
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn nested_spans_fold_paths_and_split_self_time() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset_spans();
        {
            let _a = span("outer");
            for _ in 0..3 {
                let _b = span("inner");
                std::hint::black_box(vec![0u8; 256]);
            }
        }
        set_enabled(false);
        let spans = take_spans();
        let paths: Vec<&str> = spans.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer;inner"]);
        let outer = &spans[0].1;
        let inner = &spans[1].1;
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert!(inner.min_ns <= inner.max_ns);
        assert!(inner.total_ns >= inner.min_ns * 3);
        // Outer's self time excludes the inner spans.
        assert!(outer.self_ns <= outer.total_ns);
        assert!(outer.total_ns >= inner.total_ns);
    }

    #[test]
    fn sibling_spans_with_one_label_share_a_path() {
        let _l = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset_spans();
        {
            let _a = span("root");
            {
                let _b = span("work");
            }
            {
                let _b = span("work");
            }
        }
        set_enabled(false);
        let spans = take_spans();
        let work = spans
            .iter()
            .find(|(p, _)| p == "root;work")
            .expect("folded path present");
        assert_eq!(work.1.count, 2);
    }

    #[test]
    fn stat_merge_is_count_exact() {
        let mut a = SpanStat::default();
        a.record(10, 10);
        a.record(30, 25);
        let mut b = SpanStat::default();
        b.record(5, 5);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.total_ns, 45);
        assert_eq!(a.min_ns, 5);
        assert_eq!(a.max_ns, 30);
        assert_eq!(a.self_ns, 40);
        // Merging an empty stat changes nothing.
        let before = a;
        a.merge(&SpanStat::default());
        assert_eq!(a, before);
    }

    #[test]
    fn jsonl_and_folded_rendering() {
        let s = SpanStat {
            count: 2,
            total_ns: 300,
            min_ns: 100,
            max_ns: 200,
            self_ns: 250,
        };
        let line = span_jsonl_line("a;b", &s);
        assert_eq!(
            line,
            "{\"type\":\"span\",\"path\":\"a;b\",\"count\":2,\"total_ns\":300,\
             \"min_ns\":100,\"max_ns\":200,\"self_ns\":250}"
        );
        assert_eq!(folded_line("a;b", &s), "a;b 250");
        let m = MemSnapshot {
            counting: false,
            live_bytes: 1,
            peak_bytes: 2,
            allocations: 3,
        };
        assert_eq!(
            mem_jsonl_line(&m),
            "{\"type\":\"mem\",\"counting\":false,\"live_bytes\":1,\"peak_bytes\":2,\"allocations\":3}"
        );
    }

    #[test]
    fn engine_counter_totals() {
        let c = EngineCounters {
            queue_hwm: 9,
            activations_start: 1,
            activations_round: 2,
            activations_message: 3,
            activations_stop: 4,
            sched_batches: 5,
            sched_overflow: 6,
        };
        assert_eq!(c.total_activations(), 10);
    }

    #[test]
    fn mem_snapshot_reports_feature_state() {
        let m = mem_snapshot();
        assert_eq!(m.counting, cfg!(feature = "perf-alloc"));
        #[cfg(feature = "perf-alloc")]
        {
            // With the counting allocator live, allocating must move the
            // counters.
            let before = mem_snapshot();
            let v = std::hint::black_box(vec![0u8; 1 << 16]);
            let during = mem_snapshot();
            assert!(during.allocations > before.allocations);
            assert!(during.peak_bytes >= before.live_bytes + (1 << 16));
            drop(v);
        }
    }
}
