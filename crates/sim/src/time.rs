//! Simulated time.
//!
//! The engine measures time in abstract *ticks*. Protocols usually map one
//! gossip round to [`SimTime`] `round_period` ticks and one network hop to a
//! small number of ticks, so a round comfortably contains a request/response
//! exchange.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use serde::{Deserialize, Serialize};

/// A point in simulated time, in abstract ticks since the simulation epoch.
///
/// `SimTime` is a transparent wrapper over `u64` with saturating semantics on
/// subtraction, so "how long ago" computations never panic on clock skew
/// introduced by scheduling jitter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (tick zero).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// The raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating duration since `earlier`. Returns zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A span of simulated time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug, Serialize, Deserialize)]
pub struct Duration(pub u64);

impl Duration {
    /// A zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Duration(ticks)
    }

    /// The raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_is_saturating() {
        let t = SimTime::MAX;
        assert_eq!(t + Duration(10), SimTime::MAX);
        assert_eq!(SimTime(5) - SimTime(10), Duration::ZERO);
        assert_eq!(SimTime(10) - SimTime(4), Duration(6));
    }

    #[test]
    fn since_is_zero_for_future_instants() {
        assert_eq!(SimTime(3).since(SimTime(9)), Duration::ZERO);
        assert_eq!(SimTime(9).since(SimTime(3)), Duration(6));
    }

    #[test]
    fn ordering_matches_tick_order() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_prints_raw_ticks() {
        assert_eq!(SimTime(42).to_string(), "42");
        assert_eq!(format!("{:?}", SimTime(42)), "t42");
    }
}
