//! Deterministic random-number management.
//!
//! Every source of randomness in a simulation run is derived from a single
//! master seed, so a run is exactly reproducible from `(code, config, seed)`.
//! Seeds for independent streams (the engine itself, each node incarnation,
//! workload generators, …) are derived with SplitMix64, which is the standard
//! seed-expansion function and guarantees well-separated streams even for
//! adjacent stream indices.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One step of the SplitMix64 generator: returns the next output and advances
/// the state. Used both as a seed expander and as the globally known hash
/// function for identifier derivation (see `vitis-overlay`).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a 64-bit key with the SplitMix64 finalizer (stateless form).
#[inline]
pub fn mix64(key: u64) -> u64 {
    let mut s = key;
    splitmix64(&mut s)
}

/// Derive the seed for an independent stream from a master seed.
///
/// `domain` separates different *kinds* of streams (e.g. engine vs nodes vs
/// workloads) and `index` separates instances within a kind.
#[inline]
pub fn derive_seed(master: u64, domain: u64, index: u64) -> u64 {
    let mut s = master ^ mix64(domain).rotate_left(17) ^ mix64(index.wrapping_add(0xA5A5_5A5A));
    // Two extra rounds decorrelate adjacent (domain, index) pairs.
    splitmix64(&mut s);
    splitmix64(&mut s)
}

/// Stream-domain constants used by the engine and the protocol crates.
pub mod domain {
    /// The engine's own stream (latency jitter, round-order shuffles).
    pub const ENGINE: u64 = 1;
    /// Per-node protocol streams (indexed by slot and incarnation).
    pub const NODE: u64 = 2;
    /// Workload generation (subscriptions, traces, rates).
    pub const WORKLOAD: u64 = 3;
    /// Publication scheduling in experiment harnesses.
    pub const PUBLISH: u64 = 4;
}

/// Build a [`SmallRng`] for a derived stream.
#[inline]
pub fn stream_rng(master: u64, dom: u64, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, dom, index))
}

/// Build the per-node RNG for a given slot and incarnation.
///
/// Incarnations matter under churn: a node that leaves and re-joins must not
/// replay its previous random choices.
#[inline]
pub fn node_rng(master: u64, slot: u32, incarnation: u32) -> SmallRng {
    stream_rng(
        master,
        domain::NODE,
        ((slot as u64) << 32) | incarnation as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_values() {
        // Reference vector for seed 0 from the SplitMix64 literature.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, 1, 7), derive_seed(42, 1, 7));
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(42, domain::NODE, 0);
        let b = derive_seed(42, domain::NODE, 1);
        let c = derive_seed(42, domain::ENGINE, 0);
        let d = derive_seed(43, domain::NODE, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn node_rng_streams_diverge_across_incarnations() {
        let mut r1 = node_rng(1, 5, 0);
        let mut r2 = node_rng(1, 5, 1);
        let xs: Vec<u64> = (0..8).map(|_| r1.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| r2.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn same_stream_replays_identically() {
        let mut r1 = node_rng(9, 3, 2);
        let mut r2 = node_rng(9, 3, 2);
        for _ in 0..32 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn mix64_is_a_bijection_probe() {
        // Not a full bijection proof, but distinct inputs in a small range
        // must produce distinct outputs (collision would indicate a broken
        // finalizer constant).
        let mut seen = std::collections::HashSet::new();
        for k in 0..10_000u64 {
            assert!(seen.insert(mix64(k)));
        }
    }
}
