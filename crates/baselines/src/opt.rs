//! OPT — the unstructured overlay-per-topic baseline.
//!
//! A SpiderCast-equivalent: every node tries to keep at least
//! `coverage` connected neighbors *per subscribed topic*, exploiting
//! subscription correlation so one link can cover many topics. Links are
//! symmetric connections negotiated with a request/accept handshake and
//! kept alive by heartbeats. Events flood the per-topic subgraph, so there
//! is no relay traffic at all — but with a bounded degree the per-topic
//! subgraphs can stay disconnected and the hit ratio drops below 100 %
//! (Figure 10), while the unbounded variant needs arbitrarily large degrees
//! (Figure 11).

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;
use vitis::monitor::{EventId, HopPath, Monitor};
use vitis::smallmap::SmallMap;
use vitis::topic::{Subs, TopicId};
use vitis_overlay::entry::Entry;
use vitis_overlay::id::Id;
use vitis_overlay::peer_sampling::{Newscast, PeerSampling};
use vitis_sim::antientropy::{AeConfig, AntiEntropy};
use vitis_sim::event::NodeIdx;
use vitis_sim::prelude::{Context, MsgTag, ParallelProtocol, Protocol, StopReason};

/// OPT node configuration.
#[derive(Clone, Debug)]
pub struct OptConfig {
    /// Desired connected neighbors per subscribed topic (SpiderCast's
    /// coverage parameter; the paper's comparison uses small values).
    pub coverage: usize,
    /// Maximum total degree, or `None` for the unbounded variant.
    pub max_degree: Option<usize>,
    /// New connection requests issued per round (limits link churn).
    pub requests_per_round: usize,
    /// Failure-detection age threshold in rounds.
    pub age_threshold: u16,
    /// Peer-sampling view capacity.
    pub sampling_view: usize,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            coverage: 2,
            max_degree: Some(15),
            requests_per_round: 3,
            age_threshold: 5,
            sampling_view: 15,
        }
    }
}

/// OPT wire protocol.
#[derive(Clone, Debug)]
pub enum OptMsg {
    /// Peer-sampling exchange request.
    PsReq(Vec<Entry<Subs>>),
    /// Peer-sampling exchange reply.
    PsResp(Vec<Entry<Subs>>),
    /// Connection request carrying the requester's id and subscriptions.
    ConnectReq(Id, Subs),
    /// Connection accept carrying the accepter's id and subscriptions.
    ConnectAck(Id, Subs),
    /// Liveness heartbeat between connected neighbors.
    Heartbeat(Subs),
    /// Graceful link teardown (degree-bound enforcement).
    Disconnect,
    /// Data-plane event notification flooding the topic subgraph.
    Notif {
        /// The event.
        event: EventId,
        /// Its topic.
        topic: TopicId,
        /// Hops from the publisher.
        hops: u32,
        /// Causal provenance (forensic metadata only — excluded from
        /// wire-size accounting, never consulted for routing).
        path: HopPath,
    },
    /// Harness stimulus: publish `event` on `topic` from this node.
    PublishCmd {
        /// Pre-registered event id.
        event: EventId,
        /// Topic to publish on.
        topic: TopicId,
    },
    /// Anti-entropy digest (IHAVE): `(event id, topic)` pairs the sender
    /// holds in its repair cache. Only sent when repair is enabled.
    AeDigest(Arc<Vec<(u64, u32)>>),
    /// Anti-entropy pull request (IWANT): missing event ids.
    AeWant(Vec<u64>),
    /// Anti-entropy recovery push answering an [`OptMsg::AeWant`].
    AePush {
        /// The recovered event.
        event: EventId,
        /// Its topic.
        topic: TopicId,
        /// Hops from the publisher, counting the repair hop.
        hops: u32,
        /// Causal provenance (forensic metadata only).
        path: HopPath,
    },
}

struct Link {
    subs: Subs,
    age: u16,
}

/// An OPT peer.
pub struct OptNode {
    cfg: Arc<OptConfig>,
    monitor: Monitor,
    addr: NodeIdx,
    id: Id,
    subs: Subs,
    sampling: Newscast<Subs>,
    links: SmallMap<NodeIdx, Link>,
    /// Requests in flight this round (counted against the degree bound so
    /// bursts cannot overshoot it).
    pending: BTreeSet<NodeIdx>,
    bootstrap: Vec<Entry<Subs>>,
    seen: HashSet<EventId>,
    /// Anti-entropy repair layer; inert (no sends, no RNG draws) unless
    /// explicitly enabled via [`OptNode::with_repair`]. Caches `(hops,
    /// path)` alongside the event/topic ids.
    ae: AntiEntropy<(u32, HopPath)>,
    /// Local round counter driving the repair cache TTL and digest cadence.
    round: u64,
}

impl OptNode {
    /// Create a node with the given ring id, subscriptions and bootstrap
    /// contacts.
    pub fn new(
        id: Id,
        subs: Subs,
        cfg: Arc<OptConfig>,
        monitor: Monitor,
        bootstrap: Vec<Entry<Subs>>,
    ) -> Self {
        let sampling = Newscast::new(cfg.sampling_view);
        OptNode {
            cfg,
            monitor,
            addr: NodeIdx(u32::MAX),
            id,
            subs,
            sampling,
            links: SmallMap::new(),
            pending: BTreeSet::new(),
            bootstrap,
            seen: HashSet::new(),
            ae: AntiEntropy::new(AeConfig::default()),
            round: 0,
        }
    }

    /// Replace the anti-entropy configuration (builder style). Pass
    /// [`AeConfig::on`] to enable digest-exchange repair.
    pub fn with_repair(mut self, cfg: AeConfig) -> Self {
        self.ae = AntiEntropy::new(cfg);
        self
    }

    /// The anti-entropy repair layer (read access for tests).
    pub fn repair(&self) -> &AntiEntropy<(u32, HopPath)> {
        &self.ae
    }

    /// This node's ring identifier.
    pub fn ring_id(&self) -> Id {
        self.id
    }

    /// This node's subscriptions.
    pub fn subscriptions(&self) -> &Subs {
        &self.subs
    }

    /// Current degree (established connections).
    pub fn degree(&self) -> usize {
        self.links.len()
    }

    /// Connected neighbor addresses.
    pub fn neighbor_addrs(&self) -> Vec<NodeIdx> {
        self.links.keys().copied().collect()
    }

    /// How many established links share `topic` with us.
    pub fn topic_coverage(&self, topic: TopicId) -> usize {
        self.links
            .values()
            .filter(|l| l.subs.contains(topic))
            .count()
    }

    fn at_capacity(&self) -> bool {
        self.cfg
            .max_degree
            .is_some_and(|cap| self.links.len() + self.pending.len() >= cap)
    }

    /// Greedy coverage selection: candidates ranked by how many still
    /// under-covered topics they would cover; returns up to
    /// `requests_per_round` picks with positive gain.
    fn pick_connect_targets(&self) -> Vec<NodeIdx> {
        let mut deficit: BTreeMap<TopicId, isize> = BTreeMap::new();
        for t in self.subs.iter() {
            let have = self.topic_coverage(t) as isize;
            let want = self.cfg.coverage as isize;
            if have < want {
                deficit.insert(t, want - have);
            }
        }
        if deficit.is_empty() {
            return Vec::new();
        }
        let mut picks = Vec::new();
        let mut candidates: Vec<&Entry<Subs>> = self
            .sampling
            .sample()
            .iter()
            .filter(|e| {
                e.addr != self.addr
                    && !self.links.contains_key(&e.addr)
                    && !self.pending.contains(&e.addr)
            })
            .collect();
        let mut budget = self.cfg.requests_per_round;
        if let Some(cap) = self.cfg.max_degree {
            budget = budget.min(cap.saturating_sub(self.links.len() + self.pending.len()));
        }
        while picks.len() < budget {
            let mut best: Option<(usize, isize)> = None;
            for (i, c) in candidates.iter().enumerate() {
                let gain: isize = c
                    .payload
                    .iter()
                    .filter(|t| deficit.get(t).copied().unwrap_or(0) > 0)
                    .count() as isize;
                if gain > 0 && best.is_none_or(|(_, bg)| gain > bg) {
                    best = Some((i, gain));
                }
            }
            let Some((i, _)) = best else { break };
            let chosen = candidates.swap_remove(i);
            for t in chosen.payload.iter() {
                if let Some(d) = deficit.get_mut(&t) {
                    *d -= 1;
                }
            }
            picks.push(chosen.addr);
        }
        picks
    }

    fn add_link(&mut self, peer: NodeIdx, subs: Subs) {
        self.links.insert(peer, Link { subs, age: 0 });
        self.pending.remove(&peer);
    }

    fn flood(
        &mut self,
        ctx: &mut Context<'_, OptMsg>,
        came_from: Option<NodeIdx>,
        event: EventId,
        topic: TopicId,
        hops: u32,
        path: &HopPath,
    ) {
        for (&peer, link) in &self.links {
            if Some(peer) != came_from && link.subs.contains(topic) {
                self.monitor
                    .record_forward(event, self.addr, peer, hops, ctx.now);
                ctx.send(
                    peer,
                    OptMsg::Notif {
                        event,
                        topic,
                        hops,
                        path: path.clone(),
                    },
                );
            }
        }
    }
}

/// Parallel-execution support: the shared evaluation monitor is the only
/// shared sink; its writes buffer while deferred and replay in serial
/// event order on the engine thread.
impl ParallelProtocol for OptNode {
    type Deferred = Vec<vitis::monitor::MonitorOp>;

    fn set_deferred(&mut self, on: bool) {
        self.monitor.set_deferred(on);
    }

    fn take_deferred(&mut self) -> Self::Deferred {
        self.monitor.take_deferred()
    }

    fn apply_deferred(&mut self, ops: Self::Deferred) {
        self.monitor.apply_ops(ops);
    }
}

impl Protocol for OptNode {
    type Msg = OptMsg;

    fn classify(msg: &OptMsg) -> MsgTag {
        match msg {
            OptMsg::PsReq(_) => MsgTag::control("ps_req"),
            OptMsg::PsResp(_) => MsgTag::control("ps_resp"),
            OptMsg::ConnectReq(..) => MsgTag::control("connect_req"),
            OptMsg::ConnectAck(..) => MsgTag::control("connect_ack"),
            OptMsg::Heartbeat(_) => MsgTag::control("heartbeat"),
            OptMsg::Disconnect => MsgTag::control("disconnect"),
            OptMsg::Notif { .. } => MsgTag::data("notification"),
            OptMsg::PublishCmd { .. } => MsgTag::data("publish_cmd"),
            OptMsg::AeDigest(_) => MsgTag::control("ae_digest"),
            OptMsg::AeWant(_) => MsgTag::control("ae_want"),
            OptMsg::AePush { .. } => MsgTag::data("ae_push"),
        }
    }

    fn event_of(msg: &OptMsg) -> Option<u64> {
        match msg {
            OptMsg::Notif { event, .. } => Some(event.0),
            // Lost recovery pushes attribute to the event the same way lost
            // flood copies do, so `LossReason::Network` stays exact.
            OptMsg::AePush { event, .. } => Some(event.0),
            _ => None,
        }
    }

    fn on_start(&mut self, ctx: &mut Context<'_, OptMsg>) {
        self.addr = ctx.self_idx;
        let contacts = std::mem::take(&mut self.bootstrap);
        self.sampling.bootstrap(&contacts, self.addr);
        let _ = ctx;
    }

    fn on_round(&mut self, ctx: &mut Context<'_, OptMsg>) {
        // Peer sampling drives candidate discovery.
        self.sampling.tick();
        let se = Entry::fresh(self.addr, self.id, self.subs.clone());
        if let Some((partner, buf)) = self.sampling.initiate(&se, ctx.rng) {
            ctx.send(partner, OptMsg::PsReq(buf));
        }

        // Age links; drop the stale ones (failure detection).
        let thr = self.cfg.age_threshold;
        self.links.retain(|_, l| {
            l.age = l.age.saturating_add(1);
            l.age <= thr
        });
        self.pending.clear();

        // Greedy coverage repair.
        for target in self.pick_connect_targets() {
            self.pending.insert(target);
            ctx.send(target, OptMsg::ConnectReq(self.id, self.subs.clone()));
        }

        // Heartbeats.
        for peer in self.links.keys().copied().collect::<Vec<_>>() {
            ctx.send(peer, OptMsg::Heartbeat(self.subs.clone()));
        }

        // Anti-entropy repair. Entirely inert — no sends, no RNG draws —
        // unless the layer is enabled, so default runs stay bit-identical.
        if self.ae.enabled() {
            self.round += 1;
            self.ae.tick(self.round);
            for (target, ids) in self.ae.due_pulls(self.round) {
                ctx.send(target, OptMsg::AeWant(ids));
            }
            if let Some(entries) = self.ae.digest(self.round) {
                let entries = Arc::new(entries);
                let nbrs = self.neighbor_addrs();
                for t in self.ae.pick_targets(&nbrs, ctx.rng) {
                    ctx.send(t, OptMsg::AeDigest(entries.clone()));
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, OptMsg>, from: NodeIdx, msg: OptMsg) {
        match msg {
            OptMsg::PsReq(buf) => {
                let se = Entry::fresh(self.addr, self.id, self.subs.clone());
                let reply = self.sampling.on_request(&se, from, &buf, ctx.rng);
                ctx.send(from, OptMsg::PsResp(reply));
            }
            OptMsg::PsResp(buf) => self.sampling.on_response(self.addr, &buf),
            OptMsg::ConnectReq(id, subs) => {
                let _ = id;
                // Accept while under the degree bound (always, when
                // unbounded): the accepter benefits passively from any link
                // that shares topics, and SpiderCast links are symmetric.
                let accept = self.links.contains_key(&from) || !self.at_capacity();
                if accept {
                    self.add_link(from, subs);
                    ctx.send(from, OptMsg::ConnectAck(self.id, self.subs.clone()));
                }
            }
            OptMsg::ConnectAck(_, subs) => {
                self.add_link(from, subs);
            }
            OptMsg::Heartbeat(subs) => {
                if let Some(l) = self.links.get_mut(&from) {
                    l.age = 0;
                    l.subs = subs;
                }
            }
            OptMsg::Disconnect => {
                self.links.remove(&from);
            }
            OptMsg::Notif {
                event,
                topic,
                hops,
                path,
            } => {
                let interested = self.subs.contains(topic);
                self.monitor.record_data_rx(self.addr, interested);
                if !self.seen.insert(event) {
                    return;
                }
                let path_here = path.extend(self.addr);
                if interested {
                    self.monitor
                        .record_delivery_traced(event, self.addr, hops, ctx.now, &path_here);
                }
                if self.ae.enabled() {
                    self.ae
                        .insert(event.0, topic.0, (hops, path_here.clone()), self.round);
                }
                self.flood(ctx, Some(from), event, topic, hops + 1, &path_here);
            }
            OptMsg::PublishCmd { event, topic } => {
                self.seen.insert(event);
                let path = HopPath::origin(self.addr);
                if self.ae.enabled() {
                    self.ae
                        .insert(event.0, topic.0, (0, path.clone()), self.round);
                }
                self.flood(ctx, None, event, topic, 1, &path);
            }
            OptMsg::AeDigest(entries) => {
                let subs = self.subs.clone();
                let seen = &self.seen;
                let wants = self.ae.on_digest(
                    from,
                    &entries,
                    self.round,
                    |t| subs.contains(TopicId(t)),
                    |e| seen.contains(&EventId(e)),
                );
                if !wants.is_empty() {
                    ctx.send(from, OptMsg::AeWant(wants));
                }
            }
            OptMsg::AeWant(ids) => {
                for (event, topic, (hops, path)) in self.ae.serve(&ids) {
                    self.monitor
                        .record_forward(EventId(event), self.addr, from, hops + 1, ctx.now);
                    ctx.send(
                        from,
                        OptMsg::AePush {
                            event: EventId(event),
                            topic: TopicId(topic),
                            hops: hops + 1,
                            path,
                        },
                    );
                }
            }
            OptMsg::AePush {
                event,
                topic,
                hops,
                path,
            } => {
                // Recovered copies count as a first delivery only if the
                // flood never got here, and are never re-flooded — repair
                // traffic stays pull-bounded.
                let interested = self.subs.contains(topic);
                self.monitor.record_data_rx(self.addr, interested);
                if !self.seen.insert(event) {
                    self.ae.satisfy(event.0);
                    return;
                }
                let path_here = path.extend(self.addr);
                if interested {
                    self.monitor
                        .record_delivery_recovered(event, self.addr, hops, ctx.now, &path_here);
                }
                self.ae
                    .insert(event.0, topic.0, (hops, path_here), self.round);
            }
        }
    }

    fn on_stop(&mut self, _ctx: &mut Context<'_, OptMsg>, _reason: StopReason) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitis::topic::TopicSet;
    use vitis_sim::engine::{Engine, EngineConfig};
    use vitis_sim::time::Duration;

    fn build_net(
        n: usize,
        subs_of: impl Fn(usize) -> Vec<u32>,
        cfg: OptConfig,
    ) -> (Engine<OptNode>, Monitor) {
        let cfg = Arc::new(cfg);
        let monitor = Monitor::new();
        let mut eng = Engine::new(EngineConfig {
            seed: 13,
            round_period: Duration(64),
            desynchronize_rounds: true,
        });
        let mut directory: Vec<Entry<Subs>> = Vec::new();
        for i in 0..n {
            let subs: Subs = Arc::new(TopicSet::from_iter(subs_of(i)));
            let id = Id::of_node(i as u64);
            let boot: Vec<Entry<Subs>> = directory.iter().rev().take(4).cloned().collect();
            let node = OptNode::new(id, subs.clone(), cfg.clone(), monitor.clone(), boot);
            let slot = eng.add_node(node);
            directory.push(Entry::fresh(slot, id, subs));
        }
        (eng, monitor)
    }

    #[test]
    fn links_are_symmetric_connections() {
        let (mut eng, _) = build_net(32, |i| vec![(i % 2) as u32], OptConfig::default());
        eng.run_rounds(25);
        let mut asym = 0;
        let mut total = 0;
        for (idx, n) in eng.alive_nodes() {
            for peer in n.neighbor_addrs() {
                total += 1;
                let other = eng.node(peer).unwrap();
                if !other.neighbor_addrs().contains(&idx) {
                    asym += 1;
                }
            }
        }
        assert!(total > 0);
        // Handshaked links are symmetric except for in-flight churn.
        assert!(
            (asym as f64) < 0.1 * total as f64,
            "{asym}/{total} asymmetric links"
        );
    }

    #[test]
    fn coverage_reaches_target_when_unbounded() {
        let cfg = OptConfig {
            max_degree: None,
            ..OptConfig::default()
        };
        let (mut eng, _) = build_net(40, |i| vec![(i % 4) as u32, 4 + (i % 3) as u32], cfg);
        eng.run_rounds(30);
        let mut covered = 0;
        let mut total = 0;
        for (_, n) in eng.alive_nodes() {
            for t in n.subscriptions().iter() {
                total += 1;
                if n.topic_coverage(t) >= 2 {
                    covered += 1;
                }
            }
        }
        assert!(
            covered as f64 > 0.9 * total as f64,
            "coverage {covered}/{total}"
        );
    }

    #[test]
    fn degree_bound_is_hard() {
        let cfg = OptConfig {
            max_degree: Some(6),
            ..OptConfig::default()
        };
        let (mut eng, _) = build_net(40, |i| vec![(i % 8) as u32], cfg);
        eng.run_rounds(30);
        for (_, n) in eng.alive_nodes() {
            assert!(n.degree() <= 6, "degree {}", n.degree());
        }
    }

    #[test]
    fn flood_stays_inside_topic_subgraph() {
        let (mut eng, monitor) = build_net(32, |i| vec![(i % 2) as u32], OptConfig::default());
        eng.run_rounds(25);
        let expected: Vec<NodeIdx> = (1..16).map(|k| NodeIdx(k * 2)).collect();
        let e = monitor.register_event(TopicId(0), eng.now(), expected);
        eng.inject(
            NodeIdx(0),
            OptMsg::PublishCmd {
                event: e,
                topic: TopicId(0),
            },
        );
        eng.run_rounds(3);
        let s = monitor.snapshot();
        assert_eq!(s.relay_msgs, 0, "OPT must never relay");
        assert!(s.useful_msgs > 0);
    }
}
