//! [`PubSubProtocol`] adapters plugging the baseline nodes into the
//! generic [`SystemRuntime`], so RVR and OPT run on exactly the same
//! engine–monitor plumbing as [`vitis::system::VitisSystem`] and the
//! experiment harness can swap systems freely.

use crate::opt::{OptConfig, OptMsg, OptNode};
use crate::rvr::{RvrConfig, RvrMsg, RvrNode};
use std::collections::HashMap;
use std::sync::Arc;
use vitis::monitor::{EventId, LossReason, LossReport, MissContext, Monitor};
use vitis::runtime::{hybrid_rt_probe, PubSubProtocol, SystemRuntime};
use vitis::system::SystemParams;
use vitis::topic::{RateTable, Subs, TopicId};
use vitis::topo::{NodeTopo, RelayTopo, TopoLink};
use vitis_overlay::entry::Entry;
use vitis_overlay::id::Id;
use vitis_sim::antientropy::AeConfig;
use vitis_sim::event::NodeIdx;

/// A complete RVR (Scribe-equivalent) network behind the uniform
/// [`vitis::system::PubSub`] API.
pub type RvrSystem = SystemRuntime<RvrProtocol>;

/// The RVR adapter: subscription-oblivious small-world tables and a
/// rendezvous multicast tree per topic. Built from the same parameters
/// as a Vitis system; only `rt_size`, `est_n`, `age_threshold` and the
/// sampling view are used (RVR has no friends, gateways or relay radius).
pub struct RvrProtocol {
    cfg: Arc<RvrConfig>,
    repair: AeConfig,
}

impl RvrProtocol {
    /// Classify one missed `(event, subscriber)` pair against the tree
    /// state. `comps` are the connected components of the *whole* alive
    /// overlay (RVR trees route through non-subscribers), and
    /// `rendezvous_claims` the number of nodes claiming the topic's root.
    fn classify_miss(
        rt: &SystemRuntime<Self>,
        comps: &[Vec<u32>],
        rendezvous_claims: usize,
        miss: &MissContext<'_>,
    ) -> LossReason {
        let engine = rt.engine();
        if !engine.is_alive(miss.subscriber) {
            return LossReason::SubscriberChurned;
        }
        if engine
            .network_event_drops()
            .iter()
            .any(|&(e, s)| e == miss.event.0 && s == miss.subscriber.0)
        {
            // A copy addressed to this subscriber died in transit and no
            // later copy arrived.
            return LossReason::Network;
        }
        let Some(comp) = comps.iter().find(|c| c.contains(&miss.subscriber.0)) else {
            return LossReason::PartitionedCluster;
        };
        if !comp
            .iter()
            .any(|&x| miss.delivered.binary_search(&NodeIdx(x)).is_ok())
        {
            // The event never reached this partition of the overlay.
            return LossReason::PartitionedCluster;
        }
        let has_tree_state = engine
            .node(miss.subscriber)
            .is_some_and(|n| n.tree_table().has(miss.topic));
        if !has_tree_state {
            // The subscriber's join path never installed (or let expire)
            // its tree soft state — the RVR analogue of a broken relay.
            return LossReason::RelayBroken;
        }
        match rendezvous_claims {
            0 => LossReason::RelayBroken,     // no root: joins never terminated
            1 => LossReason::IncompleteFlood, // tree exists but fanout stopped short
            _ => LossReason::RingMisroute,    // conflicting roots split the tree
        }
    }
}

impl PubSubProtocol for RvrProtocol {
    type Node = RvrNode;

    const BOOT_SALT: u64 = u64::MAX - 1;

    fn from_params(params: &SystemParams) -> Self {
        RvrProtocol {
            cfg: Arc::new(RvrConfig {
                rt_size: params.cfg.rt_size,
                est_n: params.cfg.est_n,
                age_threshold: params.cfg.age_threshold,
                tree_ttl: params.cfg.relay_ttl,
                sampling_view: params.cfg.sampling_view,
                max_lookup_hops: params.cfg.max_lookup_hops,
            }),
            repair: params.repair.clone(),
        }
    }

    fn make_node(
        &self,
        logical: u32,
        subs: Subs,
        bootstrap: Vec<Entry<Subs>>,
        _rates: &Arc<RateTable>,
        monitor: &Monitor,
    ) -> RvrNode {
        RvrNode::new(
            Id::of_node(logical as u64),
            subs,
            self.cfg.clone(),
            monitor.clone(),
            bootstrap,
        )
        .with_repair(self.repair.clone())
    }

    fn describe(node: &RvrNode) -> (Id, Subs) {
        (node.ring_id(), node.subscriptions().clone())
    }

    fn degree(node: &RvrNode) -> usize {
        node.routing_table().len()
    }

    fn for_each_neighbor(node: &RvrNode, mut f: impl FnMut(NodeIdx)) {
        for e in node.routing_table().iter() {
            f(e.addr);
        }
    }

    fn publish_cmd(event: EventId, topic: TopicId) -> RvrMsg {
        RvrMsg::PublishCmd { event, topic }
    }

    fn loss_report(rt: &SystemRuntime<Self>) -> LossReport {
        let graph = rt.overlay_graph();
        let engine = rt.engine();
        let alive: Vec<u32> = engine.alive_indices().into_iter().map(|i| i.0).collect();
        let comps = graph.components_within(&alive);
        // Rendezvous-claim counts, lazily computed once per topic.
        let mut rdv_by_topic: HashMap<TopicId, usize> = HashMap::new();
        rt.monitor().attribute_losses(engine.now(), |miss| {
            let rdv = *rdv_by_topic.entry(miss.topic).or_insert_with(|| {
                engine
                    .alive_nodes()
                    .filter(|(_, n)| {
                        n.tree_table()
                            .get(miss.topic)
                            .is_some_and(|e| e.is_rendezvous())
                    })
                    .count()
            });
            Self::classify_miss(rt, &comps, rdv, miss)
        })
    }

    fn structure_probe(rt: &SystemRuntime<Self>) -> (Option<f64>, Option<f64>) {
        let (ring, age) = hybrid_rt_probe(rt, |n| n.routing_table());
        (Some(ring), age)
    }

    fn node_topo(&self, idx: NodeIdx, node: &RvrNode) -> NodeTopo {
        NodeTopo {
            node: idx,
            ring_id: node.ring_id(),
            subs: node.subscriptions().iter().collect(),
            links: node
                .routing_table()
                .iter_kinds()
                .map(|(kind, e)| TopoLink {
                    peer: e.addr,
                    kind: kind.as_str(),
                    age: Some(e.age),
                })
                .collect(),
            relays: node
                .tree_table()
                .entries()
                .map(|(topic, e)| RelayTopo {
                    topic,
                    upstream: e.upstream(),
                    upstream_age: e.upstream_age(),
                    downstream: e.downstreams().collect(),
                    rendezvous: e.is_rendezvous(),
                })
                .collect(),
            // RVR has no gateway election: subscribers join the tree
            // directly, so there is no believed-gateway view to export.
            gateway_view: Vec::new(),
            view_bound: Some(self.cfg.rt_size),
            relay_ttl: Some(self.cfg.tree_ttl),
        }
    }
}

/// A complete OPT (SpiderCast-equivalent) network behind the uniform
/// [`vitis::system::PubSub`] API.
pub type OptSystem = SystemRuntime<OptProtocol>;

/// The OPT adapter: correlation-aware overlay-per-topic links, flooding
/// within each topic subgraph, no structured routing at all.
pub struct OptProtocol {
    cfg: Arc<OptConfig>,
    repair: AeConfig,
}

impl OptProtocol {
    /// Adapter with an explicit OPT configuration (`max_degree: None`
    /// gives the unbounded variant of Figure 11); combine with
    /// [`SystemRuntime::with_protocol`].
    pub fn with_config(cfg: OptConfig) -> Self {
        OptProtocol {
            cfg: Arc::new(cfg),
            repair: AeConfig::default(),
        }
    }
}

impl PubSubProtocol for OptProtocol {
    type Node = OptNode;

    const BOOT_SALT: u64 = u64::MAX - 2;

    fn from_params(params: &SystemParams) -> Self {
        let mut p = OptProtocol::with_config(OptConfig {
            max_degree: Some(params.cfg.rt_size),
            sampling_view: params.cfg.sampling_view,
            age_threshold: params.cfg.age_threshold,
            ..OptConfig::default()
        });
        p.repair = params.repair.clone();
        p
    }

    fn make_node(
        &self,
        logical: u32,
        subs: Subs,
        bootstrap: Vec<Entry<Subs>>,
        _rates: &Arc<RateTable>,
        monitor: &Monitor,
    ) -> OptNode {
        OptNode::new(
            Id::of_node(logical as u64),
            subs,
            self.cfg.clone(),
            monitor.clone(),
            bootstrap,
        )
        .with_repair(self.repair.clone())
    }

    fn describe(node: &OptNode) -> (Id, Subs) {
        (node.ring_id(), node.subscriptions().clone())
    }

    fn degree(node: &OptNode) -> usize {
        node.degree()
    }

    fn for_each_neighbor(node: &OptNode, mut f: impl FnMut(NodeIdx)) {
        for peer in node.neighbor_addrs() {
            f(peer);
        }
    }

    fn publish_cmd(event: EventId, topic: TopicId) -> OptMsg {
        OptMsg::PublishCmd { event, topic }
    }

    fn loss_report(rt: &SystemRuntime<Self>) -> LossReport {
        // OPT has no structure beyond the per-topic subgraphs, so every
        // miss is either churn, a subgraph partition the flood could not
        // cross, or a flood that stopped short inside a reached component.
        let graph = rt.overlay_graph();
        let engine = rt.engine();
        let mut comps_by_topic: HashMap<TopicId, Vec<Vec<u32>>> = HashMap::new();
        rt.monitor().attribute_losses(engine.now(), |miss| {
            if !engine.is_alive(miss.subscriber) {
                return LossReason::SubscriberChurned;
            }
            if engine
                .network_event_drops()
                .iter()
                .any(|&(e, s)| e == miss.event.0 && s == miss.subscriber.0)
            {
                return LossReason::Network;
            }
            let comps = comps_by_topic
                .entry(miss.topic)
                .or_insert_with(|| graph.components_within(&rt.alive_subscribers(miss.topic)));
            let Some(comp) = comps.iter().find(|c| c.contains(&miss.subscriber.0)) else {
                return LossReason::PartitionedCluster;
            };
            if comp
                .iter()
                .any(|&x| miss.delivered.binary_search(&NodeIdx(x)).is_ok())
            {
                LossReason::IncompleteFlood
            } else {
                LossReason::PartitionedCluster
            }
        })
    }

    // structure_probe: the default `(None, None)` — OPT keeps no ring and
    // its link set carries no age.

    fn node_topo(&self, idx: NodeIdx, node: &OptNode) -> NodeTopo {
        NodeTopo {
            node: idx,
            ring_id: node.ring_id(),
            subs: node.subscriptions().iter().collect(),
            links: node
                .neighbor_addrs()
                .into_iter()
                .map(|peer| TopoLink {
                    peer,
                    kind: "mesh",
                    age: None,
                })
                .collect(),
            // OPT floods per-topic subgraphs: no relay state, no gateways.
            relays: Vec::new(),
            gateway_view: Vec::new(),
            view_bound: self.cfg.max_degree,
            relay_ttl: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use vitis::system::PubSub;
    use vitis::topic::TopicSet;
    use vitis_sim::rng::{domain, stream_rng};

    fn random_params(n: usize, topics: usize, subs: usize, seed: u64) -> SystemParams {
        let mut rng = stream_rng(seed, domain::WORKLOAD, 1);
        let subscriptions: Vec<TopicSet> = (0..n)
            .map(|_| TopicSet::from_iter((0..subs).map(|_| rng.gen_range(0..topics as u32))))
            .collect();
        let mut p = SystemParams::new(subscriptions, topics);
        p.seed = seed;
        p
    }

    #[test]
    fn rvr_reaches_full_hit_ratio() {
        let mut sys = RvrSystem::new(random_params(200, 40, 6, 17));
        sys.run_rounds(55);
        sys.reset_metrics();
        for t in 0..40 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(6);
        let s = sys.stats();
        assert!(s.expected > 0);
        assert!(s.hit_ratio > 0.99, "hit {}", s.hit_ratio);
        // Rendezvous trees force traffic through uninterested relays.
        assert!(s.relay_msgs > 0, "RVR must have relay traffic");
    }

    #[test]
    fn rvr_degree_is_fixed() {
        let mut sys = RvrSystem::new(random_params(150, 20, 4, 23));
        sys.run_rounds(30);
        for (_, n) in sys.engine().alive_nodes() {
            assert!(n.routing_table().len() <= 15);
            assert!(n.routing_table().friends.is_empty(), "RVR has no friends");
        }
    }

    #[test]
    fn rvr_survives_churn() {
        let mut sys = RvrSystem::new(random_params(150, 15, 4, 29));
        sys.run_rounds(30);
        for logical in 0..30 {
            sys.set_online(logical, false);
        }
        sys.run_rounds(15);
        sys.reset_metrics();
        for t in 0..15 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(6);
        let s = sys.stats();
        assert!(s.hit_ratio > 0.95, "hit after churn {}", s.hit_ratio);
    }

    #[test]
    fn opt_has_no_relay_traffic() {
        let mut sys = OptSystem::new(random_params(200, 20, 5, 31));
        sys.run_rounds(40);
        sys.reset_metrics();
        for t in 0..20 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(6);
        let s = sys.stats();
        assert_eq!(s.relay_msgs, 0, "flooding a topic subgraph cannot relay");
        assert!(s.useful_msgs > 0);
        assert!(
            s.hit_ratio > 0.3,
            "some delivery expected, got {}",
            s.hit_ratio
        );
    }

    #[test]
    fn opt_bounded_degree_respects_cap() {
        let params = random_params(150, 30, 8, 37);
        let mut sys = OptSystem::new(params);
        sys.run_rounds(40);
        for (_, n) in sys.engine().alive_nodes() {
            assert!(n.degree() <= 15, "degree {} exceeds cap", n.degree());
        }
    }

    #[test]
    fn opt_unbounded_covers_more_and_grows_degrees() {
        let params = random_params(150, 30, 8, 41);
        let bounded = {
            let mut sys = OptSystem::with_protocol(
                OptProtocol::with_config(OptConfig {
                    max_degree: Some(8),
                    ..OptConfig::default()
                }),
                params.clone(),
            );
            sys.run_rounds(40);
            sys.reset_metrics();
            for t in 0..30 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(6);
            sys.stats().hit_ratio
        };
        let (unbounded, max_degree) = {
            let mut sys = OptSystem::with_protocol(
                OptProtocol::with_config(OptConfig {
                    max_degree: None,
                    ..OptConfig::default()
                }),
                params,
            );
            sys.run_rounds(40);
            let max_degree = sys.degree_distribution().into_iter().max().unwrap();
            sys.reset_metrics();
            for t in 0..30 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(6);
            (sys.stats().hit_ratio, max_degree)
        };
        assert!(
            unbounded >= bounded,
            "unbounded {unbounded} < bounded {bounded}"
        );
        assert!(max_degree > 8, "unbounded degrees should exceed the cap");
    }

    /// All three systems must report the same observability schema:
    /// control/data traffic split by message kind, and a health probe.
    #[test]
    fn all_systems_separate_control_and_data_traffic() {
        fn check(sys: &mut dyn PubSub, name: &str, expect_ring: bool) {
            sys.run_rounds(30);
            sys.reset_metrics();
            for t in 0..10 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(5);
            let s = sys.stats();
            assert!(s.control_sent > 0, "{name}: gossip is control traffic");
            assert!(s.data_sent > 0, "{name}: notifications are data traffic");
            assert!(
                s.traffic_by_kind.iter().any(|k| k.kind == "notification"),
                "{name}: notification kind must be accounted"
            );
            let sum: u64 = s.traffic_by_kind.iter().map(|k| k.sent).sum();
            assert_eq!(sum, s.control_sent + s.data_sent, "{name}: kinds partition");
            let probe = sys.health_probe();
            assert!(probe.alive > 0, "{name}: probe sees the network");
            assert!(probe.mean_degree > 0.0, "{name}: probe sees links");
            assert_eq!(
                probe.ring_accuracy.is_some(),
                expect_ring,
                "{name}: ring field presence"
            );
            assert!(probe.clusters.unwrap() > 0, "{name}: probe sees clusters");
        }
        let params = random_params(120, 12, 4, 47);
        check(
            &mut vitis::system::VitisSystem::new(params.clone()),
            "vitis",
            true,
        );
        check(&mut RvrSystem::new(params.clone()), "rvr", true);
        check(&mut OptSystem::new(params), "opt", false);
    }

    /// Both baselines must honor the [`PubSub::loss_report`] contract:
    /// per-reason counts partition the missed `(event, subscriber)` pairs.
    #[test]
    fn baseline_loss_reports_sum_to_missed_pairs() {
        fn check(sys: &mut dyn PubSub, name: &str) {
            sys.run_rounds(30);
            sys.reset_metrics();
            for t in 0..10 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(5);
            let s = sys.stats();
            let report = sys.loss_report();
            assert_eq!(report.expected, s.expected, "{name}: expected matches");
            assert_eq!(report.delivered, s.delivered, "{name}: delivered matches");
            let sum: u64 = report.by_reason.iter().map(|&(_, c)| c).sum();
            assert_eq!(sum, report.missed(), "{name}: reasons partition misses");
        }
        let params = random_params(120, 12, 4, 53);
        check(&mut RvrSystem::new(params.clone()), "rvr");
        check(&mut OptSystem::new(params), "opt");
    }

    #[test]
    fn systems_are_deterministic() {
        let run = || {
            let mut sys = RvrSystem::new(random_params(80, 10, 3, 43));
            sys.run_rounds(20);
            sys.reset_metrics();
            for t in 0..10 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(4);
            let s = sys.stats();
            (s.delivered, s.relay_msgs)
        };
        assert_eq!(run(), run());
    }
}
