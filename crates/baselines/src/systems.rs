//! System wrappers around the baseline nodes, implementing the same
//! [`PubSub`] driver interface as [`vitis::system::VitisSystem`] so the
//! experiment harness can swap systems freely.

use crate::opt::{OptConfig, OptMsg, OptNode};
use crate::rvr::{RvrConfig, RvrMsg, RvrNode};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use std::collections::HashMap;
use std::rc::Rc;
use vitis::harness::Workload;
use vitis::monitor::{EventId, LossReason, LossReport, MissContext, Monitor, PubSubStats};
use vitis::system::{cluster_probe, PubSub, SystemParams};
use vitis::topic::{Subs, TopicId};
use vitis_overlay::entry::Entry;
use vitis_overlay::graph::Graph;
use vitis_overlay::id::Id;
use vitis_sim::engine::{Engine, EngineConfig};
use vitis_sim::event::NodeIdx;
use vitis_sim::prelude::StopReason;
use vitis_sim::rng::{domain, stream_rng};
use vitis_sim::time::SimTime;
use vitis_sim::trace::{HealthProbe, TraceHandle};

/// A complete RVR (Scribe-equivalent) network.
pub struct RvrSystem {
    engine: Engine<RvrNode, vitis_sim::network::DynNetworkModel>,
    monitor: Monitor,
    workload: Workload,
    cfg: Rc<RvrConfig>,
    boot_rng: SmallRng,
    bootstrap_contacts: usize,
}

impl RvrSystem {
    /// Build from the same parameters as a Vitis system; only `rt_size`,
    /// `est_n`, `age_threshold` and the sampling view are used (RVR has no
    /// friends, gateways or relay radius).
    pub fn new(params: SystemParams) -> Self {
        let n = params.subscriptions.len();
        let cfg = Rc::new(RvrConfig {
            rt_size: params.cfg.rt_size,
            est_n: params.cfg.est_n,
            age_threshold: params.cfg.age_threshold,
            tree_ttl: params.cfg.relay_ttl,
            sampling_view: params.cfg.sampling_view,
            max_lookup_hops: params.cfg.max_lookup_hops,
        });
        let monitor = Monitor::new();
        let workload = Workload::new(
            params.subscriptions,
            params.num_topics,
            params.rates,
            params.grace,
            params.seed,
        );
        let engine = Engine::with_network(
            EngineConfig {
                seed: params.seed,
                round_period: params.round_period,
                desynchronize_rounds: true,
            },
            params.network.build(),
        );
        let boot_rng = stream_rng(params.seed, domain::WORKLOAD, u64::MAX - 1);
        let mut sys = RvrSystem {
            engine,
            monitor,
            workload,
            cfg,
            boot_rng,
            bootstrap_contacts: params.bootstrap_contacts,
        };
        for logical in 0..n as u32 {
            let node = sys.make_node(logical);
            let slot = sys.engine.add_node(node);
            debug_assert_eq!(slot.0, logical);
        }
        sys
    }

    fn make_node(&mut self, logical: u32) -> RvrNode {
        let subs = self.workload.subs_of(logical).clone();
        let bootstrap = bootstrap_entries(
            &mut self.boot_rng,
            self.bootstrap_contacts,
            self.engine.alive_indices(),
            |slot| {
                let node = self.engine.node(slot).expect("alive");
                (node.ring_id(), node.subscriptions().clone())
            },
        );
        RvrNode::new(
            Id::of_node(logical as u64),
            subs,
            self.cfg.clone(),
            self.monitor.clone(),
            bootstrap,
        )
    }

    /// Read access to the engine for snapshots.
    pub fn engine(&self) -> &Engine<RvrNode, vitis_sim::network::DynNetworkModel> {
        &self.engine
    }

    /// The workload ground truth.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Snapshot the structured overlay as an undirected graph.
    pub fn overlay_graph(&self) -> Graph {
        let mut g = Graph::new(self.engine.num_slots());
        for (idx, node) in self.engine.alive_nodes() {
            for e in node.routing_table().iter() {
                if self.engine.is_alive(e.addr) {
                    g.add_edge(idx.0, e.addr.0);
                }
            }
        }
        g
    }

    /// Classify one missed `(event, subscriber)` pair against the tree
    /// state. `comps` are the connected components of the *whole* alive
    /// overlay (RVR trees route through non-subscribers), and
    /// `rendezvous_claims` the number of nodes claiming the topic's root.
    fn classify_miss(
        &self,
        comps: &[Vec<u32>],
        rendezvous_claims: usize,
        miss: &MissContext<'_>,
    ) -> LossReason {
        if !self.engine.is_alive(miss.subscriber) {
            return LossReason::SubscriberChurned;
        }
        let Some(comp) = comps.iter().find(|c| c.contains(&miss.subscriber.0)) else {
            return LossReason::PartitionedCluster;
        };
        if !comp
            .iter()
            .any(|&x| miss.delivered.binary_search(&NodeIdx(x)).is_ok())
        {
            // The event never reached this partition of the overlay.
            return LossReason::PartitionedCluster;
        }
        let has_tree_state = self
            .engine
            .node(miss.subscriber)
            .is_some_and(|n| n.tree_table().has(miss.topic));
        if !has_tree_state {
            // The subscriber's join path never installed (or let expire)
            // its tree soft state — the RVR analogue of a broken relay.
            return LossReason::RelayBroken;
        }
        match rendezvous_claims {
            0 => LossReason::RelayBroken, // no root: joins never terminated
            1 => LossReason::IncompleteFlood, // tree exists but fanout stopped short
            _ => LossReason::RingMisroute, // conflicting roots split the tree
        }
    }
}

impl PubSub for RvrSystem {
    fn run_rounds(&mut self, n: u64) {
        self.engine.run_rounds(n);
    }

    fn run_ticks(&mut self, ticks: u64) {
        self.engine.run_for(vitis_sim::time::Duration(ticks));
    }

    fn publish(&mut self, topic: TopicId) -> Option<EventId> {
        let engine = &self.engine;
        let publisher = self
            .workload
            .choose_publisher(topic, |s| engine.is_alive(NodeIdx(s)))?;
        let now = self.engine.now();
        let expected = self
            .workload
            .expected_subscribers(topic, publisher, now, |s| engine.joined_at(NodeIdx(s)));
        let event = self.monitor.register_event(topic, now, expected);
        self.monitor.trace_publish(event, NodeIdx(publisher));
        self.engine
            .inject(NodeIdx(publisher), RvrMsg::PublishCmd { event, topic });
        Some(event)
    }

    fn publish_weighted(&mut self) -> Option<EventId> {
        let topic = self.workload.draw_topic();
        self.publish(topic)
    }

    fn stats(&self) -> PubSubStats {
        self.monitor
            .snapshot()
            .with_kind_traffic(&self.engine.kind_traffic())
    }

    fn reset_metrics(&mut self) {
        self.monitor.reset();
        self.engine.reset_kind_traffic();
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn alive_count(&self) -> usize {
        self.engine.alive_count()
    }

    fn set_online(&mut self, logical: u32, online: bool) {
        let slot = NodeIdx(logical);
        match (self.engine.is_alive(slot), online) {
            (false, true) => {
                let node = self.make_node(logical);
                if slot.index() < self.engine.num_slots() {
                    self.engine.rejoin_node(slot, node);
                } else {
                    let got = self.engine.add_node(node);
                    assert_eq!(got, slot, "logical ids must join in order");
                }
            }
            (true, false) => self.engine.remove_node(slot, StopReason::Crash),
            _ => {}
        }
    }

    fn mean_degree(&self) -> f64 {
        let (sum, count) = self
            .engine
            .alive_nodes()
            .fold((0usize, 0usize), |(s, c), (_, n)| {
                (s + n.routing_table().len(), c + 1)
            });
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    fn per_node_overhead(&self, min_msgs: u64) -> Vec<f64> {
        self.monitor
            .per_node_overhead(min_msgs)
            .into_iter()
            .map(|(_, pct)| pct)
            .collect()
    }

    fn install_trace(&mut self, trace: TraceHandle) {
        self.monitor.set_trace(Some(trace.clone()));
        self.engine.set_trace(trace);
    }

    fn loss_report(&self) -> LossReport {
        let graph = self.overlay_graph();
        let alive: Vec<u32> = self.engine.alive_indices().into_iter().map(|i| i.0).collect();
        let comps = graph.components_within(&alive);
        // Rendezvous-claim counts, lazily computed once per topic.
        let mut rdv_by_topic: HashMap<TopicId, usize> = HashMap::new();
        self.monitor.attribute_losses(self.engine.now(), |miss| {
            let rdv = *rdv_by_topic.entry(miss.topic).or_insert_with(|| {
                self.engine
                    .alive_nodes()
                    .filter(|(_, n)| {
                        n.tree_table()
                            .get(miss.topic)
                            .is_some_and(|e| e.is_rendezvous())
                    })
                    .count()
            });
            self.classify_miss(&comps, rdv, miss)
        })
    }

    fn health_probe(&self) -> HealthProbe {
        let ring: Vec<(Id, Option<Id>)> = self
            .engine
            .alive_nodes()
            .map(|(_, n)| {
                (
                    n.ring_id(),
                    n.routing_table()
                        .succ
                        .as_ref()
                        .and_then(|s| self.engine.is_alive(s.addr).then_some(s.id)),
                )
            })
            .collect();
        let (age_sum, entries) = self
            .engine
            .alive_nodes()
            .flat_map(|(_, n)| n.routing_table().iter())
            .fold((0u64, 0u64), |(s, c), e| (s + u64::from(e.age), c + 1));
        let graph = self.overlay_graph();
        let engine = &self.engine;
        let (clusters, largest) =
            cluster_probe(&graph, &self.workload, |s| engine.is_alive(NodeIdx(s)));
        HealthProbe {
            alive: self.engine.alive_count() as u64,
            mean_degree: self.mean_degree(),
            ring_accuracy: Some(vitis_overlay::ring::ring_accuracy(&ring)),
            mean_view_age: (entries > 0).then(|| age_sum as f64 / entries as f64),
            clusters: Some(clusters),
            largest_cluster: Some(largest),
        }
    }
}

/// A complete OPT (SpiderCast-equivalent) network.
pub struct OptSystem {
    engine: Engine<OptNode, vitis_sim::network::DynNetworkModel>,
    monitor: Monitor,
    workload: Workload,
    cfg: Rc<OptConfig>,
    boot_rng: SmallRng,
    bootstrap_contacts: usize,
}

impl OptSystem {
    /// Build with an explicit OPT configuration (`max_degree: None` gives
    /// the unbounded variant of Figure 11).
    pub fn with_config(params: SystemParams, opt_cfg: OptConfig) -> Self {
        let n = params.subscriptions.len();
        let cfg = Rc::new(opt_cfg);
        let monitor = Monitor::new();
        let workload = Workload::new(
            params.subscriptions,
            params.num_topics,
            params.rates,
            params.grace,
            params.seed,
        );
        let engine = Engine::with_network(
            EngineConfig {
                seed: params.seed,
                round_period: params.round_period,
                desynchronize_rounds: true,
            },
            params.network.build(),
        );
        let boot_rng = stream_rng(params.seed, domain::WORKLOAD, u64::MAX - 2);
        let mut sys = OptSystem {
            engine,
            monitor,
            workload,
            cfg,
            boot_rng,
            bootstrap_contacts: params.bootstrap_contacts,
        };
        for logical in 0..n as u32 {
            let node = sys.make_node(logical);
            let slot = sys.engine.add_node(node);
            debug_assert_eq!(slot.0, logical);
        }
        sys
    }

    /// Build with the degree bound taken from `params.cfg.rt_size`.
    pub fn new(params: SystemParams) -> Self {
        let opt_cfg = OptConfig {
            max_degree: Some(params.cfg.rt_size),
            sampling_view: params.cfg.sampling_view,
            age_threshold: params.cfg.age_threshold,
            ..OptConfig::default()
        };
        OptSystem::with_config(params, opt_cfg)
    }

    fn make_node(&mut self, logical: u32) -> OptNode {
        let subs = self.workload.subs_of(logical).clone();
        let bootstrap = bootstrap_entries(
            &mut self.boot_rng,
            self.bootstrap_contacts,
            self.engine.alive_indices(),
            |slot| {
                let node = self.engine.node(slot).expect("alive");
                (node.ring_id(), node.subscriptions().clone())
            },
        );
        OptNode::new(
            Id::of_node(logical as u64),
            subs,
            self.cfg.clone(),
            self.monitor.clone(),
            bootstrap,
        )
    }

    /// Read access to the engine for snapshots.
    pub fn engine(&self) -> &Engine<OptNode, vitis_sim::network::DynNetworkModel> {
        &self.engine
    }

    /// The workload ground truth.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Degrees of all online nodes (Figure 11's distribution).
    pub fn degree_distribution(&self) -> Vec<u64> {
        self.engine
            .alive_nodes()
            .map(|(_, n)| n.degree() as u64)
            .collect()
    }

    /// Snapshot the link graph (symmetric connections).
    pub fn overlay_graph(&self) -> Graph {
        let mut g = Graph::new(self.engine.num_slots());
        for (idx, node) in self.engine.alive_nodes() {
            for peer in node.neighbor_addrs() {
                if self.engine.is_alive(peer) {
                    g.add_edge(idx.0, peer.0);
                }
            }
        }
        g
    }
}

impl PubSub for OptSystem {
    fn run_rounds(&mut self, n: u64) {
        self.engine.run_rounds(n);
    }

    fn run_ticks(&mut self, ticks: u64) {
        self.engine.run_for(vitis_sim::time::Duration(ticks));
    }

    fn publish(&mut self, topic: TopicId) -> Option<EventId> {
        let engine = &self.engine;
        let publisher = self
            .workload
            .choose_publisher(topic, |s| engine.is_alive(NodeIdx(s)))?;
        let now = self.engine.now();
        let expected = self
            .workload
            .expected_subscribers(topic, publisher, now, |s| engine.joined_at(NodeIdx(s)));
        let event = self.monitor.register_event(topic, now, expected);
        self.monitor.trace_publish(event, NodeIdx(publisher));
        self.engine
            .inject(NodeIdx(publisher), OptMsg::PublishCmd { event, topic });
        Some(event)
    }

    fn publish_weighted(&mut self) -> Option<EventId> {
        let topic = self.workload.draw_topic();
        self.publish(topic)
    }

    fn stats(&self) -> PubSubStats {
        self.monitor
            .snapshot()
            .with_kind_traffic(&self.engine.kind_traffic())
    }

    fn reset_metrics(&mut self) {
        self.monitor.reset();
        self.engine.reset_kind_traffic();
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn alive_count(&self) -> usize {
        self.engine.alive_count()
    }

    fn set_online(&mut self, logical: u32, online: bool) {
        let slot = NodeIdx(logical);
        match (self.engine.is_alive(slot), online) {
            (false, true) => {
                let node = self.make_node(logical);
                if slot.index() < self.engine.num_slots() {
                    self.engine.rejoin_node(slot, node);
                } else {
                    let got = self.engine.add_node(node);
                    assert_eq!(got, slot, "logical ids must join in order");
                }
            }
            (true, false) => self.engine.remove_node(slot, StopReason::Crash),
            _ => {}
        }
    }

    fn mean_degree(&self) -> f64 {
        let (sum, count) = self
            .engine
            .alive_nodes()
            .fold((0usize, 0usize), |(s, c), (_, n)| (s + n.degree(), c + 1));
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    fn per_node_overhead(&self, min_msgs: u64) -> Vec<f64> {
        self.monitor
            .per_node_overhead(min_msgs)
            .into_iter()
            .map(|(_, pct)| pct)
            .collect()
    }

    fn install_trace(&mut self, trace: TraceHandle) {
        self.monitor.set_trace(Some(trace.clone()));
        self.engine.set_trace(trace);
    }

    fn loss_report(&self) -> LossReport {
        // OPT has no structure beyond the per-topic subgraphs, so every
        // miss is either churn, a subgraph partition the flood could not
        // cross, or a flood that stopped short inside a reached component.
        let graph = self.overlay_graph();
        let mut comps_by_topic: HashMap<TopicId, Vec<Vec<u32>>> = HashMap::new();
        self.monitor.attribute_losses(self.engine.now(), |miss| {
            if !self.engine.is_alive(miss.subscriber) {
                return LossReason::SubscriberChurned;
            }
            let comps = comps_by_topic.entry(miss.topic).or_insert_with(|| {
                let subs: Vec<u32> = self
                    .workload
                    .subscribers(miss.topic)
                    .iter()
                    .copied()
                    .filter(|&s| self.engine.is_alive(NodeIdx(s)))
                    .collect();
                graph.components_within(&subs)
            });
            let Some(comp) = comps.iter().find(|c| c.contains(&miss.subscriber.0)) else {
                return LossReason::PartitionedCluster;
            };
            if comp
                .iter()
                .any(|&x| miss.delivered.binary_search(&NodeIdx(x)).is_ok())
            {
                LossReason::IncompleteFlood
            } else {
                LossReason::PartitionedCluster
            }
        })
    }

    fn health_probe(&self) -> HealthProbe {
        // OPT keeps no ring and its link set carries no age, so the
        // structure fields that do not apply stay `None`.
        let graph = self.overlay_graph();
        let engine = &self.engine;
        let (clusters, largest) =
            cluster_probe(&graph, &self.workload, |s| engine.is_alive(NodeIdx(s)));
        HealthProbe {
            alive: self.engine.alive_count() as u64,
            mean_degree: self.mean_degree(),
            ring_accuracy: None,
            mean_view_age: None,
            clusters: Some(clusters),
            largest_cluster: Some(largest),
        }
    }
}

/// Sample bootstrap contacts among currently online nodes.
fn bootstrap_entries(
    rng: &mut SmallRng,
    count: usize,
    mut alive: Vec<NodeIdx>,
    mut describe: impl FnMut(NodeIdx) -> (Id, Subs),
) -> Vec<Entry<Subs>> {
    alive.shuffle(rng);
    alive
        .into_iter()
        .take(count)
        .map(|slot| {
            let (id, subs) = describe(slot);
            Entry::fresh(slot, id, subs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use vitis::topic::TopicSet;

    fn random_params(n: usize, topics: usize, subs: usize, seed: u64) -> SystemParams {
        let mut rng = stream_rng(seed, domain::WORKLOAD, 1);
        let subscriptions: Vec<TopicSet> = (0..n)
            .map(|_| TopicSet::from_iter((0..subs).map(|_| rng.gen_range(0..topics as u32))))
            .collect();
        let mut p = SystemParams::new(subscriptions, topics);
        p.seed = seed;
        p
    }

    #[test]
    fn rvr_reaches_full_hit_ratio() {
        let mut sys = RvrSystem::new(random_params(200, 40, 6, 17));
        sys.run_rounds(55);
        sys.reset_metrics();
        for t in 0..40 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(6);
        let s = sys.stats();
        assert!(s.expected > 0);
        assert!(s.hit_ratio > 0.99, "hit {}", s.hit_ratio);
        // Rendezvous trees force traffic through uninterested relays.
        assert!(s.relay_msgs > 0, "RVR must have relay traffic");
    }

    #[test]
    fn rvr_degree_is_fixed() {
        let mut sys = RvrSystem::new(random_params(150, 20, 4, 23));
        sys.run_rounds(30);
        for (_, n) in sys.engine().alive_nodes() {
            assert!(n.routing_table().len() <= 15);
            assert!(n.routing_table().friends.is_empty(), "RVR has no friends");
        }
    }

    #[test]
    fn rvr_survives_churn() {
        let mut sys = RvrSystem::new(random_params(150, 15, 4, 29));
        sys.run_rounds(30);
        for logical in 0..30 {
            sys.set_online(logical, false);
        }
        sys.run_rounds(15);
        sys.reset_metrics();
        for t in 0..15 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(6);
        let s = sys.stats();
        assert!(s.hit_ratio > 0.95, "hit after churn {}", s.hit_ratio);
    }

    #[test]
    fn opt_has_no_relay_traffic() {
        let mut sys = OptSystem::new(random_params(200, 20, 5, 31));
        sys.run_rounds(40);
        sys.reset_metrics();
        for t in 0..20 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(6);
        let s = sys.stats();
        assert_eq!(s.relay_msgs, 0, "flooding a topic subgraph cannot relay");
        assert!(s.useful_msgs > 0);
        assert!(s.hit_ratio > 0.3, "some delivery expected, got {}", s.hit_ratio);
    }

    #[test]
    fn opt_bounded_degree_respects_cap() {
        let params = random_params(150, 30, 8, 37);
        let mut sys = OptSystem::new(params);
        sys.run_rounds(40);
        for (_, n) in sys.engine().alive_nodes() {
            assert!(n.degree() <= 15, "degree {} exceeds cap", n.degree());
        }
    }

    #[test]
    fn opt_unbounded_covers_more_and_grows_degrees() {
        let params = random_params(150, 30, 8, 41);
        let bounded = {
            let mut sys = OptSystem::with_config(
                params.clone(),
                OptConfig {
                    max_degree: Some(8),
                    ..OptConfig::default()
                },
            );
            sys.run_rounds(40);
            sys.reset_metrics();
            for t in 0..30 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(6);
            sys.stats().hit_ratio
        };
        let (unbounded, max_degree) = {
            let mut sys = OptSystem::with_config(
                params,
                OptConfig {
                    max_degree: None,
                    ..OptConfig::default()
                },
            );
            sys.run_rounds(40);
            let max_degree = sys.degree_distribution().into_iter().max().unwrap();
            sys.reset_metrics();
            for t in 0..30 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(6);
            (sys.stats().hit_ratio, max_degree)
        };
        assert!(
            unbounded >= bounded,
            "unbounded {unbounded} < bounded {bounded}"
        );
        assert!(max_degree > 8, "unbounded degrees should exceed the cap");
    }

    /// All three systems must report the same observability schema:
    /// control/data traffic split by message kind, and a health probe.
    #[test]
    fn all_systems_separate_control_and_data_traffic() {
        fn check(sys: &mut dyn PubSub, name: &str, expect_ring: bool) {
            sys.run_rounds(30);
            sys.reset_metrics();
            for t in 0..10 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(5);
            let s = sys.stats();
            assert!(s.control_sent > 0, "{name}: gossip is control traffic");
            assert!(s.data_sent > 0, "{name}: notifications are data traffic");
            assert!(
                s.traffic_by_kind.iter().any(|k| k.kind == "notification"),
                "{name}: notification kind must be accounted"
            );
            let sum: u64 = s.traffic_by_kind.iter().map(|k| k.sent).sum();
            assert_eq!(sum, s.control_sent + s.data_sent, "{name}: kinds partition");
            let probe = sys.health_probe();
            assert!(probe.alive > 0, "{name}: probe sees the network");
            assert!(probe.mean_degree > 0.0, "{name}: probe sees links");
            assert_eq!(
                probe.ring_accuracy.is_some(),
                expect_ring,
                "{name}: ring field presence"
            );
            assert!(probe.clusters.unwrap() > 0, "{name}: probe sees clusters");
        }
        let params = random_params(120, 12, 4, 47);
        check(
            &mut vitis::system::VitisSystem::new(params.clone()),
            "vitis",
            true,
        );
        check(&mut RvrSystem::new(params.clone()), "rvr", true);
        check(&mut OptSystem::new(params), "opt", false);
    }

    /// Both baselines must honor the [`PubSub::loss_report`] contract:
    /// per-reason counts partition the missed `(event, subscriber)` pairs.
    #[test]
    fn baseline_loss_reports_sum_to_missed_pairs() {
        fn check(sys: &mut dyn PubSub, name: &str) {
            sys.run_rounds(30);
            sys.reset_metrics();
            for t in 0..10 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(5);
            let s = sys.stats();
            let report = sys.loss_report();
            assert_eq!(report.expected, s.expected, "{name}: expected matches");
            assert_eq!(report.delivered, s.delivered, "{name}: delivered matches");
            let sum: u64 = report.by_reason.iter().map(|&(_, c)| c).sum();
            assert_eq!(sum, report.missed(), "{name}: reasons partition misses");
        }
        let params = random_params(120, 12, 4, 53);
        check(&mut RvrSystem::new(params.clone()), "rvr");
        check(&mut OptSystem::new(params), "opt");
    }

    #[test]
    fn systems_are_deterministic() {
        let run = || {
            let mut sys = RvrSystem::new(random_params(80, 10, 3, 43));
            sys.run_rounds(20);
            sys.reset_metrics();
            for t in 0..10 {
                sys.publish(TopicId(t));
            }
            sys.run_rounds(4);
            let s = sys.stats();
            (s.delivered, s.relay_msgs)
        };
        assert_eq!(run(), run());
    }
}
